// Figure 7 + Table 3 (Experiment 2) — MetaTrace on the homogeneous IBM
// AIX POWER machine, plus the cross-experiment comparison with the
// heterogeneous run (the cube algebra the paper names as planned
// tooling).
#include <cstdio>

#include "analysis/analyzer.hpp"
#include "clocksync/correction.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "report/algebra.hpp"
#include "report/render.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

using namespace metascope;

namespace {

analysis::AnalysisResult run_on(const simnet::Topology& topo) {
  const auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  auto data = workloads::run_experiment(topo, prog, cfg);
  clocksync::synchronize(data.traces);
  return analysis::analyze_parallel(data.traces);
}

double steering_late_sender_pct(const analysis::AnalysisResult& r) {
  double v = 0.0;
  for (CallPathId c : r.cube.calls.preorder()) {
    if (r.cube.regions.name(r.cube.calls.node(c).region) == "getsteering")
      v += r.cube.cnode_subtree_inclusive(r.patterns.late_sender, c);
  }
  return v / r.cube.total_time();
}

}  // namespace

int main() {
  bench::banner("Figure 7 / Table 3 Experiment 2",
                "MetaTrace on one homogeneous metahost (IBM AIX POWER)");
  bench::note(
      "Table 3, Experiment 2 configuration:\n"
      "  Partrace: IBM AIX POWER, 16 processes (ranks 16..31)\n"
      "  Trace:    IBM AIX POWER, 16 processes (ranks 0..15)\n");

  const auto het = run_on(simnet::make_viola_experiment1());
  const auto hom = run_on(simnet::make_ibm_power(32));

  auto pct = [](const analysis::AnalysisResult& r, MetricId m) {
    return r.cube.metric_inclusive_total(m) / r.cube.total_time();
  };
  bench::BenchReport report("fig7_homogeneous");
  report.set("het_wait_barrier_frac", Json(pct(het, het.patterns.wait_barrier)));
  report.set("hom_wait_barrier_frac", Json(pct(hom, hom.patterns.wait_barrier)));
  report.set("het_late_sender_frac", Json(pct(het, het.patterns.late_sender)));
  report.set("hom_late_sender_frac", Json(pct(hom, hom.patterns.late_sender)));
  report.set("het_steering_late_sender_frac",
             Json(steering_late_sender_pct(het)));
  report.set("hom_steering_late_sender_frac",
             Json(steering_late_sender_pct(hom)));
  report.set("het_total_time_s", Json(het.cube.total_time()));
  report.set("hom_total_time_s", Json(hom.cube.total_time()));
  TextTable t({"quantity", "three-metahost (Fig 6)",
               "one-metahost (Fig 7)"});
  t.add_row({"Wait at Barrier (incl. grid)",
             TextTable::percent(pct(het, het.patterns.wait_barrier)),
             TextTable::percent(pct(hom, hom.patterns.wait_barrier))});
  t.add_row({"Late Sender (incl. grid)",
             TextTable::percent(pct(het, het.patterns.late_sender)),
             TextTable::percent(pct(hom, hom.patterns.late_sender))});
  t.add_row({"Late Sender at getsteering()",
             TextTable::percent(steering_late_sender_pct(het)),
             TextTable::percent(steering_late_sender_pct(hom))});
  t.add_row({"total time [s]",
             TextTable::fixed(het.cube.total_time(), 2),
             TextTable::fixed(hom.cube.total_time(), 2)});
  std::printf("%s\n", t.render().c_str());

  std::printf("--- Fig 7: Wait at Barrier on the homogeneous machine ---\n");
  std::printf("%s\n",
              report::render_call_tree(hom.cube, hom.patterns.wait_barrier)
                  .c_str());

  std::printf("--- cross-experiment diff (het - hom), cube algebra ---\n");
  const report::Cube d = report::cube_diff(het.cube, hom.cube);
  TextTable dt({"metric", "het - hom [s]"});
  for (const char* name :
       {"Wait at Barrier", "Grid Wait at Barrier", "Late Sender",
        "Grid Late Sender"}) {
    dt.add_row({name,
                TextTable::fixed(d.metric_total(d.metrics.find(name)), 2)});
  }
  std::printf("%s", dt.render().c_str());
  bench::note(
      "\nShape check (paper Section 5): on the homogeneous cluster the\n"
      "barrier waiting inside ReadVelFieldFromTrace() collapses and the\n"
      "cgiteration() receive waits disappear, while the Late Sender on\n"
      "the steering path *increases* — Trace now mostly waits for\n"
      "Partrace. Grid patterns vanish entirely (one metahost).");
  report.write();
  return 0;
}
