// Figure 6 + Table 3 (Experiment 1) — the three-metahost MetaTrace run:
// full pipeline (skewed clocks, partial archives, hierarchical sync,
// parallel analysis) and the three-panel report the paper screenshots.
#include <cstdio>
#include <filesystem>

#include "analysis/analyzer.hpp"
#include "archive/archive.hpp"
#include "clocksync/correction.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "report/cubexml.hpp"
#include "report/render.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

using namespace metascope;

int main() {
  bench::banner("Figure 6 / Table 3 Experiment 1",
                "MetaTrace on three metahosts (VIOLA)");
  bench::note(
      "Table 3, Experiment 1 configuration:\n"
      "  Partrace: FZJ XD1, 8 nodes x 2 processes/node (ranks 16..31)\n"
      "  Trace:    FH-BRS, 2 nodes x 4 processes/node (ranks 0..7)\n"
      "            CAESAR, 4 nodes x 2 processes/node (ranks 8..15)\n");

  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  auto data = workloads::run_experiment(topo, prog, cfg);

  // Partial archives on three disjoint "file systems".
  const auto base =
      (std::filesystem::temp_directory_path() / "msc_bench_fig6").string();
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  const auto layout =
      archive::FileSystemLayout::per_metahost(base, topo.num_metahosts());
  const auto arch =
      archive::ExperimentArchive::create(topo, layout, "metatrace");
  arch.write_traces(topo, data.traces);

  auto tc = arch.read_traces();
  clocksync::synchronize(tc);
  const auto res = analysis::analyze_parallel(tc);
  const auto& ps = res.patterns;
  const double total = res.cube.total_time();

  TextTable t({"pattern (inclusive)", "paper [% total]", "measured [% total]"});
  t.add_row({"Grid Late Sender", "9.3 %",
             TextTable::percent(
                 res.cube.metric_inclusive_total(ps.grid_late_sender) /
                 total)});
  t.add_row({"Grid Wait at Barrier", "23.1 %",
             TextTable::percent(
                 res.cube.metric_inclusive_total(ps.grid_wait_barrier) /
                 total)});
  std::printf("%s\n", t.render().c_str());

  bench::BenchReport report("fig6_metatrace");
  report.set("total_time_s", Json(total));
  report.set("grid_late_sender_frac",
             Json(res.cube.metric_inclusive_total(ps.grid_late_sender) /
                  total));
  report.set("grid_wait_barrier_frac",
             Json(res.cube.metric_inclusive_total(ps.grid_wait_barrier) /
                  total));
  report.set("events", Json(res.stats.events));
  report.set("messages", Json(res.stats.messages));

  report::RenderOptions opts;
  opts.selected_metric = "Grid Late Sender";
  std::printf("%s\n", report::render_metric_tree(res.cube, opts).c_str());
  std::printf("--- Fig 6(a): Grid Late Sender ---\n%s\n%s\n",
              report::render_call_tree(res.cube, ps.grid_late_sender, opts)
                  .c_str(),
              report::render_system_tree(res.cube, ps.grid_late_sender,
                                         CallPathId{}, opts)
                  .c_str());
  std::printf("--- Fig 6(b): Grid Wait at Barrier ---\n%s\n%s\n",
              report::render_call_tree(res.cube, ps.grid_wait_barrier, opts)
                  .c_str(),
              report::render_system_tree(res.cube, ps.grid_wait_barrier,
                                         CallPathId{}, opts)
                  .c_str());

  report::save_cube(base + "/fig6.cubex", res.cube);
  bench::note(
      "Shape check: Grid Late Sender concentrated in cgiteration() with\n"
      "most waiting on the faster FH-BRS cluster; Grid Wait at Barrier\n"
      "concentrated in ReadVelFieldFromTrace() on the FZJ XD1 — matching\n"
      "the paper's screenshots. Severity cube written to " +
      base + "/fig6.cubex");
  std::filesystem::remove_all(base);
  report.write();
  return 0;
}
