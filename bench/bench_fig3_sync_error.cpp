// Figure 3 — flat vs hierarchical synchronization (ablation): the
// ground-truth pairwise synchronization error inside and across
// metahosts, swept over the external-link latency. The flat scheme's
// intra-metahost error scales with the WAN latency (it derives internal
// offsets from two WAN measurements); the hierarchical scheme's does not.
#include <cstdio>

#include "clocksync/correction.hpp"
#include "clocksync/error_analysis.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "simnet/presets.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/experiment.hpp"

using namespace metascope;

namespace {

struct Outcome {
  double intra_max_us;
  double inter_max_us;
};

Outcome measure(double wan_scale, tracing::SyncScheme scheme) {
  simnet::ViolaIds ids;
  auto topo = simnet::make_viola_experiment1(&ids);
  simnet::LinkSpec wan{microseconds(988.0) * wan_scale,
                       microseconds(3.86) * wan_scale, 1.25e9};
  wan.asymmetry = 0.08;
  topo.set_external_link(ids.caesar, ids.fh_brs, wan);
  topo.set_external_link(ids.caesar, ids.fzj, wan);
  topo.set_external_link(ids.fh_brs, ids.fzj, wan);

  workloads::ClockBenchConfig bc;
  bc.rounds = 100;
  const auto prog = workloads::build_clock_bench(topo.num_ranks(), bc);
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = scheme;
  auto data = workloads::run_experiment(topo, prog, cfg);
  const auto corr = clocksync::build_corrections(data.traces);
  const auto survey = clocksync::survey_errors(
      topo, data.clocks, corr, {TrueTime{0.1}, TrueTime{0.3}, TrueTime{0.6}});
  return {survey.intra_metahost_abs.max() * 1e6,
          survey.inter_metahost_abs.max() * 1e6};
}

}  // namespace

int main() {
  bench::banner("Figure 3 (ablation)",
                "flat vs hierarchical synchronization error vs WAN latency");
  bench::BenchReport report("fig3_sync_error");
  TextTable t({"WAN latency [us]", "flat intra-mh err [us]",
               "hier intra-mh err [us]", "flat inter-mh err [us]",
               "hier inter-mh err [us]"});
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const Outcome flat = measure(scale, tracing::SyncScheme::FlatTwo);
    const Outcome hier = measure(scale, tracing::SyncScheme::HierarchicalTwo);
    t.add_row({TextTable::fixed(988.0 * scale, 0),
               TextTable::fixed(flat.intra_max_us, 2),
               TextTable::fixed(hier.intra_max_us, 2),
               TextTable::fixed(flat.inter_max_us, 2),
               TextTable::fixed(hier.inter_max_us, 2)});
    report.add_row("sweep",
                   Json{Json::Object{}}
                       .set("wan_latency_us", Json(988.0 * scale))
                       .set("flat_intra_us", Json(flat.intra_max_us))
                       .set("hier_intra_us", Json(hier.intra_max_us))
                       .set("flat_inter_us", Json(flat.inter_max_us))
                       .set("hier_inter_us", Json(hier.inter_max_us)));
  }
  std::printf("%s", t.render().c_str());
  bench::note(
      "\nShape check: the flat scheme's intra-metahost error grows with\n"
      "the external latency and dwarfs the internal message latency\n"
      "(21.5-55 us); the hierarchical scheme keeps it microseconds-level,\n"
      "independent of the WAN (paper Figure 3 and Section 4). Inter-\n"
      "metahost errors are similar for both — they are bounded by the\n"
      "WAN measurement itself, and harmless relative to WAN latency.");
  report.write();
  return 0;
}
