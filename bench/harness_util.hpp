// Shared helpers for the per-table/figure benchmark harnesses. Each
// harness prints the corresponding paper artifact next to the values this
// reproduction measures; EXPERIMENTS.md captures the outputs.
#pragma once

#include <cstdio>
#include <string>

namespace metascope::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

}  // namespace metascope::bench
