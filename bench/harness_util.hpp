// Shared helpers for the per-table/figure benchmark harnesses. Each
// harness prints the corresponding paper artifact next to the values this
// reproduction measures; EXPERIMENTS.md captures the outputs.
//
// BenchReport additionally writes a machine-readable `BENCH_<name>.json`
// sidecar — the harness's headline numbers plus the full telemetry
// snapshot — so sweep scripts can diff runs without scraping stdout.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "common/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"

namespace metascope::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

/// Collects a harness's headline values and writes them as
/// `BENCH_<name>.json` in the working directory, with the telemetry
/// snapshot attached under "telemetry". Call write() once, at the end
/// of main, after all measured work.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    values_ = Json{Json::Object{}};
  }

  BenchReport& set(const std::string& key, Json v) {
    values_.set(key, std::move(v));
    return *this;
  }

  /// Appends a row to the named result table (an array of objects).
  BenchReport& add_row(const std::string& table, Json row) {
    if (!values_.has(table)) values_.set(table, Json{Json::Array{}});
    Json rows = values_.at(table);
    rows.push_back(std::move(row));
    values_.set(table, std::move(rows));
    return *this;
  }

  void write() const {
    Json doc{Json::Object{}};
    doc.set("bench", Json(name_));
    doc.set("values", values_);
    // Trace-format compression, whenever this run touched the archive
    // layer: encoded bytes written vs the resident size of the same
    // traces (archive.bytes_on_disk / archive.bytes_in_memory), plus
    // bytes pulled back in by reads. Ratio > 1 means the on-disk format
    // is smaller than memory.
    const auto on_disk =
        telemetry::counter("archive.bytes_on_disk").value();
    const auto in_memory =
        telemetry::counter("archive.bytes_in_memory").value();
    if (on_disk > 0 && in_memory > 0) {
      Json comp{Json::Object{}};
      comp.set("bytes_on_disk", Json(static_cast<std::size_t>(on_disk)));
      comp.set("bytes_in_memory", Json(static_cast<std::size_t>(in_memory)));
      comp.set("bytes_read",
               Json(static_cast<std::size_t>(
                   telemetry::counter("archive.read.bytes").value())));
      comp.set("memory_to_disk_ratio",
               Json(static_cast<double>(in_memory) /
                    static_cast<double>(on_disk)));
      doc.set("compression", std::move(comp));
    }
    doc.set("telemetry", telemetry::snapshot_json());
    const std::string path = "BENCH_" + name_ + ".json";
    save_json_file(path, doc);
    std::printf("\n[bench sidecar written to %s]\n", path.c_str());
  }

 private:
  std::string name_;
  Json values_;
};

}  // namespace metascope::bench
