// Shared helpers for the per-table/figure benchmark harnesses. Each
// harness prints the corresponding paper artifact next to the values this
// reproduction measures; EXPERIMENTS.md captures the outputs.
//
// BenchReport additionally writes a machine-readable `BENCH_<name>.json`
// sidecar — the harness's headline numbers plus the full telemetry
// snapshot — so sweep scripts can diff runs without scraping stdout.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "common/json.hpp"
#include "telemetry/snapshot.hpp"

namespace metascope::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

/// Collects a harness's headline values and writes them as
/// `BENCH_<name>.json` in the working directory, with the telemetry
/// snapshot attached under "telemetry". Call write() once, at the end
/// of main, after all measured work.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    values_ = Json{Json::Object{}};
  }

  BenchReport& set(const std::string& key, Json v) {
    values_.set(key, std::move(v));
    return *this;
  }

  /// Appends a row to the named result table (an array of objects).
  BenchReport& add_row(const std::string& table, Json row) {
    if (!values_.has(table)) values_.set(table, Json{Json::Array{}});
    Json rows = values_.at(table);
    rows.push_back(std::move(row));
    values_.set(table, std::move(rows));
    return *this;
  }

  void write() const {
    Json doc{Json::Object{}};
    doc.set("bench", Json(name_));
    doc.set("values", values_);
    doc.set("telemetry", telemetry::snapshot_json());
    const std::string path = "BENCH_" + name_ + ".json";
    save_json_file(path, doc);
    std::printf("\n[bench sidecar written to %s]\n", path.c_str());
  }

 private:
  std::string name_;
  Json values_;
};

}  // namespace metascope::bench
