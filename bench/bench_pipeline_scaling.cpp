// Pre-replay pipeline scaling: the whole path from raw traces to cube —
// archive write, archive read, clock synchronization + amortization,
// prepare, replay — fanned out per rank on the shared worker pool.
//
// Sweep: 64 / 256 / 1024 ranks x workers {1, 2, 4, 8}. workers=1 runs
// every stage inline (no pool threads at all), so the speedup column is
// parallel-total over inline-total at the same rank count. On hardware
// with >= 8 cores the target is >= 3x end-to-end at 1024 ranks / 8
// workers; on narrower machines the attainable speedup is capped by the
// core count, which the harness prints and records so runs are
// comparable. Correctness gate printed in every row: the final cube must
// be bit-identical (tolerance 0) to the serial analyzer's and to the
// workers=1 pipeline's.
//
// Usage: bench_pipeline_scaling [max_ranks]
//   max_ranks caps the sweep (CI smoke runs "bench_pipeline_scaling 64").
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <filesystem>
#include <string>
#include <thread>

#include "analysis/analyzer.hpp"
#include "analysis/prepare.hpp"
#include "archive/archive.hpp"
#include "clocksync/amortization.hpp"
#include "clocksync/correction.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "simmpi/program.hpp"
#include "simnet/topology.hpp"
#include "workloads/experiment.hpp"

using namespace metascope;

namespace {

/// Two metahosts joined by a WAN link, `per_side` single-CPU nodes each.
simnet::Topology two_site(int per_side) {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "SiteA";
  a.num_nodes = per_side;
  a.cpus_per_node = 1;
  a.speed_factor = 0.8;
  a.internal = simnet::LinkSpec{50e-6, 1e-6, 0.5e9};
  simnet::MetahostSpec b;
  b.name = "SiteB";
  b.num_nodes = per_side;
  b.cpus_per_node = 1;
  b.speed_factor = 1.0;
  b.internal = simnet::LinkSpec{21.5e-6, 0.8e-6, 1.4e9};
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  topo.set_external_link(ia, ib, simnet::LinkSpec{988e-6, 3.86e-6, 1.25e9});
  topo.place_block(ia, per_side, 1);
  topo.place_block(ib, per_side, 1);
  return topo;
}

/// Ring shifts + staggered collectives: per-rank event streams heavy
/// enough that every pipeline stage has real per-rank work.
simmpi::Program ring_program(int nranks, int steps) {
  simmpi::ProgramBuilder b(nranks);
  for (Rank r = 0; r < nranks; ++r) b.on(r).enter("main");
  for (int s = 0; s < steps; ++s) {
    for (Rank r = 0; r < nranks; ++r) {
      b.on(r).enter("ring").send((r + 1) % nranks, s, 2048.0);
      b.on(r).recv((r + nranks - 1) % nranks, s).exit();
    }
    for (Rank r = 0; r < nranks; ++r)
      b.on(r).compute(1e-4 * (r % 7)).barrier();
    for (Rank r = 0; r < nranks; ++r) b.on(r).allreduce(512.0);
  }
  for (Rank r = 0; r < nranks; ++r) b.on(r).exit();
  return b.take();
}

class StageTimer {
 public:
  double take_ms() {
    const auto now = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(now - last_).count();
    last_ = now;
    return ms;
  }

 private:
  std::chrono::steady_clock::time_point last_{
      std::chrono::steady_clock::now()};
};

/// Encoded bytes an archive occupies: every defs + trace file across the
/// partial archives (manifests excluded — identical in every format).
std::uintmax_t archive_bytes(const archive::ExperimentArchive& ar) {
  std::uintmax_t total = 0;
  for (const std::string& dir : ar.partial_dirs())
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.ends_with(".elg") || name.ends_with(".defs"))
        total += entry.file_size();
    }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  int max_ranks = 1024;
  if (argc > 1) max_ranks = std::atoi(argv[1]);
  bench::banner("Pipeline scaling",
                "archive I/O + sync + prepare + replay on the worker pool");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware concurrency: %u\n", hw);
  std::printf("rank cap: %d\n\n", max_ranks);

  bench::BenchReport report("pipeline_scaling");
  report.set("hardware_concurrency", Json(static_cast<int>(hw)));
  report.set("max_ranks", Json(max_ranks));

  const std::string base =
      (std::filesystem::temp_directory_path() / "msc_pipeline_scaling")
          .string();
  std::filesystem::remove_all(base);

  TextTable t({"ranks", "workers", "write", "read", "sync", "prepare",
               "replay", "total [ms]", "speedup", "cube ok"});
  for (int per_side : {32, 128, 512}) {
    const int ranks = 2 * per_side;
    if (ranks > max_ranks) continue;
    const auto topo = two_site(per_side);
    workloads::ExperimentConfig cfg;
    cfg.measurement.scheme = tracing::SyncScheme::HierarchicalTwo;
    const auto data =
        workloads::run_experiment(topo, ring_program(ranks, 3), cfg);

    // Serial reference cube: one pipeline run entirely single-threaded
    // through the same stages.
    report::Cube ref_cube;
    {
      auto tc = data.traces;
      clocksync::synchronize(tc, 1);
      clocksync::AmortizationConfig acfg;
      acfg.max_workers = 1;
      clocksync::amortize_violations(tc, acfg);
      ref_cube = analysis::analyze_serial(tc).cube;
    }

    double total_w1 = 0.0;
    for (const std::size_t w : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      const std::string dir = base + "/r" + std::to_string(ranks) + "_w" +
                              std::to_string(w);
      const auto layout =
          archive::FileSystemLayout::per_metahost(dir, topo.num_metahosts());
      const auto ar =
          archive::ExperimentArchive::create(topo, layout, "pipeline");

      StageTimer timer;
      ar.write_traces(topo, data.traces, w);
      const double write_ms = timer.take_ms();
      auto tc = ar.read_traces(w);
      const double read_ms = timer.take_ms();
      clocksync::synchronize(tc, w);
      clocksync::AmortizationConfig acfg;
      acfg.max_workers = w;
      clocksync::amortize_violations(tc, acfg);
      const double sync_ms = timer.take_ms();
      // prepare is also timed inside analyze_parallel; the standalone
      // call isolates the stage for the table. Its result feeds the
      // replay via the analyzer, which re-prepares — excluded from the
      // total so end-to-end counts each stage once.
      const auto prep = analysis::prepare(tc, w);
      const double prepare_ms = timer.take_ms();
      analysis::ReplayOptions opts;
      opts.max_workers = w;
      timer.take_ms();
      const auto res = analysis::analyze_parallel(tc, opts);
      const double replay_ms = timer.take_ms();

      const double total_ms = write_ms + read_ms + sync_ms + replay_ms;
      if (w == 1) total_w1 = total_ms;
      const double speedup = total_w1 / total_ms;
      const bool cube_ok = ref_cube.approx_equal(res.cube, 0.0);
      t.add_row({std::to_string(ranks), std::to_string(w),
                 TextTable::fixed(write_ms, 1), TextTable::fixed(read_ms, 1),
                 TextTable::fixed(sync_ms, 1),
                 TextTable::fixed(prepare_ms, 1),
                 TextTable::fixed(replay_ms, 1),
                 TextTable::fixed(total_ms, 1), TextTable::fixed(speedup, 2),
                 cube_ok ? "yes" : "NO"});
      report.add_row(
          "scaling",
          Json{Json::Object{}}
              .set("ranks", Json(ranks))
              .set("workers", Json(static_cast<int>(w)))
              .set("write_ms", Json(write_ms))
              .set("read_ms", Json(read_ms))
              .set("sync_ms", Json(sync_ms))
              .set("prepare_ms", Json(prepare_ms))
              .set("replay_ms", Json(replay_ms))
              .set("total_ms", Json(total_ms))
              .set("speedup_vs_1_worker", Json(speedup))
              .set("cube_matches_serial", Json(cube_ok)));
      (void)prep;
    }

    // ---- trace-format comparison: same traces written as v2 and v3 ----
    // One pass per format (single worker — this isolates the encode +
    // byte-volume effect from thread scaling): archive size on disk,
    // write + read wall, and the severity cube after the full pipeline,
    // which must be bit-identical across formats.
    struct FormatRun {
      std::uintmax_t bytes{0};
      double write_ms{0.0};
      double read_ms{0.0};
      report::Cube cube;
    };
    FormatRun runs[2];
    const std::uint32_t versions[2] = {2, 3};
    for (int fi = 0; fi < 2; ++fi) {
      const std::string dir =
          base + "/fmt_r" + std::to_string(ranks) + "_v" +
          std::to_string(versions[fi]);
      const auto layout =
          archive::FileSystemLayout::per_metahost(dir, topo.num_metahosts());
      const auto ar =
          archive::ExperimentArchive::create(topo, layout, "pipeline");
      archive::WriteOptions wopts;
      wopts.max_workers = 1;
      wopts.format_version = versions[fi];
      StageTimer timer;
      ar.write_traces(topo, data.traces, wopts);
      runs[fi].write_ms = timer.take_ms();
      archive::ReadOptions ropts;
      ropts.max_workers = 1;
      auto tc = ar.read_traces(ropts);
      runs[fi].read_ms = timer.take_ms();
      runs[fi].bytes = archive_bytes(ar);
      clocksync::synchronize(tc, 1);
      clocksync::AmortizationConfig acfg;
      acfg.max_workers = 1;
      clocksync::amortize_violations(tc, acfg);
      runs[fi].cube = analysis::analyze_serial(tc).cube;
    }
    const double shrink = static_cast<double>(runs[0].bytes) /
                          static_cast<double>(runs[1].bytes);
    const double rw_speedup =
        (runs[0].write_ms + runs[0].read_ms) /
        (runs[1].write_ms + runs[1].read_ms);
    const bool fmt_cube_ok = runs[0].cube.approx_equal(runs[1].cube, 0.0) &&
                             runs[0].cube.approx_equal(ref_cube, 0.0);
    std::printf(
        "format v2 vs v3 at %d ranks: %ju -> %ju bytes (%.2fx smaller), "
        "write+read %.1f -> %.1f ms (%.2fx), cubes identical: %s\n",
        ranks, runs[0].bytes, runs[1].bytes, shrink,
        runs[0].write_ms + runs[0].read_ms,
        runs[1].write_ms + runs[1].read_ms, rw_speedup,
        fmt_cube_ok ? "yes" : "NO");
    for (int fi = 0; fi < 2; ++fi)
      report.add_row("format",
                     Json{Json::Object{}}
                         .set("ranks", Json(ranks))
                         .set("format_version",
                              Json(static_cast<int>(versions[fi])))
                         .set("archive_bytes",
                              Json(static_cast<std::size_t>(runs[fi].bytes)))
                         .set("write_ms", Json(runs[fi].write_ms))
                         .set("read_ms", Json(runs[fi].read_ms)));
    report.add_row("format_summary",
                   Json{Json::Object{}}
                       .set("ranks", Json(ranks))
                       .set("v2_over_v3_bytes", Json(shrink))
                       .set("v2_over_v3_read_write_wall", Json(rw_speedup))
                       .set("cubes_identical", Json(fmt_cube_ok)));

    // ---- streamed vs materialized replay over the same v3 archive ----
    // The archive is written after synchronization (streaming replays
    // it as-is, so the timestamps must already be corrected), then
    // analyzed twice from disk: materialized (read_traces + parallel
    // replay, peak = the whole collection) and streamed (windowed
    // decode under a budget that forces single-event windows, peak =
    // resident windows only). Gates: cubes bit-identical always, and at
    // 1024 ranks the streamed peak must be >= 4x lower — both
    // hardware-independent. The wall target — within 15% of the
    // materialized replay — holds on >= 8 cores, where the windowed
    // decode fans out like the materialized one and only the light
    // prepare pass stays serial; on narrower machines the streamed
    // side's extra serial decode work lands on the wall directly (like
    // the speedup target above, the attainable figure is capped by the
    // core count, which the sidecar records for comparability).
    {
      auto tcs = data.traces;
      clocksync::synchronize(tcs);
      clocksync::AmortizationConfig acfg;
      clocksync::amortize_violations(tcs, acfg);
      const std::string dir = base + "/stream_r" + std::to_string(ranks);
      const auto layout =
          archive::FileSystemLayout::per_metahost(dir, topo.num_metahosts());
      const auto ar =
          archive::ExperimentArchive::create(topo, layout, "pipeline");
      ar.write_traces(topo, tcs);

      // Both sides are timed best-of-kReps: a single sample at this
      // scale is mostly scheduler/page-cache noise, and the minimum is
      // the standard estimator for the actual cost of the work.
      constexpr int kReps = 3;
      StageTimer timer;
      double mat_ms = 0.0;
      std::optional<analysis::AnalysisResult> mat;
      for (int rep = 0; rep < kReps; ++rep) {
        timer.take_ms();
        const auto tcm = ar.read_traces();
        auto r = analysis::analyze_parallel(tcm);
        const double ms = timer.take_ms();
        if (rep == 0 || ms < mat_ms) mat_ms = ms;
        mat = std::move(r);
      }

      const auto src = ar.stream_source(archive::ReadOptions{});
      analysis::ReplayOptions sopts;
      sopts.memory_budget_bytes = static_cast<std::size_t>(ranks) * 96;
      double stream_ms = 0.0;
      std::optional<analysis::AnalysisResult> streamed;
      for (int rep = 0; rep < kReps; ++rep) {
        timer.take_ms();
        auto r = analysis::analyze_streaming(src, sopts);
        const double ms = timer.take_ms();
        if (rep == 0 || ms < stream_ms) stream_ms = ms;
        streamed = std::move(r);
      }

      const bool stream_cube_ok =
          mat->cube.approx_equal(streamed->cube, 0.0) &&
          ref_cube.approx_equal(streamed->cube, 0.0);
      const double reduction =
          static_cast<double>(mat->stats.trace_bytes_in_memory) /
          static_cast<double>(
              std::max<std::size_t>(streamed->stats.trace_bytes_in_memory, 1));
      const double overhead_pct = (stream_ms - mat_ms) / mat_ms * 100.0;
      std::printf(
          "streamed vs materialized at %d ranks: peak %zu -> %zu bytes "
          "(%.1fx lower), replay %.1f -> %.1f ms (%+.1f%%), cubes "
          "identical: %s\n",
          ranks, mat->stats.trace_bytes_in_memory,
          streamed->stats.trace_bytes_in_memory, reduction, mat_ms, stream_ms,
          overhead_pct, stream_cube_ok ? "yes" : "NO");
      report.add_row(
          "stream",
          Json{Json::Object{}}
              .set("ranks", Json(ranks))
              .set("memory_budget_bytes",
                   Json(sopts.memory_budget_bytes))
              .set("stream_peak_resident_bytes",
                   Json(streamed->stats.trace_bytes_in_memory))
              .set("materialized_peak_resident_bytes",
                   Json(mat->stats.trace_bytes_in_memory))
              .set("peak_reduction_factor", Json(reduction))
              .set("materialized_ms", Json(mat_ms))
              .set("stream_ms", Json(stream_ms))
              .set("stream_overhead_pct", Json(overhead_pct))
              .set("wall_within_15pct", Json(overhead_pct <= 15.0))
              .set("cubes_identical", Json(stream_cube_ok)));
    }
  }
  std::printf("%s", t.render().c_str());
  std::filesystem::remove_all(base);

  bench::note(
      "\nShape check: every stage column shrinks as workers grow until the\n"
      "machine runs out of cores (speedup saturates near min(workers,\n"
      "hardware concurrency)). Target on >= 8 cores: >= 3x total at 1024\n"
      "ranks / 8 workers. 'cube ok' must read 'yes' in every row — the\n"
      "per-rank fan-out writes disjoint slots, so the cube is bit-identical\n"
      "to the fully serial pipeline at any worker count.\n"
      "Streaming: peak resident bytes must be >= 4x below materialized at\n"
      "1024 ranks with bit-identical cubes on any machine; the wall target\n"
      "(within 15% of materialized) applies on >= 8 cores, where the\n"
      "windowed decode fans out and only the light prepare pass is serial.");
  report.write();
  return 0;
}
