// Table 2 — Number of clock-condition violations recognized by the
// parallel analyzer, for the three synchronization schemes, over the
// short-message pair benchmark on the three-metahost VIOLA setup.
#include <cstdio>

#include "clocksync/clock_condition.hpp"
#include "clocksync/correction.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "simnet/presets.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/experiment.hpp"

using namespace metascope;

int main() {
  bench::banner("Table 2",
                "clock-condition violations by synchronization scheme");
  const auto topo = simnet::make_viola_experiment1();

  workloads::ClockBenchConfig bc;
  bc.rounds = 2500;
  bc.pad_work = 0.04;  // ~100 s virtual run: drift has room to act
  const auto prog = workloads::build_clock_bench(topo.num_ranks(), bc);

  struct Row {
    tracing::SyncScheme scheme;
    const char* label;
    long paper;
  };
  const Row rows[] = {
      {tracing::SyncScheme::FlatSingle, "single flat offset", 7560},
      {tracing::SyncScheme::FlatTwo, "two flat offsets", 2179},
      {tracing::SyncScheme::HierarchicalTwo, "two hierarchical offsets", 0},
  };

  bench::BenchReport report("table2_violations");
  TextTable t({"measurement", "paper violations", "measured violations",
               "messages"});
  for (const Row& row : rows) {
    workloads::ExperimentConfig cfg;
    cfg.measurement.scheme = row.scheme;
    auto data = workloads::run_experiment(topo, prog, cfg);
    clocksync::synchronize(data.traces);
    const auto rep = clocksync::check_clock_condition(data.traces);
    t.add_row({row.label, std::to_string(row.paper),
               std::to_string(rep.violations),
               std::to_string(rep.messages)});
    report.add_row("violations",
                   Json{Json::Object{}}
                       .set("scheme", Json(row.label))
                       .set("paper_violations", Json(row.paper))
                       .set("measured_violations", Json(rep.violations))
                       .set("messages", Json(rep.messages)));
  }
  std::printf("%s", t.render().c_str());
  bench::note(
      "\nShape check: single-flat >> two-flat >> hierarchical == 0. The\n"
      "single flat offset cannot compensate drift; both flat schemes\n"
      "inherit the WAN route-asymmetry bias per process, which breaks the\n"
      "*relative* offsets of processes inside the same metahost; the\n"
      "hierarchical scheme shares one inter-metahost measurement per\n"
      "metahost, so intra-metahost offsets stay exact (paper Section 4).");
  report.write();
  return 0;
}
