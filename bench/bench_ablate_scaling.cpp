// Ablation A3 — analyzer scalability: events processed and analysis time
// as the process count grows (the SCALASCA-lineage claim that replay
// analysis scales with the machine). On this single-core host the
// parallel analyzer cannot show real speedup; the point of record is
// that per-event cost stays flat while the trace volume grows linearly
// with ranks, and that replay traffic stays a small constant per event.
#include <chrono>
#include <cstdio>

#include "analysis/analyzer.hpp"
#include "clocksync/correction.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "simnet/topology.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

using namespace metascope;

namespace {

simnet::Topology scaled_viola(int ranks_per_side) {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "TraceHost";
  a.num_nodes = ranks_per_side;
  a.cpus_per_node = 1;
  a.speed_factor = 0.5;
  a.internal = simnet::LinkSpec{50e-6, 1e-6, 0.5e9};
  simnet::MetahostSpec b;
  b.name = "PartraceHost";
  b.num_nodes = ranks_per_side;
  b.cpus_per_node = 1;
  b.speed_factor = 1.0;
  b.internal = simnet::LinkSpec{21.5e-6, 0.8e-6, 1.4e9};
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  simnet::LinkSpec wan{988e-6, 3.86e-6, 1.25e9};
  wan.asymmetry = 0.08;
  topo.set_external_link(ia, ib, wan);
  topo.place_block(ia, ranks_per_side, 1);
  topo.place_block(ib, ranks_per_side, 1);
  return topo;
}

}  // namespace

int main() {
  bench::banner("Ablation A3", "analysis cost vs process count");
  bench::BenchReport report("ablate_scaling");
  TextTable t({"ranks", "events", "engine [ms]", "serial [ms]",
               "parallel [ms]", "serial us/event", "replay B/event"});
  for (int per_side : {4, 8, 16, 32, 64}) {
    const auto topo = scaled_viola(per_side);
    workloads::MetaTraceConfig mt;
    mt.trace_ranks = per_side;
    mt.partrace_ranks = per_side;
    mt.dims[0] = per_side;
    mt.dims[1] = 1;
    mt.dims[2] = 1;
    mt.coupling_steps = 3;
    const auto prog = workloads::build_metatrace(mt);

    const auto t0 = std::chrono::steady_clock::now();
    workloads::ExperimentConfig cfg;
    auto data = workloads::run_experiment(topo, prog, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    clocksync::synchronize(data.traces);
    const auto t2 = std::chrono::steady_clock::now();
    const auto s = analysis::analyze_serial(data.traces);
    const auto t3 = std::chrono::steady_clock::now();
    const auto p = analysis::analyze_parallel(data.traces);
    const auto t4 = std::chrono::steady_clock::now();

    const auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    const auto events = static_cast<double>(s.stats.events);
    t.add_row({std::to_string(topo.num_ranks()),
               std::to_string(s.stats.events),
               TextTable::fixed(ms(t0, t1), 1),
               TextTable::fixed(ms(t2, t3), 1),
               TextTable::fixed(ms(t3, t4), 1),
               TextTable::fixed(ms(t2, t3) * 1000.0 / events, 3),
               TextTable::fixed(
                   static_cast<double>(p.stats.replay_bytes) / events, 1)});
    report.add_row(
        "scaling",
        Json{Json::Object{}}
            .set("ranks", Json(topo.num_ranks()))
            .set("events", Json(s.stats.events))
            .set("engine_ms", Json(ms(t0, t1)))
            .set("serial_ms", Json(ms(t2, t3)))
            .set("parallel_ms", Json(ms(t3, t4)))
            .set("serial_us_per_event", Json(ms(t2, t3) * 1000.0 / events))
            .set("replay_bytes_per_event",
                 Json(static_cast<double>(p.stats.replay_bytes) / events)));
  }
  std::printf("%s", t.render().c_str());
  bench::note(
      "\nShape check: per-event serial cost stays roughly flat while the\n"
      "event count grows with ranks; replay bytes per event stay a small\n"
      "constant. On a real metacomputer the parallel analyzer divides the\n"
      "event work across all CPUs of the run itself (paper Section 3).");
  report.write();
  return 0;
}
