// Ablation A1 — serial (KOJAK-style) vs parallel (SCALASCA-style replay)
// analysis: identical cubes; replay data volume vs total trace volume
// (the paper's "avoids costly copying of trace data between metahosts"),
// and wall-clock on this host.
#include <chrono>
#include <cstdio>

#include "analysis/analyzer.hpp"
#include "clocksync/correction.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

using namespace metascope;

int main() {
  bench::banner("Ablation A1", "serial vs parallel trace analysis");

  bench::BenchReport report("ablate_analyzer");
  TextTable t({"coupling steps", "events", "trace mem bytes", "replay bytes",
               "replay/trace", "serial [ms]", "parallel [ms]",
               "cubes equal"});
  for (int steps : {2, 4, 8}) {
    workloads::MetaTraceConfig mt;
    mt.coupling_steps = steps;
    const auto topo = simnet::make_viola_experiment1();
    const auto prog = workloads::build_metatrace(mt);
    workloads::ExperimentConfig cfg;
    auto data = workloads::run_experiment(topo, prog, cfg);
    clocksync::synchronize(data.traces);

    const auto t0 = std::chrono::steady_clock::now();
    const auto s = analysis::analyze_serial(data.traces);
    const auto t1 = std::chrono::steady_clock::now();
    const auto p = analysis::analyze_parallel(data.traces);
    const auto t2 = std::chrono::steady_clock::now();

    const double serial_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double parallel_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    t.add_row({std::to_string(steps), std::to_string(p.stats.events),
               std::to_string(p.stats.trace_bytes_in_memory),
               std::to_string(p.stats.replay_bytes),
               TextTable::percent(
                   static_cast<double>(p.stats.replay_bytes) /
                   static_cast<double>(p.stats.trace_bytes_in_memory)),
               TextTable::fixed(serial_ms, 1),
               TextTable::fixed(parallel_ms, 1),
               s.cube.approx_equal(p.cube, 1e-12) ? "yes" : "NO"});
    report.add_row("ablation",
                   Json{Json::Object{}}
                       .set("coupling_steps", Json(steps))
                       .set("events", Json(p.stats.events))
                       .set("trace_bytes_in_memory",
                            Json(p.stats.trace_bytes_in_memory))
                       .set("replay_bytes", Json(p.stats.replay_bytes))
                       .set("serial_ms", Json(serial_ms))
                       .set("parallel_ms", Json(parallel_ms))
                       .set("cubes_equal",
                            Json(s.cube.approx_equal(p.cube, 1e-12))));
  }
  std::printf("%s", t.render().c_str());
  bench::note(
      "\nShape check: the replay exchanges a fraction of the trace volume\n"
      "— each analysis process reads only its local trace file, so no\n"
      "shared file system and no bulk trace copying between metahosts is\n"
      "needed (paper Sections 3-4). Parallel wall-clock on this 1-core\n"
      "host reflects thread overhead, not the metacomputer speedup.");
  report.write();
  return 0;
}
