// Microbenchmarks (google-benchmark): hot paths of the toolchain —
// engine execution, clock stamping, trace encode/decode, message
// matching, and both analyzers.
//
// Like every harness in bench/, this one writes a BENCH_micro.json
// sidecar — here via google-benchmark's own JSON reporter, injected as
// a default --benchmark_out unless the caller supplies their own.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "clocksync/correction.hpp"
#include "simnet/presets.hpp"
#include "tracing/epilog_io.hpp"
#include "tracing/matching.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace {

using namespace metascope;

const simnet::Topology& topo() {
  static const simnet::Topology t = simnet::make_viola_experiment1();
  return t;
}

const simmpi::Program& prog() {
  static const simmpi::Program p = workloads::build_metatrace();
  return p;
}

const tracing::TraceCollection& traces() {
  static const tracing::TraceCollection tc = [] {
    workloads::ExperimentConfig cfg;
    auto data = workloads::run_experiment(topo(), prog(), cfg);
    clocksync::synchronize(data.traces);
    return std::move(data.traces);
  }();
  return tc;
}

void BM_EngineExecute(benchmark::State& state) {
  for (auto _ : state) {
    const auto res = simmpi::execute(topo(), prog());
    benchmark::DoNotOptimize(res.stats.events);
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(res.stats.events), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_EngineExecute)->Unit(benchmark::kMillisecond);

void BM_MeasurementStamping(benchmark::State& state) {
  const auto exec = simmpi::execute(topo(), prog());
  Rng rng(1);
  const auto clocks =
      simnet::ClockSet::randomized(topo(), simnet::ClockCharacteristics{},
                                   rng);
  for (auto _ : state) {
    const auto tc = tracing::collect_traces(topo(), clocks, prog(), exec);
    benchmark::DoNotOptimize(tc.total_events());
  }
}
BENCHMARK(BM_MeasurementStamping)->Unit(benchmark::kMillisecond);

void BM_TraceEncode(benchmark::State& state) {
  const auto& tc = traces();
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes = 0;
    for (const auto& t : tc.ranks)
      bytes += tracing::encode_local_trace(t).size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_TraceEncode)->Unit(benchmark::kMillisecond);

void BM_TraceDecode(benchmark::State& state) {
  const auto& tc = traces();
  std::vector<std::vector<std::uint8_t>> blobs;
  for (const auto& t : tc.ranks)
    blobs.push_back(tracing::encode_local_trace(t));
  for (auto _ : state) {
    std::size_t events = 0;
    for (const auto& b : blobs)
      events += tracing::decode_local_trace(b).events.size();
    benchmark::DoNotOptimize(events);
  }
}
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond);

void BM_MessageMatching(benchmark::State& state) {
  const auto& tc = traces();
  for (auto _ : state) {
    const auto pairs = tracing::match_messages(tc);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_MessageMatching)->Unit(benchmark::kMillisecond);

void BM_SerialAnalysis(benchmark::State& state) {
  const auto& tc = traces();
  for (auto _ : state) {
    const auto res = analysis::analyze_serial(tc);
    benchmark::DoNotOptimize(res.cube.total_time());
  }
}
BENCHMARK(BM_SerialAnalysis)->Unit(benchmark::kMillisecond);

void BM_ParallelAnalysis(benchmark::State& state) {
  const auto& tc = traces();
  for (auto _ : state) {
    const auto res = analysis::analyze_parallel(tc);
    benchmark::DoNotOptimize(res.cube.total_time());
  }
}
BENCHMARK(BM_ParallelAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to a machine-readable sidecar next to the console report,
  // matching the BENCH_<name>.json convention of the other harnesses.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool user_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) user_out = true;
  if (!user_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
