// Figure 4 — the metacomputing wait-state patterns, reconstructed
// exactly: each microworkload plants one pattern with a known magnitude;
// the analyzer must recover metric, magnitude, and grid classification.
#include <cstdio>

#include "analysis/analyzer.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "simnet/topology.hpp"
#include "workloads/experiment.hpp"
#include "workloads/microworkloads.hpp"

using namespace metascope;

namespace {

simnet::Topology cross_topo(int per_side) {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = per_side;
  a.cpus_per_node = 1;
  a.internal = simnet::LinkSpec{10e-6, 0.0, 1e9};
  simnet::MetahostSpec b = a;
  b.name = "B";
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  topo.set_external_link(ia, ib,
                         simnet::LinkSpec{1000e-6, 0.0, 1.25e9});
  topo.place_block(ia, per_side, 1);
  topo.place_block(ib, per_side, 1);
  return topo;
}

analysis::AnalysisResult analyze(const simnet::Topology& topo,
                                 const simmpi::Program& prog) {
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  return analysis::analyze_serial(data.traces);
}

}  // namespace

int main() {
  bench::banner("Figure 4",
                "pattern semantics: planted wait vs detected severity");
  bench::BenchReport report("fig4_patterns");
  TextTable t({"pattern", "planted wait [s]", "detected [s]", "metric hit"});
  auto emit = [&](const char* label, double planted, double detected,
                  const char* metric) {
    t.add_row({label, TextTable::fixed(planted, 3),
               TextTable::fixed(detected, 3), metric});
    report.add_row("patterns", Json{Json::Object{}}
                                   .set("pattern", Json(metric))
                                   .set("planted_s", Json(planted))
                                   .set("detected_s", Json(detected)));
  };

  {
    const auto res =
        analyze(cross_topo(1), workloads::late_sender_program(0.40));
    emit("Grid Late Sender (Fig 4a)", 0.400,
         res.cube.metric_inclusive_total(res.patterns.grid_late_sender),
         "Grid Late Sender");
  }
  {
    const auto res = analyze(cross_topo(1),
                             workloads::late_receiver_program(0.30, 1 << 20));
    emit("Grid Late Receiver", 0.300,
         res.cube.metric_inclusive_total(res.patterns.grid_late_receiver),
         "Grid Late Receiver");
  }
  {
    const auto res = analyze(
        cross_topo(2), workloads::wait_nxn_program({0.0, 0.1, 0.2, 0.5}));
    // Total = sum over ranks of (0.5 - delay) = 0.5+0.4+0.3+0.0.
    emit("Grid Wait at N x N (Fig 4b)", 1.200,
         res.cube.metric_inclusive_total(res.patterns.grid_wait_nxn),
         "Grid Wait at N x N");
  }
  {
    const auto res = analyze(
        cross_topo(2), workloads::wait_barrier_program({0.3, 0.0, 0.1, 0.2}));
    emit("Grid Wait at Barrier", 0.600,
         res.cube.metric_inclusive_total(res.patterns.grid_wait_barrier),
         "Grid Wait at Barrier");
  }
  {
    const auto res = analyze(
        cross_topo(2), workloads::early_reduce_program({0.0, 0.2, 0.5, 0.1}));
    emit("Grid Early Reduce", 0.500,
         res.cube.metric_inclusive_total(res.patterns.grid_early_reduce),
         "Grid Early Reduce");
  }
  {
    const auto res =
        analyze(cross_topo(2), workloads::late_broadcast_program(4, 0.35));
    emit("Grid Late Broadcast", 1.050,
         res.cube.metric_inclusive_total(res.patterns.grid_late_broadcast),
         "Grid Late Broadcast");
  }
  std::printf("%s", t.render().c_str());
  bench::note(
      "\nShape check: detected severities match the planted waits to\n"
      "within network latency, and every pattern lands in its *grid*\n"
      "variant because the communication crosses metahosts (paper Fig. 4\n"
      "and the 'Metacomputing patterns' discussion in Section 4).");
  report.write();
  return 0;
}
