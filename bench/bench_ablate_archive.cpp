// Ablation A2 — archive-creation protocol: the paper's hierarchical
// scheme (rank 0 + per-metahost local masters + one all-reduce) vs naive
// per-process creation, over growing process counts.
#include <cstdio>
#include <filesystem>

#include "archive/archive.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "simnet/topology.hpp"

using namespace metascope;

namespace {

simnet::Topology scaled_topo(int procs_per_metahost) {
  simnet::Topology topo;
  for (int m = 0; m < 3; ++m) {
    simnet::MetahostSpec spec;
    // snprintf instead of operator+: gcc 12 raises a spurious -Wrestrict
    // on the inlined string concatenation here.
    char name[16];
    std::snprintf(name, sizeof name, "M%d", m);
    spec.name = name;
    spec.num_nodes = procs_per_metahost;
    spec.cpus_per_node = 1;
    spec.internal = simnet::LinkSpec{20e-6, 0.0, 1e9};
    topo.add_metahost(spec);
  }
  for (int m = 0; m < 3; ++m)
    topo.place_block(MetahostId{m}, procs_per_metahost, 1);
  return topo;
}

}  // namespace

int main() {
  bench::banner("Ablation A2",
                "hierarchical vs naive archive creation protocol");
  const auto base =
      (std::filesystem::temp_directory_path() / "msc_bench_arch").string();

  bench::BenchReport report("ablate_archive");
  TextTable t({"processes", "hier attempts", "hier checks",
               "naive attempts", "collective ops (hier)"});
  for (int per : {4, 16, 64, 256}) {
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base);
    const auto topo = scaled_topo(per);
    const auto layout =
        archive::FileSystemLayout::per_metahost(base, topo.num_metahosts());
    archive::CreationStats hier;
    archive::ExperimentArchive::create(topo, layout, "h", &hier);
    archive::CreationStats naive;
    archive::ExperimentArchive::create_naive(topo, layout, "n", &naive);
    t.add_row({std::to_string(topo.num_ranks()),
               std::to_string(hier.create_attempts),
               std::to_string(hier.visibility_checks),
               std::to_string(naive.create_attempts),
               std::to_string(hier.broadcasts + hier.allreduces)});
    report.add_row("protocol",
                   Json{Json::Object{}}
                       .set("processes", Json(topo.num_ranks()))
                       .set("hier_attempts", Json(hier.create_attempts))
                       .set("naive_attempts", Json(naive.create_attempts)));
  }
  std::printf("%s", t.render().c_str());
  std::filesystem::remove_all(base);
  bench::note(
      "\nShape check: creation attempts stay at the metahost count for\n"
      "the hierarchical protocol (plus one broadcast and one all-reduce,\n"
      "which scale logarithmically) while the naive scheme issues one\n"
      "metadata operation per process — the contention the paper's\n"
      "scheme avoids (Section 4, 'Runtime archive management').");
  report.write();
  return 0;
}
