// Replay-scheduler scaling: thread-per-rank vs a bounded worker pool.
//
// The old parallel analyzer spawned one OS thread per application rank;
// this bench reproduces that regime by pinning the pool size to the rank
// count, and compares it against the default pool (hardware
// concurrency) at 64 / 256 / 1024 ranks. The point of record: the
// bounded pool analyzes a 1024-rank trace without 1024 threads, with
// wall-clock that does not degrade under thread-spawn and
// context-switch pressure, and its cube stays bit-identical to the
// serial analyzer's.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/pattern_engine.hpp"
#include "analysis/prepare.hpp"
#include "analysis/replay_core.hpp"
#include "analysis/wait_rules.hpp"
#include "archive/archive.hpp"
#include "clocksync/correction.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "simmpi/program.hpp"
#include "simnet/topology.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "tracing/matching.hpp"
#include "workloads/experiment.hpp"

using namespace metascope;

namespace {

/// Two metahosts joined by a WAN link, `per_side` single-CPU nodes each.
simnet::Topology two_site(int per_side) {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "SiteA";
  a.num_nodes = per_side;
  a.cpus_per_node = 1;
  a.speed_factor = 0.8;
  a.internal = simnet::LinkSpec{50e-6, 1e-6, 0.5e9};
  simnet::MetahostSpec b;
  b.name = "SiteB";
  b.num_nodes = per_side;
  b.cpus_per_node = 1;
  b.speed_factor = 1.0;
  b.internal = simnet::LinkSpec{21.5e-6, 0.8e-6, 1.4e9};
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  topo.set_external_link(ia, ib, simnet::LinkSpec{988e-6, 3.86e-6, 1.25e9});
  topo.place_block(ia, per_side, 1);
  topo.place_block(ib, per_side, 1);
  return topo;
}

/// Ring shifts + staggered collectives — enough communication that the
/// replay suspends constantly when ranks outnumber workers.
simmpi::Program ring_program(int nranks, int steps) {
  simmpi::ProgramBuilder b(nranks);
  for (Rank r = 0; r < nranks; ++r) b.on(r).enter("main");
  for (int s = 0; s < steps; ++s) {
    for (Rank r = 0; r < nranks; ++r) {
      b.on(r).enter("ring").send((r + 1) % nranks, s, 2048.0);
      b.on(r).recv((r + nranks - 1) % nranks, s).exit();
    }
    for (Rank r = 0; r < nranks; ++r)
      b.on(r).compute(1e-4 * (r % 7)).barrier();
    for (Rank r = 0; r < nranks; ++r) b.on(r).allreduce(512.0);
  }
  for (Rank r = 0; r < nranks; ++r) b.on(r).exit();
  return b.take();
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main() {
  bench::banner("Replay scaling", "thread-per-rank vs bounded worker pool");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware concurrency: %u\n\n", hw);

  bench::BenchReport report("replay_scaling");
  report.set("hardware_concurrency", Json(static_cast<int>(hw)));

  TextTable t({"ranks", "events", "mode", "workers", "wall [ms]",
               "suspensions", "requeues", "steals", "cube==serial"});
  workloads::ExperimentData data1024;  // kept for the overhead section
  for (int per_side : {32, 128, 512}) {
    const int ranks = 2 * per_side;
    const auto topo = two_site(per_side);
    workloads::ExperimentConfig cfg;
    cfg.perfect_clocks = true;
    cfg.measurement.scheme = tracing::SyncScheme::None;
    auto data =
        workloads::run_experiment(topo, ring_program(ranks, 3), cfg);
    const auto& tc = data.traces;
    const auto serial = analysis::analyze_serial(tc);

    struct Mode {
      const char* name;
      std::size_t workers;
    };
    const Mode modes[] = {
        {"thread/rank", static_cast<std::size_t>(ranks)},
        {"pooled", static_cast<std::size_t>(hw)},
    };
    for (const Mode& m : modes) {
      analysis::ReplayOptions opts;
      opts.max_workers = m.workers;
      const auto t0 = std::chrono::steady_clock::now();
      const auto p = analysis::analyze_parallel(tc, opts);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall_ms = ms_between(t0, t1);
      t.add_row({std::to_string(ranks), std::to_string(p.stats.events),
                 m.name, std::to_string(p.stats.replay_workers),
                 TextTable::fixed(wall_ms, 1),
                 std::to_string(p.stats.replay_suspensions),
                 std::to_string(p.stats.replay_requeues),
                 std::to_string(p.stats.replay_steals),
                 serial.cube.approx_equal(p.cube, 0.0) ? "yes" : "NO"});
      report.add_row("scaling",
                     Json{Json::Object{}}
                         .set("ranks", Json(ranks))
                         .set("mode", Json(m.name))
                         .set("workers", Json(p.stats.replay_workers))
                         .set("wall_ms", Json(wall_ms))
                         .set("suspensions", Json(p.stats.replay_suspensions))
                         .set("cube_matches_serial",
                              Json(serial.cube.approx_equal(p.cube, 0.0))));
    }
    if (ranks == 1024) data1024 = std::move(data);
  }
  std::printf("%s", t.render().c_str());

  // --- Pattern-engine dispatch overhead at 1024 ranks ------------------
  // The engine routes every matched message and collective instance
  // through virtual detector callbacks where the pre-refactor layer
  // called the wait formulas directly. This times evaluation only —
  // records are collected once outside the loop, each rep gets a fresh
  // installed cube, and the timed region is the canonical-order sweep —
  // and gates the engine (legacy detector selection, the apples-to-apples
  // configuration) at <= 5% over the direct calls. The detector-count
  // rows show how dispatch cost scales with enabled patterns.
  bench::banner("Pattern-engine dispatch",
                "1024 ranks, evaluation only, best of 9");
  {
    const auto& tc = data1024.traces;
    const auto prep = analysis::prepare(tc, hw);
    const auto pairs = tracing::match_messages(tc);
    std::vector<analysis::P2pRecord> p2p;
    p2p.reserve(pairs.size());
    for (const auto& p : pairs)
      p2p.push_back(analysis::P2pRecord{
          analysis::make_side(prep, p.send.rank, p.send.index),
          analysis::make_side(prep, p.recv.rank, p.recv.index),
          p.recv.index});
    const auto colls = analysis::group_collectives(tc, prep);
    constexpr int kReps = 9;

    // Direct calls: the pre-engine hardwired loop, same canonical order.
    auto direct_ms = [&]() {
      double best = 1e300;
      for (int i = 0; i < kReps; ++i) {
        report::Cube cube;
        auto registry = analysis::PatternRegistry::standard();
        analysis::PatternEngine engine(registry, cube);
        const auto ps = engine.install(tc, prep);
        auto p2pc = p2p;
        auto collc = colls;
        std::vector<analysis::WaitHit> hits;
        const auto t0 = std::chrono::steady_clock::now();
        std::sort(p2pc.begin(), p2pc.end(),
                  [](const analysis::P2pRecord& a,
                     const analysis::P2pRecord& b) {
                    if (a.recv.rank != b.recv.rank)
                      return a.recv.rank < b.recv.rank;
                    return a.recv_index < b.recv_index;
                  });
        std::sort(collc.begin(), collc.end(),
                  [](const analysis::CollInstance& a,
                     const analysis::CollInstance& b) {
                    if (a.comm != b.comm) return a.comm < b.comm;
                    return a.seq < b.seq;
                  });
        for (const auto& r : p2pc) {
          hits.clear();
          analysis::p2p_hits(ps, tc.defs, prep.region_table, r.send, r.recv,
                             hits);
          for (const auto& h : hits) analysis::apply_hit(cube, h);
        }
        for (auto& inst : collc) {
          std::sort(inst.members.begin(), inst.members.end(),
                    [](const analysis::CollMember& a,
                       const analysis::CollMember& b) {
                      return a.rank < b.rank;
                    });
          hits.clear();
          analysis::collective_hits(
              ps, tc.defs, prep.region_table.kind(inst.region),
              tc.defs.comms[static_cast<std::size_t>(inst.comm)].members,
              inst.members, inst.root, hits);
          for (const auto& h : hits) analysis::apply_hit(cube, h);
        }
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, ms_between(t0, t1));
      }
      return best;
    };

    auto engine_ms = [&](const std::vector<std::string>& sel) {
      double best = 1e300;
      for (int i = 0; i < kReps; ++i) {
        report::Cube cube;
        auto registry = analysis::PatternRegistry::standard();
        registry.select(sel);
        analysis::PatternEngine engine(registry, cube);
        (void)engine.install(tc, prep);
        auto p2pc = p2p;
        auto collc = colls;
        analysis::AnalysisStats stats;
        const auto t0 = std::chrono::steady_clock::now();
        engine.dispatch(std::move(p2pc), std::move(collc), stats);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, ms_between(t0, t1));
      }
      return best;
    };

    const std::vector<std::string> legacy = {
        "late_sender",    "late_receiver", "early_reduce",
        "late_broadcast", "wait_nxn",      "wait_barrier"};
    const std::vector<std::string> p2p_only = {"late_sender",
                                               "late_receiver"};
    const double direct = direct_ms();
    const double eng_legacy = engine_ms(legacy);
    const double eng_all = engine_ms({});
    const double eng_p2p = engine_ms(p2p_only);

    TextTable dt({"configuration", "detectors", "wall [ms]", "vs direct"});
    auto pct = [&](double v) {
      return TextTable::fixed((v - direct) / direct * 100.0, 1) + " %";
    };
    dt.add_row({"direct calls (pre-engine)", "6", TextTable::fixed(direct, 2),
                "--"});
    dt.add_row({"engine, legacy selection", "6",
                TextTable::fixed(eng_legacy, 2), pct(eng_legacy)});
    dt.add_row({"engine, all patterns", "8", TextTable::fixed(eng_all, 2),
                pct(eng_all)});
    dt.add_row({"engine, p2p only", "2", TextTable::fixed(eng_p2p, 2),
                pct(eng_p2p)});
    std::printf("%s", dt.render().c_str());
    const double dispatch_overhead_pct =
        (eng_legacy - direct) / direct * 100.0;
    std::printf("dispatch overhead (legacy selection): %+.2f %%  "
                "(budget: <= 5%%) %s\n",
                dispatch_overhead_pct,
                dispatch_overhead_pct <= 5.0 ? "[ok]" : "[OVER BUDGET]");
    report.set("dispatch_direct_ms", Json(direct));
    report.set("dispatch_engine_legacy_ms", Json(eng_legacy));
    report.set("dispatch_engine_all_ms", Json(eng_all));
    report.set("dispatch_engine_p2p_only_ms", Json(eng_p2p));
    report.set("dispatch_overhead_pct", Json(dispatch_overhead_pct));
    report.set("dispatch_overhead_budget_pct", Json(5.0));
  }

  // --- Telemetry overhead at 1024 ranks --------------------------------
  // The registry's whole design brief is that instrumentation must not
  // slow the pipeline down; this measures it directly. The timed body
  // covers every instrumented stage — archive write + read, clock
  // synchronization, prepare, and the pooled replay — so the <= 5%
  // budget gates the archive/sync/prepare spans and the per-stage
  // parallelism metrics, not just the replay counters. Same trace, same
  // pooled configuration, best-of-51 with recording on vs off; the trace
  // copy each rep consumes is made outside the timed region.
  bench::banner("Telemetry overhead",
                "1024 ranks, full pipeline (archive+sync+prepare+replay)");
  analysis::ReplayOptions opts;
  opts.max_workers = hw;
  const auto topo1024 = two_site(512);
  // The pass writes and re-reads 1024 trace files; on a spinning or
  // shared disk the writeback stalls swamp the few-ms effect being
  // measured, so prefer a RAM-backed directory when the host has one.
  const std::filesystem::path ovbase =
      std::filesystem::is_directory("/dev/shm")
          ? std::filesystem::path("/dev/shm")
          : std::filesystem::temp_directory_path();
  const std::string ovdir = (ovbase / "msc_replay_overhead").string();
  std::filesystem::remove_all(ovdir);
  const auto ovlayout = archive::FileSystemLayout::per_metahost(
      ovdir, topo1024.num_metahosts());
  const auto ovarchive =
      archive::ExperimentArchive::create(topo1024, ovlayout, "overhead");
  auto one_pass = [&]() {
    auto tc = data1024.traces;  // untimed copy; synchronize mutates
    const auto t0 = std::chrono::steady_clock::now();
    ovarchive.write_traces(topo1024, tc, hw);
    auto tc2 = ovarchive.read_traces(hw);
    clocksync::synchronize(tc, hw);
    (void)analysis::prepare(tc, hw);
    (void)analysis::analyze_parallel(tc, opts);
    const auto t1 = std::chrono::steady_clock::now();
    (void)tc2;
    return ms_between(t0, t1);
  };
  // Three configurations: registry off, registry on (the default
  // build), and registry + flight recorder (the `msc_run --trace-out`
  // configuration, rings at default capacity). The effect being
  // measured is ~1 ms on a ~20 ms pass, while a shared host adds
  // stalls worth tens of ms (writeback, noisy neighbours) and drifts
  // its clock rate in multi-second phases — so the estimator is a
  // *paired* design: one untimed warm-up primes the page cache, every
  // round runs all three configurations back to back (same host phase,
  // order rotating so no configuration always sits in the slot the
  // host happens to throttle), each gate is computed per round from
  // adjacent passes, and the median over rounds discards the stalled
  // ones. The displayed columns are each configuration's floor
  // (best-of-N); the gates use the paired medians.
  telemetry::Recorder::instance().configure(
      telemetry::Recorder::kDefaultRingCapacity);
  (void)one_pass();  // warm-up: prime the page cache, untimed
  constexpr int kRounds = 151;
  double off_ms = 1e300, on_ms = 1e300, rec_ms = 1e300;
  std::vector<double> reg_ratio, rec_ratio;  // per-round paired gates
  for (int rep = 0; rep < kRounds; ++rep) {
    double round_ms[3];  // [0]=off  [1]=registry  [2]=registry+recorder
    for (int slot = 0; slot < 3; ++slot) {
      const int cfg = (rep + slot) % 3;
      telemetry::set_enabled(cfg != 0);
      telemetry::Recorder::instance().set_enabled(cfg == 2);
      round_ms[cfg] = one_pass();
      telemetry::Recorder::instance().set_enabled(false);
      telemetry::set_enabled(true);
    }
    off_ms = std::min(off_ms, round_ms[0]);
    on_ms = std::min(on_ms, round_ms[1]);
    rec_ms = std::min(rec_ms, round_ms[2]);
    reg_ratio.push_back(round_ms[1] / round_ms[0]);
    rec_ratio.push_back(round_ms[2] / round_ms[1]);
  }
  // Context for the overhead number: how many events one full pass
  // actually records (huge rings so nothing wraps).
  telemetry::Recorder::instance().configure(std::size_t{1} << 20);
  telemetry::Recorder::instance().set_enabled(true);
  (void)one_pass();
  telemetry::Recorder::instance().set_enabled(false);
  std::uint64_t events_per_pass = 0;
  for (const auto& log : telemetry::Recorder::instance().snapshot()) {
    events_per_pass += log.dropped + log.events.size();
  }
  telemetry::Recorder::instance().configure(
      telemetry::Recorder::kDefaultRingCapacity);
  std::filesystem::remove_all(ovdir);
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
  };
  const double overhead_pct = (median(reg_ratio) - 1.0) * 100.0;
  const double recorder_overhead_pct = (median(rec_ratio) - 1.0) * 100.0;
  std::printf("telemetry off         : %8.1f ms (best of 151)\n", off_ms);
  std::printf("telemetry on          : %8.1f ms (best of 151)\n", on_ms);
  std::printf("telemetry + recorder  : %8.1f ms (best of 151)\n", rec_ms);
  std::printf("recorder events/pass  : %8llu\n",
              static_cast<unsigned long long>(events_per_pass));
  std::printf(
      "registry overhead     : %+7.2f %%  (paired median of 151 rounds, budget: <= 5%%) "
      "%s\n",
      overhead_pct, overhead_pct <= 5.0 ? "[ok]" : "[OVER BUDGET]");
  std::printf(
      "recorder overhead     : %+7.2f %%  (paired median of 151 rounds, budget: <= 5%%) "
      "%s\n",
      recorder_overhead_pct,
      recorder_overhead_pct <= 5.0 ? "[ok]" : "[OVER BUDGET]");
  report.set("telemetry_on_ms", Json(on_ms));
  report.set("telemetry_off_ms", Json(off_ms));
  report.set("telemetry_overhead_pct", Json(overhead_pct));
  report.set("recorder_on_ms", Json(rec_ms));
  report.set("recorder_overhead_pct", Json(recorder_overhead_pct));
  report.set("recorder_overhead_budget_pct", Json(5.0));
  report.set("recorder_events_per_pass",
             Json(static_cast<double>(events_per_pass)));
  bench::note(
      "\nShape check: the pooled mode matches or beats thread-per-rank\n"
      "wall-clock while holding the worker count at hardware concurrency;\n"
      "at 1024 ranks thread-per-rank pays for a thousand thread spawns and\n"
      "the ensuing context-switch storm. cube==serial must read 'yes' in\n"
      "every row: canonical-order accumulation makes the pooled replay\n"
      "bit-identical to the serial analyzer regardless of schedule.");
  report.write();
  return 0;
}
