// Table 1 — Latencies of the internal and external networks in VIOLA,
// measured with the simulated MetaMPICH ping-pong. Also dumps the VIOLA
// topology (Figures 2/5).
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness_util.hpp"
#include "simmpi/pingpong.hpp"
#include "simnet/presets.hpp"

using namespace metascope;

int main() {
  bench::banner("Table 1 / Figures 2+5",
                "network latencies of the VIOLA testbed");
  simnet::ViolaIds ids;
  const auto topo = simnet::make_viola_experiment1(&ids);
  std::printf("%s\n", topo.describe().c_str());

  Rng rng(2024);
  constexpr int kReps = 2000;

  struct Row {
    const char* label;
    Rank a;
    Rank b;
    double paper_mean;
    double paper_std;
  };
  // Ranks: 0..7 FH-BRS, 8..15 CAESAR, 16..31 FZJ. Pick different-node
  // pairs for the internal measurements.
  const Row rows[] = {
      {"FZJ - FH-BRS (external network)", 16, 0, 9.88e-4, 3.86e-6},
      {"FZJ (internal network)", 16, 18, 2.15e-5, 8.14e-7},
      {"FH-BRS (internal network)", 0, 4, 4.44e-5, 3.60e-7},
  };

  bench::BenchReport report("table1_latency");
  TextTable t({"link", "paper mean [s]", "paper std [s]", "measured mean [s]",
               "measured std [s]"});
  for (const Row& row : rows) {
    const auto res = simmpi::ping_pong(topo, row.a, row.b, kReps, rng);
    t.add_row({row.label, TextTable::sci(row.paper_mean),
               TextTable::sci(row.paper_std),
               TextTable::sci(res.one_way.mean()),
               TextTable::sci(res.one_way.stddev())});
    report.add_row("latencies",
                   Json{Json::Object{}}
                       .set("link", Json(row.label))
                       .set("paper_mean_s", Json(row.paper_mean))
                       .set("paper_std_s", Json(row.paper_std))
                       .set("measured_mean_s", Json(res.one_way.mean()))
                       .set("measured_std_s", Json(res.one_way.stddev())));
  }
  std::printf("%s", t.render().c_str());
  bench::note(
      "\nShape check: external latency ~2 orders of magnitude above the\n"
      "internal ones; external jitter largest — offset measurements over\n"
      "the WAN are the least precise (the paper's premise in Section 5).");
  report.write();
  return 0;
}
