// Figure 1 — clocks with both initial offset and different constant
// drifts: the divergence of node-local clocks from true time, and the
// residual after each correction scheme's model class.
#include <cstdio>

#include "common/table.hpp"
#include "harness_util.hpp"
#include "simnet/clock.hpp"

using namespace metascope;

int main() {
  bench::banner("Figure 1", "clock offset and drift over time");
  // Three representative node clocks.
  const simnet::ClockModel clocks[] = {
      {0.0, 0.0},        // the reference clock
      {0.25, 2e-5},      // ahead, drifting further ahead
      {-0.10, -1.5e-5},  // behind, drifting further behind
  };
  bench::BenchReport report("fig1_clockdrift");
  TextTable t({"true time [s]", "clock A [s]", "clock B [s]", "clock C [s]",
               "B - A [us]", "C - A [us]"});
  for (double s : {0.0, 10.0, 100.0, 1000.0}) {
    const TrueTime tt{s};
    const double a = clocks[0].at(tt).s;
    const double b = clocks[1].at(tt).s;
    const double c = clocks[2].at(tt).s;
    t.add_row({TextTable::fixed(s, 0), TextTable::fixed(a, 6),
               TextTable::fixed(b, 6), TextTable::fixed(c, 6),
               TextTable::fixed((b - a) * 1e6, 1),
               TextTable::fixed((c - a) * 1e6, 1)});
    report.add_row("drift",
                   Json{Json::Object{}}
                       .set("true_time_s", Json(s))
                       .set("b_minus_a_us", Json((b - a) * 1e6))
                       .set("c_minus_a_us", Json((c - a) * 1e6)));
  }
  std::printf("%s", t.render().c_str());
  bench::note(
      "\nShape check: pairwise clock differences grow linearly in time\n"
      "(constant drift), so a single offset measurement goes stale while\n"
      "two measurements + linear interpolation stay accurate (Figure 1 and\n"
      "Section 3 of the paper).");
  report.write();
  return 0;
}
