file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_patterns.dir/test_analysis_patterns.cpp.o"
  "CMakeFiles/test_analysis_patterns.dir/test_analysis_patterns.cpp.o.d"
  "test_analysis_patterns"
  "test_analysis_patterns.pdb"
  "test_analysis_patterns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
