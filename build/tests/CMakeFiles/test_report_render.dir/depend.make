# Empty dependencies file for test_report_render.
# This may be replaced when dependencies are built.
