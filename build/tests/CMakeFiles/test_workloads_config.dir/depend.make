# Empty dependencies file for test_workloads_config.
# This may be replaced when dependencies are built.
