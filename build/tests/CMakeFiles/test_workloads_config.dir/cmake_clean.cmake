file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_config.dir/test_workloads_config.cpp.o"
  "CMakeFiles/test_workloads_config.dir/test_workloads_config.cpp.o.d"
  "test_workloads_config"
  "test_workloads_config.pdb"
  "test_workloads_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
