
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_simmpi_collectives.cpp" "tests/CMakeFiles/test_simmpi_collectives.dir/test_simmpi_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi_collectives.dir/test_simmpi_collectives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/metascope_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/metascope_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/metascope_report.dir/DependInfo.cmake"
  "/root/repo/build/src/archive/CMakeFiles/metascope_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/clocksync/CMakeFiles/metascope_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/tracing/CMakeFiles/metascope_tracing.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/metascope_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/metascope_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metascope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
