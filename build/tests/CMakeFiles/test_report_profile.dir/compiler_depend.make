# Empty compiler generated dependencies file for test_report_profile.
# This may be replaced when dependencies are built.
