file(REMOVE_RECURSE
  "CMakeFiles/test_report_profile.dir/test_report_profile.cpp.o"
  "CMakeFiles/test_report_profile.dir/test_report_profile.cpp.o.d"
  "test_report_profile"
  "test_report_profile.pdb"
  "test_report_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
