# Empty dependencies file for test_report_algebra.
# This may be replaced when dependencies are built.
