file(REMOVE_RECURSE
  "CMakeFiles/test_report_algebra.dir/test_report_algebra.cpp.o"
  "CMakeFiles/test_report_algebra.dir/test_report_algebra.cpp.o.d"
  "test_report_algebra"
  "test_report_algebra.pdb"
  "test_report_algebra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
