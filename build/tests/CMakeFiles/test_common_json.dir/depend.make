# Empty dependencies file for test_common_json.
# This may be replaced when dependencies are built.
