file(REMOVE_RECURSE
  "CMakeFiles/test_common_json.dir/test_common_json.cpp.o"
  "CMakeFiles/test_common_json.dir/test_common_json.cpp.o.d"
  "test_common_json"
  "test_common_json.pdb"
  "test_common_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
