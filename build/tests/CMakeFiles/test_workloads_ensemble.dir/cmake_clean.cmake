file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_ensemble.dir/test_workloads_ensemble.cpp.o"
  "CMakeFiles/test_workloads_ensemble.dir/test_workloads_ensemble.cpp.o.d"
  "test_workloads_ensemble"
  "test_workloads_ensemble.pdb"
  "test_workloads_ensemble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
