file(REMOVE_RECURSE
  "CMakeFiles/test_report_xml.dir/test_report_xml.cpp.o"
  "CMakeFiles/test_report_xml.dir/test_report_xml.cpp.o.d"
  "test_report_xml"
  "test_report_xml.pdb"
  "test_report_xml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
