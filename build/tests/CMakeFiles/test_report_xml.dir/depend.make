# Empty dependencies file for test_report_xml.
# This may be replaced when dependencies are built.
