# Empty dependencies file for test_common_binary_io.
# This may be replaced when dependencies are built.
