# Empty compiler generated dependencies file for test_simnet_topology.
# This may be replaced when dependencies are built.
