file(REMOVE_RECURSE
  "CMakeFiles/test_simnet_topology.dir/test_simnet_topology.cpp.o"
  "CMakeFiles/test_simnet_topology.dir/test_simnet_topology.cpp.o.d"
  "test_simnet_topology"
  "test_simnet_topology.pdb"
  "test_simnet_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
