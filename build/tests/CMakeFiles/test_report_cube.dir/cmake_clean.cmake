file(REMOVE_RECURSE
  "CMakeFiles/test_report_cube.dir/test_report_cube.cpp.o"
  "CMakeFiles/test_report_cube.dir/test_report_cube.cpp.o.d"
  "test_report_cube"
  "test_report_cube.pdb"
  "test_report_cube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
