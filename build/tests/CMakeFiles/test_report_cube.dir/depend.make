# Empty dependencies file for test_report_cube.
# This may be replaced when dependencies are built.
