# Empty compiler generated dependencies file for test_clocksync_amortize.
# This may be replaced when dependencies are built.
