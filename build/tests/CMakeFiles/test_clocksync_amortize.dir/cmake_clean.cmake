file(REMOVE_RECURSE
  "CMakeFiles/test_clocksync_amortize.dir/test_clocksync_amortize.cpp.o"
  "CMakeFiles/test_clocksync_amortize.dir/test_clocksync_amortize.cpp.o.d"
  "test_clocksync_amortize"
  "test_clocksync_amortize.pdb"
  "test_clocksync_amortize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocksync_amortize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
