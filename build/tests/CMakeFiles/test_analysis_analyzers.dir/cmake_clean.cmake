file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_analyzers.dir/test_analysis_analyzers.cpp.o"
  "CMakeFiles/test_analysis_analyzers.dir/test_analysis_analyzers.cpp.o.d"
  "test_analysis_analyzers"
  "test_analysis_analyzers.pdb"
  "test_analysis_analyzers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_analyzers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
