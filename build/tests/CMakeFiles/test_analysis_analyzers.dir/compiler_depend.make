# Empty compiler generated dependencies file for test_analysis_analyzers.
# This may be replaced when dependencies are built.
