file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_program.dir/test_simmpi_program.cpp.o"
  "CMakeFiles/test_simmpi_program.dir/test_simmpi_program.cpp.o.d"
  "test_simmpi_program"
  "test_simmpi_program.pdb"
  "test_simmpi_program[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
