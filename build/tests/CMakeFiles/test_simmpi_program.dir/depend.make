# Empty dependencies file for test_simmpi_program.
# This may be replaced when dependencies are built.
