file(REMOVE_RECURSE
  "CMakeFiles/test_report_timeline.dir/test_report_timeline.cpp.o"
  "CMakeFiles/test_report_timeline.dir/test_report_timeline.cpp.o.d"
  "test_report_timeline"
  "test_report_timeline.pdb"
  "test_report_timeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
