# Empty compiler generated dependencies file for test_report_timeline.
# This may be replaced when dependencies are built.
