# Empty dependencies file for test_simmpi_engine.
# This may be replaced when dependencies are built.
