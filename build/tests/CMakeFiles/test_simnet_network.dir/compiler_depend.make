# Empty compiler generated dependencies file for test_simnet_network.
# This may be replaced when dependencies are built.
