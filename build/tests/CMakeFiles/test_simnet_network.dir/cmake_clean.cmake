file(REMOVE_RECURSE
  "CMakeFiles/test_simnet_network.dir/test_simnet_network.cpp.o"
  "CMakeFiles/test_simnet_network.dir/test_simnet_network.cpp.o.d"
  "test_simnet_network"
  "test_simnet_network.pdb"
  "test_simnet_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
