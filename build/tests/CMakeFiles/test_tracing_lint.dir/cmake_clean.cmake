file(REMOVE_RECURSE
  "CMakeFiles/test_tracing_lint.dir/test_tracing_lint.cpp.o"
  "CMakeFiles/test_tracing_lint.dir/test_tracing_lint.cpp.o.d"
  "test_tracing_lint"
  "test_tracing_lint.pdb"
  "test_tracing_lint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracing_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
