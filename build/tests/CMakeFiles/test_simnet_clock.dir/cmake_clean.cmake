file(REMOVE_RECURSE
  "CMakeFiles/test_simnet_clock.dir/test_simnet_clock.cpp.o"
  "CMakeFiles/test_simnet_clock.dir/test_simnet_clock.cpp.o.d"
  "test_simnet_clock"
  "test_simnet_clock.pdb"
  "test_simnet_clock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
