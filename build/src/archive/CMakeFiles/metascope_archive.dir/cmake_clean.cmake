file(REMOVE_RECURSE
  "CMakeFiles/metascope_archive.dir/archive.cpp.o"
  "CMakeFiles/metascope_archive.dir/archive.cpp.o.d"
  "libmetascope_archive.a"
  "libmetascope_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascope_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
