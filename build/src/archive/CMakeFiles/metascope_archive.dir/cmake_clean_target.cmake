file(REMOVE_RECURSE
  "libmetascope_archive.a"
)
