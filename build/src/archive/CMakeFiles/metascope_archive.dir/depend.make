# Empty dependencies file for metascope_archive.
# This may be replaced when dependencies are built.
