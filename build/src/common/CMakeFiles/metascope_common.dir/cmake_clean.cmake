file(REMOVE_RECURSE
  "CMakeFiles/metascope_common.dir/binary_io.cpp.o"
  "CMakeFiles/metascope_common.dir/binary_io.cpp.o.d"
  "CMakeFiles/metascope_common.dir/json.cpp.o"
  "CMakeFiles/metascope_common.dir/json.cpp.o.d"
  "CMakeFiles/metascope_common.dir/log.cpp.o"
  "CMakeFiles/metascope_common.dir/log.cpp.o.d"
  "CMakeFiles/metascope_common.dir/rng.cpp.o"
  "CMakeFiles/metascope_common.dir/rng.cpp.o.d"
  "CMakeFiles/metascope_common.dir/stats.cpp.o"
  "CMakeFiles/metascope_common.dir/stats.cpp.o.d"
  "CMakeFiles/metascope_common.dir/table.cpp.o"
  "CMakeFiles/metascope_common.dir/table.cpp.o.d"
  "libmetascope_common.a"
  "libmetascope_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascope_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
