file(REMOVE_RECURSE
  "libmetascope_common.a"
)
