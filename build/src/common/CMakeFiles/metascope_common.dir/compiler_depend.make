# Empty compiler generated dependencies file for metascope_common.
# This may be replaced when dependencies are built.
