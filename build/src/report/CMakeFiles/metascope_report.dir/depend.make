# Empty dependencies file for metascope_report.
# This may be replaced when dependencies are built.
