file(REMOVE_RECURSE
  "CMakeFiles/metascope_report.dir/algebra.cpp.o"
  "CMakeFiles/metascope_report.dir/algebra.cpp.o.d"
  "CMakeFiles/metascope_report.dir/csv.cpp.o"
  "CMakeFiles/metascope_report.dir/csv.cpp.o.d"
  "CMakeFiles/metascope_report.dir/cube.cpp.o"
  "CMakeFiles/metascope_report.dir/cube.cpp.o.d"
  "CMakeFiles/metascope_report.dir/cubexml.cpp.o"
  "CMakeFiles/metascope_report.dir/cubexml.cpp.o.d"
  "CMakeFiles/metascope_report.dir/profile.cpp.o"
  "CMakeFiles/metascope_report.dir/profile.cpp.o.d"
  "CMakeFiles/metascope_report.dir/render.cpp.o"
  "CMakeFiles/metascope_report.dir/render.cpp.o.d"
  "CMakeFiles/metascope_report.dir/timeline.cpp.o"
  "CMakeFiles/metascope_report.dir/timeline.cpp.o.d"
  "libmetascope_report.a"
  "libmetascope_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascope_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
