
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/algebra.cpp" "src/report/CMakeFiles/metascope_report.dir/algebra.cpp.o" "gcc" "src/report/CMakeFiles/metascope_report.dir/algebra.cpp.o.d"
  "/root/repo/src/report/csv.cpp" "src/report/CMakeFiles/metascope_report.dir/csv.cpp.o" "gcc" "src/report/CMakeFiles/metascope_report.dir/csv.cpp.o.d"
  "/root/repo/src/report/cube.cpp" "src/report/CMakeFiles/metascope_report.dir/cube.cpp.o" "gcc" "src/report/CMakeFiles/metascope_report.dir/cube.cpp.o.d"
  "/root/repo/src/report/cubexml.cpp" "src/report/CMakeFiles/metascope_report.dir/cubexml.cpp.o" "gcc" "src/report/CMakeFiles/metascope_report.dir/cubexml.cpp.o.d"
  "/root/repo/src/report/profile.cpp" "src/report/CMakeFiles/metascope_report.dir/profile.cpp.o" "gcc" "src/report/CMakeFiles/metascope_report.dir/profile.cpp.o.d"
  "/root/repo/src/report/render.cpp" "src/report/CMakeFiles/metascope_report.dir/render.cpp.o" "gcc" "src/report/CMakeFiles/metascope_report.dir/render.cpp.o.d"
  "/root/repo/src/report/timeline.cpp" "src/report/CMakeFiles/metascope_report.dir/timeline.cpp.o" "gcc" "src/report/CMakeFiles/metascope_report.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tracing/CMakeFiles/metascope_tracing.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/metascope_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/metascope_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metascope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
