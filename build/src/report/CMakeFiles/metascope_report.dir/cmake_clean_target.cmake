file(REMOVE_RECURSE
  "libmetascope_report.a"
)
