# Empty dependencies file for metascope_workloads.
# This may be replaced when dependencies are built.
