file(REMOVE_RECURSE
  "CMakeFiles/metascope_workloads.dir/clockbench.cpp.o"
  "CMakeFiles/metascope_workloads.dir/clockbench.cpp.o.d"
  "CMakeFiles/metascope_workloads.dir/config.cpp.o"
  "CMakeFiles/metascope_workloads.dir/config.cpp.o.d"
  "CMakeFiles/metascope_workloads.dir/ensemble.cpp.o"
  "CMakeFiles/metascope_workloads.dir/ensemble.cpp.o.d"
  "CMakeFiles/metascope_workloads.dir/experiment.cpp.o"
  "CMakeFiles/metascope_workloads.dir/experiment.cpp.o.d"
  "CMakeFiles/metascope_workloads.dir/metatrace.cpp.o"
  "CMakeFiles/metascope_workloads.dir/metatrace.cpp.o.d"
  "CMakeFiles/metascope_workloads.dir/microworkloads.cpp.o"
  "CMakeFiles/metascope_workloads.dir/microworkloads.cpp.o.d"
  "libmetascope_workloads.a"
  "libmetascope_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascope_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
