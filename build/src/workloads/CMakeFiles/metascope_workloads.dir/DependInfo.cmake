
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/clockbench.cpp" "src/workloads/CMakeFiles/metascope_workloads.dir/clockbench.cpp.o" "gcc" "src/workloads/CMakeFiles/metascope_workloads.dir/clockbench.cpp.o.d"
  "/root/repo/src/workloads/config.cpp" "src/workloads/CMakeFiles/metascope_workloads.dir/config.cpp.o" "gcc" "src/workloads/CMakeFiles/metascope_workloads.dir/config.cpp.o.d"
  "/root/repo/src/workloads/ensemble.cpp" "src/workloads/CMakeFiles/metascope_workloads.dir/ensemble.cpp.o" "gcc" "src/workloads/CMakeFiles/metascope_workloads.dir/ensemble.cpp.o.d"
  "/root/repo/src/workloads/experiment.cpp" "src/workloads/CMakeFiles/metascope_workloads.dir/experiment.cpp.o" "gcc" "src/workloads/CMakeFiles/metascope_workloads.dir/experiment.cpp.o.d"
  "/root/repo/src/workloads/metatrace.cpp" "src/workloads/CMakeFiles/metascope_workloads.dir/metatrace.cpp.o" "gcc" "src/workloads/CMakeFiles/metascope_workloads.dir/metatrace.cpp.o.d"
  "/root/repo/src/workloads/microworkloads.cpp" "src/workloads/CMakeFiles/metascope_workloads.dir/microworkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/metascope_workloads.dir/microworkloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/metascope_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/tracing/CMakeFiles/metascope_tracing.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/metascope_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metascope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
