file(REMOVE_RECURSE
  "libmetascope_workloads.a"
)
