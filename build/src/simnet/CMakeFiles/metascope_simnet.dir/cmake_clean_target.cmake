file(REMOVE_RECURSE
  "libmetascope_simnet.a"
)
