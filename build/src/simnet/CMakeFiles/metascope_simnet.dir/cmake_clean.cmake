file(REMOVE_RECURSE
  "CMakeFiles/metascope_simnet.dir/clock.cpp.o"
  "CMakeFiles/metascope_simnet.dir/clock.cpp.o.d"
  "CMakeFiles/metascope_simnet.dir/network.cpp.o"
  "CMakeFiles/metascope_simnet.dir/network.cpp.o.d"
  "CMakeFiles/metascope_simnet.dir/presets.cpp.o"
  "CMakeFiles/metascope_simnet.dir/presets.cpp.o.d"
  "CMakeFiles/metascope_simnet.dir/topology.cpp.o"
  "CMakeFiles/metascope_simnet.dir/topology.cpp.o.d"
  "libmetascope_simnet.a"
  "libmetascope_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascope_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
