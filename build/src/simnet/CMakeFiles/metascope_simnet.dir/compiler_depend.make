# Empty compiler generated dependencies file for metascope_simnet.
# This may be replaced when dependencies are built.
