file(REMOVE_RECURSE
  "CMakeFiles/metascope_analysis.dir/base_accum.cpp.o"
  "CMakeFiles/metascope_analysis.dir/base_accum.cpp.o.d"
  "CMakeFiles/metascope_analysis.dir/parallel_analyzer.cpp.o"
  "CMakeFiles/metascope_analysis.dir/parallel_analyzer.cpp.o.d"
  "CMakeFiles/metascope_analysis.dir/patterns.cpp.o"
  "CMakeFiles/metascope_analysis.dir/patterns.cpp.o.d"
  "CMakeFiles/metascope_analysis.dir/prepare.cpp.o"
  "CMakeFiles/metascope_analysis.dir/prepare.cpp.o.d"
  "CMakeFiles/metascope_analysis.dir/serial_analyzer.cpp.o"
  "CMakeFiles/metascope_analysis.dir/serial_analyzer.cpp.o.d"
  "CMakeFiles/metascope_analysis.dir/wait_rules.cpp.o"
  "CMakeFiles/metascope_analysis.dir/wait_rules.cpp.o.d"
  "libmetascope_analysis.a"
  "libmetascope_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascope_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
