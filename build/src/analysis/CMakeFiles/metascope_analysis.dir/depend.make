# Empty dependencies file for metascope_analysis.
# This may be replaced when dependencies are built.
