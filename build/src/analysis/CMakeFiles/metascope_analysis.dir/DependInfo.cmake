
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/base_accum.cpp" "src/analysis/CMakeFiles/metascope_analysis.dir/base_accum.cpp.o" "gcc" "src/analysis/CMakeFiles/metascope_analysis.dir/base_accum.cpp.o.d"
  "/root/repo/src/analysis/parallel_analyzer.cpp" "src/analysis/CMakeFiles/metascope_analysis.dir/parallel_analyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/metascope_analysis.dir/parallel_analyzer.cpp.o.d"
  "/root/repo/src/analysis/patterns.cpp" "src/analysis/CMakeFiles/metascope_analysis.dir/patterns.cpp.o" "gcc" "src/analysis/CMakeFiles/metascope_analysis.dir/patterns.cpp.o.d"
  "/root/repo/src/analysis/prepare.cpp" "src/analysis/CMakeFiles/metascope_analysis.dir/prepare.cpp.o" "gcc" "src/analysis/CMakeFiles/metascope_analysis.dir/prepare.cpp.o.d"
  "/root/repo/src/analysis/serial_analyzer.cpp" "src/analysis/CMakeFiles/metascope_analysis.dir/serial_analyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/metascope_analysis.dir/serial_analyzer.cpp.o.d"
  "/root/repo/src/analysis/wait_rules.cpp" "src/analysis/CMakeFiles/metascope_analysis.dir/wait_rules.cpp.o" "gcc" "src/analysis/CMakeFiles/metascope_analysis.dir/wait_rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tracing/CMakeFiles/metascope_tracing.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/metascope_report.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/metascope_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/metascope_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metascope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
