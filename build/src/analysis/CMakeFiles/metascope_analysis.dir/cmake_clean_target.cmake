file(REMOVE_RECURSE
  "libmetascope_analysis.a"
)
