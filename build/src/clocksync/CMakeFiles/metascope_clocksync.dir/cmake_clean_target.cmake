file(REMOVE_RECURSE
  "libmetascope_clocksync.a"
)
