# Empty dependencies file for metascope_clocksync.
# This may be replaced when dependencies are built.
