file(REMOVE_RECURSE
  "CMakeFiles/metascope_clocksync.dir/amortization.cpp.o"
  "CMakeFiles/metascope_clocksync.dir/amortization.cpp.o.d"
  "CMakeFiles/metascope_clocksync.dir/clock_condition.cpp.o"
  "CMakeFiles/metascope_clocksync.dir/clock_condition.cpp.o.d"
  "CMakeFiles/metascope_clocksync.dir/correction.cpp.o"
  "CMakeFiles/metascope_clocksync.dir/correction.cpp.o.d"
  "CMakeFiles/metascope_clocksync.dir/error_analysis.cpp.o"
  "CMakeFiles/metascope_clocksync.dir/error_analysis.cpp.o.d"
  "libmetascope_clocksync.a"
  "libmetascope_clocksync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascope_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
