file(REMOVE_RECURSE
  "CMakeFiles/metascope_simmpi.dir/collectives.cpp.o"
  "CMakeFiles/metascope_simmpi.dir/collectives.cpp.o.d"
  "CMakeFiles/metascope_simmpi.dir/comm.cpp.o"
  "CMakeFiles/metascope_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/metascope_simmpi.dir/engine.cpp.o"
  "CMakeFiles/metascope_simmpi.dir/engine.cpp.o.d"
  "CMakeFiles/metascope_simmpi.dir/op.cpp.o"
  "CMakeFiles/metascope_simmpi.dir/op.cpp.o.d"
  "CMakeFiles/metascope_simmpi.dir/pingpong.cpp.o"
  "CMakeFiles/metascope_simmpi.dir/pingpong.cpp.o.d"
  "CMakeFiles/metascope_simmpi.dir/program.cpp.o"
  "CMakeFiles/metascope_simmpi.dir/program.cpp.o.d"
  "libmetascope_simmpi.a"
  "libmetascope_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascope_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
