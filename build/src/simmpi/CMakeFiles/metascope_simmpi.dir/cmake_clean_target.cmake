file(REMOVE_RECURSE
  "libmetascope_simmpi.a"
)
