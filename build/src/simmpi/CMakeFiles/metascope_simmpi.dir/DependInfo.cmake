
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/collectives.cpp" "src/simmpi/CMakeFiles/metascope_simmpi.dir/collectives.cpp.o" "gcc" "src/simmpi/CMakeFiles/metascope_simmpi.dir/collectives.cpp.o.d"
  "/root/repo/src/simmpi/comm.cpp" "src/simmpi/CMakeFiles/metascope_simmpi.dir/comm.cpp.o" "gcc" "src/simmpi/CMakeFiles/metascope_simmpi.dir/comm.cpp.o.d"
  "/root/repo/src/simmpi/engine.cpp" "src/simmpi/CMakeFiles/metascope_simmpi.dir/engine.cpp.o" "gcc" "src/simmpi/CMakeFiles/metascope_simmpi.dir/engine.cpp.o.d"
  "/root/repo/src/simmpi/op.cpp" "src/simmpi/CMakeFiles/metascope_simmpi.dir/op.cpp.o" "gcc" "src/simmpi/CMakeFiles/metascope_simmpi.dir/op.cpp.o.d"
  "/root/repo/src/simmpi/pingpong.cpp" "src/simmpi/CMakeFiles/metascope_simmpi.dir/pingpong.cpp.o" "gcc" "src/simmpi/CMakeFiles/metascope_simmpi.dir/pingpong.cpp.o.d"
  "/root/repo/src/simmpi/program.cpp" "src/simmpi/CMakeFiles/metascope_simmpi.dir/program.cpp.o" "gcc" "src/simmpi/CMakeFiles/metascope_simmpi.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/metascope_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metascope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
