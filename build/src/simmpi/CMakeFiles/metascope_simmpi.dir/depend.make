# Empty dependencies file for metascope_simmpi.
# This may be replaced when dependencies are built.
