# CMake generated Testfile for 
# Source directory: /root/repo/src/tracing
# Build directory: /root/repo/build/src/tracing
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
