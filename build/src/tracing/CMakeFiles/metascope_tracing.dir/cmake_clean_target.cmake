file(REMOVE_RECURSE
  "libmetascope_tracing.a"
)
