# Empty dependencies file for metascope_tracing.
# This may be replaced when dependencies are built.
