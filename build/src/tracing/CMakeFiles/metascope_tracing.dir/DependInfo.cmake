
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracing/epilog_io.cpp" "src/tracing/CMakeFiles/metascope_tracing.dir/epilog_io.cpp.o" "gcc" "src/tracing/CMakeFiles/metascope_tracing.dir/epilog_io.cpp.o.d"
  "/root/repo/src/tracing/lint.cpp" "src/tracing/CMakeFiles/metascope_tracing.dir/lint.cpp.o" "gcc" "src/tracing/CMakeFiles/metascope_tracing.dir/lint.cpp.o.d"
  "/root/repo/src/tracing/matching.cpp" "src/tracing/CMakeFiles/metascope_tracing.dir/matching.cpp.o" "gcc" "src/tracing/CMakeFiles/metascope_tracing.dir/matching.cpp.o.d"
  "/root/repo/src/tracing/measurement.cpp" "src/tracing/CMakeFiles/metascope_tracing.dir/measurement.cpp.o" "gcc" "src/tracing/CMakeFiles/metascope_tracing.dir/measurement.cpp.o.d"
  "/root/repo/src/tracing/metahost_env.cpp" "src/tracing/CMakeFiles/metascope_tracing.dir/metahost_env.cpp.o" "gcc" "src/tracing/CMakeFiles/metascope_tracing.dir/metahost_env.cpp.o.d"
  "/root/repo/src/tracing/trace.cpp" "src/tracing/CMakeFiles/metascope_tracing.dir/trace.cpp.o" "gcc" "src/tracing/CMakeFiles/metascope_tracing.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/metascope_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/metascope_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metascope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
