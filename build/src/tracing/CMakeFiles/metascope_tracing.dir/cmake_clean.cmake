file(REMOVE_RECURSE
  "CMakeFiles/metascope_tracing.dir/epilog_io.cpp.o"
  "CMakeFiles/metascope_tracing.dir/epilog_io.cpp.o.d"
  "CMakeFiles/metascope_tracing.dir/lint.cpp.o"
  "CMakeFiles/metascope_tracing.dir/lint.cpp.o.d"
  "CMakeFiles/metascope_tracing.dir/matching.cpp.o"
  "CMakeFiles/metascope_tracing.dir/matching.cpp.o.d"
  "CMakeFiles/metascope_tracing.dir/measurement.cpp.o"
  "CMakeFiles/metascope_tracing.dir/measurement.cpp.o.d"
  "CMakeFiles/metascope_tracing.dir/metahost_env.cpp.o"
  "CMakeFiles/metascope_tracing.dir/metahost_env.cpp.o.d"
  "CMakeFiles/metascope_tracing.dir/trace.cpp.o"
  "CMakeFiles/metascope_tracing.dir/trace.cpp.o.d"
  "libmetascope_tracing.a"
  "libmetascope_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascope_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
