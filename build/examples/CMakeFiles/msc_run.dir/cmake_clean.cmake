file(REMOVE_RECURSE
  "CMakeFiles/msc_run.dir/msc_run.cpp.o"
  "CMakeFiles/msc_run.dir/msc_run.cpp.o.d"
  "msc_run"
  "msc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
