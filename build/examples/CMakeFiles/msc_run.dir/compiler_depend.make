# Empty compiler generated dependencies file for msc_run.
# This may be replaced when dependencies are built.
