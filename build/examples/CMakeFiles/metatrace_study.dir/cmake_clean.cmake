file(REMOVE_RECURSE
  "CMakeFiles/metatrace_study.dir/metatrace_study.cpp.o"
  "CMakeFiles/metatrace_study.dir/metatrace_study.cpp.o.d"
  "metatrace_study"
  "metatrace_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metatrace_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
