# Empty compiler generated dependencies file for metatrace_study.
# This may be replaced when dependencies are built.
