file(REMOVE_RECURSE
  "CMakeFiles/clock_doctor.dir/clock_doctor.cpp.o"
  "CMakeFiles/clock_doctor.dir/clock_doctor.cpp.o.d"
  "clock_doctor"
  "clock_doctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_doctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
