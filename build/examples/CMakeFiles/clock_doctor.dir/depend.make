# Empty dependencies file for clock_doctor.
# This may be replaced when dependencies are built.
