file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_analyzer.dir/bench_ablate_analyzer.cpp.o"
  "CMakeFiles/bench_ablate_analyzer.dir/bench_ablate_analyzer.cpp.o.d"
  "bench_ablate_analyzer"
  "bench_ablate_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
