# Empty compiler generated dependencies file for bench_ablate_analyzer.
# This may be replaced when dependencies are built.
