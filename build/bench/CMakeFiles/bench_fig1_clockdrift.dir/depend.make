# Empty dependencies file for bench_fig1_clockdrift.
# This may be replaced when dependencies are built.
