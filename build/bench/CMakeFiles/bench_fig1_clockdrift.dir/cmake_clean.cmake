file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_clockdrift.dir/bench_fig1_clockdrift.cpp.o"
  "CMakeFiles/bench_fig1_clockdrift.dir/bench_fig1_clockdrift.cpp.o.d"
  "bench_fig1_clockdrift"
  "bench_fig1_clockdrift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_clockdrift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
