# Empty compiler generated dependencies file for bench_fig3_sync_error.
# This may be replaced when dependencies are built.
