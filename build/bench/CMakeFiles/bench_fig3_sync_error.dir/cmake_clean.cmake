file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sync_error.dir/bench_fig3_sync_error.cpp.o"
  "CMakeFiles/bench_fig3_sync_error.dir/bench_fig3_sync_error.cpp.o.d"
  "bench_fig3_sync_error"
  "bench_fig3_sync_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sync_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
