# Empty dependencies file for bench_fig4_patterns.
# This may be replaced when dependencies are built.
