file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_violations.dir/bench_table2_violations.cpp.o"
  "CMakeFiles/bench_table2_violations.dir/bench_table2_violations.cpp.o.d"
  "bench_table2_violations"
  "bench_table2_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
