# Empty dependencies file for bench_table2_violations.
# This may be replaced when dependencies are built.
