file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_metatrace.dir/bench_fig6_metatrace.cpp.o"
  "CMakeFiles/bench_fig6_metatrace.dir/bench_fig6_metatrace.cpp.o.d"
  "bench_fig6_metatrace"
  "bench_fig6_metatrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_metatrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
