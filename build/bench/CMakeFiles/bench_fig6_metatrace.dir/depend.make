# Empty dependencies file for bench_fig6_metatrace.
# This may be replaced when dependencies are built.
