file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_homogeneous.dir/bench_fig7_homogeneous.cpp.o"
  "CMakeFiles/bench_fig7_homogeneous.dir/bench_fig7_homogeneous.cpp.o.d"
  "bench_fig7_homogeneous"
  "bench_fig7_homogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
