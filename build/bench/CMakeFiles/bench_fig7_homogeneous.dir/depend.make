# Empty dependencies file for bench_fig7_homogeneous.
# This may be replaced when dependencies are built.
