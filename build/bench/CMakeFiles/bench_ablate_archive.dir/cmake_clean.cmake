file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_archive.dir/bench_ablate_archive.cpp.o"
  "CMakeFiles/bench_ablate_archive.dir/bench_ablate_archive.cpp.o.d"
  "bench_ablate_archive"
  "bench_ablate_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
