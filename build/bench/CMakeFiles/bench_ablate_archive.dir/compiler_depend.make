# Empty compiler generated dependencies file for bench_ablate_archive.
# This may be replaced when dependencies are built.
