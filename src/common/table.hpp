// Plain-text table formatter used by the benchmark harnesses to print the
// paper's tables (Table 1–3) and by the report renderer for summaries.
#pragma once

#include <string>
#include <vector>

namespace metascope {

class TextTable {
 public:
  enum class Align { Left, Right };

  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Column alignment (default: first column left, rest right).
  void set_align(std::size_t col, Align a);

  /// Renders with a header separator and column padding.
  [[nodiscard]] std::string render() const;

  /// Formats a double like the paper's tables (e.g. "9.88E+02").
  static std::string sci(double v, int precision = 2);
  /// Fixed-point with the given number of decimals.
  static std::string fixed(double v, int decimals = 2);
  /// Percentage with one decimal, e.g. "23.1 %".
  static std::string percent(double fraction, int decimals = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

}  // namespace metascope
