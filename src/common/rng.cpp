#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace metascope {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MSC_CHECK(lo <= hi, "uniform bounds inverted");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  MSC_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  // Box–Muller; draws two uniforms, discards the spare to keep the stream
  // position a pure function of the number of calls.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::normal_at_least(double mean, double stddev, double lo) {
  for (int i = 0; i < 1000; ++i) {
    const double x = normal(mean, stddev);
    if (x >= lo) return x;
  }
  return lo;  // Pathological parameters; clamp rather than loop forever.
}

double Rng::exponential(double mean) {
  MSC_CHECK(mean > 0.0, "exponential requires positive mean");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::lognormal_with_moments(double mean, double stddev) {
  MSC_CHECK(mean > 0.0, "lognormal requires positive mean");
  const double cv2 = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log(1.0 + cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(mu + std::sqrt(sigma2) * normal());
}

Rng Rng::split(std::uint64_t salt) const {
  // Mix the current state with the salt through SplitMix64.
  std::uint64_t x = s_[0] ^ rotl(s_[3], 13) ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(x));
}

}  // namespace metascope
