// Error handling: a single exception type plus check macros used at module
// boundaries. Internal invariants use MSC_ASSERT which is active in all
// build types (simulation correctness matters more than the cycle cost).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace metascope {

/// Exception thrown on any MetaScope API misuse or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace metascope

/// Precondition check on public API arguments; always active.
#define MSC_CHECK(cond, msg)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::metascope::detail::fail("check", #cond, __FILE__, __LINE__, msg);  \
  } while (0)

/// Internal invariant; always active (simulations must not silently drift).
#define MSC_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::metascope::detail::fail("assert", #cond, __FILE__, __LINE__, msg); \
  } while (0)
