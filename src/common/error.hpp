// Error handling: a single exception type plus check macros used at module
// boundaries. Internal invariants use MSC_ASSERT which is active in all
// build types (simulation correctness matters more than the cycle cost).
//
// Errors raised at the *ingestion boundary* (trace/defs/config decoding,
// archive I/O) additionally carry a structured taxonomy so callers can
// react per failure class instead of string-matching what():
//
//   - ErrorCode::Truncated        file/buffer ends before the payload its
//                                 header promises (cut short in transit);
//   - ErrorCode::Corrupt          bytes present but not decodable (bad
//                                 magic, unknown event type, bad JSON);
//   - ErrorCode::VersionMismatch  well-formed header from an unsupported
//                                 format version;
//   - ErrorCode::LimitExceeded    a count/length field exceeds the
//                                 decoder's sanity caps (bit-flipped or
//                                 adversarial size fields);
//   - ErrorCode::Io               the OS failed us (open/read/write).
//
// ErrorContext threads the *where* — file path, rank, byte offset —
// through every decode error, so a corrupt archive names the exact file
// and position instead of "bad trace".
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace metascope {

/// Failure class for ingestion-boundary errors. None marks errors
/// outside the taxonomy (API misuse, invariant violations).
enum class ErrorCode {
  None,
  Truncated,
  Corrupt,
  VersionMismatch,
  LimitExceeded,
  Io,
};

inline const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::None: return "none";
    case ErrorCode::Truncated: return "truncated";
    case ErrorCode::Corrupt: return "corrupt";
    case ErrorCode::VersionMismatch: return "version-mismatch";
    case ErrorCode::LimitExceeded: return "limit-exceeded";
    case ErrorCode::Io: return "io";
  }
  return "?";
}

/// Where an ingestion error happened. Fields are optional; unknown ones
/// stay at their defaults and are omitted from the rendered message.
struct ErrorContext {
  /// Source file (trace/defs/config path), empty if not file-backed.
  std::string path;
  /// Rank whose data was being decoded; -1 if not rank-scoped.
  int rank{-1};
  /// Byte offset into the source where decoding failed; -1 if unknown.
  std::int64_t byte_offset{-1};
};

namespace detail {
inline std::string render_error(const std::string& base, ErrorCode code,
                                const ErrorContext& ctx) {
  if (code == ErrorCode::None && ctx.path.empty() && ctx.rank < 0 &&
      ctx.byte_offset < 0)
    return base;
  std::ostringstream os;
  os << base << " [";
  const char* sep = "";
  if (code != ErrorCode::None) {
    os << "code=" << to_string(code);
    sep = ", ";
  }
  if (!ctx.path.empty()) {
    os << sep << "path=" << ctx.path;
    sep = ", ";
  }
  if (ctx.rank >= 0) {
    os << sep << "rank=" << ctx.rank;
    sep = ", ";
  }
  if (ctx.byte_offset >= 0) os << sep << "offset=" << ctx.byte_offset;
  os << "]";
  return os.str();
}
}  // namespace detail

/// Exception thrown on any MetaScope API misuse or invariant violation.
/// Decode-path throws carry an ErrorCode + ErrorContext (see above);
/// everything else defaults to ErrorCode::None with empty context.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), base_(what) {}
  Error(ErrorCode code, const std::string& what, ErrorContext ctx = {})
      : std::runtime_error(detail::render_error(what, code, ctx)),
        base_(what),
        code_(code),
        ctx_(std::move(ctx)) {}

  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const ErrorContext& context() const { return ctx_; }
  /// The message without the rendered [code/path/rank/offset] suffix.
  [[nodiscard]] const std::string& base_message() const { return base_; }

  /// A copy of this error with the given context merged in: fields
  /// already known keep their values, unknown ones are filled from
  /// `extra`. Used by callers (archive readers) that know the file and
  /// rank a lower-level decoder did not.
  [[nodiscard]] Error with_context(const ErrorContext& extra) const {
    ErrorContext merged = ctx_;
    if (merged.path.empty()) merged.path = extra.path;
    if (merged.rank < 0) merged.rank = extra.rank;
    if (merged.byte_offset < 0) merged.byte_offset = extra.byte_offset;
    return Error(code_, base_, std::move(merged));
  }

 private:
  std::string base_;
  ErrorCode code_{ErrorCode::None};
  ErrorContext ctx_;
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace metascope

/// Precondition check on public API arguments; always active.
#define MSC_CHECK(cond, msg)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::metascope::detail::fail("check", #cond, __FILE__, __LINE__, msg);  \
  } while (0)

/// Internal invariant; always active (simulations must not silently drift).
#define MSC_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::metascope::detail::fail("assert", #cond, __FILE__, __LINE__, msg); \
  } while (0)
