// Minimal JSON value, parser, and writer.
//
// Used for experiment configuration files and archive manifests. Supports
// the full JSON grammar except surrogate-pair escapes; numbers are held as
// doubles (adequate for configs — no 64-bit integer fidelity is required).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace metascope {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  // std::map keeps key order deterministic for round-trip tests.
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}                   // NOLINT
  Json(bool b) : type_(Type::Bool), bool_(b) {}                 // NOLINT
  Json(double n) : type_(Type::Number), num_(n) {}              // NOLINT
  Json(int n) : type_(Type::Number), num_(n) {}                 // NOLINT
  Json(std::int64_t n)                                          // NOLINT
      : type_(Type::Number), num_(static_cast<double>(n)) {}
  Json(std::size_t n)                                           // NOLINT
      : type_(Type::Number), num_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}         // NOLINT
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}  // NOLINT
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}     // NOLINT
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}   // NOLINT

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }

  /// Typed accessors; throw Error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object field access; throws if not an object / key missing.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  [[nodiscard]] bool has(const std::string& key) const;
  /// Field with default when missing.
  [[nodiscard]] double number_or(const std::string& key, double dflt) const;
  [[nodiscard]] std::int64_t int_or(const std::string& key,
                                    std::int64_t dflt) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& dflt) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool dflt) const;

  /// Mutable object/array builders.
  Json& set(const std::string& key, Json v);
  Json& push_back(Json v);

  /// Serialization. `indent` < 0 → compact single line.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; throws Error with position info.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  Type type_;
  bool bool_{false};
  double num_{0.0};
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Reads and parses a JSON file; throws Error on I/O or parse failure.
Json load_json_file(const std::string& path);

/// Writes `v` to `path` (pretty-printed), creating missing parent
/// directories first. Throws Error naming the path and the OS reason
/// (strerror) on failure.
void save_json_file(const std::string& path, const Json& v);

/// Verifies `path` can be opened for writing — creates missing parent
/// directories, opens the file in append mode (contents untouched), and
/// throws Error (path + OS reason) if that fails. CLI front-ends call
/// this on --metrics/--trace-out before running the pipeline, so a bad
/// output path fails in milliseconds instead of after the analysis.
void ensure_writable_file(const std::string& path);

}  // namespace metascope
