// Leveled logging to stderr. Quiet by default so tests and benches stay
// clean; experiments flip the level for progress visibility.
#pragma once

#include <sstream>
#include <string>

namespace metascope {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (as accepted by
/// `msc_run --log-level`). Returns false on an unknown name, leaving
/// `out` untouched.
bool parse_log_level(const std::string& name, LogLevel& out);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace metascope

#define MSC_LOG(level, expr)                                       \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::metascope::log_level())) {              \
      std::ostringstream msc_log_os;                               \
      msc_log_os << expr;                                          \
      ::metascope::detail::log_emit(level, msc_log_os.str());      \
    }                                                              \
  } while (0)

#define MSC_DEBUG(expr) MSC_LOG(::metascope::LogLevel::Debug, expr)
#define MSC_INFO(expr) MSC_LOG(::metascope::LogLevel::Info, expr)
#define MSC_WARN(expr) MSC_LOG(::metascope::LogLevel::Warn, expr)
#define MSC_ERROR(expr) MSC_LOG(::metascope::LogLevel::Error, expr)
