// Reusable bounded worker pool with work stealing and resumable tasks.
//
// Extracted from the replay scheduler (analysis/replay_scheduler) so the
// whole pre-replay pipeline — archive encode/decode and file I/O, clock
// correction, amortization, prepare — can fan out per-rank work on the
// same machinery the parallel replay uses, instead of each stage staying
// a serial loop that Amdahl's law turns into the bottleneck at large
// rank counts.
//
// Two entry points:
//
//  - WorkerPool: the full resumable-task scheduler. Each task's step
//    function either finishes (Done) or *suspends* (returns control to
//    the pool after registering with the awaited resource); the task
//    that satisfies the resource calls resume(). A fixed pool of
//    workers — hardware concurrency by default — drives all tasks, each
//    worker owning a deque of runnable tasks and stealing from its
//    peers when it runs dry. The suspend/resume race is resolved with a
//    per-task Running/Parked/Notified state machine, so a wakeup is
//    never lost and a task never runs on two workers at once. If every
//    unfinished task is parked, the pool throws DeadlockError instead
//    of hanging.
//
//  - parallel_for: the embarrassingly parallel special case — n
//    independent items, none of which ever suspends. Runs inline when
//    one worker (or one item) is requested, so serial baselines pay no
//    threading cost.
//
// This layer is deliberately telemetry-free (common sits below
// telemetry in the library stack): the pool keeps *exact* internal
// counters (merged from per-thread tallies when workers exit) and
// exposes sampled timing hooks through an Observer, which clients like
// the replay scheduler wire into the metrics registry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace metascope {

enum class StepOutcome {
  Done,     ///< the task finished all of its work
  Suspend,  ///< the task registered with a resource and yields its worker
};

/// Thrown by WorkerPool::run when no unfinished task is runnable and no
/// running task remains to ever resume one.
class DeadlockError : public Error {
 public:
  DeadlockError(std::size_t stuck, std::size_t total);

  [[nodiscard]] std::size_t stuck_tasks() const { return stuck_; }
  [[nodiscard]] std::size_t total_tasks() const { return total_; }

 private:
  std::size_t stuck_;
  std::size_t total_;
};

/// Exact per-run behaviour counters, valid after run() returns (merged
/// from per-thread tallies under the join barrier, so they are exact
/// regardless of telemetry state).
struct PoolStats {
  std::size_t workers{0};      ///< pool size actually used
  std::size_t tasks{0};        ///< tasks driven to completion
  std::size_t suspensions{0};  ///< times a step returned Suspend
  std::size_t steals{0};       ///< tasks taken from another worker's deque
  std::size_t requeues{0};     ///< tasks re-enqueued after a resume
  /// Tasks completed per worker (index = worker id); the load-balance
  /// figure stages feed into their per-stage worker histograms.
  std::vector<std::size_t> tasks_per_worker;
};

class WorkerPool {
 public:
  /// Sampled/stateful hooks a client may attach; all callbacks arrive on
  /// worker threads and must be thread-safe.
  class Observer {
   public:
    virtual ~Observer() = default;
    /// True if the pool should pay for the sampled timing hooks
    /// (on_task_runtime_us / on_queue_depth); consulted once per run().
    [[nodiscard]] virtual bool wants_samples() const { return false; }
    /// True if the pool should fire the per-event lifecycle hooks below
    /// (worker attach, task begin/end/resume/steal); consulted once per
    /// run(). This is the seam the telemetry flight recorder plugs into
    /// (telemetry::RecordingObserver) — off by default, so pools pay
    /// nothing unless a recording is requested.
    [[nodiscard]] virtual bool wants_events() const { return false; }
    /// Called on every task completion with the running done count.
    virtual void on_task_done(std::size_t done, std::size_t total) {
      (void)done;
      (void)total;
    }
    /// One-in-16 sampled step wall time, microseconds.
    virtual void on_task_runtime_us(double us) { (void)us; }
    /// One-in-16 sampled run-queue depth after a push.
    virtual void on_queue_depth(double depth) { (void)depth; }

    // Lifecycle hooks, fired only when wants_events() — every call
    // arrives on the thread the event happened on, which is what lets
    // an observer keep per-thread timelines.
    /// Once per spawned worker thread, before it runs any task. Not
    /// fired for the inline (single-worker) parallel_for path, which
    /// stays on the caller's thread.
    virtual void on_worker_attach(std::size_t wid) { (void)wid; }
    /// A worker starts driving `task` (first run or after a resume).
    virtual void on_task_begin(std::size_t task) { (void)task; }
    /// The step returned; `suspended` distinguishes Suspend from Done.
    /// Not fired when the step threw (the pool is tearing down).
    virtual void on_task_end(std::size_t task, bool suspended) {
      (void)task;
      (void)suspended;
    }
    /// This thread marked suspended `task` runnable again.
    virtual void on_task_resume(std::size_t task) { (void)task; }
    /// This thread stole `task` from another worker's deque.
    virtual void on_task_steal(std::size_t task) { (void)task; }
  };

  /// `max_workers` == 0 selects std::thread::hardware_concurrency();
  /// the pool never exceeds the task count.
  WorkerPool(std::size_t num_tasks, std::size_t max_workers = 0);

  /// Worker count run() will use for `num_tasks` under `max_workers`
  /// (0 = hardware concurrency), without constructing a pool.
  [[nodiscard]] static std::size_t resolve_workers(std::size_t num_tasks,
                                                   std::size_t max_workers);

  using StepFn = std::function<StepOutcome(std::size_t task)>;

  /// Attach before run(); the pool never owns the observer.
  void set_observer(Observer* obs) { obs_ = obs; }

  /// Drives every task to Done. `step(t)` advances task t until it
  /// finishes or suspends; a suspending step must arrange for resume(t)
  /// to be called by whichever task satisfies the awaited resource.
  /// Throws DeadlockError if all unfinished tasks are suspended with
  /// nothing left running, and rethrows the first exception any step
  /// raised.
  void run(const StepFn& step);

  /// Marks a suspended task runnable. Must be called from inside a
  /// running step (i.e. on a worker thread). Safe against the
  /// suspend/resume race; at most one resume may be issued per
  /// suspension.
  void resume(std::size_t task);

  [[nodiscard]] const PoolStats& stats() const { return stats_; }

 private:
  struct WorkerQueue {
    std::mutex m;
    std::deque<std::size_t> dq;
  };

  void worker_loop(std::size_t wid, const StepFn& step);
  void run_task(std::size_t task, const StepFn& step);
  void push(std::size_t wid, std::size_t task);
  bool pop_local(std::size_t wid, std::size_t& task);
  bool steal(std::size_t wid, std::size_t& task);
  void fail(std::exception_ptr err);
  /// Adds the calling thread's batched tally into the pool counters.
  void flush_tally();

  std::size_t num_tasks_;
  std::size_t num_workers_;
  std::vector<WorkerQueue> queues_;
  std::unique_ptr<std::atomic<int>[]> state_;

  std::atomic<std::size_t> done_{0};
  /// Tasks queued or currently running (not parked). When this reaches
  /// zero with done_ < num_tasks_, the run has deadlocked.
  std::atomic<std::size_t> inflight_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> deadlock_{false};

  std::mutex idle_m_;
  std::condition_variable idle_cv_;

  std::mutex err_m_;
  std::exception_ptr first_error_;

  Observer* obs_{nullptr};
  bool sample_{false};  ///< obs_ wants the sampled hooks (fixed per run)
  bool events_{false};  ///< obs_ wants the lifecycle hooks (fixed per run)

  // Per-thread tallies flush into these under tally_m_ when a worker
  // exits; stats_ is assembled after the join, so reads are race-free.
  std::mutex tally_m_;
  std::uint64_t total_suspensions_{0};
  std::uint64_t total_steals_{0};
  std::uint64_t total_requeues_{0};
  std::vector<std::size_t> tasks_by_worker_;

  PoolStats stats_;
};

/// Per-call summary of a parallel_for, for the caller's telemetry.
struct ParallelForStats {
  std::size_t workers{0};
  std::size_t items{0};
  std::size_t steals{0};
  std::vector<std::size_t> items_per_worker;
};

/// Runs body(i) for every i in [0, n) on a bounded work-stealing pool.
/// `max_workers` == 0 selects hardware concurrency; 1 (or n <= 1) runs
/// inline on the calling thread with no threads spawned. The first
/// exception a body throws is rethrown after all workers stop. Bodies
/// for distinct items must be independent (the usual use is one item
/// per rank writing its own slot), which is what makes results
/// deterministic for every worker count.
///
/// `obs` (optional, never owned) receives the pool's observer hooks;
/// stages pass a telemetry::RecordingObserver so their per-item fan-out
/// shows up on the flight-recorder timeline. The inline path fires the
/// task begin/end hooks on the calling thread (without worker attach),
/// so single-worker runs record the same per-item events.
ParallelForStats parallel_for(std::size_t n, std::size_t max_workers,
                              const std::function<void(std::size_t)>& body,
                              WorkerPool::Observer* obs = nullptr);

}  // namespace metascope
