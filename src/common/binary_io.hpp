// Little binary serialization layer used by the EPILOG-like trace format.
//
// Encoding: fixed-width little-endian for floats, LEB128 varints for
// integers (event streams are dominated by small ints — ranks, tags,
// region ids — so varints cut trace size roughly in half).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace metascope {

class BufWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// Unsigned LEB128.
  void put_varint(std::uint64_t v);
  /// Zig-zag signed LEB128.
  void put_svarint(std::int64_t v);
  void put_f64(double v);
  /// Varint length prefix + raw bytes.
  void put_string(const std::string& s);
  void put_bytes(const void* data, std::size_t n);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class BufReader {
 public:
  BufReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BufReader(const std::vector<std::uint8_t>& buf)
      : BufReader(buf.data(), buf.size()) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  std::int64_t get_svarint();
  double get_f64();
  std::string get_string();

  [[nodiscard]] bool at_end() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

/// Whole-file helpers; throw Error on I/O failure.
void write_file_bytes(const std::string& path,
                      const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

}  // namespace metascope
