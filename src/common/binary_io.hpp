// Little binary serialization layer used by the EPILOG-like trace format.
//
// Encoding: fixed-width little-endian for floats, LEB128 varints for
// integers (event streams are dominated by small ints — ranks, tags,
// region ids — so varints cut trace size roughly in half).
//
// Two readers:
//  - BufReader: the minimal primitive reader (kept for tooling and
//    fuzz-harness plumbing); throws plain Errors on underflow.
//  - Decoder: the hardened facade every production decode path goes
//    through. It tracks remaining bytes overflow-safely, enforces
//    sanity caps on counts/string lengths derived from the bytes
//    actually present, and throws taxonomy-typed Errors (Truncated /
//    Corrupt / VersionMismatch / LimitExceeded) carrying the source
//    path, rank, and exact byte offset of the failure.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace metascope {

class BufWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// Unsigned LEB128.
  void put_varint(std::uint64_t v);
  /// Zig-zag signed LEB128.
  void put_svarint(std::int64_t v);
  void put_f64(double v);
  /// Varint length prefix + raw bytes.
  void put_string(const std::string& s);
  void put_bytes(const void* data, std::size_t n);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class BufReader {
 public:
  BufReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BufReader(const std::vector<std::uint8_t>& buf)
      : BufReader(buf.data(), buf.size()) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  std::int64_t get_svarint();
  double get_f64();
  std::string get_string();

  [[nodiscard]] bool at_end() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

/// Bounds-checked decode facade (see header comment). Every get_* call
/// checks the remaining byte count without arithmetic wraparound; count
/// and length fields are validated against both an absolute cap and the
/// bytes still present, so a flipped high bit in a size field becomes a
/// typed Error instead of a multi-gigabyte allocation.
class Decoder {
 public:
  /// Hard ceiling on any element count a single file may declare. Far
  /// above any real archive (a trace with 2^27 events is ~1.2 GiB) but
  /// low enough that count*sizeof(element) can never overflow or OOM.
  static constexpr std::uint64_t kMaxCount = 1ULL << 27;
  /// Hard ceiling on one string (region/metahost/comm names).
  static constexpr std::uint64_t kMaxStringBytes = 1ULL << 20;

  Decoder(const std::uint8_t* data, std::size_t size, ErrorContext ctx = {})
      : data_(data), size_(size), ctx_(std::move(ctx)) {}
  explicit Decoder(const std::vector<std::uint8_t>& buf, ErrorContext ctx = {})
      : Decoder(buf.data(), buf.size(), std::move(ctx)) {}

  /// Updates the rank attached to subsequent error contexts (decoders
  /// learn the rank partway through the header).
  void set_rank(int rank) { ctx_.rank = rank; }

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  std::int64_t get_svarint();
  double get_f64();

  /// Varint length prefix + raw bytes; length checked against
  /// kMaxStringBytes (LimitExceeded) and the remaining bytes
  /// (Truncated).
  std::string get_string(const char* what = "string");

  /// Element-count field: reads a varint and validates it against
  /// kMaxCount (LimitExceeded — an oversized/bit-flipped count field)
  /// and against remaining()/min_bytes_per_item (Truncated — a sane
  /// count whose payload is missing). The returned value is safe to
  /// pass to vector::reserve.
  std::uint64_t get_count(const char* what, std::size_t min_bytes_per_item);

  /// Header helpers. Magic mismatch → Corrupt; version mismatch →
  /// VersionMismatch naming both versions.
  void expect_magic(std::uint32_t expected, const char* what);
  void expect_version(std::uint32_t expected, const char* what);
  /// Accepts any version in [lo, hi] and returns it; anything else →
  /// VersionMismatch naming the supported range. Decode paths that keep
  /// older format versions readable dispatch on the returned value.
  std::uint32_t expect_version_in(std::uint32_t lo, std::uint32_t hi,
                                  const char* what);

  /// Borrowed-buffer access: bounds-checks and consumes n bytes, and
  /// returns a pointer into the underlying buffer (valid for the
  /// buffer's lifetime — with a MappedFile, until it is unmapped). The
  /// zero-copy read path decodes packed sections straight out of the
  /// mapping through this.
  const std::uint8_t* get_raw(std::size_t n, const char* what);

  /// Throws Corrupt if any undecoded bytes remain.
  void require_end(const char* what);

  /// Typed failure at the current offset (decoders use this for their
  /// own semantic checks, e.g. an unknown event-type byte).
  [[noreturn]] void fail(ErrorCode code, const std::string& msg) const;

  [[nodiscard]] bool at_end() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] const ErrorContext& context() const { return ctx_; }

 private:
  /// Overflow-safe bounds check: Truncated if fewer than n bytes remain.
  void need(std::size_t n, const char* what) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
  ErrorContext ctx_;
};

/// Whole-file helpers; throw Error (ErrorCode::Io, path attached) on I/O
/// failure.
void write_file_bytes(const std::string& path,
                      const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// A read-only view of a whole file, memory-mapped when the platform
/// supports it (POSIX mmap) and read into an owned buffer otherwise.
/// The zero-copy archive read path decodes trace files straight out of
/// the mapping instead of copying them through read_file_bytes first.
///
/// Zero-length files yield an empty view without mapping (mmap rejects
/// length 0). Decoding results are byte-for-byte identical whichever
/// path backs the view — tests assert the parity. Move-only; the
/// mapping is released on destruction.
class MappedFile {
 public:
  /// Opens `path`; throws Error (ErrorCode::Io, path attached) if it
  /// cannot be opened or read. With allow_mmap = false (or on platforms
  /// without mmap) the file is read into an owned buffer instead.
  static MappedFile open(const std::string& path, bool allow_mmap = true);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// True when backed by an actual mapping (false for the owned-buffer
  /// fallback and for empty files).
  [[nodiscard]] bool mapped() const { return map_ != nullptr; }

 private:
  const std::uint8_t* data_{nullptr};
  std::size_t size_{0};
  void* map_{nullptr};
  std::size_t map_len_{0};
  std::vector<std::uint8_t> fallback_;
};

}  // namespace metascope
