// Per-column codecs for the columnar trace format (v3).
//
// Two column kinds:
//
//  - Integer columns (ranks, tags, region/comm ids): zigzag-delta
//    varints. Event streams are dominated by near-constant or slowly
//    counting integer sequences, so the common delta is 0 or ±1 — one
//    byte per value.
//
//  - Double columns (timestamps, byte counts): a small self-describing
//    container whose first byte selects the encoding the *encoder* found
//    smallest for this column. Every mode is bit-lossless — the decoded
//    doubles are bit-identical to what was encoded (NaN payloads, -0.0
//    and all) — which the severity-cube reproducibility contract
//    requires:
//      0  raw         little-endian f64 per value (the ceiling)
//      1  xor         byte-aligned Gorilla: XOR each value's bit pattern
//                     with the previous one, store a lead byte giving the
//                     (leading-zero-bytes, meaningful-bytes) window plus
//                     the meaningful bytes; identical consecutive values
//                     cost one byte
//      2  scaled Δ    the column proved to be an exact multiple of one
//                     scale s from a fixed probe table (the encoder
//                     verifies fl(k·s) reproduces every bit pattern
//                     before choosing this mode): store the one-byte
//                     table index of s plus zigzag varints of Δk —
//                     quantized timestamps and integral byte counts
//                     land here
//      3  scaled ΔΔ   like 2 but second-order (delta-of-delta of k);
//                     near-periodic timestamp streams collapse to one
//                     byte per value
//      4  scaled Δ+r  like 2 but lossless for *any* finite column: after
//                     the scale index comes a residual bit width W and
//                     after the Δk varints a bit-packed stream of n
//                     zigzagged residuals (W bits each, LSB-first) — the
//                     signed distance (in a total-order ULP domain over
//                     the 64-bit patterns) from fl(k·s) to the true
//                     value. Engages when the data is only near a grid —
//                     e.g. granularity-quantized timestamps nudged
//                     off-grid by a monotonicity fix-up, where the
//                     residual is 0/±1 ULP and W = 2
//      5  scaled ΔΔ+r like 4 but second-order in k
//
// Encoders write only the payload; the caller frames each column with a
// byte-length prefix so a decoder can bounds-check the block and report
// truncation/mismatch with exact offsets. Decoders consume from the
// bounds-checked Decoder facade and throw taxonomy-typed Errors on bad
// lead bytes or malformed varints; they never crash on garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/binary_io.hpp"

namespace metascope::colcodec {

/// Zigzag-delta varint encoding of an integer column (first value is a
/// delta from 0). Appends the payload to `w`.
void encode_int_column(BufWriter& w, const std::int64_t* v, std::size_t n);

/// Decodes exactly `n` integers appended by encode_int_column.
void decode_int_column(Decoder& d, std::int64_t* out, std::size_t n);

/// Encodes a double column with the smallest of the mode payloads
/// described above (mode byte + payload appended to `w`; nothing at all
/// for n == 0).
void encode_double_column(BufWriter& w, const double* v, std::size_t n);

/// Decodes exactly `n` doubles appended by encode_double_column,
/// bit-identical to the encoder's input.
void decode_double_column(Decoder& d, double* out, std::size_t n);

// --- chunked cursors (streaming reads) ---------------------------------
//
// Stateful decoders over one encoded column that produce the rows in
// caller-sized chunks instead of all at once — the windowed trace
// reader (tracing/stream) holds one cursor per column and pulls only
// the rows of the current replay window. Chunk boundaries are
// invisible in the output: any chunking decodes bit-identically to the
// batch decoders above, because every per-value transform (delta
// accumulation, XOR chaining, residual application) carries its state
// in the cursor.
//
// Both cursors borrow the file bytes (like Decoder) and are given the
// column's framed byte length up front; `finish()` re-checks the frame
// contract after the last row exactly like the batch path — a codec
// that consumed a different number of bytes than the frame declared is
// Corrupt ("column length mismatch"), and running past the end of the
// underlying buffer mid-chunk is Truncated. Error offsets are relative
// to the column payload (the batch path reports file-absolute offsets);
// codes and wording match.

/// Chunked variant of decode_int_column.
class IntColumnCursor {
 public:
  IntColumnCursor() = default;
  /// `data/size` must start at the column payload and extend to the end
  /// of the underlying file; `frame_len` is the column's declared byte
  /// length and `n` its row count.
  IntColumnCursor(const std::uint8_t* data, std::size_t size,
                  std::size_t frame_len, std::size_t n, const char* what,
                  ErrorContext ctx);

  /// Decodes the next `k` rows (produced() + k must be <= n).
  void next(std::int64_t* out, std::size_t k);
  /// After all n rows: Corrupt unless exactly frame_len bytes were used.
  void finish();

  [[nodiscard]] std::size_t produced() const { return produced_; }

 private:
  Decoder dec_{nullptr, 0};
  std::size_t frame_len_{0};
  std::size_t n_{0};
  std::size_t produced_{0};
  const char* what_{"int"};
  std::uint64_t acc_{0};
};

/// Chunked variant of decode_double_column. The mode header (mode byte,
/// scale index, residual width) is read and validated on construction;
/// for the residual-carrying modes the cursor additionally locates the
/// bit-packed residual stream (one skip-scan over the delta varints, no
/// allocation) so deltas and residuals can advance independently.
class DoubleColumnCursor {
 public:
  DoubleColumnCursor() = default;
  DoubleColumnCursor(const std::uint8_t* data, std::size_t size,
                     std::size_t frame_len, std::size_t n, const char* what,
                     ErrorContext ctx);

  void next(double* out, std::size_t k);
  void finish();

  [[nodiscard]] std::size_t produced() const { return produced_; }

 private:
  Decoder dec_{nullptr, 0};      // mode header + value/delta stream
  Decoder res_dec_{nullptr, 0};  // bit-packed residual stream (modes 4/5)
  std::size_t frame_len_{0};
  std::size_t n_{0};
  std::size_t produced_{0};
  const char* what_{"double"};
  std::uint8_t mode_{0};
  bool dod_{false};
  bool with_res_{false};
  int width_{0};
  double scale_{1.0};
  std::uint64_t prev_bits_{0};  // XOR chain state
  std::uint64_t k_{0};          // wrapping quotient accumulator
  std::uint64_t delta_{0};      // wrapping delta accumulator (ΔΔ modes)
  std::uint64_t res_buf_{0};    // residual bit buffer
  int res_avail_{0};
};

}  // namespace metascope::colcodec
