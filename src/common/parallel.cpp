#include "common/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

namespace metascope {

namespace {

// Per-task lifecycle. Parked tasks are owned by the resource they wait
// on; the Running<->Notified leg absorbs a resume() that lands while the
// suspending step is still unwinding on its worker.
constexpr int kRunning = 0;
constexpr int kParked = 1;
constexpr int kNotified = 2;

// Worker index of the current thread, so tasks resumed from inside a
// step land on the resuming worker's own deque (cheap, cache-friendly);
// other workers steal them if the owner stays busy.
thread_local std::size_t tls_worker = 0;

// The *expensive* observer hooks (clock reads for the runtime sample,
// queue-depth reads) are sampled one-in-16 per thread; at thousands of
// task steps the distributions stay representative while the hot path
// holds the replay bench's <=5% telemetry-overhead budget.
constexpr std::size_t kSampleStride = 16;
thread_local std::size_t tls_sample = 0;

inline bool sample_tick() { return tls_sample++ % kSampleStride == 0; }

// Behaviour counters batch into plain per-thread tallies and merge into
// the pool's totals once, when the worker exits — the hot path pays a
// non-atomic increment instead of a shared atomic per event. Exactness
// is preserved: workers flush before run() joins them, so the post-join
// stats see every increment.
struct LocalTally {
  std::uint64_t suspensions{0};
  std::uint64_t steals{0};
  std::uint64_t requeues{0};
};
thread_local LocalTally tls_tally;

}  // namespace

DeadlockError::DeadlockError(std::size_t stuck, std::size_t total)
    : Error("worker pool deadlocked: " + std::to_string(stuck) + " of " +
            std::to_string(total) +
            " tasks suspended with no runnable peer"),
      stuck_(stuck),
      total_(total) {}

std::size_t WorkerPool::resolve_workers(std::size_t num_tasks,
                                        std::size_t max_workers) {
  return std::min(
      num_tasks == 0 ? std::size_t{1} : num_tasks,
      max_workers != 0
          ? max_workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency()));
}

WorkerPool::WorkerPool(std::size_t num_tasks, std::size_t max_workers)
    : num_tasks_(num_tasks),
      num_workers_(resolve_workers(num_tasks, max_workers)),
      queues_(num_workers_),
      state_(new std::atomic<int>[num_tasks == 0 ? 1 : num_tasks]),
      tasks_by_worker_(num_workers_, 0) {
  for (std::size_t t = 0; t < num_tasks_; ++t)
    state_[t].store(kRunning, std::memory_order_relaxed);
  stats_.workers = num_workers_;
  stats_.tasks = num_tasks_;
}

void WorkerPool::push(std::size_t wid, std::size_t task) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(queues_[wid].m);
    queues_[wid].dq.push_back(task);
    depth = queues_[wid].dq.size();
  }
  if (sample_ && sample_tick())
    obs_->on_queue_depth(static_cast<double>(depth));
  idle_cv_.notify_one();
}

bool WorkerPool::pop_local(std::size_t wid, std::size_t& task) {
  std::lock_guard<std::mutex> lock(queues_[wid].m);
  if (queues_[wid].dq.empty()) return false;
  task = queues_[wid].dq.front();
  queues_[wid].dq.pop_front();
  return true;
}

bool WorkerPool::steal(std::size_t wid, std::size_t& task) {
  for (std::size_t k = 1; k < num_workers_; ++k) {
    WorkerQueue& victim = queues_[(wid + k) % num_workers_];
    std::lock_guard<std::mutex> lock(victim.m);
    if (victim.dq.empty()) continue;
    // Steal from the back: the front is the victim's warmest work.
    task = victim.dq.back();
    victim.dq.pop_back();
    tls_tally.steals += 1;
    if (events_) obs_->on_task_steal(task);
    return true;
  }
  return false;
}

void WorkerPool::fail(std::exception_ptr err) {
  {
    std::lock_guard<std::mutex> lock(err_m_);
    if (!first_error_) first_error_ = err;
  }
  stop_.store(true);
  idle_cv_.notify_all();
}

void WorkerPool::resume(std::size_t task) {
  if (events_) obs_->on_task_resume(task);
  for (;;) {
    int s = state_[task].load();
    if (s == kParked) {
      if (state_[task].compare_exchange_strong(s, kRunning)) {
        inflight_.fetch_add(1);
        tls_tally.requeues += 1;
        push(tls_worker, task);
        return;
      }
    } else if (s == kRunning) {
      // The task is still unwinding from the step that registered the
      // wait; leave a note for its worker to requeue it.
      if (state_[task].compare_exchange_strong(s, kNotified)) return;
    } else {
      return;  // already notified
    }
  }
}

void WorkerPool::run_task(std::size_t task, const StepFn& step) {
  // Step-runtime sample: two clock reads per sampled step (a step runs a
  // task until it finishes or suspends, so this is coarse), skipped
  // entirely when no observer asked for samples.
  const bool timed = sample_ && sample_tick();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  if (events_) obs_->on_task_begin(task);
  StepOutcome r;
  try {
    r = step(task);
  } catch (...) {
    fail(std::current_exception());
    return;
  }
  if (timed) {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    obs_->on_task_runtime_us(us);
  }
  if (events_) obs_->on_task_end(task, r == StepOutcome::Suspend);
  if (r == StepOutcome::Done) {
    tasks_by_worker_[tls_worker] += 1;
    const std::size_t done = done_.fetch_add(1) + 1;
    inflight_.fetch_sub(1);
    if (obs_) obs_->on_task_done(done, num_tasks_);
    if (done_.load() == num_tasks_) idle_cv_.notify_all();
    return;
  }
  tls_tally.suspensions += 1;
  int expected = kRunning;
  if (state_[task].compare_exchange_strong(expected, kParked)) {
    inflight_.fetch_sub(1);
  } else {
    // resume() beat us to it (state is Notified): the wait is already
    // satisfied, so the task goes straight back to our deque.
    state_[task].store(kRunning);
    tls_tally.requeues += 1;
    push(tls_worker, task);
  }
}

void WorkerPool::flush_tally() {
  LocalTally& t = tls_tally;
  {
    std::lock_guard<std::mutex> lock(tally_m_);
    total_suspensions_ += t.suspensions;
    total_steals_ += t.steals;
    total_requeues_ += t.requeues;
  }
  t = LocalTally{};
}

void WorkerPool::worker_loop(std::size_t wid, const StepFn& step) {
  tls_worker = wid;
  if (events_) obs_->on_worker_attach(wid);
  // Flush the thread's tally on every exit path of the loop.
  struct Flusher {
    WorkerPool* p;
    ~Flusher() { p->flush_tally(); }
  } flusher{this};
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    std::size_t task;
    if (pop_local(wid, task) || steal(wid, task)) {
      run_task(task, step);
      continue;
    }
    if (done_.load() == num_tasks_) return;
    if (inflight_.load() == 0) {
      // Re-check completion: the final Done increments done_ before
      // inflight_, so a zero inflight_ with done_ short of the total
      // means the remaining tasks are parked with no runner left to
      // ever wake them.
      if (done_.load() == num_tasks_) return;
      deadlock_.store(true);
      stop_.store(true);
      idle_cv_.notify_all();
      return;
    }
    // Another worker holds runnable work (or a resume is in flight);
    // doze until pushed work notifies us. The timeout makes the loop
    // robust against the notify racing our wait.
    std::unique_lock<std::mutex> lock(idle_m_);
    idle_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
}

void WorkerPool::run(const StepFn& step) {
  if (num_tasks_ == 0) return;
  sample_ = obs_ != nullptr && obs_->wants_samples();
  events_ = obs_ != nullptr && obs_->wants_events();
  inflight_.store(num_tasks_);
  for (std::size_t t = 0; t < num_tasks_; ++t) push(t % num_workers_, t);

  std::vector<std::thread> pool;
  pool.reserve(num_workers_);
  for (std::size_t w = 0; w < num_workers_; ++w)
    pool.emplace_back([this, w, &step] { worker_loop(w, step); });
  for (auto& t : pool) t.join();

  stats_.suspensions = total_suspensions_;
  stats_.steals = total_steals_;
  stats_.requeues = total_requeues_;
  stats_.tasks_per_worker = tasks_by_worker_;

  if (first_error_) std::rethrow_exception(first_error_);
  if (deadlock_.load())
    throw DeadlockError(num_tasks_ - done_.load(), num_tasks_);
}

ParallelForStats parallel_for(std::size_t n, std::size_t max_workers,
                              const std::function<void(std::size_t)>& body,
                              WorkerPool::Observer* obs) {
  ParallelForStats st;
  st.items = n;
  if (n == 0) return st;
  const std::size_t workers = WorkerPool::resolve_workers(n, max_workers);
  if (workers <= 1 || n == 1) {
    // Inline path fires the item events on the calling thread (no
    // worker attach — the caller keeps its own thread label).
    const bool events = obs != nullptr && obs->wants_events();
    for (std::size_t i = 0; i < n; ++i) {
      if (events) obs->on_task_begin(i);
      body(i);
      if (events) obs->on_task_end(i, false);
    }
    st.workers = 1;
    st.items_per_worker.assign(1, n);
    return st;
  }
  WorkerPool pool(n, workers);
  pool.set_observer(obs);
  pool.run([&body](std::size_t i) {
    body(i);
    return StepOutcome::Done;
  });
  st.workers = pool.stats().workers;
  st.steals = pool.stats().steals;
  st.items_per_worker = pool.stats().tasks_per_worker;
  return st;
}

}  // namespace metascope
