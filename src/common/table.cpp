#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace metascope {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), align_(headers_.size(), Align::Right) {
  MSC_CHECK(!headers_.empty(), "table needs at least one column");
  align_[0] = Align::Left;
}

void TextTable::add_row(std::vector<std::string> cells) {
  MSC_CHECK(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t col, Align a) {
  MSC_CHECK(col < align_.size(), "column out of range");
  align_[col] = a;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      const auto pad = width[c] - row[c].size();
      if (align_[c] == Align::Right)
        os << std::string(pad, ' ') << row[c];
      else
        os << row[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::sci(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*E", precision, v);
  return buf;
}

std::string TextTable::fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string TextTable::percent(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f %%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace metascope
