#include "common/binary_io.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace metascope {

void BufWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void BufWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
}

void BufWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
}

void BufWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BufWriter::put_svarint(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void BufWriter::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void BufWriter::put_string(const std::string& s) {
  put_varint(s.size());
  put_bytes(s.data(), s.size());
}

void BufWriter::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void BufReader::need(std::size_t n) const {
  if (pos_ + n > size_) throw Error("binary read past end of buffer");
}

std::uint8_t BufReader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t BufReader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t BufReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t BufReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    need(1);
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64) throw Error("varint too long");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

std::int64_t BufReader::get_svarint() {
  const std::uint64_t u = get_varint();
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}

double BufReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string BufReader::get_string() {
  const std::uint64_t n = get_varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void write_file_bytes(const std::string& path,
                      const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("write failed: " + path);
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw Error("cannot open for read: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw Error("read failed: " + path);
  return bytes;
}

}  // namespace metascope
