#include "common/binary_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace metascope {

void BufWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void BufWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
}

void BufWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
}

void BufWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BufWriter::put_svarint(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void BufWriter::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void BufWriter::put_string(const std::string& s) {
  put_varint(s.size());
  put_bytes(s.data(), s.size());
}

void BufWriter::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void BufReader::need(std::size_t n) const {
  // size_ - pos_ cannot underflow (pos_ <= size_ is an invariant);
  // comparing against it instead of pos_ + n avoids the wraparound a
  // huge attacker-controlled n would cause.
  if (n > size_ - pos_) throw Error("binary read past end of buffer");
}

std::uint8_t BufReader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t BufReader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t BufReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t BufReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    need(1);
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64) throw Error("varint too long");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

std::int64_t BufReader::get_svarint() {
  const std::uint64_t u = get_varint();
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}

double BufReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string BufReader::get_string() {
  const std::uint64_t n = get_varint();
  if (n > remaining()) throw Error("binary read past end of buffer");
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

// --- Decoder -------------------------------------------------------------

void Decoder::fail(ErrorCode code, const std::string& msg) const {
  ErrorContext ctx = ctx_;
  ctx.byte_offset = static_cast<std::int64_t>(pos_);
  throw Error(code, msg, std::move(ctx));
}

void Decoder::need(std::size_t n, const char* what) const {
  if (n > size_ - pos_) {
    fail(ErrorCode::Truncated,
         std::string("truncated: need ") + std::to_string(n) +
             " more byte(s) for " + what + " but only " +
             std::to_string(size_ - pos_) + " remain");
  }
}

std::uint8_t Decoder::get_u8() {
  need(1, "u8");
  return data_[pos_++];
}

std::uint32_t Decoder::get_u32() {
  need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Decoder::get_u64() {
  need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Decoder::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    need(1, "varint");
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64) fail(ErrorCode::Corrupt, "varint longer than 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

std::int64_t Decoder::get_svarint() {
  const std::uint64_t u = get_varint();
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}

double Decoder::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Decoder::get_string(const char* what) {
  const std::uint64_t n = get_varint();
  if (n > kMaxStringBytes)
    fail(ErrorCode::LimitExceeded,
         std::string(what) + " length " + std::to_string(n) +
             " exceeds the " + std::to_string(kMaxStringBytes) +
             "-byte string cap");
  need(static_cast<std::size_t>(n), what);
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::uint64_t Decoder::get_count(const char* what,
                                 std::size_t min_bytes_per_item) {
  const std::uint64_t n = get_varint();
  if (n > kMaxCount)
    fail(ErrorCode::LimitExceeded,
         std::string("count of ") + what + " (" + std::to_string(n) +
             ") exceeds the sanity cap of " + std::to_string(kMaxCount));
  // A zero per-item floor means the count has no payload of its own
  // (e.g. the defs rank count) — only the absolute cap applies then.
  if (min_bytes_per_item > 0) {
    // n <= 2^27 and min is a small constant, so the product cannot
    // overflow.
    const std::uint64_t floor_bytes = n * min_bytes_per_item;
    if (floor_bytes > remaining())
      fail(ErrorCode::Truncated,
           std::string("truncated: header promises ") + std::to_string(n) +
               " " + what + " (>= " + std::to_string(floor_bytes) +
               " bytes) but only " + std::to_string(remaining()) +
               " payload bytes are present");
  }
  return n;
}

void Decoder::expect_magic(std::uint32_t expected, const char* what) {
  const std::size_t at = pos_;
  const std::uint32_t got = get_u32();
  if (got != expected) {
    pos_ = at;
    fail(ErrorCode::Corrupt,
         std::string("bad ") + what + " magic (got 0x" + [&] {
           char buf[16];
           std::snprintf(buf, sizeof buf, "%08X", got);
           return std::string(buf);
         }() + ")");
  }
}

void Decoder::expect_version(std::uint32_t expected, const char* what) {
  const std::size_t at = pos_;
  const std::uint32_t got = get_u32();
  if (got != expected) {
    pos_ = at;
    fail(ErrorCode::VersionMismatch,
         std::string("unsupported ") + what + " format version " +
             std::to_string(got) + " (this build reads version " +
             std::to_string(expected) + ")");
  }
}

std::uint32_t Decoder::expect_version_in(std::uint32_t lo, std::uint32_t hi,
                                         const char* what) {
  const std::size_t at = pos_;
  const std::uint32_t got = get_u32();
  if (got < lo || got > hi) {
    pos_ = at;
    fail(ErrorCode::VersionMismatch,
         std::string("unsupported ") + what + " format version " +
             std::to_string(got) + " (this build reads versions " +
             std::to_string(lo) + ".." + std::to_string(hi) + ")");
  }
  return got;
}

const std::uint8_t* Decoder::get_raw(std::size_t n, const char* what) {
  need(n, what);
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

void Decoder::require_end(const char* what) {
  if (pos_ != size_)
    fail(ErrorCode::Corrupt, std::string("trailing bytes in ") + what + " (" +
                                 std::to_string(size_ - pos_) +
                                 " undecoded)");
}

// --- whole-file helpers --------------------------------------------------

void write_file_bytes(const std::string& path,
                      const std::vector<std::uint8_t>& bytes) {
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw Error(ErrorCode::Io,
                std::string("cannot open for write") +
                    (errno ? std::string(" (") + std::strerror(errno) + ")"
                           : ""),
                ErrorContext{path, -1, -1});
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error(ErrorCode::Io, "write failed",
                        ErrorContext{path, -1, -1});
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    throw Error(ErrorCode::Io,
                std::string("cannot open for read") +
                    (errno ? std::string(" (") + std::strerror(errno) + ")"
                           : ""),
                ErrorContext{path, -1, -1});
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw Error(ErrorCode::Io, "read failed",
                       ErrorContext{path, -1, -1});
  return bytes;
}

// --- MappedFile ----------------------------------------------------------

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    data_ = other.data_;
    size_ = other.size_;
    map_ = other.map_;
    map_len_ = other.map_len_;
    fallback_ = std::move(other.fallback_);
    if (!fallback_.empty()) data_ = fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.map_ = nullptr;
    other.map_len_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
#if defined(__unix__) || defined(__APPLE__)
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
  map_ = nullptr;
  map_len_ = 0;
  data_ = nullptr;
  size_ = 0;
}

MappedFile MappedFile::open(const std::string& path, bool allow_mmap) {
  MappedFile f;
#if defined(__unix__) || defined(__APPLE__)
  if (allow_mmap) {
    errno = 0;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
      throw Error(ErrorCode::Io,
                  std::string("cannot open for read (") +
                      std::strerror(errno) + ")",
                  ErrorContext{path, -1, -1});
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      const std::string why =
          errno ? std::strerror(errno) : "not a regular file";
      ::close(fd);
      throw Error(ErrorCode::Io, "cannot stat for read (" + why + ")",
                  ErrorContext{path, -1, -1});
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      // mmap rejects zero-length mappings; an empty file is a valid
      // (empty) view that simply fails decoding with Truncated later.
      ::close(fd);
      return f;
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (map != MAP_FAILED) {
#if defined(POSIX_MADV_SEQUENTIAL)
      ::posix_madvise(map, size, POSIX_MADV_SEQUENTIAL);
#endif
      f.map_ = map;
      f.map_len_ = size;
      f.data_ = static_cast<const std::uint8_t*>(map);
      f.size_ = size;
      return f;
    }
    // Mapping refused (e.g. a file system without mmap support): fall
    // through to the owned-buffer path.
  }
#endif
  f.fallback_ = read_file_bytes(path);
  f.data_ = f.fallback_.data();
  f.size_ = f.fallback_.size();
  return f;
}

}  // namespace metascope
