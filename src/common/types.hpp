// Core vocabulary types shared by every MetaScope module.
//
// Two kinds of time flow through the system and must never be confused:
//  - TrueTime:  the simulator's global virtual time (perfect, global clock).
//  - LocalTime: a timestamp read from a node-local clock (offset + drift).
// Both are seconds held in a double; the strong wrappers below make the
// producer/consumer contract explicit in every signature.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace metascope {

/// Strong integral identifier. Tag disambiguates unrelated id spaces.
template <typename Tag, typename Rep = std::int32_t>
struct StrongId {
  using rep_type = Rep;

  Rep value{-1};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value >= 0; }
  [[nodiscard]] constexpr Rep get() const { return value; }

  constexpr auto operator<=>(const StrongId&) const = default;
};

struct MetahostTag {};
struct NodeTag {};
struct ProcessTag {};
struct ThreadTag {};
struct RegionTag {};
struct CommTag {};
struct CallPathTag {};
struct MetricTag {};
struct LocationTag {};

/// Identifies one metahost (constituent machine of the metacomputer).
using MetahostId = StrongId<MetahostTag>;
/// Identifies one SMP node, globally unique across metahosts.
using NodeId = StrongId<NodeTag>;
/// MPI rank in the global communicator.
using Rank = std::int32_t;
/// Identifies a source-code region (function) in the region table.
using RegionId = StrongId<RegionTag>;
/// Identifies a communicator.
using CommId = StrongId<CommTag>;
/// Identifies a call-tree node (call path).
using CallPathId = StrongId<CallPathTag>;
/// Identifies a metric / pattern in the metric tree.
using MetricId = StrongId<MetricTag>;
/// Flat index of a location in the system tree (== rank for 1 thread/proc).
using LocationId = StrongId<LocationTag>;

inline constexpr Rank kNoRank = -1;
inline constexpr int kAnyTag = -1;

/// Seconds on the simulator's perfect global clock.
struct TrueTime {
  double s{0.0};
  constexpr auto operator<=>(const TrueTime&) const = default;
};

/// Seconds as read from some node-local (skewed, drifting) clock.
struct LocalTime {
  double s{0.0};
  constexpr auto operator<=>(const LocalTime&) const = default;
};

/// A duration in seconds. Plain double is acceptable for arithmetic-heavy
/// paths; the alias documents intent.
using Dur = double;

inline constexpr double kInfTime = std::numeric_limits<double>::infinity();

constexpr TrueTime operator+(TrueTime t, Dur d) { return TrueTime{t.s + d}; }
constexpr Dur operator-(TrueTime a, TrueTime b) { return a.s - b.s; }
constexpr LocalTime operator+(LocalTime t, Dur d) { return LocalTime{t.s + d}; }
constexpr Dur operator-(LocalTime a, LocalTime b) { return a.s - b.s; }

/// Convenience literals for readable latency/bandwidth constants.
constexpr Dur microseconds(double us) { return us * 1e-6; }
constexpr Dur milliseconds(double ms) { return ms * 1e-3; }
constexpr double mega_bytes(double mb) { return mb * 1e6; }
constexpr double giga_bytes(double gb) { return gb * 1e9; }

}  // namespace metascope

namespace std {
template <typename Tag, typename Rep>
struct hash<metascope::StrongId<Tag, Rep>> {
  size_t operator()(const metascope::StrongId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};
}  // namespace std
