// Deterministic random number generation.
//
// All stochastic behaviour in MetaScope (link jitter, clock perturbation,
// workload randomness) draws from Rng instances seeded explicitly, so a
// given experiment configuration always reproduces the same traces bit for
// bit on any host. std::mt19937 and std::*_distribution are avoided because
// their outputs are not pinned across standard library implementations.
#pragma once

#include <cstdint>

namespace metascope {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Normal truncated below at `lo` (resampled); used for latencies that
  /// must remain positive.
  double normal_at_least(double mean, double stddev, double lo);

  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Log-normal such that the *resulting* distribution has the given
  /// mean and standard deviation (moment-matched).
  double lognormal_with_moments(double mean, double stddev);

  /// Derives an independent child stream; children with different salts
  /// are statistically independent of the parent and of each other.
  Rng split(std::uint64_t salt) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace metascope
