// Streaming and batch statistics used by latency surveys (Table 1),
// synchronization-error ablations, and benchmark reporting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace metascope {

/// Numerically stable streaming mean/variance (Welford) with min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Batch helpers over a sample vector.
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0, 1]. Sorts a copy.
double quantile_of(std::vector<double> xs, double q);

/// Fixed-width histogram for diagnostic output.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const;

  /// Renders an ASCII bar chart, `width` chars for the largest bin.
  [[nodiscard]] std::string render(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_{0};
  std::size_t overflow_{0};
  std::size_t total_{0};
};

/// Ordinary least squares fit y = a + b*x. Used by clock interpolation
/// diagnostics and drift estimation.
struct LinearFit {
  double intercept{0.0};
  double slope{0.0};
  /// Residual RMS around the fit.
  double rms{0.0};
};

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys);

}  // namespace metascope
