#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace metascope {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }
double RunningStats::max() const { return n_ ? max_ : 0.0; }

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double quantile_of(std::vector<double> xs, double q) {
  MSC_CHECK(!xs.empty(), "quantile of empty sample");
  MSC_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(i);
  return xs[i] * (1.0 - frac) + xs[i + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  MSC_CHECK(hi > lo, "histogram range inverted");
  MSC_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

std::size_t Histogram::bin_count(std::size_t i) const {
  MSC_CHECK(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(int width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<int>(static_cast<double>(counts_[i]) /
                                      static_cast<double>(peak) * width);
    os << bin_lo(i) << "\t" << counts_[i] << "\t";
    for (int j = 0; j < bar; ++j) os << '#';
    os << '\n';
  }
  return os.str();
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  MSC_CHECK(xs.size() == ys.size(), "fit_line size mismatch");
  MSC_CHECK(xs.size() >= 2, "fit_line needs at least two points");
  const auto n = static_cast<double>(xs.size());
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  LinearFit f;
  f.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  f.intercept = my - f.slope * mx;
  double ss = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (f.intercept + f.slope * xs[i]);
    ss += r * r;
  }
  f.rms = std::sqrt(ss / n);
  return f;
}

}  // namespace metascope
