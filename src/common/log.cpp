#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace metascope {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  // Serialize lines: the parallel analyzer logs from worker threads.
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[metascope " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace metascope
