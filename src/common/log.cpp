#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace metascope {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool parse_log_level(const std::string& name, LogLevel& out) {
  if (name == "debug") out = LogLevel::Debug;
  else if (name == "info") out = LogLevel::Info;
  else if (name == "warn") out = LogLevel::Warn;
  else if (name == "error") out = LogLevel::Error;
  else if (name == "off") out = LogLevel::Off;
  else return false;
  return true;
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  // Monotonic elapsed time since the first log line, so lines from a
  // long pipeline run can be correlated without wall-clock parsing.
  static const auto start = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%9.3fs", elapsed);
  // Serialize lines: the parallel analyzer logs from worker threads.
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << '[' << stamp << " metascope " << level_name(level) << "] "
            << msg << '\n';
}
}  // namespace detail

}  // namespace metascope
