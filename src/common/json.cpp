#include "common/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace metascope {

bool Json::as_bool() const {
  MSC_CHECK(type_ == Type::Bool, "json: not a bool");
  return bool_;
}

double Json::as_number() const {
  MSC_CHECK(type_ == Type::Number, "json: not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Json::as_string() const {
  MSC_CHECK(type_ == Type::String, "json: not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  MSC_CHECK(type_ == Type::Array, "json: not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  MSC_CHECK(type_ == Type::Object, "json: not an object");
  return obj_;
}

const Json& Json::at(const std::string& key) const {
  const auto& o = as_object();
  auto it = o.find(key);
  MSC_CHECK(it != o.end(), "json: missing key '" + key + "'");
  return it->second;
}

bool Json::has(const std::string& key) const {
  return type_ == Type::Object && obj_.count(key) > 0;
}

double Json::number_or(const std::string& key, double dflt) const {
  return has(key) ? at(key).as_number() : dflt;
}

std::int64_t Json::int_or(const std::string& key, std::int64_t dflt) const {
  return has(key) ? at(key).as_int() : dflt;
}

std::string Json::string_or(const std::string& key,
                            const std::string& dflt) const {
  return has(key) ? at(key).as_string() : dflt;
}

bool Json::bool_or(const std::string& key, bool dflt) const {
  return has(key) ? at(key).as_bool() : dflt;
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ == Type::Null) type_ = Type::Object;
  MSC_CHECK(type_ == Type::Object, "json: set() on non-object");
  obj_[key] = std::move(v);
  return *this;
}

Json& Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  MSC_CHECK(type_ == Type::Array, "json: push_back() on non-array");
  arr_.push_back(std::move(v));
  return *this;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null:
      return true;
    case Type::Bool:
      return bool_ == other.bool_;
    case Type::Number:
      return num_ == other.num_;
    case Type::String:
      return str_ == other.str_;
    case Type::Array:
      return arr_ == other.arr_;
    case Type::Object:
      return obj_ == other.obj_;
  }
  return false;
}

namespace {

void escape_to(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void number_to(std::ostringstream& os, double n) {
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    os << static_cast<std::int64_t>(n);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    os << buf;
  }
}

}  // namespace

static void dump_rec(const Json& v, std::ostringstream& os, int indent,
                     int depth);

static void newline_indent(std::ostringstream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

static void dump_rec(const Json& v, std::ostringstream& os, int indent,
                     int depth) {
  switch (v.type()) {
    case Json::Type::Null:
      os << "null";
      break;
    case Json::Type::Bool:
      os << (v.as_bool() ? "true" : "false");
      break;
    case Json::Type::Number:
      number_to(os, v.as_number());
      break;
    case Json::Type::String:
      escape_to(os, v.as_string());
      break;
    case Json::Type::Array: {
      const auto& a = v.as_array();
      if (a.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      bool first = true;
      for (const auto& e : a) {
        if (!first) os << ',';
        first = false;
        newline_indent(os, indent, depth + 1);
        dump_rec(e, os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Json::Type::Object: {
      const auto& o = v.as_object();
      if (o.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [k, e] : o) {
        if (!first) os << ',';
        first = false;
        newline_indent(os, indent, depth + 1);
        escape_to(os, k);
        os << (indent < 0 ? ":" : ": ");
        dump_rec(e, os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump_rec(*this, os, indent, 0);
  return os.str();
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : t_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != t_.size()) fail("trailing characters");
    return v;
  }

 private:
  /// Nesting cap: the parser recurses per container level, so an
  /// adversarial "[[[[..." must become a parse error long before it
  /// becomes a stack overflow.
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < t_.size(); ++i) {
      if (t_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "json parse error at line " << line << " col " << col << ": " << msg;
    throw Error(ErrorCode::Corrupt, os.str(),
                ErrorContext{"", -1, static_cast<std::int64_t>(pos_)});
  }

  void skip_ws() {
    while (pos_ < t_.size() &&
           (t_[pos_] == ' ' || t_[pos_] == '\t' || t_[pos_] == '\n' ||
            t_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= t_.size()) fail("unexpected end of input");
    return t_[pos_];
  }

  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (get() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (t_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    if (depth_ > kMaxDepth) fail("nesting deeper than 256 levels");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    ++depth_;
    Json::Object o;
    skip_ws();
    if (peek() == '}') {
      get();
      --depth_;
      return Json(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o[std::move(key)] = parse_value();
      skip_ws();
      const char c = get();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    --depth_;
    return Json(std::move(o));
  }

  Json parse_array() {
    expect('[');
    ++depth_;
    Json::Array a;
    skip_ws();
    if (peek() == ']') {
      get();
      --depth_;
      return Json(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      const char c = get();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    --depth_;
    return Json(std::move(a));
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (true) {
      const char c = get();
      if (c == '"') break;
      if (c == '\\') {
        const char e = get();
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = get();
              code <<= 4;
              if (h >= '0' && h <= '9')
                code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else
                fail("bad \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        s += c;
      }
    }
    return s;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') get();
    while (pos_ < t_.size() &&
           (std::isdigit(static_cast<unsigned char>(t_[pos_])) ||
            t_[pos_] == '.' || t_[pos_] == 'e' || t_[pos_] == 'E' ||
            t_[pos_] == '+' || t_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    try {
      return Json(std::stod(t_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  const std::string& t_;
  std::size_t pos_{0};
  int depth_{0};
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

Json load_json_file(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw Error(ErrorCode::Io,
                std::string("cannot open json file") +
                    (errno ? std::string(" (") + std::strerror(errno) + ")"
                           : ""),
                ErrorContext{path, -1, -1});
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return Json::parse(ss.str());
  } catch (const Error& e) {
    throw e.with_context(ErrorContext{path, -1, -1});
  }
}

namespace {

/// Creates `path`'s parent directories if absent. Failure is reported
/// by the subsequent open, which has the errno worth showing.
void create_parent_dirs(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
}

[[noreturn]] void throw_open_error(const char* what, const std::string& path,
                                   int err) {
  std::string msg = std::string(what) + ": " + path;
  if (err != 0) msg += " (" + std::string(std::strerror(err)) + ")";
  throw Error(msg);
}

}  // namespace

void save_json_file(const std::string& path, const Json& v) {
  create_parent_dirs(path);
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw_open_error("cannot write json file", path, errno);
  out << v.dump(2) << '\n';
  if (!out) throw Error("write failed: " + path);
}

void ensure_writable_file(const std::string& path) {
  create_parent_dirs(path);
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw_open_error("cannot write output file", path, errno);
}

}  // namespace metascope
