// Interned id <-> string table used for region names, metric names, and
// any other string-keyed definition records in traces.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace metascope {

template <typename Id>
class NameTable {
 public:
  /// Returns the id for `name`, interning it on first use.
  Id intern(const std::string& name) {
    auto it = index_.find(name);
    if (it != index_.end()) return Id{it->second};
    const auto id = static_cast<typename Id::rep_type>(names_.size());
    names_.push_back(name);
    index_.emplace(name, id);
    return Id{id};
  }

  /// Looks up an existing name; throws if absent.
  [[nodiscard]] Id find(const std::string& name) const {
    auto it = index_.find(name);
    MSC_CHECK(it != index_.end(), "unknown name: " + name);
    return Id{it->second};
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return index_.count(name) > 0;
  }

  [[nodiscard]] const std::string& name(Id id) const {
    MSC_CHECK(id.valid() &&
                  static_cast<std::size_t>(id.get()) < names_.size(),
              "name id out of range");
    return names_[static_cast<std::size_t>(id.get())];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& all() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, typename Id::rep_type> index_;
};

}  // namespace metascope
