#include "common/column_codec.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace metascope::colcodec {

namespace {

constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeXor = 1;
constexpr std::uint8_t kModeScaledDelta = 2;
constexpr std::uint8_t kModeScaledDod = 3;
constexpr std::uint8_t kModeScaledDeltaRes = 4;
constexpr std::uint8_t kModeScaledDodRes = 5;

// Scales the encoder probes for the scaled-integer modes, largest first
// so the quotients (and their deltas) come out smallest. 1.0 catches
// integral byte counts; 1e-6/1e-7/1e-9 catch clock-granularity-quantized
// timestamps. The scaled modes store the *index* into this table (one
// byte instead of an f64), which makes the table part of the v3 format:
// entries may only be appended, never reordered or removed.
constexpr double kScales[] = {1.0, 1e-3, 1e-6, 1e-7, 1e-9};
constexpr std::size_t kNumScales = sizeof(kScales) / sizeof(kScales[0]);

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double double_of(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

/// Total-order mapping of double bit patterns onto uint64 (monotone in
/// the numeric value): negative doubles flip all bits, non-negative
/// ones flip the sign bit. Bijective, so residual arithmetic in this
/// domain reconstructs any bit pattern exactly — including -0.0 and
/// NaN payloads.
std::uint64_t to_ordered(std::uint64_t b) {
  return (b >> 63) != 0 ? ~b : (b | 0x8000000000000000ULL);
}

std::uint64_t from_ordered(std::uint64_t o) {
  return (o >> 63) != 0 ? (o ^ 0x8000000000000000ULL) : ~o;
}

std::size_t varint_len(std::uint64_t u) {
  std::size_t n = 1;
  while (u >= 0x80) {
    u >>= 7;
    ++n;
  }
  return n;
}

std::size_t svarint_len(std::int64_t v) { return varint_len(zigzag(v)); }

/// One scale's quotients and ULP-domain residuals: k_i = llround(v_i/s),
/// r_i = ordered(v_i) - ordered(fl(k_i*s)). The residual is exact by
/// construction (the ordered mapping is bijective), so *any* scale gives
/// a lossless encoding; exact == true means every residual is zero and
/// the cheaper residual-free modes apply. `usable` is false when some
/// value is non-finite or the quotient overflows llround's domain.
struct ScaleFit {
  bool usable{false};
  bool exact{true};
  std::vector<std::int64_t> k;
  std::vector<std::int64_t> res;
};

ScaleFit fit_scale(const double* v, std::size_t n, double scale) {
  ScaleFit f;
  f.k.reserve(n);
  f.res.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(v[i])) return f;
    const double q = v[i] / scale;
    if (!(std::fabs(q) < 9.0e15)) return f;  // keep llround defined
    const std::int64_t ki = std::llround(q);
    const double approx = static_cast<double>(ki) * scale;
    const std::int64_t ri =
        static_cast<std::int64_t>(to_ordered(bits_of(v[i])) -
                                  to_ordered(bits_of(approx)));
    if (ri != 0) f.exact = false;
    f.k.push_back(ki);
    f.res.push_back(ri);
  }
  f.usable = true;
  return f;
}

std::size_t delta_stream_len(const std::vector<std::int64_t>& k) {
  std::size_t len = 0;
  std::int64_t prev = 0;
  for (const std::int64_t ki : k) {
    len += svarint_len(ki - prev);
    prev = ki;
  }
  return len;
}

std::size_t dod_stream_len(const std::vector<std::int64_t>& k) {
  std::size_t len = 0;
  std::int64_t prev = 0;
  std::int64_t prev_delta = 0;
  for (const std::int64_t ki : k) {
    const std::int64_t d = ki - prev;
    len += svarint_len(d - prev_delta);
    prev_delta = d;
    prev = ki;
  }
  return len;
}

/// Bits needed per residual when the column's residuals are bit-packed:
/// the widest zigzagged residual decides for everyone (they cluster at
/// 0/±1 ULP, so this is typically 0-2 bits).
int res_bit_width(const std::vector<std::int64_t>& res) {
  std::uint64_t all = 0;
  for (const std::int64_t ri : res) all |= zigzag(ri);
  return std::bit_width(all);
}

std::size_t res_packed_len(std::size_t n, int w) {
  return (n * static_cast<std::size_t>(w) + 7) / 8;
}

void put_delta_stream(BufWriter& w, const std::vector<std::int64_t>& k) {
  std::int64_t prev = 0;
  for (const std::int64_t ki : k) {
    w.put_svarint(ki - prev);
    prev = ki;
  }
}

void put_dod_stream(BufWriter& w, const std::vector<std::int64_t>& k) {
  std::int64_t prev = 0;
  std::int64_t prev_delta = 0;
  for (const std::int64_t ki : k) {
    const std::int64_t d = ki - prev;
    w.put_svarint(d - prev_delta);
    prev_delta = d;
    prev = ki;
  }
}

/// LSB-first bit-packing of the zigzagged residuals at `width` bits
/// each; the final partial byte is zero-padded.
void put_res_bits(BufWriter& w, const std::vector<std::int64_t>& res,
                  int width) {
  std::uint64_t buf = 0;
  int filled = 0;
  for (const std::int64_t ri : res) {
    std::uint64_t u = zigzag(ri);
    int left = width;
    while (left > 0) {
      const int take = left < 8 - filled ? left : 8 - filled;
      buf |= (u & ((1ULL << take) - 1)) << filled;
      u >>= take;
      filled += take;
      left -= take;
      if (filled == 8) {
        w.put_u8(static_cast<std::uint8_t>(buf));
        buf = 0;
        filled = 0;
      }
    }
  }
  if (filled != 0) w.put_u8(static_cast<std::uint8_t>(buf));
}

std::size_t xor_stream_len(const double* v, std::size_t n) {
  std::size_t len = 0;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = bits_of(v[i]);
    const std::uint64_t x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      ++len;
      continue;
    }
    const int lz = std::countl_zero(x) / 8;
    const int tz = std::countr_zero(x) / 8;
    len += 1 + static_cast<std::size_t>(8 - lz - tz);
  }
  return len;
}

void put_xor_stream(BufWriter& w, const double* v, std::size_t n) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = bits_of(v[i]);
    const std::uint64_t x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      w.put_u8(0);
      continue;
    }
    const int lz = std::countl_zero(x) / 8;
    const int tz = std::countr_zero(x) / 8;
    const int m = 8 - lz - tz;
    // Lead byte: 0 is reserved for "same value", so the window is
    // encoded off by one: ((lz << 3) | (m - 1)) + 1, range 1..64.
    w.put_u8(static_cast<std::uint8_t>(((lz << 3) | (m - 1)) + 1));
    std::uint64_t y = x >> (8 * tz);
    for (int j = 0; j < m; ++j) {
      w.put_u8(static_cast<std::uint8_t>(y & 0xFF));
      y >>= 8;
    }
  }
}

}  // namespace

void encode_int_column(BufWriter& w, const std::int64_t* v, std::size_t n) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    w.put_svarint(v[i] - prev);
    prev = v[i];
  }
}

void decode_int_column(Decoder& d, std::int64_t* out, std::size_t n) {
  // Accumulate in uint64 so a hostile delta stream wraps instead of
  // hitting signed overflow; the cast back is two's-complement exact.
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::uint64_t>(d.get_svarint());
    out[i] = static_cast<std::int64_t>(acc);
  }
}

void encode_double_column(BufWriter& w, const double* v, std::size_t n) {
  if (n == 0) return;

  // Candidate sizes: raw is the ceiling; XOR always applies; the exact
  // scaled modes apply when one scale reproduces every bit pattern; the
  // residual-corrected scaled modes apply to any finite column (the
  // per-value ULP residual repairs the rounding, so they stay lossless
  // even when the data is only *near* a grid — e.g. quantized
  // timestamps nudged by a monotonicity fix-up). The smallest encoding
  // wins. Sizes below exclude the shared mode byte; the scaled modes
  // carry a one-byte scale index, the residual ones also a one-byte
  // residual bit width plus the packed residuals.
  std::size_t best_len = 8 * n;
  std::uint8_t best_mode = kModeRaw;
  std::uint8_t best_scale_idx = 0;
  int best_width = 0;
  ScaleFit best_fit;

  const std::size_t xor_len = xor_stream_len(v, n);
  if (xor_len < best_len) {
    best_len = xor_len;
    best_mode = kModeXor;
  }

  // Sample-based prune before the O(n) fits: a prefix's residual bit
  // width only grows with more values, so a scale whose sample already
  // needs wide residuals (> 20 bits ≈ 2.5 B/value packed) cannot beat
  // XOR/raw on the full column and is skipped without a full pass.
  constexpr std::size_t kSampleN = 64;
  constexpr int kHopelessResBits = 20;
  const std::size_t sample_n = n < kSampleN ? n : kSampleN;
  for (std::size_t si = 0; si < kNumScales; ++si) {
    ScaleFit sample = fit_scale(v, sample_n, kScales[si]);
    if (!sample.usable) continue;
    if (!sample.exact && res_bit_width(sample.res) > kHopelessResBits)
      continue;
    ScaleFit f = sample_n == n ? std::move(sample)
                               : fit_scale(v, n, kScales[si]);
    if (!f.usable) continue;
    const std::size_t dlen = delta_stream_len(f.k);
    const std::size_t ddlen = dod_stream_len(f.k);
    const int width = res_bit_width(f.res);
    const std::size_t rlen = 1 + res_packed_len(n, width);
    struct Candidate {
      std::uint8_t mode;
      std::size_t len;
      bool valid;
    } const candidates[] = {
        {kModeScaledDelta, 1 + dlen, f.exact},
        {kModeScaledDod, 1 + ddlen, f.exact},
        {kModeScaledDeltaRes, 1 + dlen + rlen, true},
        {kModeScaledDodRes, 1 + ddlen + rlen, true},
    };
    bool took = false;
    for (const auto& c : candidates) {
      if (!c.valid || c.len >= best_len) continue;
      best_len = c.len;
      best_mode = c.mode;
      best_scale_idx = static_cast<std::uint8_t>(si);
      best_width = width;
      took = true;
    }
    if (took) best_fit = std::move(f);
  }

  w.put_u8(best_mode);
  switch (best_mode) {
    case kModeRaw:
      for (std::size_t i = 0; i < n; ++i) w.put_f64(v[i]);
      break;
    case kModeXor:
      put_xor_stream(w, v, n);
      break;
    case kModeScaledDelta:
      w.put_u8(best_scale_idx);
      put_delta_stream(w, best_fit.k);
      break;
    case kModeScaledDod:
      w.put_u8(best_scale_idx);
      put_dod_stream(w, best_fit.k);
      break;
    case kModeScaledDeltaRes:
      w.put_u8(best_scale_idx);
      w.put_u8(static_cast<std::uint8_t>(best_width));
      put_delta_stream(w, best_fit.k);
      put_res_bits(w, best_fit.res, best_width);
      break;
    case kModeScaledDodRes:
      w.put_u8(best_scale_idx);
      w.put_u8(static_cast<std::uint8_t>(best_width));
      put_dod_stream(w, best_fit.k);
      put_res_bits(w, best_fit.res, best_width);
      break;
  }
}

void decode_double_column(Decoder& d, double* out, std::size_t n) {
  if (n == 0) return;
  const std::uint8_t mode = d.get_u8();
  switch (mode) {
    case kModeRaw:
      for (std::size_t i = 0; i < n; ++i) out[i] = d.get_f64();
      return;
    case kModeXor: {
      std::uint64_t prev = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t c = d.get_u8();
        if (c == 0) {
          out[i] = double_of(prev);
          continue;
        }
        if (c > 64)
          d.fail(ErrorCode::Corrupt,
                 "bad XOR lead byte " + std::to_string(static_cast<int>(c)) +
                     " in double column");
        const int lz = (c - 1) >> 3;
        const int m = ((c - 1) & 7) + 1;
        if (lz + m > 8)
          d.fail(ErrorCode::Corrupt,
                 "bad XOR lead byte: window " + std::to_string(lz) + "+" +
                     std::to_string(m) + " exceeds 8 bytes");
        const int tz = 8 - lz - m;
        std::uint64_t y = 0;
        for (int j = 0; j < m; ++j)
          y |= static_cast<std::uint64_t>(d.get_u8()) << (8 * j);
        prev ^= y << (8 * tz);
        out[i] = double_of(prev);
      }
      return;
    }
    case kModeScaledDelta:
    case kModeScaledDod:
    case kModeScaledDeltaRes:
    case kModeScaledDodRes: {
      const std::uint8_t si = d.get_u8();
      if (si >= kNumScales)
        d.fail(ErrorCode::Corrupt,
               "bad scale index " + std::to_string(static_cast<int>(si)) +
                   " in scaled double column");
      const double scale = kScales[si];
      const bool dod =
          mode == kModeScaledDod || mode == kModeScaledDodRes;
      const bool with_res =
          mode == kModeScaledDeltaRes || mode == kModeScaledDodRes;
      int width = 0;
      if (with_res) {
        width = d.get_u8();
        if (width > 64)
          d.fail(ErrorCode::Corrupt,
                 "bad residual bit width " + std::to_string(width) +
                     " in scaled double column");
      }
      std::uint64_t k = 0;       // wrapping accumulators: hostile streams
      std::uint64_t delta = 0;   // must not reach signed overflow
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t step = static_cast<std::uint64_t>(d.get_svarint());
        if (dod) {
          delta += step;
          k += delta;
        } else {
          k += step;
        }
        out[i] = static_cast<double>(static_cast<std::int64_t>(k)) * scale;
      }
      if (with_res && width > 0) {
        // The packed residuals follow the delta stream: `width` bits per
        // value, LSB-first. Each residual is a zigzagged ULP-count in
        // the total-order domain; the wrapping add inverts the
        // encoder's subtraction exactly.
        std::uint64_t buf = 0;
        int avail = 0;
        for (std::size_t i = 0; i < n; ++i) {
          std::uint64_t u = 0;
          int got = 0;
          while (got < width) {
            if (avail == 0) {
              buf = d.get_u8();
              avail = 8;
            }
            const int take = width - got < avail ? width - got : avail;
            u |= (buf & ((1ULL << take) - 1)) << got;
            buf >>= take;
            avail -= take;
            got += take;
          }
          const std::uint64_t res = (u >> 1) ^ (0 - (u & 1));  // un-zigzag
          out[i] =
              double_of(from_ordered(to_ordered(bits_of(out[i])) + res));
        }
      }
      return;
    }
    default:
      d.fail(ErrorCode::Corrupt, "unknown double-column mode " +
                                     std::to_string(static_cast<int>(mode)));
  }
}

// --- chunked cursors ---------------------------------------------------

namespace {

/// Shared frame-contract check for the cursors, mirroring end_column in
/// the batch reader (tracing/epilog_io): the codec must consume exactly
/// the framed byte count, no more, no less.
void check_frame(const Decoder& d, std::size_t consumed,
                 std::size_t frame_len, const char* what) {
  if (consumed != frame_len)
    d.fail(ErrorCode::Corrupt,
           std::string("column length mismatch for ") + what +
               " column: codec consumed through byte " +
               std::to_string(consumed) + " but the frame ends at byte " +
               std::to_string(frame_len));
}

}  // namespace

IntColumnCursor::IntColumnCursor(const std::uint8_t* data, std::size_t size,
                                 std::size_t frame_len, std::size_t n,
                                 const char* what, ErrorContext ctx)
    : dec_(data, size, std::move(ctx)),
      frame_len_(frame_len),
      n_(n),
      what_(what) {}

void IntColumnCursor::next(std::int64_t* out, std::size_t k) {
  MSC_CHECK(produced_ + k <= n_, "int column cursor overrun");
  for (std::size_t i = 0; i < k; ++i) {
    acc_ += static_cast<std::uint64_t>(dec_.get_svarint());
    out[i] = static_cast<std::int64_t>(acc_);
  }
  produced_ += k;
}

void IntColumnCursor::finish() {
  MSC_CHECK(produced_ == n_, "int column cursor finished early");
  check_frame(dec_, dec_.pos(), frame_len_, what_);
}

DoubleColumnCursor::DoubleColumnCursor(const std::uint8_t* data,
                                       std::size_t size,
                                       std::size_t frame_len, std::size_t n,
                                       const char* what, ErrorContext ctx)
    : dec_(data, size, std::move(ctx)),
      frame_len_(frame_len),
      n_(n),
      what_(what) {
  // A zero-row column is omitted from the file entirely (no frame, no
  // mode byte) — there is nothing to parse, and whatever bytes follow
  // belong to someone else.
  if (n_ == 0) return;
  mode_ = dec_.get_u8();
  switch (mode_) {
    case kModeRaw:
    case kModeXor:
      return;
    case kModeScaledDelta:
    case kModeScaledDod:
    case kModeScaledDeltaRes:
    case kModeScaledDodRes: {
      const std::uint8_t si = dec_.get_u8();
      if (si >= kNumScales)
        dec_.fail(ErrorCode::Corrupt,
                  "bad scale index " + std::to_string(static_cast<int>(si)) +
                      " in scaled double column");
      scale_ = kScales[si];
      dod_ = mode_ == kModeScaledDod || mode_ == kModeScaledDodRes;
      with_res_ = mode_ == kModeScaledDeltaRes || mode_ == kModeScaledDodRes;
      if (with_res_) {
        width_ = dec_.get_u8();
        if (width_ > 64)
          dec_.fail(ErrorCode::Corrupt,
                    "bad residual bit width " + std::to_string(width_) +
                        " in scaled double column");
        if (width_ > 0) {
          // The residual bits start after the complete delta stream:
          // skip-scan the n varints once so the two streams can then be
          // consumed chunk by chunk in lockstep.
          res_dec_ = dec_;
          for (std::size_t i = 0; i < n_; ++i) (void)res_dec_.get_svarint();
        }
      }
      return;
    }
    default:
      dec_.fail(ErrorCode::Corrupt,
                "unknown double-column mode " +
                    std::to_string(static_cast<int>(mode_)));
  }
}

void DoubleColumnCursor::next(double* out, std::size_t k) {
  MSC_CHECK(produced_ + k <= n_, "double column cursor overrun");
  switch (mode_) {
    case kModeRaw:
      for (std::size_t i = 0; i < k; ++i) out[i] = dec_.get_f64();
      break;
    case kModeXor:
      for (std::size_t i = 0; i < k; ++i) {
        const std::uint8_t c = dec_.get_u8();
        if (c == 0) {
          out[i] = double_of(prev_bits_);
          continue;
        }
        if (c > 64)
          dec_.fail(ErrorCode::Corrupt,
                    "bad XOR lead byte " +
                        std::to_string(static_cast<int>(c)) +
                        " in double column");
        const int lz = (c - 1) >> 3;
        const int m = ((c - 1) & 7) + 1;
        if (lz + m > 8)
          dec_.fail(ErrorCode::Corrupt,
                    "bad XOR lead byte: window " + std::to_string(lz) + "+" +
                        std::to_string(m) + " exceeds 8 bytes");
        const int tz = 8 - lz - m;
        std::uint64_t y = 0;
        for (int j = 0; j < m; ++j)
          y |= static_cast<std::uint64_t>(dec_.get_u8()) << (8 * j);
        prev_bits_ ^= y << (8 * tz);
        out[i] = double_of(prev_bits_);
      }
      break;
    default:
      for (std::size_t i = 0; i < k; ++i) {
        const std::uint64_t step =
            static_cast<std::uint64_t>(dec_.get_svarint());
        if (dod_) {
          delta_ += step;
          k_ += delta_;
        } else {
          k_ += step;
        }
        out[i] = static_cast<double>(static_cast<std::int64_t>(k_)) * scale_;
      }
      if (with_res_ && width_ > 0) {
        for (std::size_t i = 0; i < k; ++i) {
          std::uint64_t u = 0;
          int got = 0;
          while (got < width_) {
            if (res_avail_ == 0) {
              res_buf_ = res_dec_.get_u8();
              res_avail_ = 8;
            }
            const int take =
                width_ - got < res_avail_ ? width_ - got : res_avail_;
            u |= (res_buf_ & ((1ULL << take) - 1)) << got;
            res_buf_ >>= take;
            res_avail_ -= take;
            got += take;
          }
          const std::uint64_t res = (u >> 1) ^ (0 - (u & 1));  // un-zigzag
          out[i] =
              double_of(from_ordered(to_ordered(bits_of(out[i])) + res));
        }
      }
      break;
  }
  produced_ += k;
}

void DoubleColumnCursor::finish() {
  MSC_CHECK(produced_ == n_, "double column cursor finished early");
  const bool split = with_res_ && width_ > 0;
  check_frame(dec_, split ? res_dec_.pos() : dec_.pos(), frame_len_, what_);
}

}  // namespace metascope::colcodec
