#include "simnet/presets.hpp"

namespace metascope::simnet {

Topology make_viola(ViolaIds* ids) {
  Topology topo;

  // Table 1 moments (µs): FZJ internal 21.5 ± 0.814, FH-BRS internal
  // 44.4 ± 0.36, external (FZJ–FH-BRS) 988 ± 3.86.
  MetahostSpec caesar;
  caesar.name = kCaesarName;
  caesar.num_nodes = 32;
  caesar.cpus_per_node = 2;
  caesar.speed_factor = 0.5;  // ~2x slower than FH-BRS on Trace kernels (§5)
  caesar.internal = LinkSpec{microseconds(55.0), microseconds(1.5), 0.11e9};

  MetahostSpec fh_brs;
  fh_brs.name = kFhBrsName;
  fh_brs.num_nodes = 6;
  fh_brs.cpus_per_node = 4;
  fh_brs.speed_factor = 1.0;
  fh_brs.internal = LinkSpec{microseconds(44.4), microseconds(0.36), 0.23e9};

  MetahostSpec fzj;
  fzj.name = kFzjName;
  fzj.num_nodes = 60;
  fzj.cpus_per_node = 2;
  fzj.speed_factor = 1.1;
  fzj.internal = LinkSpec{microseconds(21.5), microseconds(0.814), 1.4e9};

  const MetahostId c = topo.add_metahost(caesar);
  const MetahostId f = topo.add_metahost(fh_brs);
  const MetahostId z = topo.add_metahost(fzj);

  // 10 Gbps optical WAN between every pair; latency moments from Table 1
  // (FZJ–FH-BRS measured; others assumed comparable, sites 20–100 km apart).
  // Each node reaches the WAN through its own GigE adapter (§5), so the
  // forward and return paths of a node pair differ: up to ±8 % route
  // asymmetry, i.e. offset-measurement bias up to ~79 us — large compared
  // to internal latencies, tiny compared to the 988 us WAN latency.
  LinkSpec wan{microseconds(988.0), microseconds(3.86), 1.25e9};
  wan.asymmetry = 0.08;
  topo.set_external_link(c, f, wan);
  topo.set_external_link(c, z, wan);
  topo.set_external_link(f, z, wan);
  topo.set_default_external(wan);

  if (ids) *ids = ViolaIds{c, f, z};
  return topo;
}

Topology make_viola_experiment1(ViolaIds* ids) {
  ViolaIds v;
  Topology topo = make_viola(&v);
  // Trace first (ranks 0..15): FH-BRS 2x4, then CAESAR 4x2.
  topo.place_block(v.fh_brs, /*nodes=*/2, /*procs_per_node=*/4);
  topo.place_block(v.caesar, /*nodes=*/4, /*procs_per_node=*/2);
  // Partrace (ranks 16..31): FZJ XD1 8x2.
  topo.place_block(v.fzj, /*nodes=*/8, /*procs_per_node=*/2);
  if (ids) *ids = v;
  return topo;
}

Topology make_ibm_power(int procs) {
  Topology topo;
  MetahostSpec ibm;
  ibm.name = "IBM-AIX-POWER";
  ibm.num_nodes = 1;
  ibm.cpus_per_node = procs;
  ibm.speed_factor = 1.0;
  // Single-node shared-memory communication; node-internal link unused but
  // set to a sane SMP value.
  ibm.internal = LinkSpec{microseconds(3.0), microseconds(0.1), 3e9};
  ibm.intra_node = LinkSpec{microseconds(1.2), microseconds(0.05), 3e9};
  ibm.has_global_clock = true;
  const MetahostId id = topo.add_metahost(ibm);
  topo.place_block(id, 1, procs);
  return topo;
}

}  // namespace metascope::simnet
