// Node-local clock models (paper §3 "Synchronization of time stamps",
// Figure 1).
//
// Each node's clock is a linear function of true time — an initial offset
// plus a constant drift — with a read granularity and a small stochastic
// read perturbation. The tracing layer stamps events through these models;
// the clocksync module then tries to invert them from ping-pong
// measurements alone, and tests can compare against the ground truth held
// here (a luxury the paper's real testbed did not have).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "simnet/topology.hpp"

namespace metascope::simnet {

/// Linear clock: local = offset + (1 + drift) * true (+ read noise).
class ClockModel {
 public:
  ClockModel() = default;
  ClockModel(double offset_s, double drift, Dur granularity = 0.0,
             Dur read_noise = 0.0)
      : offset_(offset_s),
        drift_(drift),
        granularity_(granularity),
        read_noise_(read_noise) {}

  /// Deterministic clock value at true time t (no read noise).
  [[nodiscard]] LocalTime at(TrueTime t) const;

  /// A clock *read*: quantized to granularity and perturbed by read noise
  /// drawn from `rng`. This is what the tracing layer records.
  [[nodiscard]] LocalTime read(TrueTime t, Rng& rng) const;

  /// Ground-truth inverse of the deterministic mapping.
  [[nodiscard]] TrueTime true_of(LocalTime l) const;

  [[nodiscard]] double offset() const { return offset_; }
  [[nodiscard]] double drift() const { return drift_; }

 private:
  double offset_{0.0};
  double drift_{0.0};
  Dur granularity_{0.0};
  Dur read_noise_{0.0};
};

/// Parameters for randomized clock generation across nodes.
struct ClockCharacteristics {
  /// Initial offsets drawn uniformly from ±max_offset.
  Dur max_offset{0.5};
  /// Drifts drawn uniformly from ±max_drift (dimensionless, e.g. 1e-5).
  double max_drift{1e-5};
  /// Clock read granularity (e.g. 1 µs timer tick => 1e-6).
  Dur granularity{1e-7};
  /// Stddev of per-read perturbation.
  Dur read_noise{5e-8};
};

/// One clock per node of a topology.
class ClockSet {
 public:
  /// Perfectly synchronized clocks (identity mapping).
  static ClockSet perfect(const Topology& topo);

  /// Randomized clocks per `chars`; metahosts with `has_global_clock`
  /// share one offset/drift across their nodes.
  static ClockSet randomized(const Topology& topo,
                             const ClockCharacteristics& chars, Rng& rng);

  [[nodiscard]] const ClockModel& node_clock(NodeId n) const;
  /// Clock of the node hosting `rank`.
  [[nodiscard]] const ClockModel& clock_of(const Topology& topo,
                                           Rank rank) const;
  [[nodiscard]] std::size_t size() const { return clocks_.size(); }

 private:
  std::vector<ClockModel> clocks_;
};

}  // namespace metascope::simnet
