// Metacomputer topology model (paper §4, Figures 2 and 5).
//
// A metacomputer is a set of *metahosts* (independent parallel machines),
// each made of SMP nodes with several CPUs, joined internally by a fast
// interconnect and externally by high-latency links. Application processes
// are placed onto (metahost, node, cpu) slots; the placement determines
// which link class every message crosses.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace metascope::simnet {

/// Timing parameters of one link class. Latency jitter is the standard
/// deviation of the per-message latency draw; the paper's Table 1 reports
/// exactly these two moments per network.
struct LinkSpec {
  /// One-way small-message latency, seconds.
  Dur latency_mean{0.0};
  /// Standard deviation of the one-way latency, seconds.
  Dur latency_stddev{0.0};
  /// Sustained bandwidth, bytes/second.
  double bandwidth_bps{1e9};
  /// Maximum fractional route asymmetry between a directed node pair.
  /// Each (source node, destination node) direction gets a fixed latency
  /// multiplier in [1 - asymmetry, 1 + asymmetry], modelling distinct
  /// forward/return paths (each node has its own network adapter). This
  /// is the physical effect that biases offset measurements over
  /// high-latency links — the problem the paper's hierarchical
  /// synchronization solves.
  double asymmetry{0.0};

  /// Expected one-way duration for a message of `bytes` (without jitter).
  [[nodiscard]] Dur expected_delay(double bytes) const {
    return latency_mean + bytes / bandwidth_bps;
  }
};

/// Static description of one metahost.
struct MetahostSpec {
  std::string name;
  int num_nodes{1};
  int cpus_per_node{1};
  /// Relative compute speed: elapsed = nominal_work / speed_factor.
  /// The paper observed FH-BRS running app code ~2x faster than CAESAR.
  double speed_factor{1.0};
  /// Internal interconnect of this metahost (node-to-node).
  LinkSpec internal;
  /// Intra-node communication (shared memory); defaults to a very fast link.
  LinkSpec intra_node{microseconds(0.5), microseconds(0.05), 4e9};
  /// True if the metahost provides hardware-synchronized node clocks
  /// (paper §4: the intra-metahost sync step is then omitted).
  bool has_global_clock{false};

  [[nodiscard]] int num_cpus() const { return num_nodes * cpus_per_node; }
};

/// Network class a message crosses, by placement of the two endpoints.
enum class LinkClass {
  IntraNode,   ///< same SMP node
  Internal,    ///< same metahost, different nodes
  External,    ///< different metahosts
};

const char* to_string(LinkClass c);

/// Where one rank lives.
struct Placement {
  MetahostId metahost;
  NodeId node;      ///< globally unique node id
  int node_local{0};  ///< node index within the metahost
  int cpu{0};
};

/// Immutable topology: metahosts + external links + process placement.
class Topology {
 public:
  /// Builder-style construction: add metahosts, then place ranks.
  MetahostId add_metahost(MetahostSpec spec);

  /// Sets the external link spec between a specific pair of metahosts.
  /// Order-insensitive. If absent, `default_external` applies.
  void set_external_link(MetahostId a, MetahostId b, LinkSpec spec);
  void set_default_external(LinkSpec spec) { default_external_ = spec; }

  /// Appends `count` consecutive ranks onto `metahost`, filling nodes
  /// round-robin with `procs_per_node` ranks per node.
  void place_block(MetahostId metahost, int nodes, int procs_per_node);

  /// Number of application ranks placed.
  [[nodiscard]] int num_ranks() const {
    return static_cast<int>(placement_.size());
  }
  [[nodiscard]] int num_metahosts() const {
    return static_cast<int>(metahosts_.size());
  }
  [[nodiscard]] int num_nodes() const { return next_node_; }

  [[nodiscard]] const MetahostSpec& metahost(MetahostId id) const;
  [[nodiscard]] const Placement& placement(Rank r) const;
  [[nodiscard]] MetahostId metahost_of(Rank r) const {
    return placement(r).metahost;
  }
  [[nodiscard]] NodeId node_of(Rank r) const { return placement(r).node; }
  [[nodiscard]] double speed_of(Rank r) const {
    return metahost(metahost_of(r)).speed_factor;
  }

  [[nodiscard]] bool same_node(Rank a, Rank b) const;
  [[nodiscard]] bool same_metahost(Rank a, Rank b) const;
  [[nodiscard]] LinkClass link_class(Rank a, Rank b) const;

  /// Link spec governing a message from `a` to `b`.
  [[nodiscard]] const LinkSpec& link_between(Rank a, Rank b) const;
  /// External link spec between two metahosts.
  [[nodiscard]] const LinkSpec& external_link(MetahostId a,
                                              MetahostId b) const;

  /// All ranks on the given metahost, ascending.
  [[nodiscard]] std::vector<Rank> ranks_on(MetahostId id) const;
  /// Lowest rank on each metahost (the natural "local master", §4).
  [[nodiscard]] std::vector<Rank> local_masters() const;
  /// Metahost id of node `n`.
  [[nodiscard]] MetahostId metahost_of_node(NodeId n) const;

  /// Human-readable topology dump (used to reproduce Figures 2/5).
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<MetahostSpec> metahosts_;
  std::vector<Placement> placement_;
  std::vector<MetahostId> node_owner_;  // node id -> metahost
  // External link overrides keyed by (min, max) metahost pair.
  std::vector<std::pair<std::pair<int, int>, LinkSpec>> external_;
  LinkSpec default_external_{milliseconds(1.0), microseconds(4.0), 1.25e9};
  int next_node_{0};
};

}  // namespace metascope::simnet
