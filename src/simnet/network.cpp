#include "simnet/network.hpp"

namespace metascope::simnet {

namespace {
// SplitMix64-style mix for the deterministic per-route factor.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double hash01(std::uint64_t a, std::uint64_t b, std::uint64_t seed) {
  const std::uint64_t h = mix(a * 0x9e3779b97f4a7c15ULL + mix(b + seed));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

double Network::route_factor(Rank a, Rank b) const {
  const LinkSpec& link = topo_->link_between(a, b);
  if (link.asymmetry == 0.0) return 1.0;
  const auto na = static_cast<std::uint64_t>(topo_->node_of(a).get());
  const auto nb = static_cast<std::uint64_t>(topo_->node_of(b).get());
  // Directed: (na, nb) and (nb, na) draw independent factors.
  const double u = hash01(na + 1, (nb + 1) << 20, route_seed_);
  return 1.0 + link.asymmetry * (2.0 * u - 1.0);
}

Dur Network::sample_delay(Rank a, Rank b, double bytes) {
  const LinkSpec& link = topo_->link_between(a, b);
  // Latencies cannot drop below a quarter of the mean: keeps draws
  // physical while leaving room for the jitter the sync schemes fight.
  const Dur base = link.latency_mean * route_factor(a, b);
  const Dur lat =
      rng_.normal_at_least(base, link.latency_stddev, 0.25 * base);
  return lat + bytes / link.bandwidth_bps;
}

Dur Network::expected_delay(Rank a, Rank b, double bytes) const {
  const LinkSpec& link = topo_->link_between(a, b);
  return link.latency_mean * route_factor(a, b) + bytes / link.bandwidth_bps;
}

Dur Network::latency_stddev(Rank a, Rank b) const {
  return topo_->link_between(a, b).latency_stddev;
}

}  // namespace metascope::simnet
