#include "simnet/topology.hpp"

#include <algorithm>
#include <sstream>

namespace metascope::simnet {

const char* to_string(LinkClass c) {
  switch (c) {
    case LinkClass::IntraNode: return "intra-node";
    case LinkClass::Internal: return "internal";
    case LinkClass::External: return "external";
  }
  return "?";
}

MetahostId Topology::add_metahost(MetahostSpec spec) {
  MSC_CHECK(!spec.name.empty(), "metahost needs a name");
  MSC_CHECK(spec.num_nodes > 0 && spec.cpus_per_node > 0,
            "metahost needs nodes and cpus");
  MSC_CHECK(spec.speed_factor > 0.0, "speed factor must be positive");
  metahosts_.push_back(std::move(spec));
  return MetahostId{static_cast<int>(metahosts_.size()) - 1};
}

void Topology::set_external_link(MetahostId a, MetahostId b, LinkSpec spec) {
  MSC_CHECK(a != b, "external link needs two distinct metahosts");
  // Note: std::minmax on prvalues would dangle; take explicit copies.
  const std::pair<int, int> key{std::min(a.get(), b.get()),
                                std::max(a.get(), b.get())};
  for (auto& [k, s] : external_) {
    if (k == key) {
      s = spec;
      return;
    }
  }
  external_.emplace_back(key, spec);
}

void Topology::place_block(MetahostId metahost, int nodes,
                           int procs_per_node) {
  MSC_CHECK(metahost.valid() &&
                metahost.get() < static_cast<int>(metahosts_.size()),
            "unknown metahost");
  const auto& spec = metahosts_[static_cast<std::size_t>(metahost.get())];
  MSC_CHECK(nodes <= spec.num_nodes, "placement exceeds metahost nodes");
  MSC_CHECK(procs_per_node <= spec.cpus_per_node,
            "placement exceeds cpus per node");
  // Count nodes of this metahost already holding ranks so that repeated
  // blocks on the same metahost land on fresh nodes.
  int used_nodes = 0;
  for (const auto& p : placement_)
    if (p.metahost == metahost) used_nodes = std::max(used_nodes, p.node_local + 1);
  MSC_CHECK(used_nodes + nodes <= spec.num_nodes,
            "placement exceeds metahost nodes");

  for (int n = 0; n < nodes; ++n) {
    const NodeId node{next_node_++};
    node_owner_.push_back(metahost);
    for (int c = 0; c < procs_per_node; ++c) {
      Placement p;
      p.metahost = metahost;
      p.node = node;
      p.node_local = used_nodes + n;
      p.cpu = c;
      placement_.push_back(p);
    }
  }
}

const MetahostSpec& Topology::metahost(MetahostId id) const {
  MSC_CHECK(id.valid() && id.get() < static_cast<int>(metahosts_.size()),
            "unknown metahost");
  return metahosts_[static_cast<std::size_t>(id.get())];
}

const Placement& Topology::placement(Rank r) const {
  MSC_CHECK(r >= 0 && r < num_ranks(), "rank out of range");
  return placement_[static_cast<std::size_t>(r)];
}

bool Topology::same_node(Rank a, Rank b) const {
  return placement(a).node == placement(b).node;
}

bool Topology::same_metahost(Rank a, Rank b) const {
  return placement(a).metahost == placement(b).metahost;
}

LinkClass Topology::link_class(Rank a, Rank b) const {
  if (same_node(a, b)) return LinkClass::IntraNode;
  if (same_metahost(a, b)) return LinkClass::Internal;
  return LinkClass::External;
}

const LinkSpec& Topology::link_between(Rank a, Rank b) const {
  switch (link_class(a, b)) {
    case LinkClass::IntraNode:
      return metahost(metahost_of(a)).intra_node;
    case LinkClass::Internal:
      return metahost(metahost_of(a)).internal;
    case LinkClass::External:
      return external_link(metahost_of(a), metahost_of(b));
  }
  MSC_ASSERT(false, "unreachable");
}

const LinkSpec& Topology::external_link(MetahostId a, MetahostId b) const {
  const std::pair<int, int> key{std::min(a.get(), b.get()),
                                std::max(a.get(), b.get())};
  for (const auto& [k, s] : external_)
    if (k == key) return s;
  return default_external_;
}

std::vector<Rank> Topology::ranks_on(MetahostId id) const {
  std::vector<Rank> out;
  for (Rank r = 0; r < num_ranks(); ++r)
    if (metahost_of(r) == id) out.push_back(r);
  return out;
}

std::vector<Rank> Topology::local_masters() const {
  std::vector<Rank> masters(static_cast<std::size_t>(num_metahosts()),
                            kNoRank);
  for (Rank r = num_ranks() - 1; r >= 0; --r)
    masters[static_cast<std::size_t>(metahost_of(r).get())] = r;
  return masters;
}

MetahostId Topology::metahost_of_node(NodeId n) const {
  MSC_CHECK(n.valid() && n.get() < next_node_, "unknown node");
  return node_owner_[static_cast<std::size_t>(n.get())];
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << "Metacomputer: " << num_metahosts() << " metahosts, " << num_nodes()
     << " nodes, " << num_ranks() << " ranks\n";
  for (int m = 0; m < num_metahosts(); ++m) {
    const MetahostId id{m};
    const auto& spec = metahost(id);
    const auto ranks = ranks_on(id);
    os << "  [" << m << "] " << spec.name << ": " << spec.num_nodes
       << " nodes x " << spec.cpus_per_node << " cpus, speed "
       << spec.speed_factor << ", internal latency "
       << spec.internal.latency_mean * 1e6 << " us";
    if (!ranks.empty())
      os << ", ranks " << ranks.front() << ".." << ranks.back();
    os << '\n';
  }
  for (int a = 0; a < num_metahosts(); ++a)
    for (int b = a + 1; b < num_metahosts(); ++b) {
      const auto& l = external_link(MetahostId{a}, MetahostId{b});
      os << "  link " << metahost(MetahostId{a}).name << " <-> "
         << metahost(MetahostId{b}).name << ": latency "
         << l.latency_mean * 1e6 << " us, bandwidth "
         << l.bandwidth_bps / 1e9 << " GB/s\n";
    }
  return os.str();
}

}  // namespace metascope::simnet
