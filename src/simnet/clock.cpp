#include "simnet/clock.hpp"

#include <cmath>

#include "common/error.hpp"

namespace metascope::simnet {

LocalTime ClockModel::at(TrueTime t) const {
  return LocalTime{offset_ + (1.0 + drift_) * t.s};
}

LocalTime ClockModel::read(TrueTime t, Rng& rng) const {
  double v = at(t).s;
  if (read_noise_ > 0.0) v += rng.normal(0.0, read_noise_);
  if (granularity_ > 0.0) v = std::floor(v / granularity_) * granularity_;
  return LocalTime{v};
}

TrueTime ClockModel::true_of(LocalTime l) const {
  return TrueTime{(l.s - offset_) / (1.0 + drift_)};
}

ClockSet ClockSet::perfect(const Topology& topo) {
  ClockSet cs;
  cs.clocks_.assign(static_cast<std::size_t>(topo.num_nodes()), ClockModel{});
  return cs;
}

ClockSet ClockSet::randomized(const Topology& topo,
                              const ClockCharacteristics& chars, Rng& rng) {
  ClockSet cs;
  cs.clocks_.reserve(static_cast<std::size_t>(topo.num_nodes()));
  // Metahosts with hardware-synchronized clocks share one model.
  std::vector<bool> drawn(static_cast<std::size_t>(topo.num_metahosts()),
                          false);
  std::vector<ClockModel> shared(
      static_cast<std::size_t>(topo.num_metahosts()));
  for (int n = 0; n < topo.num_nodes(); ++n) {
    const MetahostId mh = topo.metahost_of_node(NodeId{n});
    const auto& spec = topo.metahost(mh);
    const auto draw = [&] {
      const double off = rng.uniform(-chars.max_offset, chars.max_offset);
      const double drift = rng.uniform(-chars.max_drift, chars.max_drift);
      return ClockModel(off, drift, chars.granularity, chars.read_noise);
    };
    if (spec.has_global_clock) {
      const auto mi = static_cast<std::size_t>(mh.get());
      if (!drawn[mi]) {
        shared[mi] = draw();
        drawn[mi] = true;
      }
      cs.clocks_.push_back(shared[mi]);
    } else {
      cs.clocks_.push_back(draw());
    }
  }
  return cs;
}

const ClockModel& ClockSet::node_clock(NodeId n) const {
  MSC_CHECK(n.valid() && static_cast<std::size_t>(n.get()) < clocks_.size(),
            "unknown node clock");
  return clocks_[static_cast<std::size_t>(n.get())];
}

const ClockModel& ClockSet::clock_of(const Topology& topo, Rank rank) const {
  return node_clock(topo.node_of(rank));
}

}  // namespace metascope::simnet
