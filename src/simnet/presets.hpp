// Canned topologies reproducing the paper's testbeds.
//
// VIOLA (§5, Figure 5, Table 1): three sites joined by 10 Gbps optical
// links — CAESAR (32x2 Xeon 2.6 GHz, GigE), FH-BRS (6x4 Opteron 2 GHz,
// Myrinet), FZJ (Cray XD1, 60x2 Opteron 2.2 GHz, RapidArray). Latency
// moments are taken from Table 1; CAESAR's GigE is assigned a typical
// GigE latency. Speed factors encode the paper's observation that Trace
// functions ran ~2x faster on FH-BRS than on CAESAR.
//
// The homogeneous IBM AIX POWER cluster of Experiment 2 (Table 3) is
// provided as a second preset.
#pragma once

#include "simnet/topology.hpp"

namespace metascope::simnet {

/// Names used by the VIOLA preset, in metahost-id order.
inline constexpr const char* kCaesarName = "CAESAR";
inline constexpr const char* kFhBrsName = "FH-BRS";
inline constexpr const char* kFzjName = "FZJ";

struct ViolaIds {
  MetahostId caesar;
  MetahostId fh_brs;
  MetahostId fzj;
};

/// Builds the three-site VIOLA metacomputer *without* placing any ranks;
/// callers place ranks per experiment (see Table 3 configs below).
Topology make_viola(ViolaIds* ids = nullptr);

/// Experiment 1 (Table 3, three metahosts, 32 processes):
///   Partrace — FZJ XD1: 8 nodes x 2 procs (ranks 16..31)
///   Trace    — FH-BRS: 2 nodes x 4 procs (ranks 0..7)
///            — CAESAR: 4 nodes x 2 procs (ranks 8..15)
/// Rank layout: Trace occupies ranks [0, 16), Partrace [16, 32).
Topology make_viola_experiment1(ViolaIds* ids = nullptr);

/// Experiment 2 (Table 3, one metahost, 32 processes): a single IBM AIX
/// POWER node with 32 CPUs (the paper used 16 procs/node on 1 node per
/// model; we model one 32-way node machine with a shared-memory-class
/// interconnect and a hardware-global clock).
Topology make_ibm_power(int procs = 32);

}  // namespace metascope::simnet
