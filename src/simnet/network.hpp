// Message-delay sampling over the topology's link models.
//
// delay(one-way) = latency_draw + bytes / bandwidth, where latency_draw is
// normal(mean, stddev) truncated at a small positive floor. The stochastic
// part is what makes offset measurements over high-latency links less
// precise — the effect the paper's hierarchical synchronization targets.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "simnet/topology.hpp"

namespace metascope::simnet {

class Network {
 public:
  /// `route_seed` pins the per-node-pair route asymmetries; two Network
  /// instances with the same seed see the same routes (jitter streams
  /// may differ via `rng`).
  Network(const Topology& topo, Rng rng, std::uint64_t route_seed = 0x524f55ULL)
      : topo_(&topo), rng_(rng), route_seed_(route_seed) {}

  /// Samples the one-way delay for a `bytes`-sized message a -> b.
  [[nodiscard]] Dur sample_delay(Rank a, Rank b, double bytes);

  /// Expected (jitter-free) delay a -> b, including route asymmetry.
  [[nodiscard]] Dur expected_delay(Rank a, Rank b, double bytes) const;

  /// Small-message latency stddev of the link a -> b.
  [[nodiscard]] Dur latency_stddev(Rank a, Rank b) const;

  /// Fixed latency multiplier of the directed route a -> b.
  [[nodiscard]] double route_factor(Rank a, Rank b) const;

  [[nodiscard]] const Topology& topology() const { return *topo_; }

 private:
  const Topology* topo_;
  Rng rng_;
  std::uint64_t route_seed_;
};

}  // namespace metascope::simnet
