// Runtime metahost identification (paper §4 "Metahost identification").
//
// The paper's mechanism: the user sets two environment variables on each
// metahost — a unique numeric identifier used internally and a readable
// name used in result presentation. We model per-metahost environments as
// injectable string maps so tests can exercise the validation paths
// (missing variable, duplicate id, id collisions across metahosts).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "simnet/topology.hpp"
#include "tracing/defs.hpp"

namespace metascope::tracing {

/// Environment of one metahost.
using EnvMap = std::map<std::string, std::string>;

inline constexpr const char* kEnvMetahostId = "METASCOPE_METAHOST_ID";
inline constexpr const char* kEnvMetahostName = "METASCOPE_METAHOST_NAME";

/// Builds well-formed environments straight from a topology (what a
/// correctly configured launch script would set).
std::vector<EnvMap> default_envs(const simnet::Topology& topo);

/// Resolves the metahost definition table from per-metahost environments.
/// Throws Error if a variable is missing, an id is not a non-negative
/// integer, ids collide, or ids do not form a dense [0, n) range.
std::vector<MetahostDef> resolve_metahosts(const simnet::Topology& topo,
                                           const std::vector<EnvMap>& envs);

}  // namespace metascope::tracing
