#include "tracing/measurement.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "simnet/network.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/span.hpp"

namespace metascope::tracing {

namespace {

/// One Cristian remote-clock-reading exchange sequence: `pingpongs`
/// rounds slave <-> ref; the round with the smallest RTT wins. Advances
/// the true-time cursor past the exchanged messages.
OffsetRecord measure_offset(const simnet::Topology& topo,
                            const simnet::ClockSet& clocks,
                            simnet::Network& net, Rng& rng, Rank slave,
                            Rank ref, int phase, int pingpongs,
                            TrueTime& cursor) {
  const auto& slave_clock = clocks.clock_of(topo, slave);
  const auto& ref_clock = clocks.clock_of(topo, ref);
  OffsetRecord best;
  best.phase = phase;
  best.ref_rank = ref;
  double best_rtt = kInfTime;
  for (int k = 0; k < pingpongs; ++k) {
    const LocalTime t1 = slave_clock.read(cursor, rng);
    const Dur d1 = net.sample_delay(slave, ref, 0.0);
    const LocalTime m = ref_clock.read(cursor + d1, rng);
    const Dur d2 = net.sample_delay(ref, slave, 0.0);
    const LocalTime t4 = slave_clock.read(cursor + d1 + d2, rng);
    const double rtt = t4 - t1;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best.local_mid = 0.5 * (t1.s + t4.s);
      best.offset = m.s - best.local_mid;
      best.error_bound = rtt / 2.0;
    }
    // Back-to-back rounds with a small processing gap.
    cursor = cursor + (d1 + d2 + microseconds(5.0));
  }
  return best;
}

/// Runs the configured offset-measurement protocol for one phase and
/// appends the records to the per-rank traces.
void run_sync_phase(const simnet::Topology& topo,
                    const simnet::ClockSet& clocks, simnet::Network& net,
                    Rng& rng, SyncScheme scheme, int phase, int pingpongs,
                    TrueTime cursor, std::vector<LocalTrace>& ranks) {
  const int n = topo.num_ranks();
  switch (scheme) {
    case SyncScheme::None:
      return;
    case SyncScheme::FlatSingle:
    case SyncScheme::FlatTwo: {
      // Flat: every slave contacts the global master (rank 0) directly,
      // regardless of the latency hierarchy between them (paper Fig. 3a).
      for (Rank r = 1; r < n; ++r) {
        ranks[static_cast<std::size_t>(r)].sync.push_back(
            measure_offset(topo, clocks, net, rng, r, 0, phase, pingpongs,
                           cursor));
      }
      return;
    }
    case SyncScheme::HierarchicalTwo: {
      // Hierarchical (paper Fig. 3b): each metahost appoints its lowest
      // rank as local master; the metamaster is rank 0's local master.
      // Local masters measure against the metamaster over the external
      // network; every other process measures against its local master
      // over the internal network only.
      const auto masters = topo.local_masters();
      const Rank metamaster =
          masters[static_cast<std::size_t>(topo.metahost_of(0).get())];
      for (Rank lm : masters) {
        if (lm == metamaster || lm == kNoRank) continue;
        ranks[static_cast<std::size_t>(lm)].sync.push_back(
            measure_offset(topo, clocks, net, rng, lm, metamaster, phase,
                           pingpongs, cursor));
      }
      for (Rank r = 0; r < n; ++r) {
        const Rank lm =
            masters[static_cast<std::size_t>(topo.metahost_of(r).get())];
        if (r == lm) continue;
        const auto& spec = topo.metahost(topo.metahost_of(r));
        if (spec.has_global_clock) {
          // Hardware-synchronized metahost: the intra-metahost step is
          // omitted (paper §4); record the implied zero offset so the
          // post-mortem pass still finds a reference chain.
          OffsetRecord rec;
          rec.phase = phase;
          rec.ref_rank = lm;
          rec.local_mid =
              clocks.clock_of(topo, r).at(cursor).s;
          rec.offset = 0.0;
          rec.error_bound = 0.0;
          ranks[static_cast<std::size_t>(r)].sync.push_back(rec);
          continue;
        }
        ranks[static_cast<std::size_t>(r)].sync.push_back(
            measure_offset(topo, clocks, net, rng, r, lm, phase, pingpongs,
                           cursor));
      }
      return;
    }
  }
}

}  // namespace

TraceCollection collect_traces(const simnet::Topology& topo,
                               const simnet::ClockSet& clocks,
                               const simmpi::Program& prog,
                               const simmpi::ExecResult& exec,
                               const MeasurementConfig& cfg,
                               const std::vector<EnvMap>& envs) {
  MSC_CHECK(exec.num_ranks() == topo.num_ranks(),
            "execution/topology rank mismatch");
  telemetry::ScopedSpan span("trace");
  TraceCollection out;
  out.scheme = cfg.scheme;
  out.synchronized = false;

  // --- definition records ---------------------------------------------
  const std::vector<EnvMap> env_maps =
      envs.empty() ? default_envs(topo) : envs;
  // resolve_metahosts returns defs in topology order carrying env ids;
  // the trace-wide table is indexed by the resolved numeric id.
  const auto topo_order = resolve_metahosts(topo, env_maps);
  out.defs.metahosts.resize(topo_order.size());
  std::vector<MetahostId> topo_to_id(topo_order.size());
  for (std::size_t m = 0; m < topo_order.size(); ++m) {
    topo_to_id[m] = topo_order[m].id;
    out.defs.metahosts[static_cast<std::size_t>(topo_order[m].id.get())] =
        topo_order[m];
  }

  out.defs.regions = prog.regions;
  for (std::size_t c = 0; c < prog.comms.size(); ++c) {
    const auto& comm = prog.comms.get(CommId{static_cast<int>(c)});
    out.defs.comms.push_back(CommDef{comm.id, comm.name, comm.members});
  }
  for (Rank r = 0; r < topo.num_ranks(); ++r) {
    const auto& p = topo.placement(r);
    LocationDef loc;
    loc.machine = topo_to_id[static_cast<std::size_t>(p.metahost.get())];
    loc.node = p.node;
    loc.process = r;
    loc.thread = 0;
    out.defs.locations.push_back(loc);
  }

  // --- event stamping through the local clocks -------------------------
  Rng root(cfg.seed);
  out.ranks.resize(static_cast<std::size_t>(topo.num_ranks()));
  for (Rank r = 0; r < topo.num_ranks(); ++r) {
    auto& lt = out.ranks[static_cast<std::size_t>(r)];
    lt.rank = r;
    const auto& clock = clocks.clock_of(topo, r);
    Rng rng = root.split(static_cast<std::uint64_t>(r) + 1);
    double last = -kInfTime;
    lt.events.reserve(exec.per_rank[static_cast<std::size_t>(r)].size());
    for (const auto& ev : exec.per_rank[static_cast<std::size_t>(r)]) {
      Event te;
      switch (ev.type) {
        case simmpi::ExecEventType::Enter: te.type = EventType::Enter; break;
        case simmpi::ExecEventType::Exit: te.type = EventType::Exit; break;
        case simmpi::ExecEventType::Send: te.type = EventType::Send; break;
        case simmpi::ExecEventType::Recv: te.type = EventType::Recv; break;
        case simmpi::ExecEventType::CollExit:
          te.type = EventType::CollExit;
          break;
      }
      // Monotone clock read: a real node clock never runs backwards, so
      // quantization/read noise must not reorder a process's events.
      double stamp = clock.read(ev.time, rng).s;
      if (stamp <= last) stamp = last + 1e-9;
      last = stamp;
      te.time = stamp;
      te.region = ev.region;
      te.peer = ev.peer;
      te.tag = ev.tag;
      te.bytes = ev.bytes;
      te.comm = ev.comm;
      te.root = ev.root;
      te.sent_bytes = ev.sent_bytes;
      te.recvd_bytes = ev.recvd_bytes;
      lt.events.push_back(te);
    }
    telemetry::counter("trace.events").add(lt.events.size());
    telemetry::histogram("trace.events_per_rank",
                         {1e2, 1e3, 1e4, 1e5, 1e6})
        .observe(static_cast<double>(lt.events.size()));
    if (telemetry::progress_enabled())
      telemetry::progress("trace", static_cast<double>(r + 1) /
                                       static_cast<double>(topo.num_ranks()));
  }
  telemetry::counter("trace.ranks").add(out.ranks.size());

  // --- offset measurements (program start and end, paper §3) -----------
  simnet::Network net(topo, root.split(0x5359ULL));
  Rng sync_rng = root.split(0x53594eULL);
  run_sync_phase(topo, clocks, net, sync_rng, cfg.scheme, /*phase=*/0,
                 cfg.pingpongs, TrueTime{0.0}, out.ranks);
  if (cfg.scheme == SyncScheme::FlatTwo ||
      cfg.scheme == SyncScheme::HierarchicalTwo) {
    run_sync_phase(topo, clocks, net, sync_rng, cfg.scheme, /*phase=*/1,
                   cfg.pingpongs, exec.end_time, out.ranks);
  }
  return out;
}

}  // namespace metascope::tracing
