#include "tracing/trace.hpp"

#include <algorithm>

namespace metascope::tracing {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::Enter: return "ENTER";
    case EventType::Exit: return "EXIT";
    case EventType::Send: return "SEND";
    case EventType::Recv: return "RECV";
    case EventType::CollExit: return "COLLEXIT";
  }
  return "?";
}

const char* to_string(SyncScheme s) {
  switch (s) {
    case SyncScheme::None: return "none";
    case SyncScheme::FlatSingle: return "flat-single";
    case SyncScheme::FlatTwo: return "flat-two";
    case SyncScheme::HierarchicalTwo: return "hierarchical-two";
  }
  return "?";
}

std::size_t TraceCollection::total_events() const {
  std::size_t n = 0;
  for (const auto& t : ranks) n += t.events.size();
  return n;
}

std::vector<TraceCollection::GlobalRef> TraceCollection::global_order()
    const {
  std::vector<GlobalRef> order;
  order.reserve(total_events());
  for (const auto& t : ranks)
    for (std::uint32_t i = 0; i < t.events.size(); ++i)
      order.push_back({t.rank, i});
  std::sort(order.begin(), order.end(),
            [this](const GlobalRef& a, const GlobalRef& b) {
              const double ta =
                  ranks[static_cast<std::size_t>(a.rank)].events[a.index].time;
              const double tb =
                  ranks[static_cast<std::size_t>(b.rank)].events[b.index].time;
              if (ta != tb) return ta < tb;
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.index < b.index;
            });
  return order;
}

}  // namespace metascope::tracing
