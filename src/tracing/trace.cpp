#include "tracing/trace.hpp"

#include <algorithm>

namespace metascope::tracing {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::Enter: return "ENTER";
    case EventType::Exit: return "EXIT";
    case EventType::Send: return "SEND";
    case EventType::Recv: return "RECV";
    case EventType::CollExit: return "COLLEXIT";
  }
  return "?";
}

const char* to_string(SyncScheme s) {
  switch (s) {
    case SyncScheme::None: return "none";
    case SyncScheme::FlatSingle: return "flat-single";
    case SyncScheme::FlatTwo: return "flat-two";
    case SyncScheme::HierarchicalTwo: return "hierarchical-two";
  }
  return "?";
}

std::size_t in_memory_bytes(const LocalTrace& t) {
  return t.events.size() * sizeof(Event) +
         t.sync.size() * sizeof(OffsetRecord);
}

std::size_t in_memory_bytes(const TraceCollection& tc) {
  std::size_t n = 0;
  for (const auto& t : tc.ranks) n += in_memory_bytes(t);
  return n;
}

std::size_t TraceCollection::total_events() const {
  std::size_t n = 0;
  for (const auto& t : ranks) n += t.events.size();
  return n;
}

std::vector<TraceCollection::GlobalRef> TraceCollection::global_order()
    const {
  std::vector<GlobalRef> order;
  order.reserve(total_events());

  // Each rank's stream is already time-sorted in every normal pipeline
  // (monotone clocks, and both sync stages preserve per-rank order), so
  // the global order is a k-way merge: O(N log k) instead of the old
  // O(N log N) sort over all events at once. Verify the premise with
  // one linear scan and fall back to the full sort if any rank's stream
  // is out of order — same result either way.
  bool per_rank_sorted = true;
  for (const auto& t : ranks) {
    for (std::size_t i = 1; i < t.events.size(); ++i) {
      if (t.events[i].time < t.events[i - 1].time) {
        per_rank_sorted = false;
        break;
      }
    }
    if (!per_rank_sorted) break;
  }

  if (!per_rank_sorted) {
    for (const auto& t : ranks)
      for (std::uint32_t i = 0; i < t.events.size(); ++i)
        order.push_back({t.rank, i});
    std::sort(
        order.begin(), order.end(),
        [this](const GlobalRef& a, const GlobalRef& b) {
          const double ta =
              ranks[static_cast<std::size_t>(a.rank)].events[a.index].time;
          const double tb =
              ranks[static_cast<std::size_t>(b.rank)].events[b.index].time;
          if (ta != tb) return ta < tb;
          if (a.rank != b.rank) return a.rank < b.rank;
          return a.index < b.index;
        });
    return order;
  }

  // Min-heap over each rank's head event, keyed (time, rank, index) —
  // exactly the sort's comparator, so the merged order (including the
  // tie-break among equal timestamps) is identical to the old sort's.
  struct Head {
    double time;
    Rank rank;
    std::uint32_t index;
  };
  // greater-than for a min-heap via std::push_heap/pop_heap.
  const auto after = [](const Head& a, const Head& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.rank != b.rank) return a.rank > b.rank;
    return a.index > b.index;
  };
  std::vector<Head> heap;
  heap.reserve(ranks.size());
  for (const auto& t : ranks)
    if (!t.events.empty())
      heap.push_back(Head{t.events.front().time, t.rank, 0});
  std::make_heap(heap.begin(), heap.end(), after);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    Head h = heap.back();
    heap.pop_back();
    order.push_back({h.rank, h.index});
    const auto& events = ranks[static_cast<std::size_t>(h.rank)].events;
    if (h.index + 1 < events.size()) {
      heap.push_back(Head{events[h.index + 1].time, h.rank, h.index + 1});
      std::push_heap(heap.begin(), heap.end(), after);
    }
  }
  return order;
}

std::size_t prune_quarantined(TraceCollection& tc,
                              const std::vector<Rank>& quarantined) {
  if (quarantined.empty()) return 0;
  std::vector<bool> is_quarantined(
      static_cast<std::size_t>(tc.num_ranks()), false);
  for (Rank r : quarantined)
    if (r >= 0 && r < tc.num_ranks())
      is_quarantined[static_cast<std::size_t>(r)] = true;

  // Communicators with at least one quarantined member can never again
  // complete a collective instance.
  std::vector<bool> comm_tainted(tc.defs.comms.size(), false);
  for (std::size_t c = 0; c < tc.defs.comms.size(); ++c)
    for (Rank m : tc.defs.comms[c].members)
      if (m >= 0 && m < tc.num_ranks() &&
          is_quarantined[static_cast<std::size_t>(m)]) {
        comm_tainted[c] = true;
        break;
      }

  std::size_t pruned = 0;
  for (auto& t : tc.ranks) {
    if (t.rank >= 0 && t.rank < tc.num_ranks() &&
        is_quarantined[static_cast<std::size_t>(t.rank)])
      continue;
    std::vector<Event> kept;
    kept.reserve(t.events.size());
    for (Event e : t.events) {
      switch (e.type) {
        case EventType::Send:
        case EventType::Recv:
          if (e.peer >= 0 && e.peer < tc.num_ranks() &&
              is_quarantined[static_cast<std::size_t>(e.peer)]) {
            ++pruned;
            continue;
          }
          break;
        case EventType::CollExit:
          if (e.comm.valid() &&
              static_cast<std::size_t>(e.comm.get()) < comm_tainted.size() &&
              comm_tainted[static_cast<std::size_t>(e.comm.get())]) {
            // Keep the Exit so the region nesting stays balanced; only
            // the collective semantics are gone.
            Event exit_ev;
            exit_ev.type = EventType::Exit;
            exit_ev.time = e.time;
            kept.push_back(exit_ev);
            ++pruned;
            continue;
          }
          break;
        default:
          break;
      }
      kept.push_back(e);
    }
    t.events = std::move(kept);
  }
  return pruned;
}

}  // namespace metascope::tracing
