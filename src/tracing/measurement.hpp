// The measurement layer: turns an engine execution into per-process local
// traces, exactly as an instrumented run would —
//
//  * every event timestamp is a *read of the node-local clock* (skewed,
//    drifting, quantized), never true time;
//  * offset measurements between processes are taken at program start and
//    program end per the configured synchronization scheme (paper §3/§4)
//    and recorded into the traces for post-mortem correction;
//  * the metahost identity of every process is resolved through the
//    environment-variable mechanism (paper §4).
#pragma once

#include <cstdint>

#include "simmpi/engine.hpp"
#include "simnet/clock.hpp"
#include "tracing/metahost_env.hpp"
#include "tracing/trace.hpp"

namespace metascope::tracing {

struct MeasurementConfig {
  SyncScheme scheme{SyncScheme::HierarchicalTwo};
  /// Ping-pongs per offset measurement; the minimum-RTT round is kept
  /// (Cristian's remote clock reading).
  int pingpongs{10};
  /// Seed for clock-read noise and measurement-message jitter.
  std::uint64_t seed{0xC10C5ULL};
};

/// Produces the local traces of one experiment. `envs` defaults to
/// default_envs(topo) when empty.
TraceCollection collect_traces(const simnet::Topology& topo,
                               const simnet::ClockSet& clocks,
                               const simmpi::Program& prog,
                               const simmpi::ExecResult& exec,
                               const MeasurementConfig& cfg = {},
                               const std::vector<EnvMap>& envs = {});

}  // namespace metascope::tracing
