// Windowed (out-of-core) reading of v3 trace files.
//
// decode_local_trace materializes a rank's whole event vector before
// the analyzer sees a single event, so peak memory grows linearly with
// trace length. TraceStream keeps the file mapped and decodes the
// columnar payload lazily instead: the header, per-type counts, sync
// records and the complete nibble-packed type stream are validated up
// front (cheap — the type stream is half a byte per event), the column
// *frames* are walked and bounds-checked up front, but the column
// *payloads* stay encoded until the replay asks for the next window of
// events. Per-column codec state lives in chunked cursors
// (common/column_codec.hpp), so any window size decodes bit-identically
// to the batch reader.
//
// Error taxonomy parity: every failure mode of decode_local_trace
// surfaces here with the same ErrorCode — magic/version/header
// corruption, implausible rank ids, count-sum mismatches, bad type
// nibbles and truncated column frames at open; codec-level corruption
// (bad mode/lead/scale/width bytes, column length mismatches) when the
// window containing it decodes. Streaming reads v3 only; v1/v2 files
// are VersionMismatch (they interleave fields row-wise, so windowed
// decoding would save nothing — materialize them instead).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/column_codec.hpp"
#include "tracing/epilog_io.hpp"
#include "tracing/trace.hpp"

namespace metascope::tracing {

/// The slice of one event the streaming prepare pass consumes: type and
/// time (structural validation), the region/comm columns (call-path ids
/// and collective instance counting) and the message peer (quarantine
/// filtering) — never the tag/byte-count columns.
struct LightEvent {
  EventType type{EventType::Enter};
  double time{0.0};
  std::int64_t region{-1};  ///< Enter/CollExit
  std::int64_t comm{-1};    ///< CollExit
  std::int64_t peer{-1};    ///< Send/Recv
};

class TraceStream {
 public:
  /// Opens over borrowed bytes (they must outlive the stream — the
  /// archive layer passes a MappedFile's view). Validates everything up
  /// to but excluding the column payloads; throws taxonomy-typed Errors
  /// exactly like decode_local_trace.
  TraceStream(const std::uint8_t* data, std::size_t size, std::string path);

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] std::uint64_t num_events() const { return nev_; }
  [[nodiscard]] const std::vector<OffsetRecord>& sync() const {
    return sync_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// One cheap pass over the light columns (fresh cursors; does not
  /// move the window position). Used by the streaming prepare pass.
  void scan_light(const std::function<void(const LightEvent&)>& cb) const;

  /// Decodes the next up-to-`max_events` events, appending fully
  /// populated Events to `out`. Returns how many were produced (0 at
  /// end of stream). The per-column frame contracts are re-checked
  /// when the last event decodes, mirroring the batch reader.
  std::size_t next(std::vector<Event>& out, std::size_t max_events);

  [[nodiscard]] std::size_t decoded() const { return decoded_; }
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(nev_) - decoded_;
  }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

 private:
  struct Col {
    std::size_t start{0};  ///< payload offset into the file
    std::size_t len{0};    ///< framed byte length
    std::size_t n{0};      ///< row count
  };

  [[nodiscard]] std::uint8_t type_at(std::size_t i) const {
    const std::uint8_t b = nibbles_[i / 2];
    return i % 2 == 0 ? static_cast<std::uint8_t>(b & 0xF)
                      : static_cast<std::uint8_t>(b >> 4);
  }
  [[nodiscard]] colcodec::IntColumnCursor int_cursor(const Col& c,
                                                     const char* what) const;
  [[nodiscard]] colcodec::DoubleColumnCursor double_cursor(
      const Col& c, const char* what) const;
  /// Re-throws a Truncated error under the canonical "truncated trace
  /// file" diagnosis (progress = events decoded so far); other codes
  /// pass through.
  [[noreturn]] void rethrow(const Error& e, std::size_t events_done) const;
  void finish_window_cursors();

  const std::uint8_t* data_{nullptr};
  std::size_t size_{0};
  std::string path_;
  Rank rank_{kNoRank};
  std::uint64_t nev_{0};
  std::array<std::uint64_t, 5> counts_{};
  std::vector<OffsetRecord> sync_;
  const std::uint8_t* nibbles_{nullptr};

  // Column frame directory, in file order.
  Col time_, enter_region_;
  Col send_peer_, send_tag_, send_bytes_, send_comm_;
  Col recv_peer_, recv_tag_, recv_bytes_, recv_comm_;
  Col coll_region_, coll_comm_, coll_root_;
  Col coll_bytes_, coll_sent_, coll_recvd_;

  // Window cursors (one per non-empty column) + reusable chunk buffers.
  std::size_t decoded_{0};
  colcodec::DoubleColumnCursor c_time_, c_send_bytes_, c_recv_bytes_;
  colcodec::DoubleColumnCursor c_coll_bytes_, c_coll_sent_, c_coll_recvd_;
  colcodec::IntColumnCursor c_enter_region_;
  colcodec::IntColumnCursor c_send_peer_, c_send_tag_, c_send_comm_;
  colcodec::IntColumnCursor c_recv_peer_, c_recv_tag_, c_recv_comm_;
  colcodec::IntColumnCursor c_coll_region_, c_coll_comm_, c_coll_root_;
  // One scratch buffer per column, reused across next() calls: tiny
  // windows mean many calls, and a fresh vector per call would put a
  // malloc/free pair per column on the replay hot path.
  std::vector<double> b_time_, b_send_bytes_, b_recv_bytes_;
  std::vector<double> b_coll_bytes_, b_coll_sent_, b_coll_recvd_;
  std::vector<std::int64_t> b_enter_region_;
  std::vector<std::int64_t> b_send_peer_, b_send_tag_, b_send_comm_;
  std::vector<std::int64_t> b_recv_peer_, b_recv_tag_, b_recv_comm_;
  std::vector<std::int64_t> b_coll_region_, b_coll_comm_, b_coll_root_;
};

/// A streamable experiment: the shared definitions plus each rank's
/// trace file path. Produced by archive::ExperimentArchive::stream_source
/// (which performs open-time validation and, in permissive mode, fills
/// `quarantined`); consumed by analysis::analyze_streaming.
struct StreamSource {
  /// Defs, flags and rank slots (event vectors stay empty).
  TraceCollection defs;
  /// Per-rank trace file path, indexed by rank.
  std::vector<std::string> paths;
  bool use_mmap{true};
  /// Ranks whose files failed open-time validation under a permissive
  /// read: they stream zero events, and surviving ranks' events are
  /// filtered against them exactly like tracing::prune_quarantined
  /// (sorted ascending).
  std::vector<Rank> quarantined;
};

}  // namespace metascope::tracing
