// Local traces and the experiment-wide trace collection.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "tracing/defs.hpp"
#include "tracing/event.hpp"

namespace metascope::tracing {

/// One offset measurement taken at runtime between this process and a
/// reference process (paper §3/§4). `local_mid` is this process's clock
/// at the measurement midpoint; `offset` estimates ref_clock - my_clock
/// at that moment. Phase 0 = program start, phase 1 = program end.
struct OffsetRecord {
  int phase{0};
  Rank ref_rank{kNoRank};
  double local_mid{0.0};
  double offset{0.0};
  /// Half of the best round-trip seen — Cristian's error bound.
  double error_bound{0.0};

  bool operator==(const OffsetRecord&) const = default;
};

/// The events of one process, in its own clock domain, plus the offset
/// measurements the runtime recorded for post-mortem synchronization.
struct LocalTrace {
  Rank rank{kNoRank};
  std::vector<Event> events;
  std::vector<OffsetRecord> sync;

  bool operator==(const LocalTrace&) const = default;
};

/// Which synchronization protocol the measurement layer executed.
enum class SyncScheme {
  None,             ///< no measurements (perfect-clock experiments)
  FlatSingle,       ///< every slave vs rank 0, program start only
  FlatTwo,          ///< every slave vs rank 0, start and end
  HierarchicalTwo,  ///< slaves vs local master, masters vs metamaster
};

const char* to_string(SyncScheme s);

/// A complete experiment's worth of trace data.
struct TraceCollection {
  TraceDefs defs;
  std::vector<LocalTrace> ranks;
  SyncScheme scheme{SyncScheme::None};
  /// Which clock domain event times are in.
  bool synchronized{false};

  [[nodiscard]] int num_ranks() const {
    return static_cast<int>(ranks.size());
  }
  [[nodiscard]] std::size_t total_events() const;

  /// Global event order: indices (rank, event index) sorted by timestamp
  /// (ties broken by rank, then position). The KOJAK-style serial
  /// analyzer replays this order. Implemented as a k-way merge of the
  /// per-rank streams (O(N log k)) when each stream is time-sorted —
  /// the normal case — with a full O(N log N) sort as fallback; both
  /// produce the identical order.
  struct GlobalRef {
    Rank rank;
    std::uint32_t index;
  };
  [[nodiscard]] std::vector<GlobalRef> global_order() const;
};

/// Resident size of a trace's payload vectors (events + sync records),
/// independent of any serialization format. The byte-accounting split:
/// "in-memory bytes" is what the analyzer holds and replays over;
/// "on-disk bytes" (telemetry counters archive.bytes_on_disk /
/// archive.read.bytes) is what the encoded archive occupies — the ratio
/// of the two is the trace-format compression ratio.
std::size_t in_memory_bytes(const LocalTrace& t);
std::size_t in_memory_bytes(const TraceCollection& tc);

/// Permissive-recovery support: removes from the surviving ranks every
/// event that can no longer be matched once the given ranks are
/// quarantined (their traces emptied) —
///  - Send/Recv events whose peer is quarantined are dropped (the
///    enclosing MPI region stays as plain time);
///  - CollExit events on a communicator containing a quarantined rank
///    degrade to plain Exit events (the instance is incomplete on every
///    surviving rank, so the whole instance disappears consistently).
/// Region nesting stays balanced, so prepare()'s structural validation
/// and the replay still hold. Returns the number of events dropped or
/// degraded. Deterministic: depends only on the collection and the
/// quarantined set, never on reader parallelism.
std::size_t prune_quarantined(TraceCollection& tc,
                              const std::vector<Rank>& quarantined);

}  // namespace metascope::tracing
