#include "tracing/stream.hpp"

#include <algorithm>

#include "common/binary_io.hpp"
#include "common/error.hpp"

namespace metascope::tracing {

namespace {

// Mirrors the batch reader's constants (tracing/epilog_io.cpp).
constexpr std::uint32_t kTraceMagic = 0x5453434DU;  // "MCST"
constexpr std::size_t kMinSyncRecordBytesV3 = 1;
constexpr std::size_t kMinEventBytesV3 = 1;
constexpr std::size_t kNumEventTypes = 5;
constexpr std::size_t kScanChunk = 4096;

/// Frame helpers, identical to the batch reader's begin/end_column.
std::size_t begin_column(Decoder& d, const char* what) {
  const std::uint64_t len = d.get_varint();
  if (len > d.remaining())
    d.fail(ErrorCode::Truncated,
           std::string("truncated ") + what + " column: frame declares " +
               std::to_string(len) + " bytes but only " +
               std::to_string(d.remaining()) + " remain");
  return d.pos() + static_cast<std::size_t>(len);
}

void end_column(const Decoder& d, const char* what, std::size_t end) {
  if (d.pos() != end)
    d.fail(ErrorCode::Corrupt,
           std::string("column length mismatch for ") + what +
               " column: codec consumed through byte " +
               std::to_string(d.pos()) + " but the frame ends at byte " +
               std::to_string(end));
}

void get_int_column(Decoder& d, std::vector<std::int64_t>& out,
                    std::size_t n, const char* what) {
  out.resize(n);
  if (n == 0) return;
  const std::size_t end = begin_column(d, what);
  colcodec::decode_int_column(d, out.data(), n);
  end_column(d, what, end);
}

void get_double_column(Decoder& d, std::vector<double>& out, std::size_t n,
                       const char* what) {
  out.resize(n);
  if (n == 0) return;
  const std::size_t end = begin_column(d, what);
  colcodec::decode_double_column(d, out.data(), n);
  end_column(d, what, end);
}

}  // namespace

void TraceStream::rethrow(const Error& e, std::size_t events_done) const {
  if (e.code() != ErrorCode::Truncated) throw e;
  throw Error(ErrorCode::Truncated,
              "truncated trace file for rank " + std::to_string(rank_) +
                  ": payload ends after " + std::to_string(events_done) +
                  " of " + std::to_string(nev_) + " events (" +
                  e.base_message() + ")",
              e.context());
}

colcodec::IntColumnCursor TraceStream::int_cursor(const Col& c,
                                                  const char* what) const {
  return colcodec::IntColumnCursor(data_ + c.start, size_ - c.start, c.len,
                                   c.n, what,
                                   ErrorContext{path_, rank_, -1});
}

colcodec::DoubleColumnCursor TraceStream::double_cursor(
    const Col& c, const char* what) const {
  return colcodec::DoubleColumnCursor(data_ + c.start, size_ - c.start,
                                      c.len, c.n, what,
                                      ErrorContext{path_, rank_, -1});
}

TraceStream::TraceStream(const std::uint8_t* data, std::size_t size,
                         std::string path)
    : data_(data), size_(size), path_(std::move(path)) {
  Decoder d(data_, size_, ErrorContext{path_, -1, -1});
  d.expect_magic(kTraceMagic, "trace file");
  // Streaming is a v3-only feature: the columnar layout is what makes a
  // windowed read possible at all.
  d.expect_version_in(kTraceFormatVersion, kTraceFormatVersion,
                      "streamed trace file");
  std::uint64_t nsync = 0;
  try {
    const std::int64_t rank = d.get_svarint();
    if (rank < -1 || rank > static_cast<std::int64_t>(kMaxRanksPerArchive))
      d.fail(ErrorCode::Corrupt,
             "implausible rank id " + std::to_string(rank));
    rank_ = static_cast<Rank>(rank);
    d.set_rank(static_cast<int>(rank));

    nsync = d.get_count("sync records", kMinSyncRecordBytesV3);
    nev_ = d.get_count("events", kMinEventBytesV3);
    std::uint64_t sum = 0;
    for (std::size_t ty = 0; ty < kNumEventTypes; ++ty) {
      counts_[ty] = d.get_varint();
      sum += counts_[ty];
    }
    if (sum != nev_)
      d.fail(ErrorCode::Corrupt,
             "per-type event counts sum to " + std::to_string(sum) +
                 " but the header declares " + std::to_string(nev_) +
                 " events");

    // Sync records are tiny (a handful per rank) — decode them eagerly.
    {
      const auto n = static_cast<std::size_t>(nsync);
      std::vector<std::int64_t> phase, ref_rank;
      std::vector<double> local_mid, offset, error_bound;
      get_int_column(d, phase, n, "sync.phase");
      get_int_column(d, ref_rank, n, "sync.ref_rank");
      get_double_column(d, local_mid, n, "sync.local_mid");
      get_double_column(d, offset, n, "sync.offset");
      get_double_column(d, error_bound, n, "sync.error_bound");
      sync_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        OffsetRecord& s = sync_[i];
        s.phase = static_cast<int>(phase[i]);
        s.ref_rank = static_cast<Rank>(ref_rank[i]);
        s.local_mid = local_mid[i];
        s.offset = offset[i];
        s.error_bound = error_bound[i];
      }
    }

    // Validate the whole type stream up front: it is the per-event
    // decode schedule, so a bad nibble anywhere must surface before any
    // window is trusted. Same checks and wording as the batch reader.
    const std::size_t nbytes = static_cast<std::size_t>((nev_ + 1) / 2);
    nibbles_ = d.get_raw(nbytes, "event type stream");
    std::array<std::uint64_t, kNumEventTypes> seen{};
    for (std::uint64_t i = 0; i < nev_; ++i) {
      const std::uint8_t ty = type_at(static_cast<std::size_t>(i));
      if (ty >= kNumEventTypes)
        d.fail(ErrorCode::Corrupt,
               "corrupt trace: unknown event type " +
                   std::to_string(static_cast<int>(ty)) +
                   " in type stream at event " + std::to_string(i));
      ++seen[ty];
    }
    if (nev_ % 2 != 0 && (nibbles_[nbytes - 1] >> 4) != 0)
      d.fail(ErrorCode::Corrupt,
             "corrupt trace: nonzero padding nibble in type stream");
    for (std::size_t ty = 0; ty < kNumEventTypes; ++ty)
      if (seen[ty] != counts_[ty])
        d.fail(ErrorCode::Corrupt,
               "corrupt trace: type stream has " + std::to_string(seen[ty]) +
                   " events of type " + std::to_string(ty) +
                   " but the header declares " + std::to_string(counts_[ty]));

    // Walk the column frames without decoding their payloads: record
    // where each column lives, bounds-check every frame against the
    // file, and require the last one to end exactly at the file's end.
    const auto n_enter = static_cast<std::size_t>(counts_[0]);
    const auto n_send = static_cast<std::size_t>(counts_[2]);
    const auto n_recv = static_cast<std::size_t>(counts_[3]);
    const auto n_coll = static_cast<std::size_t>(counts_[4]);
    const auto walk = [&](Col& col, std::size_t n, const char* what) {
      col.n = n;
      if (n == 0) return;
      const std::size_t end = begin_column(d, what);
      col.start = d.pos();
      col.len = end - col.start;
      (void)d.get_raw(col.len, what);
    };
    walk(time_, static_cast<std::size_t>(nev_), "time");
    walk(enter_region_, n_enter, "enter.region");
    walk(send_peer_, n_send, "send.peer");
    walk(send_tag_, n_send, "send.tag");
    walk(send_bytes_, n_send, "send.bytes");
    walk(send_comm_, n_send, "send.comm");
    walk(recv_peer_, n_recv, "recv.peer");
    walk(recv_tag_, n_recv, "recv.tag");
    walk(recv_bytes_, n_recv, "recv.bytes");
    walk(recv_comm_, n_recv, "recv.comm");
    walk(coll_region_, n_coll, "collexit.region");
    walk(coll_comm_, n_coll, "collexit.comm");
    walk(coll_root_, n_coll, "collexit.root");
    walk(coll_bytes_, n_coll, "collexit.bytes");
    walk(coll_sent_, n_coll, "collexit.sent");
    walk(coll_recvd_, n_coll, "collexit.recvd");
    d.require_end("trace file");

    // Window cursors. Construction reads each column's mode header (and
    // for residual-mode double columns, skip-scans to the residual
    // stream), so malformed codec headers surface now, with the same
    // codes the batch reader raises mid-decode.
    if (time_.n != 0) c_time_ = double_cursor(time_, "time");
    if (n_enter != 0)
      c_enter_region_ = int_cursor(enter_region_, "enter.region");
    if (n_send != 0) {
      c_send_peer_ = int_cursor(send_peer_, "send.peer");
      c_send_tag_ = int_cursor(send_tag_, "send.tag");
      c_send_bytes_ = double_cursor(send_bytes_, "send.bytes");
      c_send_comm_ = int_cursor(send_comm_, "send.comm");
    }
    if (n_recv != 0) {
      c_recv_peer_ = int_cursor(recv_peer_, "recv.peer");
      c_recv_tag_ = int_cursor(recv_tag_, "recv.tag");
      c_recv_bytes_ = double_cursor(recv_bytes_, "recv.bytes");
      c_recv_comm_ = int_cursor(recv_comm_, "recv.comm");
    }
    if (n_coll != 0) {
      c_coll_region_ = int_cursor(coll_region_, "collexit.region");
      c_coll_comm_ = int_cursor(coll_comm_, "collexit.comm");
      c_coll_root_ = int_cursor(coll_root_, "collexit.root");
      c_coll_bytes_ = double_cursor(coll_bytes_, "collexit.bytes");
      c_coll_sent_ = double_cursor(coll_sent_, "collexit.sent");
      c_coll_recvd_ = double_cursor(coll_recvd_, "collexit.recvd");
    }
  } catch (const Error& e) {
    rethrow(e, 0);
  }
}

void TraceStream::scan_light(
    const std::function<void(const LightEvent&)>& cb) const {
  auto time = double_cursor(time_, "time");
  auto enter_region = int_cursor(enter_region_, "enter.region");
  auto send_peer = int_cursor(send_peer_, "send.peer");
  auto recv_peer = int_cursor(recv_peer_, "recv.peer");
  auto coll_region = int_cursor(coll_region_, "collexit.region");
  auto coll_comm = int_cursor(coll_comm_, "collexit.comm");

  std::vector<double> t;
  std::vector<std::int64_t> er, sp, rp, cr, cc;
  std::size_t done = 0;
  try {
    while (done < nev_) {
      const std::size_t k =
          std::min(kScanChunk, static_cast<std::size_t>(nev_) - done);
      std::array<std::size_t, kNumEventTypes> cnt{};
      for (std::size_t i = 0; i < k; ++i) ++cnt[type_at(done + i)];
      t.resize(k);
      time.next(t.data(), k);
      er.resize(cnt[0]);
      if (cnt[0] != 0) enter_region.next(er.data(), cnt[0]);
      sp.resize(cnt[2]);
      if (cnt[2] != 0) send_peer.next(sp.data(), cnt[2]);
      rp.resize(cnt[3]);
      if (cnt[3] != 0) recv_peer.next(rp.data(), cnt[3]);
      cr.resize(cnt[4]);
      cc.resize(cnt[4]);
      if (cnt[4] != 0) {
        coll_region.next(cr.data(), cnt[4]);
        coll_comm.next(cc.data(), cnt[4]);
      }
      std::size_t ie = 0, is = 0, ir = 0, ic = 0;
      for (std::size_t i = 0; i < k; ++i) {
        LightEvent ev;
        ev.type = static_cast<EventType>(type_at(done + i));
        ev.time = t[i];
        switch (ev.type) {
          case EventType::Enter:
            ev.region = er[ie++];
            break;
          case EventType::Exit:
            break;
          case EventType::Send:
            ev.peer = sp[is++];
            break;
          case EventType::Recv:
            ev.peer = rp[ir++];
            break;
          case EventType::CollExit:
            ev.region = cr[ic];
            ev.comm = cc[ic];
            ++ic;
            break;
        }
        cb(ev);
      }
      done += k;
    }
    if (nev_ != 0) {
      time.finish();
      if (enter_region_.n != 0) enter_region.finish();
      if (send_peer_.n != 0) send_peer.finish();
      if (recv_peer_.n != 0) recv_peer.finish();
      if (coll_region_.n != 0) {
        coll_region.finish();
        coll_comm.finish();
      }
    }
  } catch (const Error& e) {
    rethrow(e, done);
  }
}

void TraceStream::finish_window_cursors() {
  if (time_.n != 0) c_time_.finish();
  if (enter_region_.n != 0) c_enter_region_.finish();
  if (send_peer_.n != 0) {
    c_send_peer_.finish();
    c_send_tag_.finish();
    c_send_bytes_.finish();
    c_send_comm_.finish();
  }
  if (recv_peer_.n != 0) {
    c_recv_peer_.finish();
    c_recv_tag_.finish();
    c_recv_bytes_.finish();
    c_recv_comm_.finish();
  }
  if (coll_region_.n != 0) {
    c_coll_region_.finish();
    c_coll_comm_.finish();
    c_coll_root_.finish();
    c_coll_bytes_.finish();
    c_coll_sent_.finish();
    c_coll_recvd_.finish();
  }
}

std::size_t TraceStream::next(std::vector<Event>& out,
                              std::size_t max_events) {
  const std::size_t k = std::min(max_events, remaining());
  if (k == 0) return 0;
  try {
    const std::size_t base = decoded_;
    std::array<std::size_t, kNumEventTypes> cnt{};
    for (std::size_t i = 0; i < k; ++i) ++cnt[type_at(base + i)];

    b_time_.resize(k);
    c_time_.next(b_time_.data(), k);
    b_enter_region_.resize(cnt[0]);
    if (cnt[0] != 0) c_enter_region_.next(b_enter_region_.data(), cnt[0]);

    // Per-type field buffers are pulled in column order; the interleave
    // below walks them with independent indices exactly like the batch
    // reader's reassembly loop.
    b_send_peer_.resize(cnt[2]);
    b_send_tag_.resize(cnt[2]);
    b_send_bytes_.resize(cnt[2]);
    b_send_comm_.resize(cnt[2]);
    if (cnt[2] != 0) {
      c_send_peer_.next(b_send_peer_.data(), cnt[2]);
      c_send_tag_.next(b_send_tag_.data(), cnt[2]);
      c_send_bytes_.next(b_send_bytes_.data(), cnt[2]);
      c_send_comm_.next(b_send_comm_.data(), cnt[2]);
    }
    b_recv_peer_.resize(cnt[3]);
    b_recv_tag_.resize(cnt[3]);
    b_recv_bytes_.resize(cnt[3]);
    b_recv_comm_.resize(cnt[3]);
    if (cnt[3] != 0) {
      c_recv_peer_.next(b_recv_peer_.data(), cnt[3]);
      c_recv_tag_.next(b_recv_tag_.data(), cnt[3]);
      c_recv_bytes_.next(b_recv_bytes_.data(), cnt[3]);
      c_recv_comm_.next(b_recv_comm_.data(), cnt[3]);
    }
    b_coll_region_.resize(cnt[4]);
    b_coll_comm_.resize(cnt[4]);
    b_coll_root_.resize(cnt[4]);
    b_coll_bytes_.resize(cnt[4]);
    b_coll_sent_.resize(cnt[4]);
    b_coll_recvd_.resize(cnt[4]);
    if (cnt[4] != 0) {
      c_coll_region_.next(b_coll_region_.data(), cnt[4]);
      c_coll_comm_.next(b_coll_comm_.data(), cnt[4]);
      c_coll_root_.next(b_coll_root_.data(), cnt[4]);
      c_coll_bytes_.next(b_coll_bytes_.data(), cnt[4]);
      c_coll_sent_.next(b_coll_sent_.data(), cnt[4]);
      c_coll_recvd_.next(b_coll_recvd_.data(), cnt[4]);
    }

    out.reserve(out.size() + k);
    std::size_t ie = 0, is = 0, ir = 0, ic = 0;
    for (std::size_t i = 0; i < k; ++i) {
      Event e;
      e.type = static_cast<EventType>(type_at(base + i));
      e.time = b_time_[i];
      switch (e.type) {
        case EventType::Enter:
          e.region = RegionId{static_cast<int>(b_enter_region_[ie++])};
          break;
        case EventType::Exit:
          break;
        case EventType::Send:
          e.peer = static_cast<Rank>(b_send_peer_[is]);
          e.tag = static_cast<int>(b_send_tag_[is]);
          e.bytes = b_send_bytes_[is];
          e.comm = CommId{static_cast<int>(b_send_comm_[is])};
          ++is;
          break;
        case EventType::Recv:
          e.peer = static_cast<Rank>(b_recv_peer_[ir]);
          e.tag = static_cast<int>(b_recv_tag_[ir]);
          e.bytes = b_recv_bytes_[ir];
          e.comm = CommId{static_cast<int>(b_recv_comm_[ir])};
          ++ir;
          break;
        case EventType::CollExit:
          e.region = RegionId{static_cast<int>(b_coll_region_[ic])};
          e.comm = CommId{static_cast<int>(b_coll_comm_[ic])};
          e.root = static_cast<Rank>(b_coll_root_[ic]);
          e.bytes = b_coll_bytes_[ic];
          e.sent_bytes = b_coll_sent_[ic];
          e.recvd_bytes = b_coll_recvd_[ic];
          ++ic;
          break;
      }
      out.push_back(e);
    }
    decoded_ += k;
    if (decoded_ == static_cast<std::size_t>(nev_)) finish_window_cursors();
  } catch (const Error& e) {
    rethrow(e, decoded_);
  }
  return k;
}

}  // namespace metascope::tracing
