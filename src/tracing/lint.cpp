#include "tracing/lint.hpp"

#include <deque>
#include <map>
#include <sstream>
#include <tuple>

namespace metascope::tracing {

std::string LintReport::summary() const {
  if (ok()) return "trace collection is well-formed";
  std::ostringstream os;
  os << problems.size() << " problem(s):\n";
  for (const auto& p : problems) os << "  - " << p << '\n';
  return os.str();
}

namespace {

void lint_rank(const TraceCollection& tc, const LocalTrace& trace,
               std::size_t position, LintReport& rep) {
  std::ostringstream who;
  who << "rank " << trace.rank;
  const std::string me = who.str();

  if (trace.rank != static_cast<Rank>(position))
    rep.problems.push_back(me + ": stored at position " +
                           std::to_string(position));
  if (trace.rank < 0 || trace.rank >= tc.defs.num_ranks()) {
    rep.problems.push_back(me + ": no location entry");
  } else if (tc.defs.location(trace.rank).process != trace.rank) {
    rep.problems.push_back(me + ": location entry names process " +
                           std::to_string(
                               tc.defs.location(trace.rank).process));
  }

  double last = -kInfTime;
  int depth = 0;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const Event& e = trace.events[i];
    const std::string where = me + " event " + std::to_string(i);
    if (e.time < last)
      rep.problems.push_back(where + ": timestamp goes backwards");
    last = e.time;
    switch (e.type) {
      case EventType::Enter:
        if (!e.region.valid() ||
            static_cast<std::size_t>(e.region.get()) >=
                tc.defs.regions.size())
          rep.problems.push_back(where + ": unknown region id");
        ++depth;
        break;
      case EventType::Exit:
      case EventType::CollExit:
        if (depth == 0)
          rep.problems.push_back(where + ": Exit without Enter");
        else
          --depth;
        if (e.type == EventType::CollExit &&
            (e.comm.get() < 0 ||
             static_cast<std::size_t>(e.comm.get()) >= tc.defs.comms.size()))
          rep.problems.push_back(where + ": unknown communicator");
        break;
      case EventType::Send:
      case EventType::Recv:
        if (e.peer < 0 || e.peer >= tc.num_ranks())
          rep.problems.push_back(where + ": peer out of range");
        if (e.bytes < 0.0)
          rep.problems.push_back(where + ": negative message size");
        break;
    }
  }
  if (depth != 0)
    rep.problems.push_back(me + ": " + std::to_string(depth) +
                           " unclosed region(s)");
}

void lint_matching(const TraceCollection& tc, LintReport& rep) {
  std::map<std::tuple<Rank, Rank, int, int>, long> balance;
  for (const auto& t : tc.ranks) {
    for (const auto& e : t.events) {
      if (e.type == EventType::Send)
        balance[{t.rank, e.peer, e.tag, e.comm.get()}] += 1;
      else if (e.type == EventType::Recv)
        balance[{e.peer, t.rank, e.tag, e.comm.get()}] -= 1;
    }
  }
  for (const auto& [key, bal] : balance) {
    if (bal == 0) continue;
    std::ostringstream os;
    os << "channel " << std::get<0>(key) << " -> " << std::get<1>(key)
       << " tag " << std::get<2>(key) << ": "
       << (bal > 0 ? "unreceived send(s)" : "unsent receive(s)") << " ("
       << (bal > 0 ? bal : -bal) << ")";
    rep.problems.push_back(os.str());
  }
}

void lint_collectives(const TraceCollection& tc, LintReport& rep) {
  // Count CollExit instances per (comm, seq); each must equal comm size.
  std::map<std::pair<int, int>, int> arrived;
  std::vector<std::map<int, int>> seq(
      static_cast<std::size_t>(tc.num_ranks()));
  for (const auto& t : tc.ranks) {
    if (t.rank < 0 || static_cast<std::size_t>(t.rank) >= seq.size())
      continue;
    for (const auto& e : t.events) {
      if (e.type != EventType::CollExit) continue;
      if (e.comm.get() < 0 ||
          static_cast<std::size_t>(e.comm.get()) >= tc.defs.comms.size())
        continue;  // reported by lint_rank
      const int s = seq[static_cast<std::size_t>(t.rank)][e.comm.get()]++;
      ++arrived[{e.comm.get(), s}];
    }
  }
  for (const auto& [key, count] : arrived) {
    const auto& comm = tc.defs.comms[static_cast<std::size_t>(key.first)];
    if (count != static_cast<int>(comm.members.size())) {
      std::ostringstream os;
      os << "collective " << key.second << " on " << comm.name << ": "
         << count << "/" << comm.members.size() << " participants";
      rep.problems.push_back(os.str());
    }
  }
}

}  // namespace

LintReport lint_collection(const TraceCollection& tc) {
  LintReport rep;
  if (tc.defs.num_ranks() != tc.num_ranks())
    rep.problems.push_back("location table size differs from trace count");
  for (std::size_t i = 0; i < tc.ranks.size(); ++i)
    lint_rank(tc, tc.ranks[i], i, rep);
  lint_matching(tc, rep);
  lint_collectives(tc, rep);
  return rep;
}

std::string dump_trace(const TraceCollection& tc, Rank rank,
                       std::size_t max_events) {
  MSC_CHECK(rank >= 0 && rank < tc.num_ranks(), "rank out of range");
  const auto& trace = tc.ranks[static_cast<std::size_t>(rank)];
  std::ostringstream os;
  os << "# rank " << rank;
  if (rank < tc.defs.num_ranks()) {
    const auto& loc = tc.defs.location(rank);
    if (loc.machine.valid() &&
        static_cast<std::size_t>(loc.machine.get()) <
            tc.defs.metahosts.size())
      os << " on " << tc.defs.metahost(loc.machine).name << " node "
         << loc.node.get();
  }
  os << ", " << trace.events.size() << " events\n";
  for (const auto& s : trace.sync) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "# sync phase %d vs rank %d: offset %+.3e s (err %.1e)\n",
                  s.phase, s.ref_rank, s.offset, s.error_bound);
    os << buf;
  }
  const std::size_t n = max_events == 0
                            ? trace.events.size()
                            : std::min(max_events, trace.events.size());
  int depth = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = trace.events[i];
    char head[48];
    std::snprintf(head, sizeof head, "[%5zu] %14.6f  ", i, e.time);
    os << head;
    if (e.type == EventType::Exit || e.type == EventType::CollExit)
      --depth;
    for (int d = 0; d < depth; ++d) os << "  ";
    switch (e.type) {
      case EventType::Enter:
        os << "ENTER " << tc.defs.regions.name(e.region);
        ++depth;
        break;
      case EventType::Exit:
        os << "EXIT";
        break;
      case EventType::Send:
        os << "SEND -> " << e.peer << " tag " << e.tag << " ("
           << static_cast<long long>(e.bytes) << " B)";
        break;
      case EventType::Recv:
        os << "RECV <- " << e.peer << " tag " << e.tag << " ("
           << static_cast<long long>(e.bytes) << " B)";
        break;
      case EventType::CollExit:
        os << "COLLEXIT " << tc.defs.regions.name(e.region);
        if (e.root != kNoRank) os << " root " << e.root;
        break;
    }
    os << '\n';
  }
  if (n < trace.events.size())
    os << "... (" << trace.events.size() - n << " more)\n";
  return os.str();
}

}  // namespace metascope::tracing
