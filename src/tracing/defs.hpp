// Definition records shared by all local traces of an experiment: the
// region table, communicators, the system hierarchy (metahost / node /
// process / thread — the paper's four-element event location), and the
// metahost identities established by the runtime environment mechanism.
#pragma once

#include <string>
#include <vector>

#include "common/name_table.hpp"
#include "common/types.hpp"

namespace metascope::tracing {

/// One metahost as identified at measurement time (paper §4 "Metahost
/// identification"): numeric id for internal use, readable name for
/// presentation.
struct MetahostDef {
  MetahostId id;
  std::string name;
  bool operator==(const MetahostDef&) const = default;
};

/// The four-element event location of one process (thread 0 only; the
/// modelled applications are single-threaded per rank).
struct LocationDef {
  MetahostId machine;
  NodeId node;
  Rank process{kNoRank};
  int thread{0};
  bool operator==(const LocationDef&) const = default;
};

struct CommDef {
  CommId id;
  std::string name;
  std::vector<Rank> members;
  bool operator==(const CommDef&) const = default;
};

struct TraceDefs {
  NameTable<RegionId> regions;
  std::vector<MetahostDef> metahosts;
  std::vector<LocationDef> locations;  ///< indexed by rank
  std::vector<CommDef> comms;          ///< indexed by comm id

  [[nodiscard]] int num_ranks() const {
    return static_cast<int>(locations.size());
  }
  [[nodiscard]] const LocationDef& location(Rank r) const {
    MSC_CHECK(r >= 0 && r < num_ranks(), "rank out of range");
    return locations[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const MetahostDef& metahost(MetahostId id) const {
    MSC_CHECK(id.valid() &&
                  static_cast<std::size_t>(id.get()) < metahosts.size(),
              "metahost out of range");
    return metahosts[static_cast<std::size_t>(id.get())];
  }
  /// Metahost of a rank.
  [[nodiscard]] MetahostId metahost_of(Rank r) const {
    return location(r).machine;
  }
  /// True if the two ranks live on different metahosts — the predicate
  /// behind every "grid" pattern variant.
  [[nodiscard]] bool crosses_metahosts(Rank a, Rank b) const {
    return metahost_of(a) != metahost_of(b);
  }
};

}  // namespace metascope::tracing
