#include "tracing/epilog_io.hpp"

#include <array>

#include "common/binary_io.hpp"
#include "common/column_codec.hpp"
#include "common/error.hpp"

namespace metascope::tracing {

namespace {
constexpr std::uint32_t kDefsMagic = 0x4453434DU;   // "MCSD"
constexpr std::uint32_t kTraceMagic = 0x5453434DU;  // "MCST"

// Cheapest possible encodings, used to validate header counts against
// the bytes actually present before reserving anything: a row-wise
// (v1/v2) sync record is >= 26 bytes (u8 + 1-byte svarint + 3 f64) and
// a columnar (v3) one contributes at least one byte to the phase
// column; a row-wise (v1/v2) event is >= 9 (u8 type + f64 time) and a
// columnar (v3) one at least one byte to the time column; defs-table
// entries bottom out at their field prefixes.
constexpr std::size_t kMinSyncRecordBytes = 26;
constexpr std::size_t kMinSyncRecordBytesV3 = 1;
constexpr std::size_t kMinEventBytes = 9;
constexpr std::size_t kMinEventBytesV3 = 1;
constexpr std::size_t kMinRegionBytes = 1;    // string length prefix
constexpr std::size_t kMinMetahostBytes = 2;  // id + name prefix
constexpr std::size_t kMinLocationBytes = 4;  // four svarints
constexpr std::size_t kMinCommBytes = 3;      // id + name prefix + count

constexpr std::size_t kNumEventTypes = 5;

void check_encode_version(std::uint32_t version) {
  if (version < kMinTraceFormatVersion || version > kTraceFormatVersion)
    throw Error(ErrorCode::VersionMismatch,
                "cannot encode trace format version " +
                    std::to_string(version) + " (supported: " +
                    std::to_string(kMinTraceFormatVersion) + ".." +
                    std::to_string(kTraceFormatVersion) + ")");
}

// ---- sync records (row layout, v1/v2) -------------------------------

void encode_sync_rows(BufWriter& w, const std::vector<OffsetRecord>& sync) {
  for (const auto& s : sync) {
    w.put_u8(static_cast<std::uint8_t>(s.phase));
    w.put_svarint(s.ref_rank);
    w.put_f64(s.local_mid);
    w.put_f64(s.offset);
    w.put_f64(s.error_bound);
  }
}

void decode_sync_rows(Decoder& d, LocalTrace& t, std::uint64_t nsync) {
  t.sync.reserve(static_cast<std::size_t>(nsync));
  for (std::uint64_t i = 0; i < nsync; ++i) {
    OffsetRecord s;
    s.phase = d.get_u8();
    s.ref_rank = static_cast<Rank>(d.get_svarint());
    s.local_mid = d.get_f64();
    s.offset = d.get_f64();
    s.error_bound = d.get_f64();
    t.sync.push_back(s);
  }
}

// ---- row-wise events (v1/v2) ----------------------------------------

void encode_event_rows(BufWriter& w, const std::vector<Event>& events) {
  for (const auto& e : events) {
    w.put_u8(static_cast<std::uint8_t>(e.type));
    w.put_f64(e.time);
    switch (e.type) {
      case EventType::Enter:
        w.put_svarint(e.region.get());
        break;
      case EventType::Exit:
        break;
      case EventType::Send:
      case EventType::Recv:
        w.put_svarint(e.peer);
        w.put_svarint(e.tag);
        w.put_f64(e.bytes);
        w.put_svarint(e.comm.get());
        break;
      case EventType::CollExit:
        w.put_svarint(e.region.get());
        w.put_svarint(e.comm.get());
        w.put_svarint(e.root);
        w.put_f64(e.bytes);
        w.put_f64(e.sent_bytes);
        w.put_f64(e.recvd_bytes);
        break;
    }
  }
}

void decode_event_rows(Decoder& d, LocalTrace& t, std::uint64_t nev) {
  t.events.reserve(static_cast<std::size_t>(nev));
  for (std::uint64_t i = 0; i < nev; ++i) {
    Event e;
    const std::uint8_t type = d.get_u8();
    e.time = d.get_f64();
    switch (static_cast<EventType>(type)) {
      case EventType::Enter:
        e.type = EventType::Enter;
        e.region = RegionId{static_cast<int>(d.get_svarint())};
        break;
      case EventType::Exit:
        e.type = EventType::Exit;
        break;
      case EventType::Send:
      case EventType::Recv:
        e.type = static_cast<EventType>(type);
        e.peer = static_cast<Rank>(d.get_svarint());
        e.tag = static_cast<int>(d.get_svarint());
        e.bytes = d.get_f64();
        e.comm = CommId{static_cast<int>(d.get_svarint())};
        break;
      case EventType::CollExit:
        e.type = EventType::CollExit;
        e.region = RegionId{static_cast<int>(d.get_svarint())};
        e.comm = CommId{static_cast<int>(d.get_svarint())};
        e.root = static_cast<Rank>(d.get_svarint());
        e.bytes = d.get_f64();
        e.sent_bytes = d.get_f64();
        e.recvd_bytes = d.get_f64();
        break;
      default:
        d.fail(ErrorCode::Corrupt, "corrupt trace: unknown event type " +
                                       std::to_string(static_cast<int>(type)));
    }
    t.events.push_back(e);
  }
}

// ---- columnar events (v3) -------------------------------------------
//
// Layout after the sync columns (see DESIGN.md §5e):
//   - nibble-packed type stream: ceil(nevents/2) bytes, low nibble =
//     even-index event, high nibble = odd-index event; a trailing unused
//     high nibble must be zero;
//   - framed columns in fixed order, each a varint byte-length followed
//     by that many payload bytes. A column whose row count is zero is
//     omitted entirely (the counts in the header make this unambiguous).
// Column order: time (all events, stream order); Enter.region;
// Send.peer/tag/bytes/comm; Recv.peer/tag/bytes/comm;
// CollExit.region/comm/root/bytes/sent/recvd.

/// Per-type field vectors gathered from (encode) or destined for
/// (decode) the interleaved event stream.
struct EventColumns {
  std::vector<double> time;  // all events, stream order
  std::vector<std::int64_t> enter_region;
  std::vector<std::int64_t> send_peer, send_tag, send_comm;
  std::vector<double> send_bytes;
  std::vector<std::int64_t> recv_peer, recv_tag, recv_comm;
  std::vector<double> recv_bytes;
  std::vector<std::int64_t> coll_region, coll_comm, coll_root;
  std::vector<double> coll_bytes, coll_sent, coll_recvd;
};

template <typename EncodeFn>
void put_framed_column(BufWriter& w, EncodeFn&& encode_fn) {
  BufWriter col;
  encode_fn(col);
  w.put_varint(col.size());
  if (col.size() != 0) w.put_bytes(col.data().data(), col.size());
}

void put_int_column(BufWriter& w, const std::vector<std::int64_t>& v) {
  if (v.empty()) return;
  put_framed_column(
      w, [&](BufWriter& c) { colcodec::encode_int_column(c, v.data(), v.size()); });
}

void put_double_column(BufWriter& w, const std::vector<double>& v) {
  if (v.empty()) return;
  put_framed_column(w, [&](BufWriter& c) {
    colcodec::encode_double_column(c, v.data(), v.size());
  });
}

/// Reads a column frame's byte-length prefix and returns the position
/// at which the column must end. Truncated if the declared length
/// overruns the file.
std::size_t begin_column(Decoder& d, const char* what) {
  const std::uint64_t len = d.get_varint();
  if (len > d.remaining())
    d.fail(ErrorCode::Truncated,
           std::string("truncated ") + what + " column: frame declares " +
               std::to_string(len) + " bytes but only " +
               std::to_string(d.remaining()) + " remain");
  return d.pos() + static_cast<std::size_t>(len);
}

/// Corrupt if the codec consumed a different number of bytes than the
/// frame declared (a column-length/count mismatch).
void end_column(const Decoder& d, const char* what, std::size_t end) {
  if (d.pos() != end)
    d.fail(ErrorCode::Corrupt,
           std::string("column length mismatch for ") + what +
               " column: codec consumed through byte " +
               std::to_string(d.pos()) + " but the frame ends at byte " +
               std::to_string(end));
}

void get_int_column(Decoder& d, std::vector<std::int64_t>& out,
                    std::size_t n, const char* what) {
  out.resize(n);
  if (n == 0) return;
  const std::size_t end = begin_column(d, what);
  colcodec::decode_int_column(d, out.data(), n);
  end_column(d, what, end);
}

void get_double_column(Decoder& d, std::vector<double>& out, std::size_t n,
                       const char* what) {
  out.resize(n);
  if (n == 0) return;
  const std::size_t end = begin_column(d, what);
  colcodec::decode_double_column(d, out.data(), n);
  end_column(d, what, end);
}

// ---- columnar sync records (v3) --------------------------------------
//
// Five framed columns in field order (phase, ref_rank, local_mid,
// offset, error_bound), same framing as the event columns below. All
// columns are omitted when the rank recorded no sync records.

void encode_sync_v3(BufWriter& w, const std::vector<OffsetRecord>& sync) {
  const std::size_t n = sync.size();
  if (n == 0) return;
  std::vector<std::int64_t> phase(n), ref_rank(n);
  std::vector<double> local_mid(n), offset(n), error_bound(n);
  for (std::size_t i = 0; i < n; ++i) {
    phase[i] = sync[i].phase;
    ref_rank[i] = sync[i].ref_rank;
    local_mid[i] = sync[i].local_mid;
    offset[i] = sync[i].offset;
    error_bound[i] = sync[i].error_bound;
  }
  put_int_column(w, phase);
  put_int_column(w, ref_rank);
  put_double_column(w, local_mid);
  put_double_column(w, offset);
  put_double_column(w, error_bound);
}

void decode_sync_v3(Decoder& d, LocalTrace& t, std::uint64_t nsync) {
  const auto n = static_cast<std::size_t>(nsync);
  std::vector<std::int64_t> phase, ref_rank;
  std::vector<double> local_mid, offset, error_bound;
  get_int_column(d, phase, n, "sync.phase");
  get_int_column(d, ref_rank, n, "sync.ref_rank");
  get_double_column(d, local_mid, n, "sync.local_mid");
  get_double_column(d, offset, n, "sync.offset");
  get_double_column(d, error_bound, n, "sync.error_bound");
  t.sync.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    OffsetRecord& s = t.sync[i];
    s.phase = static_cast<int>(phase[i]);
    s.ref_rank = static_cast<Rank>(ref_rank[i]);
    s.local_mid = local_mid[i];
    s.offset = offset[i];
    s.error_bound = error_bound[i];
  }
}

void encode_events_v3(BufWriter& w, const std::vector<Event>& events,
                      const std::array<std::uint64_t, kNumEventTypes>& counts) {
  EventColumns c;
  c.time.reserve(events.size());
  c.enter_region.reserve(static_cast<std::size_t>(counts[0]));
  c.send_peer.reserve(static_cast<std::size_t>(counts[2]));
  c.recv_peer.reserve(static_cast<std::size_t>(counts[3]));
  c.coll_region.reserve(static_cast<std::size_t>(counts[4]));
  for (const auto& e : events) {
    c.time.push_back(e.time);
    switch (e.type) {
      case EventType::Enter:
        c.enter_region.push_back(e.region.get());
        break;
      case EventType::Exit:
        break;
      case EventType::Send:
        c.send_peer.push_back(e.peer);
        c.send_tag.push_back(e.tag);
        c.send_bytes.push_back(e.bytes);
        c.send_comm.push_back(e.comm.get());
        break;
      case EventType::Recv:
        c.recv_peer.push_back(e.peer);
        c.recv_tag.push_back(e.tag);
        c.recv_bytes.push_back(e.bytes);
        c.recv_comm.push_back(e.comm.get());
        break;
      case EventType::CollExit:
        c.coll_region.push_back(e.region.get());
        c.coll_comm.push_back(e.comm.get());
        c.coll_root.push_back(e.root);
        c.coll_bytes.push_back(e.bytes);
        c.coll_sent.push_back(e.sent_bytes);
        c.coll_recvd.push_back(e.recvd_bytes);
        break;
    }
  }

  // Nibble-packed type stream, low nibble first.
  for (std::size_t i = 0; i < events.size(); i += 2) {
    std::uint8_t b = static_cast<std::uint8_t>(events[i].type);
    if (i + 1 < events.size())
      b |= static_cast<std::uint8_t>(
          static_cast<std::uint8_t>(events[i + 1].type) << 4);
    w.put_u8(b);
  }

  put_double_column(w, c.time);
  put_int_column(w, c.enter_region);
  put_int_column(w, c.send_peer);
  put_int_column(w, c.send_tag);
  put_double_column(w, c.send_bytes);
  put_int_column(w, c.send_comm);
  put_int_column(w, c.recv_peer);
  put_int_column(w, c.recv_tag);
  put_double_column(w, c.recv_bytes);
  put_int_column(w, c.recv_comm);
  put_int_column(w, c.coll_region);
  put_int_column(w, c.coll_comm);
  put_int_column(w, c.coll_root);
  put_double_column(w, c.coll_bytes);
  put_double_column(w, c.coll_sent);
  put_double_column(w, c.coll_recvd);
}

void decode_events_v3(Decoder& d, LocalTrace& t, std::uint64_t nev,
                      const std::array<std::uint64_t, kNumEventTypes>& counts) {
  // Type stream first: every nibble must name a known event type, the
  // per-type tallies must reproduce the header's counts, and an odd
  // stream's trailing high nibble must be zero.
  const std::size_t nbytes = static_cast<std::size_t>((nev + 1) / 2);
  const std::uint8_t* nibbles = d.get_raw(nbytes, "event type stream");
  std::array<std::uint64_t, kNumEventTypes> seen{};
  std::vector<std::uint8_t> types(static_cast<std::size_t>(nev));
  for (std::uint64_t i = 0; i < nev; ++i) {
    const std::uint8_t ty = (i % 2 == 0)
                                ? static_cast<std::uint8_t>(nibbles[i / 2] & 0xF)
                                : static_cast<std::uint8_t>(nibbles[i / 2] >> 4);
    if (ty >= kNumEventTypes)
      d.fail(ErrorCode::Corrupt, "corrupt trace: unknown event type " +
                                     std::to_string(static_cast<int>(ty)) +
                                     " in type stream at event " +
                                     std::to_string(i));
    ++seen[ty];
    types[static_cast<std::size_t>(i)] = ty;
  }
  if (nev % 2 != 0 && (nibbles[nbytes - 1] >> 4) != 0)
    d.fail(ErrorCode::Corrupt,
           "corrupt trace: nonzero padding nibble in type stream");
  for (std::size_t ty = 0; ty < kNumEventTypes; ++ty)
    if (seen[ty] != counts[ty])
      d.fail(ErrorCode::Corrupt,
             "corrupt trace: type stream has " + std::to_string(seen[ty]) +
                 " events of type " + std::to_string(ty) +
                 " but the header declares " + std::to_string(counts[ty]));

  EventColumns c;
  get_double_column(d, c.time, static_cast<std::size_t>(nev), "time");
  const auto n_enter = static_cast<std::size_t>(counts[0]);
  const auto n_send = static_cast<std::size_t>(counts[2]);
  const auto n_recv = static_cast<std::size_t>(counts[3]);
  const auto n_coll = static_cast<std::size_t>(counts[4]);
  get_int_column(d, c.enter_region, n_enter, "enter.region");
  get_int_column(d, c.send_peer, n_send, "send.peer");
  get_int_column(d, c.send_tag, n_send, "send.tag");
  get_double_column(d, c.send_bytes, n_send, "send.bytes");
  get_int_column(d, c.send_comm, n_send, "send.comm");
  get_int_column(d, c.recv_peer, n_recv, "recv.peer");
  get_int_column(d, c.recv_tag, n_recv, "recv.tag");
  get_double_column(d, c.recv_bytes, n_recv, "recv.bytes");
  get_int_column(d, c.recv_comm, n_recv, "recv.comm");
  get_int_column(d, c.coll_region, n_coll, "collexit.region");
  get_int_column(d, c.coll_comm, n_coll, "collexit.comm");
  get_int_column(d, c.coll_root, n_coll, "collexit.root");
  get_double_column(d, c.coll_bytes, n_coll, "collexit.bytes");
  get_double_column(d, c.coll_sent, n_coll, "collexit.sent");
  get_double_column(d, c.coll_recvd, n_coll, "collexit.recvd");

  // Interleave the columns back into the event stream. The type-stream
  // tallies were checked against the header counts above, so every
  // cursor lands exactly at its column's end.
  t.events.resize(static_cast<std::size_t>(nev));
  std::size_t i_enter = 0, i_send = 0, i_recv = 0, i_coll = 0;
  for (std::uint64_t i = 0; i < nev; ++i) {
    Event& e = t.events[static_cast<std::size_t>(i)];
    e.type = static_cast<EventType>(types[static_cast<std::size_t>(i)]);
    e.time = c.time[static_cast<std::size_t>(i)];
    switch (e.type) {
      case EventType::Enter:
        e.region = RegionId{static_cast<int>(c.enter_region[i_enter++])};
        break;
      case EventType::Exit:
        break;
      case EventType::Send:
        e.peer = static_cast<Rank>(c.send_peer[i_send]);
        e.tag = static_cast<int>(c.send_tag[i_send]);
        e.bytes = c.send_bytes[i_send];
        e.comm = CommId{static_cast<int>(c.send_comm[i_send])};
        ++i_send;
        break;
      case EventType::Recv:
        e.peer = static_cast<Rank>(c.recv_peer[i_recv]);
        e.tag = static_cast<int>(c.recv_tag[i_recv]);
        e.bytes = c.recv_bytes[i_recv];
        e.comm = CommId{static_cast<int>(c.recv_comm[i_recv])};
        ++i_recv;
        break;
      case EventType::CollExit:
        e.region = RegionId{static_cast<int>(c.coll_region[i_coll])};
        e.comm = CommId{static_cast<int>(c.coll_comm[i_coll])};
        e.root = static_cast<Rank>(c.coll_root[i_coll]);
        e.bytes = c.coll_bytes[i_coll];
        e.sent_bytes = c.coll_sent[i_coll];
        e.recvd_bytes = c.coll_recvd[i_coll];
        ++i_coll;
        break;
    }
  }
}

}  // namespace

std::vector<std::uint8_t> encode_defs(const TraceCollection& tc,
                                      std::uint32_t version) {
  check_encode_version(version);
  BufWriter w;
  w.put_u32(kDefsMagic);
  w.put_u32(version);
  w.put_u8(static_cast<std::uint8_t>(tc.scheme));
  w.put_u8(tc.synchronized ? 1 : 0);
  w.put_varint(static_cast<std::uint64_t>(tc.num_ranks()));

  const auto& d = tc.defs;
  w.put_varint(d.regions.size());
  for (const auto& name : d.regions.all()) w.put_string(name);

  w.put_varint(d.metahosts.size());
  for (const auto& mh : d.metahosts) {
    w.put_svarint(mh.id.get());
    w.put_string(mh.name);
  }

  w.put_varint(d.locations.size());
  for (const auto& loc : d.locations) {
    w.put_svarint(loc.machine.get());
    w.put_svarint(loc.node.get());
    w.put_svarint(loc.process);
    w.put_svarint(loc.thread);
  }

  w.put_varint(d.comms.size());
  for (const auto& c : d.comms) {
    w.put_svarint(c.id.get());
    w.put_string(c.name);
    w.put_varint(c.members.size());
    for (Rank m : c.members) w.put_svarint(m);
  }
  return w.data();
}

TraceCollection decode_defs(const std::uint8_t* data, std::size_t size,
                            const std::string& path) {
  Decoder d(data, size, ErrorContext{path, -1, -1});
  d.expect_magic(kDefsMagic, "defs file");
  // The defs layout is shared by every version; only the header's
  // version field differs.
  d.expect_version_in(kMinTraceFormatVersion, kTraceFormatVersion,
                      "defs file");
  TraceCollection tc;
  const std::uint8_t scheme = d.get_u8();
  if (scheme > static_cast<std::uint8_t>(SyncScheme::HierarchicalTwo))
    d.fail(ErrorCode::Corrupt, "unknown sync scheme byte " +
                                   std::to_string(static_cast<int>(scheme)));
  tc.scheme = static_cast<SyncScheme>(scheme);
  tc.synchronized = d.get_u8() != 0;
  // The rank count has no per-rank payload in the defs file, so only the
  // absolute cap applies (min_bytes_per_item = 0).
  const auto nranks = d.get_count("ranks", 0);
  if (nranks > kMaxRanksPerArchive)
    d.fail(ErrorCode::LimitExceeded,
           "rank count " + std::to_string(nranks) + " exceeds the cap of " +
               std::to_string(kMaxRanksPerArchive));
  tc.ranks.resize(static_cast<std::size_t>(nranks));
  for (std::size_t i = 0; i < nranks; ++i)
    tc.ranks[i].rank = static_cast<Rank>(i);

  const auto nregions = d.get_count("regions", kMinRegionBytes);
  for (std::uint64_t i = 0; i < nregions; ++i)
    tc.defs.regions.intern(d.get_string("region name"));

  const auto nmh = d.get_count("metahosts", kMinMetahostBytes);
  for (std::uint64_t i = 0; i < nmh; ++i) {
    MetahostDef mh;
    mh.id = MetahostId{static_cast<int>(d.get_svarint())};
    mh.name = d.get_string("metahost name");
    tc.defs.metahosts.push_back(std::move(mh));
  }

  const auto nloc = d.get_count("locations", kMinLocationBytes);
  if (nloc != 0 && nloc != nranks)
    d.fail(ErrorCode::Corrupt,
           "location table size " + std::to_string(nloc) +
               " does not match the rank count " + std::to_string(nranks));
  for (std::uint64_t i = 0; i < nloc; ++i) {
    LocationDef loc;
    loc.machine = MetahostId{static_cast<int>(d.get_svarint())};
    loc.node = NodeId{static_cast<int>(d.get_svarint())};
    loc.process = static_cast<Rank>(d.get_svarint());
    loc.thread = static_cast<int>(d.get_svarint());
    tc.defs.locations.push_back(loc);
  }

  const auto ncomm = d.get_count("communicators", kMinCommBytes);
  for (std::uint64_t i = 0; i < ncomm; ++i) {
    CommDef c;
    c.id = CommId{static_cast<int>(d.get_svarint())};
    c.name = d.get_string("communicator name");
    const auto nmem = d.get_count("communicator members", 1);
    c.members.reserve(static_cast<std::size_t>(nmem));
    for (std::uint64_t k = 0; k < nmem; ++k)
      c.members.push_back(static_cast<Rank>(d.get_svarint()));
    tc.defs.comms.push_back(std::move(c));
  }
  d.require_end("defs file");
  return tc;
}

TraceCollection decode_defs(const std::vector<std::uint8_t>& bytes,
                            const std::string& path) {
  return decode_defs(bytes.data(), bytes.size(), path);
}

std::vector<std::uint8_t> encode_local_trace(const LocalTrace& trace,
                                             std::uint32_t version) {
  check_encode_version(version);
  BufWriter w;
  w.put_u32(kTraceMagic);
  w.put_u32(version);
  w.put_svarint(trace.rank);

  if (version == 1) {
    // v1: each section's count immediately precedes it.
    w.put_varint(trace.sync.size());
    encode_sync_rows(w, trace.sync);
    w.put_varint(trace.events.size());
    encode_event_rows(w, trace.events);
    return w.data();
  }

  // v2/v3 header: both counts precede their payloads so the decoder can
  // reserve once and detect truncation before parsing.
  w.put_varint(trace.sync.size());
  w.put_varint(trace.events.size());

  if (version == 2) {
    encode_sync_rows(w, trace.sync);
    encode_event_rows(w, trace.events);
    return w.data();
  }

  // v3 header additionally carries per-type counts, so the decoder can
  // size every column before touching the payload.
  std::array<std::uint64_t, kNumEventTypes> counts{};
  for (const auto& e : trace.events)
    ++counts[static_cast<std::size_t>(e.type)];
  for (const std::uint64_t c : counts) w.put_varint(c);

  encode_sync_v3(w, trace.sync);
  encode_events_v3(w, trace.events, counts);
  return w.data();
}

LocalTrace decode_local_trace(const std::uint8_t* data, std::size_t size,
                              const std::string& path) {
  Decoder d(data, size, ErrorContext{path, -1, -1});
  d.expect_magic(kTraceMagic, "trace file");
  const std::uint32_t version = d.expect_version_in(
      kMinTraceFormatVersion, kTraceFormatVersion, "trace file");
  LocalTrace t;
  std::uint64_t nev = 0;
  // A file cut short can run dry anywhere — in the header, in the count
  // fields, or mid-record. Every such underflow surfaces here as a
  // Truncated Error; re-throw it under the canonical "truncated trace
  // file" diagnosis with the progress made, keeping the byte offset the
  // decoder recorded. Corrupt/LimitExceeded pass through untouched.
  try {
    const std::int64_t rank = d.get_svarint();
    if (rank < -1 || rank > static_cast<std::int64_t>(kMaxRanksPerArchive))
      d.fail(ErrorCode::Corrupt,
             "implausible rank id " + std::to_string(rank));
    t.rank = static_cast<Rank>(rank);
    d.set_rank(static_cast<int>(rank));

    if (version == 1) {
      const auto nsync = d.get_count("sync records", kMinSyncRecordBytes);
      decode_sync_rows(d, t, nsync);
      nev = d.get_count("events", kMinEventBytes);
      decode_event_rows(d, t, nev);
    } else {
      const auto nsync = d.get_count(
          "sync records",
          version >= 3 ? kMinSyncRecordBytesV3 : kMinSyncRecordBytes);
      nev = d.get_count("events", version >= 3 ? kMinEventBytesV3
                                               : kMinEventBytes);
      if (version == 2) {
        decode_sync_rows(d, t, nsync);
        decode_event_rows(d, t, nev);
      } else {
        std::array<std::uint64_t, kNumEventTypes> counts{};
        std::uint64_t sum = 0;
        for (std::size_t ty = 0; ty < kNumEventTypes; ++ty) {
          counts[ty] = d.get_varint();
          sum += counts[ty];
        }
        if (sum != nev)
          d.fail(ErrorCode::Corrupt,
                 "per-type event counts sum to " + std::to_string(sum) +
                     " but the header declares " + std::to_string(nev) +
                     " events");
        decode_sync_v3(d, t, nsync);
        decode_events_v3(d, t, nev, counts);
      }
    }
    d.require_end("trace file");
  } catch (const Error& e) {
    if (e.code() != ErrorCode::Truncated) throw;
    throw Error(ErrorCode::Truncated,
                "truncated trace file for rank " + std::to_string(t.rank) +
                    ": payload ends after " + std::to_string(t.events.size()) +
                    " of " + std::to_string(nev) + " events (" +
                    e.base_message() + ")",
                e.context());
  }
  return t;
}

LocalTrace decode_local_trace(const std::vector<std::uint8_t>& bytes,
                              const std::string& path) {
  return decode_local_trace(bytes.data(), bytes.size(), path);
}

std::string defs_filename() { return "experiment.defs"; }

std::string trace_filename(Rank rank) {
  return "trace." + std::to_string(rank) + ".elg";
}

void write_collection(const std::string& dir, const TraceCollection& tc,
                      std::uint32_t version) {
  write_file_bytes(dir + "/" + defs_filename(), encode_defs(tc, version));
  for (const auto& t : tc.ranks)
    write_file_bytes(dir + "/" + trace_filename(t.rank),
                     encode_local_trace(t, version));
}

TraceCollection read_collection(const std::string& dir) {
  const std::string defs_path = dir + "/" + defs_filename();
  const MappedFile defs = MappedFile::open(defs_path);
  TraceCollection tc = decode_defs(defs.data(), defs.size(), defs_path);
  for (int r = 0; r < tc.num_ranks(); ++r) {
    const std::string path = dir + "/" + trace_filename(r);
    const MappedFile f = MappedFile::open(path);
    tc.ranks[static_cast<std::size_t>(r)] =
        decode_local_trace(f.data(), f.size(), path);
    if (tc.ranks[static_cast<std::size_t>(r)].rank != r)
      throw Error(ErrorCode::Corrupt,
                  "trace file rank mismatch (file claims rank " +
                      std::to_string(tc.ranks[static_cast<std::size_t>(r)]
                                         .rank) +
                      ")",
                  ErrorContext{path, r, -1});
  }
  return tc;
}

}  // namespace metascope::tracing
