#include "tracing/epilog_io.hpp"

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace metascope::tracing {

namespace {
constexpr std::uint32_t kDefsMagic = 0x4453434DU;   // "MCSD"
constexpr std::uint32_t kTraceMagic = 0x5453434DU;  // "MCST"

// Cheapest possible encodings, used to validate header counts against
// the bytes actually present before reserving anything: a sync record is
// >= 26 bytes (u8 + 1-byte svarint + 3 f64), an event >= 9 (u8 type +
// f64 time); defs-table entries bottom out at their field prefixes.
constexpr std::size_t kMinSyncRecordBytes = 26;
constexpr std::size_t kMinEventBytes = 9;
constexpr std::size_t kMinRegionBytes = 1;    // string length prefix
constexpr std::size_t kMinMetahostBytes = 2;  // id + name prefix
constexpr std::size_t kMinLocationBytes = 4;  // four svarints
constexpr std::size_t kMinCommBytes = 3;      // id + name prefix + count
}  // namespace

std::vector<std::uint8_t> encode_defs(const TraceCollection& tc) {
  BufWriter w;
  w.put_u32(kDefsMagic);
  w.put_u32(kTraceFormatVersion);
  w.put_u8(static_cast<std::uint8_t>(tc.scheme));
  w.put_u8(tc.synchronized ? 1 : 0);
  w.put_varint(static_cast<std::uint64_t>(tc.num_ranks()));

  const auto& d = tc.defs;
  w.put_varint(d.regions.size());
  for (const auto& name : d.regions.all()) w.put_string(name);

  w.put_varint(d.metahosts.size());
  for (const auto& mh : d.metahosts) {
    w.put_svarint(mh.id.get());
    w.put_string(mh.name);
  }

  w.put_varint(d.locations.size());
  for (const auto& loc : d.locations) {
    w.put_svarint(loc.machine.get());
    w.put_svarint(loc.node.get());
    w.put_svarint(loc.process);
    w.put_svarint(loc.thread);
  }

  w.put_varint(d.comms.size());
  for (const auto& c : d.comms) {
    w.put_svarint(c.id.get());
    w.put_string(c.name);
    w.put_varint(c.members.size());
    for (Rank m : c.members) w.put_svarint(m);
  }
  return w.data();
}

TraceCollection decode_defs(const std::vector<std::uint8_t>& bytes,
                            const std::string& path) {
  Decoder d(bytes, ErrorContext{path, -1, -1});
  d.expect_magic(kDefsMagic, "defs file");
  d.expect_version(kTraceFormatVersion, "defs file");
  TraceCollection tc;
  const std::uint8_t scheme = d.get_u8();
  if (scheme > static_cast<std::uint8_t>(SyncScheme::HierarchicalTwo))
    d.fail(ErrorCode::Corrupt, "unknown sync scheme byte " +
                                   std::to_string(static_cast<int>(scheme)));
  tc.scheme = static_cast<SyncScheme>(scheme);
  tc.synchronized = d.get_u8() != 0;
  // The rank count has no per-rank payload in the defs file, so only the
  // absolute cap applies (min_bytes_per_item = 0).
  const auto nranks = d.get_count("ranks", 0);
  if (nranks > kMaxRanksPerArchive)
    d.fail(ErrorCode::LimitExceeded,
           "rank count " + std::to_string(nranks) + " exceeds the cap of " +
               std::to_string(kMaxRanksPerArchive));
  tc.ranks.resize(static_cast<std::size_t>(nranks));
  for (std::size_t i = 0; i < nranks; ++i)
    tc.ranks[i].rank = static_cast<Rank>(i);

  const auto nregions = d.get_count("regions", kMinRegionBytes);
  for (std::uint64_t i = 0; i < nregions; ++i)
    tc.defs.regions.intern(d.get_string("region name"));

  const auto nmh = d.get_count("metahosts", kMinMetahostBytes);
  for (std::uint64_t i = 0; i < nmh; ++i) {
    MetahostDef mh;
    mh.id = MetahostId{static_cast<int>(d.get_svarint())};
    mh.name = d.get_string("metahost name");
    tc.defs.metahosts.push_back(std::move(mh));
  }

  const auto nloc = d.get_count("locations", kMinLocationBytes);
  if (nloc != 0 && nloc != nranks)
    d.fail(ErrorCode::Corrupt,
           "location table size " + std::to_string(nloc) +
               " does not match the rank count " + std::to_string(nranks));
  for (std::uint64_t i = 0; i < nloc; ++i) {
    LocationDef loc;
    loc.machine = MetahostId{static_cast<int>(d.get_svarint())};
    loc.node = NodeId{static_cast<int>(d.get_svarint())};
    loc.process = static_cast<Rank>(d.get_svarint());
    loc.thread = static_cast<int>(d.get_svarint());
    tc.defs.locations.push_back(loc);
  }

  const auto ncomm = d.get_count("communicators", kMinCommBytes);
  for (std::uint64_t i = 0; i < ncomm; ++i) {
    CommDef c;
    c.id = CommId{static_cast<int>(d.get_svarint())};
    c.name = d.get_string("communicator name");
    const auto nmem = d.get_count("communicator members", 1);
    c.members.reserve(static_cast<std::size_t>(nmem));
    for (std::uint64_t k = 0; k < nmem; ++k)
      c.members.push_back(static_cast<Rank>(d.get_svarint()));
    tc.defs.comms.push_back(std::move(c));
  }
  d.require_end("defs file");
  return tc;
}

std::vector<std::uint8_t> encode_local_trace(const LocalTrace& trace) {
  BufWriter w;
  w.put_u32(kTraceMagic);
  w.put_u32(kTraceFormatVersion);
  w.put_svarint(trace.rank);
  // v2 header: both counts precede their payloads so the decoder can
  // reserve once and detect truncation before parsing.
  w.put_varint(trace.sync.size());
  w.put_varint(trace.events.size());

  for (const auto& s : trace.sync) {
    w.put_u8(static_cast<std::uint8_t>(s.phase));
    w.put_svarint(s.ref_rank);
    w.put_f64(s.local_mid);
    w.put_f64(s.offset);
    w.put_f64(s.error_bound);
  }

  for (const auto& e : trace.events) {
    w.put_u8(static_cast<std::uint8_t>(e.type));
    w.put_f64(e.time);
    switch (e.type) {
      case EventType::Enter:
        w.put_svarint(e.region.get());
        break;
      case EventType::Exit:
        break;
      case EventType::Send:
      case EventType::Recv:
        w.put_svarint(e.peer);
        w.put_svarint(e.tag);
        w.put_f64(e.bytes);
        w.put_svarint(e.comm.get());
        break;
      case EventType::CollExit:
        w.put_svarint(e.region.get());
        w.put_svarint(e.comm.get());
        w.put_svarint(e.root);
        w.put_f64(e.bytes);
        w.put_f64(e.sent_bytes);
        w.put_f64(e.recvd_bytes);
        break;
    }
  }
  telemetry::counter("trace.bytes_encoded").add(w.data().size());
  return w.data();
}

LocalTrace decode_local_trace(const std::vector<std::uint8_t>& bytes,
                              const std::string& path) {
  Decoder d(bytes, ErrorContext{path, -1, -1});
  d.expect_magic(kTraceMagic, "trace file");
  d.expect_version(kTraceFormatVersion, "trace file");
  LocalTrace t;
  std::uint64_t nev = 0;
  // A file cut short can run dry anywhere — in the header, in the count
  // fields, or mid-record. Every such underflow surfaces here as a
  // Truncated Error; re-throw it under the canonical "truncated trace
  // file" diagnosis with the progress made, keeping the byte offset the
  // decoder recorded. Corrupt/LimitExceeded pass through untouched.
  try {
    const std::int64_t rank = d.get_svarint();
    if (rank < -1 || rank > static_cast<std::int64_t>(kMaxRanksPerArchive))
      d.fail(ErrorCode::Corrupt,
             "implausible rank id " + std::to_string(rank));
    t.rank = static_cast<Rank>(rank);
    d.set_rank(static_cast<int>(rank));

    const auto nsync = d.get_count("sync records", kMinSyncRecordBytes);
    nev = d.get_count("events", kMinEventBytes);

    t.sync.reserve(static_cast<std::size_t>(nsync));
    for (std::uint64_t i = 0; i < nsync; ++i) {
      OffsetRecord s;
      s.phase = d.get_u8();
      s.ref_rank = static_cast<Rank>(d.get_svarint());
      s.local_mid = d.get_f64();
      s.offset = d.get_f64();
      s.error_bound = d.get_f64();
      t.sync.push_back(s);
    }

    t.events.reserve(static_cast<std::size_t>(nev));
    for (std::uint64_t i = 0; i < nev; ++i) {
      Event e;
      const std::uint8_t type = d.get_u8();
      e.time = d.get_f64();
      switch (static_cast<EventType>(type)) {
        case EventType::Enter:
          e.type = EventType::Enter;
          e.region = RegionId{static_cast<int>(d.get_svarint())};
          break;
        case EventType::Exit:
          e.type = EventType::Exit;
          break;
        case EventType::Send:
        case EventType::Recv:
          e.type = static_cast<EventType>(type);
          e.peer = static_cast<Rank>(d.get_svarint());
          e.tag = static_cast<int>(d.get_svarint());
          e.bytes = d.get_f64();
          e.comm = CommId{static_cast<int>(d.get_svarint())};
          break;
        case EventType::CollExit:
          e.type = EventType::CollExit;
          e.region = RegionId{static_cast<int>(d.get_svarint())};
          e.comm = CommId{static_cast<int>(d.get_svarint())};
          e.root = static_cast<Rank>(d.get_svarint());
          e.bytes = d.get_f64();
          e.sent_bytes = d.get_f64();
          e.recvd_bytes = d.get_f64();
          break;
        default:
          d.fail(ErrorCode::Corrupt, "corrupt trace: unknown event type " +
                                         std::to_string(static_cast<int>(
                                             type)));
      }
      t.events.push_back(e);
    }
    d.require_end("trace file");
  } catch (const Error& e) {
    if (e.code() != ErrorCode::Truncated) throw;
    throw Error(ErrorCode::Truncated,
                "truncated trace file for rank " + std::to_string(t.rank) +
                    ": payload ends after " + std::to_string(t.events.size()) +
                    " of " + std::to_string(nev) + " events (" +
                    e.base_message() + ")",
                e.context());
  }
  return t;
}

std::string defs_filename() { return "experiment.defs"; }

std::string trace_filename(Rank rank) {
  return "trace." + std::to_string(rank) + ".elg";
}

void write_collection(const std::string& dir, const TraceCollection& tc) {
  write_file_bytes(dir + "/" + defs_filename(), encode_defs(tc));
  for (const auto& t : tc.ranks)
    write_file_bytes(dir + "/" + trace_filename(t.rank),
                     encode_local_trace(t));
}

TraceCollection read_collection(const std::string& dir) {
  const std::string defs_path = dir + "/" + defs_filename();
  TraceCollection tc = decode_defs(read_file_bytes(defs_path), defs_path);
  for (int r = 0; r < tc.num_ranks(); ++r) {
    const std::string path = dir + "/" + trace_filename(r);
    tc.ranks[static_cast<std::size_t>(r)] =
        decode_local_trace(read_file_bytes(path), path);
    if (tc.ranks[static_cast<std::size_t>(r)].rank != r)
      throw Error(ErrorCode::Corrupt,
                  "trace file rank mismatch (file claims rank " +
                      std::to_string(tc.ranks[static_cast<std::size_t>(r)]
                                         .rank) +
                      ")",
                  ErrorContext{path, r, -1});
  }
  return tc;
}

}  // namespace metascope::tracing
