#include "tracing/epilog_io.hpp"

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace metascope::tracing {

namespace {
constexpr std::uint32_t kDefsMagic = 0x4453434DU;   // "MCSD"
constexpr std::uint32_t kTraceMagic = 0x5453434DU;  // "MCST"

void check_header(BufReader& r, std::uint32_t magic) {
  MSC_CHECK(r.get_u32() == magic, "bad trace file magic");
  const std::uint32_t version = r.get_u32();
  MSC_CHECK(version == kTraceFormatVersion,
            "unsupported trace format version " + std::to_string(version));
}
}  // namespace

std::vector<std::uint8_t> encode_defs(const TraceCollection& tc) {
  BufWriter w;
  w.put_u32(kDefsMagic);
  w.put_u32(kTraceFormatVersion);
  w.put_u8(static_cast<std::uint8_t>(tc.scheme));
  w.put_u8(tc.synchronized ? 1 : 0);
  w.put_varint(static_cast<std::uint64_t>(tc.num_ranks()));

  const auto& d = tc.defs;
  w.put_varint(d.regions.size());
  for (const auto& name : d.regions.all()) w.put_string(name);

  w.put_varint(d.metahosts.size());
  for (const auto& mh : d.metahosts) {
    w.put_svarint(mh.id.get());
    w.put_string(mh.name);
  }

  w.put_varint(d.locations.size());
  for (const auto& loc : d.locations) {
    w.put_svarint(loc.machine.get());
    w.put_svarint(loc.node.get());
    w.put_svarint(loc.process);
    w.put_svarint(loc.thread);
  }

  w.put_varint(d.comms.size());
  for (const auto& c : d.comms) {
    w.put_svarint(c.id.get());
    w.put_string(c.name);
    w.put_varint(c.members.size());
    for (Rank m : c.members) w.put_svarint(m);
  }
  return w.data();
}

TraceCollection decode_defs(const std::vector<std::uint8_t>& bytes) {
  BufReader r(bytes);
  check_header(r, kDefsMagic);
  TraceCollection tc;
  tc.scheme = static_cast<SyncScheme>(r.get_u8());
  tc.synchronized = r.get_u8() != 0;
  const auto nranks = r.get_varint();
  tc.ranks.resize(nranks);
  for (std::size_t i = 0; i < nranks; ++i)
    tc.ranks[i].rank = static_cast<Rank>(i);

  const auto nregions = r.get_varint();
  for (std::uint64_t i = 0; i < nregions; ++i)
    tc.defs.regions.intern(r.get_string());

  const auto nmh = r.get_varint();
  for (std::uint64_t i = 0; i < nmh; ++i) {
    MetahostDef mh;
    mh.id = MetahostId{static_cast<int>(r.get_svarint())};
    mh.name = r.get_string();
    tc.defs.metahosts.push_back(std::move(mh));
  }

  const auto nloc = r.get_varint();
  for (std::uint64_t i = 0; i < nloc; ++i) {
    LocationDef loc;
    loc.machine = MetahostId{static_cast<int>(r.get_svarint())};
    loc.node = NodeId{static_cast<int>(r.get_svarint())};
    loc.process = static_cast<Rank>(r.get_svarint());
    loc.thread = static_cast<int>(r.get_svarint());
    tc.defs.locations.push_back(loc);
  }

  const auto ncomm = r.get_varint();
  for (std::uint64_t i = 0; i < ncomm; ++i) {
    CommDef c;
    c.id = CommId{static_cast<int>(r.get_svarint())};
    c.name = r.get_string();
    const auto nmem = r.get_varint();
    c.members.reserve(nmem);
    for (std::uint64_t k = 0; k < nmem; ++k)
      c.members.push_back(static_cast<Rank>(r.get_svarint()));
    tc.defs.comms.push_back(std::move(c));
  }
  MSC_CHECK(r.at_end(), "trailing bytes in defs file");
  return tc;
}

std::vector<std::uint8_t> encode_local_trace(const LocalTrace& trace) {
  BufWriter w;
  w.put_u32(kTraceMagic);
  w.put_u32(kTraceFormatVersion);
  w.put_svarint(trace.rank);
  // v2 header: both counts precede their payloads so the decoder can
  // reserve once and detect truncation before parsing.
  w.put_varint(trace.sync.size());
  w.put_varint(trace.events.size());

  for (const auto& s : trace.sync) {
    w.put_u8(static_cast<std::uint8_t>(s.phase));
    w.put_svarint(s.ref_rank);
    w.put_f64(s.local_mid);
    w.put_f64(s.offset);
    w.put_f64(s.error_bound);
  }

  for (const auto& e : trace.events) {
    w.put_u8(static_cast<std::uint8_t>(e.type));
    w.put_f64(e.time);
    switch (e.type) {
      case EventType::Enter:
        w.put_svarint(e.region.get());
        break;
      case EventType::Exit:
        break;
      case EventType::Send:
      case EventType::Recv:
        w.put_svarint(e.peer);
        w.put_svarint(e.tag);
        w.put_f64(e.bytes);
        w.put_svarint(e.comm.get());
        break;
      case EventType::CollExit:
        w.put_svarint(e.region.get());
        w.put_svarint(e.comm.get());
        w.put_svarint(e.root);
        w.put_f64(e.bytes);
        w.put_f64(e.sent_bytes);
        w.put_f64(e.recvd_bytes);
        break;
    }
  }
  telemetry::counter("trace.bytes_encoded").add(w.data().size());
  return w.data();
}

LocalTrace decode_local_trace(const std::vector<std::uint8_t>& bytes) {
  BufReader r(bytes);
  check_header(r, kTraceMagic);
  LocalTrace t;
  t.rank = static_cast<Rank>(r.get_svarint());

  const auto nsync = r.get_varint();
  const auto nev = r.get_varint();
  // Cheapest possible records: a sync record is >= 26 bytes (u8 +
  // 1-byte svarint + 3 f64), an event >= 9 (u8 type + f64 time). A
  // header whose counts cannot fit in the remaining bytes means the
  // file was cut short — say so before reserving or parsing anything.
  if (nsync * 26 + nev * 9 > r.remaining())
    throw Error("truncated trace file for rank " + std::to_string(t.rank) +
                ": header promises " + std::to_string(nsync) +
                " sync records and " + std::to_string(nev) +
                " events but only " + std::to_string(r.remaining()) +
                " payload bytes are present");

  // Events larger than the 9-byte floor can still run out of bytes
  // mid-record on a file cut inside the payload; convert the reader's
  // underflow into the same truncation diagnosis.
  bool corrupt_type = false;
  try {
    t.sync.reserve(nsync);
    for (std::uint64_t i = 0; i < nsync; ++i) {
      OffsetRecord s;
      s.phase = r.get_u8();
      s.ref_rank = static_cast<Rank>(r.get_svarint());
      s.local_mid = r.get_f64();
      s.offset = r.get_f64();
      s.error_bound = r.get_f64();
      t.sync.push_back(s);
    }

    t.events.reserve(nev);
    for (std::uint64_t i = 0; i < nev; ++i) {
      Event e;
      e.type = static_cast<EventType>(r.get_u8());
      e.time = r.get_f64();
      switch (e.type) {
        case EventType::Enter:
          e.region = RegionId{static_cast<int>(r.get_svarint())};
          break;
        case EventType::Exit:
          break;
        case EventType::Send:
        case EventType::Recv:
          e.peer = static_cast<Rank>(r.get_svarint());
          e.tag = static_cast<int>(r.get_svarint());
          e.bytes = r.get_f64();
          e.comm = CommId{static_cast<int>(r.get_svarint())};
          break;
        case EventType::CollExit:
          e.region = RegionId{static_cast<int>(r.get_svarint())};
          e.comm = CommId{static_cast<int>(r.get_svarint())};
          e.root = static_cast<Rank>(r.get_svarint());
          e.bytes = r.get_f64();
          e.sent_bytes = r.get_f64();
          e.recvd_bytes = r.get_f64();
          break;
        default:
          corrupt_type = true;
          throw Error("corrupt trace: unknown event type");
      }
      t.events.push_back(e);
    }
  } catch (const Error&) {
    if (corrupt_type) throw;
    throw Error("truncated trace file for rank " + std::to_string(t.rank) +
                ": payload ends after " + std::to_string(t.events.size()) +
                " of " + std::to_string(nev) + " events");
  }
  MSC_CHECK(r.at_end(), "trailing bytes in trace file");
  return t;
}

std::string defs_filename() { return "experiment.defs"; }

std::string trace_filename(Rank rank) {
  return "trace." + std::to_string(rank) + ".elg";
}

void write_collection(const std::string& dir, const TraceCollection& tc) {
  write_file_bytes(dir + "/" + defs_filename(), encode_defs(tc));
  for (const auto& t : tc.ranks)
    write_file_bytes(dir + "/" + trace_filename(t.rank),
                     encode_local_trace(t));
}

TraceCollection read_collection(const std::string& dir) {
  TraceCollection tc =
      decode_defs(read_file_bytes(dir + "/" + defs_filename()));
  for (int r = 0; r < tc.num_ranks(); ++r) {
    tc.ranks[static_cast<std::size_t>(r)] =
        decode_local_trace(read_file_bytes(dir + "/" + trace_filename(r)));
    MSC_CHECK(tc.ranks[static_cast<std::size_t>(r)].rank == r,
              "trace file rank mismatch");
  }
  return tc;
}

}  // namespace metascope::tracing
