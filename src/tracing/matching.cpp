#include "tracing/matching.hpp"

#include <deque>
#include <map>
#include <sstream>
#include <tuple>

#include "common/error.hpp"

namespace metascope::tracing {

std::vector<MessagePair> match_messages(const TraceCollection& tc) {
  // Channel key: (src, dst, tag, comm). Event order within one process's
  // trace is program order, which is all non-overtaking matching needs.
  std::map<std::tuple<Rank, Rank, int, int>, std::deque<EventRef>> sends;
  std::map<std::tuple<Rank, Rank, int, int>, std::deque<EventRef>> recvs;
  std::vector<MessagePair> pairs;

  for (const auto& t : tc.ranks) {
    for (std::uint32_t i = 0; i < t.events.size(); ++i) {
      const Event& e = t.events[i];
      if (e.type == EventType::Send) {
        const auto key = std::tuple(t.rank, e.peer, e.tag, e.comm.get());
        auto& waiting = recvs[key];
        if (!waiting.empty()) {
          pairs.push_back({EventRef{t.rank, i}, waiting.front()});
          waiting.pop_front();
        } else {
          sends[key].push_back(EventRef{t.rank, i});
        }
      } else if (e.type == EventType::Recv) {
        const auto key = std::tuple(e.peer, t.rank, e.tag, e.comm.get());
        auto& waiting = sends[key];
        if (!waiting.empty()) {
          pairs.push_back({waiting.front(), EventRef{t.rank, i}});
          waiting.pop_front();
        } else {
          recvs[key].push_back(EventRef{t.rank, i});
        }
      }
    }
  }

  for (const auto& [key, q] : sends) {
    if (!q.empty()) {
      std::ostringstream os;
      os << "unmatched SEND " << std::get<0>(key) << " -> "
         << std::get<1>(key) << " tag " << std::get<2>(key) << " ("
         << q.size() << " left)";
      throw Error(os.str());
    }
  }
  for (const auto& [key, q] : recvs) {
    if (!q.empty()) {
      std::ostringstream os;
      os << "unmatched RECV " << std::get<0>(key) << " -> "
         << std::get<1>(key) << " tag " << std::get<2>(key) << " ("
         << q.size() << " left)";
      throw Error(os.str());
    }
  }
  return pairs;
}

}  // namespace metascope::tracing
