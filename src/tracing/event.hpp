// Trace-side event model (EPILOG-like, paper §3).
//
// Unlike simmpi::ExecEvent (true time), trace events carry timestamps in
// whatever clock domain the trace is in: node-local clocks straight from
// measurement, or the synchronized global domain after clock correction.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace metascope::tracing {

enum class EventType : std::uint8_t {
  Enter = 0,
  Exit = 1,
  Send = 2,
  Recv = 3,
  CollExit = 4,  ///< collective-operation exit with metadata
};

const char* to_string(EventType t);

struct Event {
  EventType type{EventType::Enter};
  /// Timestamp in the trace's current clock domain, seconds.
  double time{0.0};
  /// Enter/CollExit: region id.
  RegionId region;
  /// Send: destination rank; Recv: source rank.
  Rank peer{kNoRank};
  int tag{0};
  /// Send/Recv: payload bytes.
  double bytes{0.0};
  CommId comm{0};
  /// CollExit: root rank (kNoRank when rootless).
  Rank root{kNoRank};
  /// CollExit: bytes pushed/landed at this member.
  double sent_bytes{0.0};
  double recvd_bytes{0.0};

  bool operator==(const Event&) const = default;
};

}  // namespace metascope::tracing
