// Trace linting and human-readable dumping — the debugging companions of
// the binary format. The linter collects *all* problems instead of
// throwing on the first, so a corrupt archive can be diagnosed in one
// pass; the dumper prints event streams the way one reads them in a
// debugger session.
#pragma once

#include <string>
#include <vector>

#include "tracing/trace.hpp"

namespace metascope::tracing {

struct LintReport {
  std::vector<std::string> problems;

  [[nodiscard]] bool ok() const { return problems.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Structural validation of a collection:
///  - rank ids are dense and match vector positions,
///  - every region / communicator / metahost reference resolves,
///  - per-rank timestamps are non-decreasing,
///  - Enter/Exit nesting balances,
///  - every send has a matching receive and vice versa,
///  - collective instances are complete per communicator,
///  - each rank's location entry exists and agrees on the process id.
LintReport lint_collection(const TraceCollection& tc);

/// Pretty-prints one rank's events ("[12] 1.002334  SEND -> 5 tag 3
/// (32768 B)"); max_events = 0 dumps everything.
std::string dump_trace(const TraceCollection& tc, Rank rank,
                       std::size_t max_events = 0);

}  // namespace metascope::tracing
