// Binary trace format ("EPILOG-like"): one definitions file shared by the
// experiment plus one event file per process. The per-process split is
// what makes the metacomputing archive layout (paper §4 "Runtime archive
// management") natural: each metahost's partial archive holds exactly the
// files of its own processes.
//
// Layout (all integers varint/LEB128, floats little-endian f64):
//   defs file:   magic "MSCD" u32-version, region table, metahost table,
//                location table, communicator table, sync scheme flags
//   trace file:  magic "MSCT" u32-version, rank, sync-record count,
//                event count, sync records, events
//
// Version 2 moved both counts into the header (before the records they
// describe) so a decoder can size its vectors with a single reserve
// before touching the payload, and can report truncation up front by
// checking the counts against the bytes actually present.
//
// All decoding goes through the bounds-checked Decoder facade
// (common/binary_io.hpp): every failure is an Error carrying an
// ErrorCode (Truncated / Corrupt / VersionMismatch / LimitExceeded)
// plus the source path, rank, and byte offset. Pass `path` so the
// context names the file; callers that only hold bytes may omit it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tracing/trace.hpp"

namespace metascope::tracing {

inline constexpr std::uint32_t kTraceFormatVersion = 2;

/// Sanity cap on the rank count a defs file may declare (well above any
/// simulated metacomputer; bounds the decoder's up-front allocation).
inline constexpr std::uint64_t kMaxRanksPerArchive = 1ULL << 22;

/// Serialization of the shared definition records (+ collection flags).
std::vector<std::uint8_t> encode_defs(const TraceCollection& tc);

/// Decodes definitions into an empty collection (ranks left empty but
/// sized; scheme/synchronized restored).
TraceCollection decode_defs(const std::vector<std::uint8_t>& bytes,
                            const std::string& path = {});

/// Serialization of one process's events + sync records.
std::vector<std::uint8_t> encode_local_trace(const LocalTrace& trace);
LocalTrace decode_local_trace(const std::vector<std::uint8_t>& bytes,
                              const std::string& path = {});

/// Conventional file names inside an archive directory.
std::string defs_filename();
std::string trace_filename(Rank rank);

/// Writes defs + all rank traces into `dir` (must exist).
void write_collection(const std::string& dir, const TraceCollection& tc);

/// Reads a collection previously written by write_collection.
TraceCollection read_collection(const std::string& dir);

}  // namespace metascope::tracing
