// Binary trace format ("EPILOG-like"): one definitions file shared by the
// experiment plus one event file per process. The per-process split is
// what makes the metacomputing archive layout (paper §4 "Runtime archive
// management") natural: each metahost's partial archive holds exactly the
// files of its own processes.
//
// Format versions (decode accepts all of them; encode takes a version
// knob defaulting to the newest — see DESIGN.md §5e for the byte-level
// v3 layout):
//
//   v1  row-wise events; each section's count immediately precedes it.
//   v2  row-wise events; both counts moved into the header so a decoder
//       can size its vectors with a single reserve and report truncation
//       up front by checking the counts against the bytes present.
//   v3  columnar: the header additionally carries per-EventType counts,
//       the event kinds are a nibble-packed type stream, and every
//       Event and OffsetRecord field becomes a per-type column —
//       zigzag-delta varints for the integer columns, and
//       self-describing lossless double columns (raw /
//       XOR-of-bit-pattern deltas / scaled-integer deltas with optional
//       per-value ULP residuals, common/column_codec.hpp) for
//       timestamps and byte counts. Decoded values are bit-identical to
//       what was encoded, so severity cubes stay exactly reproducible;
//       archives shrink ~2x against the (already varint-packed) v2.
//
// The defs file layout is shared by all three versions (only the header
// version number differs).
//
// All decoding goes through the bounds-checked Decoder facade
// (common/binary_io.hpp): every failure is an Error carrying an
// ErrorCode (Truncated / Corrupt / VersionMismatch / LimitExceeded)
// plus the source path, rank, and byte offset. Pass `path` so the
// context names the file; callers that only hold bytes may omit it.
// The pointer+size decode overloads are the zero-copy entry points: the
// archive layer passes a MappedFile's view straight in, and the decoder
// reads out of the mapping without an intermediate copy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tracing/trace.hpp"

namespace metascope::tracing {

/// Newest (and default-written) trace format version.
inline constexpr std::uint32_t kTraceFormatVersion = 3;
/// Oldest version the decoders still read.
inline constexpr std::uint32_t kMinTraceFormatVersion = 1;

/// Sanity cap on the rank count a defs file may declare (well above any
/// simulated metacomputer; bounds the decoder's up-front allocation).
inline constexpr std::uint64_t kMaxRanksPerArchive = 1ULL << 22;

/// Serialization of the shared definition records (+ collection flags).
/// `version` must be in [kMinTraceFormatVersion, kTraceFormatVersion].
std::vector<std::uint8_t> encode_defs(const TraceCollection& tc,
                                      std::uint32_t version =
                                          kTraceFormatVersion);

/// Decodes definitions into an empty collection (ranks left empty but
/// sized; scheme/synchronized restored). Accepts every known version.
TraceCollection decode_defs(const std::uint8_t* data, std::size_t size,
                            const std::string& path = {});
TraceCollection decode_defs(const std::vector<std::uint8_t>& bytes,
                            const std::string& path = {});

/// Serialization of one process's events + sync records in the given
/// format version.
std::vector<std::uint8_t> encode_local_trace(const LocalTrace& trace,
                                             std::uint32_t version =
                                                 kTraceFormatVersion);

/// Decodes a trace file of any known version (the header's version
/// field selects the layout). The pointer overload borrows the buffer —
/// nothing is copied out of it except the decoded trace itself.
LocalTrace decode_local_trace(const std::uint8_t* data, std::size_t size,
                              const std::string& path = {});
LocalTrace decode_local_trace(const std::vector<std::uint8_t>& bytes,
                              const std::string& path = {});

/// Conventional file names inside an archive directory.
std::string defs_filename();
std::string trace_filename(Rank rank);

/// Writes defs + all rank traces into `dir` (must exist).
void write_collection(const std::string& dir, const TraceCollection& tc,
                      std::uint32_t version = kTraceFormatVersion);

/// Reads a collection previously written by write_collection.
TraceCollection read_collection(const std::string& dir);

}  // namespace metascope::tracing
