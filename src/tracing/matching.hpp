// Post-mortem message matching: pairs every SEND event with its RECV
// event using MPI non-overtaking order per (source, destination, tag,
// communicator) channel. Used by the clock-condition checker and by the
// serial pattern analyzer.
#pragma once

#include <cstdint>
#include <vector>

#include "tracing/trace.hpp"

namespace metascope::tracing {

struct EventRef {
  Rank rank{kNoRank};
  std::uint32_t index{0};

  bool operator==(const EventRef&) const = default;
};

struct MessagePair {
  EventRef send;
  EventRef recv;
};

/// Matches all messages in the collection. Throws Error if any send or
/// receive remains unmatched (truncated or corrupt traces).
std::vector<MessagePair> match_messages(const TraceCollection& tc);

}  // namespace metascope::tracing
