#include "tracing/metahost_env.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace metascope::tracing {

std::vector<EnvMap> default_envs(const simnet::Topology& topo) {
  std::vector<EnvMap> envs;
  envs.reserve(static_cast<std::size_t>(topo.num_metahosts()));
  for (int m = 0; m < topo.num_metahosts(); ++m) {
    EnvMap env;
    env[kEnvMetahostId] = std::to_string(m);
    env[kEnvMetahostName] = topo.metahost(MetahostId{m}).name;
    envs.push_back(std::move(env));
  }
  return envs;
}

std::vector<MetahostDef> resolve_metahosts(const simnet::Topology& topo,
                                           const std::vector<EnvMap>& envs) {
  MSC_CHECK(static_cast<int>(envs.size()) == topo.num_metahosts(),
            "one environment per metahost required");
  const int n = topo.num_metahosts();
  std::vector<MetahostDef> defs(static_cast<std::size_t>(n));
  std::vector<bool> id_seen(static_cast<std::size_t>(n), false);
  for (int m = 0; m < n; ++m) {
    const EnvMap& env = envs[static_cast<std::size_t>(m)];
    auto id_it = env.find(kEnvMetahostId);
    auto name_it = env.find(kEnvMetahostName);
    std::ostringstream where;
    where << "metahost " << m << " (" << topo.metahost(MetahostId{m}).name
          << ")";
    MSC_CHECK(id_it != env.end(),
              where.str() + ": " + kEnvMetahostId + " not set");
    MSC_CHECK(name_it != env.end(),
              where.str() + ": " + kEnvMetahostName + " not set");
    MSC_CHECK(!name_it->second.empty(), where.str() + ": empty name");

    int id = -1;
    try {
      std::size_t used = 0;
      id = std::stoi(id_it->second, &used);
      MSC_CHECK(used == id_it->second.size(),
                where.str() + ": non-numeric metahost id '" + id_it->second +
                    "'");
    } catch (const std::logic_error&) {
      throw Error(where.str() + ": non-numeric metahost id '" +
                  id_it->second + "'");
    }
    MSC_CHECK(id >= 0 && id < n,
              where.str() + ": metahost id out of range [0, n)");
    MSC_CHECK(!id_seen[static_cast<std::size_t>(id)],
              where.str() + ": duplicate metahost id " + std::to_string(id));
    id_seen[static_cast<std::size_t>(id)] = true;

    defs[static_cast<std::size_t>(m)] =
        MetahostDef{MetahostId{id}, name_it->second};
  }
  // Names must be unique too — they key the presentation hierarchy.
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      MSC_CHECK(defs[static_cast<std::size_t>(a)].name !=
                    defs[static_cast<std::size_t>(b)].name,
                "duplicate metahost name: " +
                    defs[static_cast<std::size_t>(a)].name);
  return defs;
}

}  // namespace metascope::tracing
