// Runtime trace-archive management (paper §4 "Runtime archive
// management").
//
// All files of one experiment live in an archive directory. On a
// metacomputer there may be no file system shared by all metahosts, so
// the archive becomes a set of *partial archives*, one per file system,
// created by the paper's hierarchical protocol:
//
//   1. rank 0 attempts to create the archive directory and broadcasts
//      the outcome; everyone aborts if that failed;
//   2. each metahost's local master checks whether it can see an archive
//      directory and creates a partial one on its own file system if not;
//   3. every process verifies it can see an archive; the results are
//      combined with an all-reduce; any failure aborts the measurement.
//
// The per-metahost file systems are modelled by FileSystemLayout: each
// metahost is assigned a root directory ("its file system"); metahosts
// sharing a root share a file system. Directory operations are real
// (std::filesystem), so the protocol is exercised end to end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "simnet/topology.hpp"
#include "tracing/stream.hpp"
#include "tracing/trace.hpp"

namespace metascope::archive {

/// How read_traces reacts to undecodable data (see ReadReport).
struct ReadOptions {
  /// Strict (default): the first undecodable file aborts the read with
  /// a typed Error naming the file, rank, and byte offset. Permissive:
  /// ranks whose trace files are missing/corrupt are *quarantined* —
  /// their traces come back empty, events in surviving ranks that can
  /// no longer match (p2p with a quarantined peer, collectives on a
  /// communicator containing one) are pruned, and the analyzer proceeds
  /// on the survivors. Quarantines are recorded in the ReadReport and
  /// in telemetry ("archive.read.quarantined" /
  /// "archive.read.pruned_events").
  bool permissive{false};
  /// Per-rank reads fan out on up to this many threads (0 = hardware
  /// concurrency). The result is identical for any count.
  std::size_t max_workers{0};
  /// Decode each trace file straight out of a memory mapping (the
  /// zero-copy path) instead of copying it into a heap buffer first.
  /// The decoded traces are byte-identical either way (tests assert the
  /// parity); platforms without mmap silently use the copy path.
  bool use_mmap{true};
};

/// Knobs for write_traces (the plain max_workers overload delegates
/// here with defaults).
struct WriteOptions {
  /// Like ReadOptions::max_workers.
  std::size_t max_workers{0};
  /// Trace format version to write (see tracing/epilog_io.hpp). Older
  /// versions stay writable so cross-version fixtures and migration
  /// tests can produce them; readers accept every version.
  std::uint32_t format_version{0};  // 0 = kTraceFormatVersion
};

/// One quarantined rank and why.
struct QuarantineRecord {
  Rank rank{kNoRank};
  std::string path;
  ErrorCode code{ErrorCode::None};
  std::string reason;
};

/// What a permissive read had to do to proceed.
struct ReadReport {
  /// Sorted by rank; empty on a clean read.
  std::vector<QuarantineRecord> quarantined;
  /// Events dropped/degraded in surviving ranks by quarantine pruning.
  std::size_t events_pruned{0};

  [[nodiscard]] std::vector<Rank> quarantined_ranks() const;
};

/// Which file-system root each metahost mounts.
class FileSystemLayout {
 public:
  /// One shared root visible from every metahost (classic cluster).
  static FileSystemLayout shared(const std::string& root, int num_metahosts);

  /// A distinct root per metahost (no shared file system — the
  /// metacomputing case).
  static FileSystemLayout per_metahost(const std::string& base,
                                       int num_metahosts);

  /// Custom mapping (e.g. two metahosts share one NFS root, a third does
  /// not).
  static FileSystemLayout custom(std::vector<std::string> roots);

  [[nodiscard]] const std::string& root_of(MetahostId m) const;
  [[nodiscard]] int num_metahosts() const {
    return static_cast<int>(roots_.size());
  }
  /// True if the two metahosts mount the same file system.
  [[nodiscard]] bool same_fs(MetahostId a, MetahostId b) const;

 private:
  std::vector<std::string> roots_;
};

/// Counters exposing the protocol's behaviour (ablation A2 compares them
/// against naive per-process creation).
struct CreationStats {
  int create_attempts{0};
  int directories_created{0};
  int visibility_checks{0};
  int broadcasts{0};
  int allreduces{0};
  bool aborted{false};
};

/// An experiment's archive: the set of partial archive directories.
class ExperimentArchive {
 public:
  /// Runs the hierarchical creation protocol. Throws Error (with
  /// stats->aborted set) if any process ends up without a visible
  /// archive.
  static ExperimentArchive create(const simnet::Topology& topo,
                                  const FileSystemLayout& layout,
                                  const std::string& experiment_name,
                                  CreationStats* stats = nullptr);

  /// Naive baseline: every process blindly attempts creation on its own
  /// file system (counts the redundant attempts the protocol avoids).
  static ExperimentArchive create_naive(const simnet::Topology& topo,
                                        const FileSystemLayout& layout,
                                        const std::string& experiment_name,
                                        CreationStats* stats = nullptr);

  [[nodiscard]] const std::string& experiment_name() const { return name_; }
  /// Partial-archive directory visible from the given metahost.
  [[nodiscard]] const std::string& dir_of(MetahostId m) const;
  /// All distinct partial-archive directories.
  [[nodiscard]] std::vector<std::string> partial_dirs() const;

  /// Writes each rank's local trace into the partial archive of its
  /// metahost, plus the shared definitions and a manifest into every
  /// partial archive. The per-rank encodes + writes are independent
  /// (distinct files), so they fan out on up to `max_workers` threads
  /// (0 = hardware concurrency); the bytes written are identical for
  /// any count. Telemetry: "archive.bytes_on_disk" accumulates the
  /// encoded bytes written (defs replicas + every trace file) and
  /// "archive.bytes_in_memory" the resident size of the collection —
  /// their ratio is the trace-format compression ratio the bench
  /// sidecars report.
  void write_traces(const simnet::Topology& topo,
                    const tracing::TraceCollection& tc,
                    const WriteOptions& opts) const;
  void write_traces(const simnet::Topology& topo,
                    const tracing::TraceCollection& tc,
                    std::size_t max_workers = 0) const;

  /// Re-assembles the full collection from all partial archives (what a
  /// post-mortem analysis with access to all file systems would do; the
  /// parallel analyzer instead reads only local files — see analysis/).
  /// Per-rank reads + decodes fan out like write_traces. Strict by
  /// default; see ReadOptions for the permissive-recovery mode. The
  /// optional report receives the quarantine outcome (cleared first).
  [[nodiscard]] tracing::TraceCollection read_traces(
      const ReadOptions& opts, ReadReport* report = nullptr) const;
  /// Back-compat shim: strict read with a worker-count cap.
  [[nodiscard]] tracing::TraceCollection read_traces(
      std::size_t max_workers = 0) const;

  /// Builds a bounded-memory streaming view of the archive instead of
  /// materializing it: the shared definitions plus each rank's
  /// trace-file path, with every trace file validated up front through
  /// the windowed reader (tracing::TraceStream — header, counts, type
  /// stream and column frames are checked; column payloads stay on
  /// disk until replay windows pull them in). Strict mode rethrows the
  /// first failure with file/rank context. Permissive mode quarantines
  /// undecodable ranks in the source (and the report): they stream
  /// zero events and analysis::analyze_streaming filters surviving
  /// ranks' events against them on the fly, mirroring
  /// tracing::prune_quarantined. Requires a v3 archive (older versions
  /// are VersionMismatch — materialize them with read_traces).
  [[nodiscard]] tracing::StreamSource stream_source(
      const ReadOptions& opts, ReadReport* report = nullptr) const;

  /// Loads one rank's trace from the partial archive of its metahost —
  /// the parallel analyzer's access pattern (local data only).
  [[nodiscard]] tracing::LocalTrace read_local_trace(
      const simnet::Topology& topo, Rank r) const;
  /// Loads the shared definitions from the partial archive visible to
  /// the given metahost.
  [[nodiscard]] tracing::TraceCollection read_defs(MetahostId m) const;

 private:
  std::string name_;
  std::vector<std::string> dir_by_metahost_;  ///< indexed by metahost id
  std::vector<std::vector<Rank>> ranks_by_metahost_;
};

}  // namespace metascope::archive
