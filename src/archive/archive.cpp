#include "archive/archive.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <mutex>
#include <utility>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/span.hpp"
#include "tracing/epilog_io.hpp"

namespace fs = std::filesystem;

namespace metascope::archive {

// --- FileSystemLayout ----------------------------------------------------

FileSystemLayout FileSystemLayout::shared(const std::string& root,
                                          int num_metahosts) {
  MSC_CHECK(num_metahosts > 0, "layout needs metahosts");
  FileSystemLayout l;
  l.roots_.assign(static_cast<std::size_t>(num_metahosts), root);
  return l;
}

FileSystemLayout FileSystemLayout::per_metahost(const std::string& base,
                                                int num_metahosts) {
  MSC_CHECK(num_metahosts > 0, "layout needs metahosts");
  FileSystemLayout l;
  for (int m = 0; m < num_metahosts; ++m)
    l.roots_.push_back(base + "/fs" + std::to_string(m));
  return l;
}

FileSystemLayout FileSystemLayout::custom(std::vector<std::string> roots) {
  MSC_CHECK(!roots.empty(), "layout needs metahosts");
  FileSystemLayout l;
  l.roots_ = std::move(roots);
  return l;
}

const std::string& FileSystemLayout::root_of(MetahostId m) const {
  MSC_CHECK(m.valid() && static_cast<std::size_t>(m.get()) < roots_.size(),
            "metahost out of layout range");
  return roots_[static_cast<std::size_t>(m.get())];
}

bool FileSystemLayout::same_fs(MetahostId a, MetahostId b) const {
  return root_of(a) == root_of(b);
}

// --- ExperimentArchive ---------------------------------------------------

namespace {

int log2_ceil(int n) {
  int r = 0;
  int s = 1;
  while (s < n) {
    s *= 2;
    ++r;
  }
  return std::max(r, 1);
}

std::string archive_dir_name(const std::string& experiment) {
  return experiment + ".msc";
}

/// Attempts mkdir; true if the directory exists afterwards and either we
/// created it or it was already there from this experiment.
bool try_create(const std::string& path, CreationStats* stats) {
  if (stats) ++stats->create_attempts;
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  const bool created = fs::create_directory(path, ec);
  if (created && stats) ++stats->directories_created;
  return created || fs::exists(path);
}

bool is_visible(const std::string& path, CreationStats* stats) {
  if (stats) ++stats->visibility_checks;
  return fs::exists(path);
}

}  // namespace

ExperimentArchive ExperimentArchive::create(const simnet::Topology& topo,
                                            const FileSystemLayout& layout,
                                            const std::string& experiment_name,
                                            CreationStats* stats) {
  MSC_CHECK(layout.num_metahosts() == topo.num_metahosts(),
            "layout/topology metahost mismatch");
  CreationStats local_stats;
  CreationStats* st = stats ? stats : &local_stats;

  ExperimentArchive a;
  a.name_ = experiment_name;
  a.dir_by_metahost_.resize(
      static_cast<std::size_t>(topo.num_metahosts()));
  a.ranks_by_metahost_.resize(
      static_cast<std::size_t>(topo.num_metahosts()));
  for (Rank r = 0; r < topo.num_ranks(); ++r)
    a.ranks_by_metahost_[static_cast<std::size_t>(
                             topo.metahost_of(r).get())]
        .push_back(r);

  const std::string dname = archive_dir_name(experiment_name);

  // Step 1: rank 0 creates the archive on its own file system and
  // broadcasts the outcome (one broadcast, log2(p) messages).
  const MetahostId mh0 = topo.metahost_of(0);
  const std::string dir0 = layout.root_of(mh0) + "/" + dname;
  const bool ok0 = try_create(dir0, st);
  ++st->broadcasts;
  if (!ok0) {
    st->aborted = true;
    throw Error("archive creation failed on rank 0: " + dir0);
  }

  // Step 2: each local master checks visibility on its file system and
  // creates a partial archive if it cannot see one.
  for (int m = 0; m < topo.num_metahosts(); ++m) {
    const MetahostId mh{m};
    const std::string dir = layout.root_of(mh) + "/" + dname;
    if (!is_visible(dir, st)) {
      if (!try_create(dir, st)) {
        st->aborted = true;
        throw Error("partial archive creation failed: " + dir);
      }
    }
    a.dir_by_metahost_[static_cast<std::size_t>(m)] = dir;
  }

  // Step 3: every process verifies visibility; one all-reduce combines
  // the results.
  bool all_visible = true;
  for (Rank r = 0; r < topo.num_ranks(); ++r) {
    const std::string& dir =
        a.dir_by_metahost_[static_cast<std::size_t>(
            topo.metahost_of(r).get())];
    all_visible = is_visible(dir, st) && all_visible;
  }
  ++st->allreduces;
  if (!all_visible) {
    st->aborted = true;
    throw Error("archive invisible to at least one process; aborting");
  }
  (void)log2_ceil(topo.num_ranks());
  return a;
}

ExperimentArchive ExperimentArchive::create_naive(
    const simnet::Topology& topo, const FileSystemLayout& layout,
    const std::string& experiment_name, CreationStats* stats) {
  MSC_CHECK(layout.num_metahosts() == topo.num_metahosts(),
            "layout/topology metahost mismatch");
  CreationStats local_stats;
  CreationStats* st = stats ? stats : &local_stats;

  ExperimentArchive a;
  a.name_ = experiment_name;
  a.dir_by_metahost_.resize(static_cast<std::size_t>(topo.num_metahosts()));
  a.ranks_by_metahost_.resize(
      static_cast<std::size_t>(topo.num_metahosts()));
  const std::string dname = archive_dir_name(experiment_name);

  // Every process hammers mkdir on its own file system — correct result,
  // O(P) redundant metadata operations (the contention the hierarchical
  // protocol avoids).
  for (Rank r = 0; r < topo.num_ranks(); ++r) {
    const MetahostId mh = topo.metahost_of(r);
    const std::string dir = layout.root_of(mh) + "/" + dname;
    if (!try_create(dir, st)) {
      st->aborted = true;
      throw Error("archive creation failed: " + dir);
    }
    a.dir_by_metahost_[static_cast<std::size_t>(mh.get())] = dir;
    a.ranks_by_metahost_[static_cast<std::size_t>(mh.get())].push_back(r);
  }
  return a;
}

const std::string& ExperimentArchive::dir_of(MetahostId m) const {
  MSC_CHECK(m.valid() && static_cast<std::size_t>(m.get()) <
                             dir_by_metahost_.size(),
            "metahost out of range");
  const std::string& d = dir_by_metahost_[static_cast<std::size_t>(m.get())];
  MSC_CHECK(!d.empty(), "metahost has no archive directory");
  return d;
}

std::vector<std::string> ExperimentArchive::partial_dirs() const {
  std::vector<std::string> out;
  for (const auto& d : dir_by_metahost_)
    if (!d.empty() && std::find(out.begin(), out.end(), d) == out.end())
      out.push_back(d);
  return out;
}

void ExperimentArchive::write_traces(const simnet::Topology& topo,
                                     const tracing::TraceCollection& tc,
                                     const WriteOptions& opts) const {
  MSC_CHECK(tc.num_ranks() == topo.num_ranks(),
            "collection/topology rank mismatch");
  const std::uint32_t version = opts.format_version != 0
                                    ? opts.format_version
                                    : tracing::kTraceFormatVersion;
  telemetry::ScopedSpan span("archive_write");
  // Definitions + manifest go into every partial archive; each rank's
  // trace goes only where that rank can write.
  std::atomic<std::uint64_t> bytes_on_disk{0};
  const auto defs_bytes = tracing::encode_defs(tc, version);
  for (const std::string& dir : partial_dirs()) {
    write_file_bytes(dir + "/" + tracing::defs_filename(), defs_bytes);
    bytes_on_disk.fetch_add(defs_bytes.size(), std::memory_order_relaxed);
  }

  // One task per rank: encode + write its own trace file. Files are
  // distinct paths, so the fan-out never contends on a target.
  telemetry::RecordingObserver rec_obs(
      "archive_write",
      telemetry::RecordingObserver::fanout_stride(tc.ranks.size()));
  const auto pst = parallel_for(
      tc.ranks.size(), opts.max_workers,
      [&](std::size_t i) {
        const auto& t = tc.ranks[i];
        const std::string& dir = dir_of(topo.metahost_of(t.rank));
        const auto bytes = tracing::encode_local_trace(t, version);
        write_file_bytes(dir + "/" + tracing::trace_filename(t.rank), bytes);
        bytes_on_disk.fetch_add(bytes.size(), std::memory_order_relaxed);
      },
      &rec_obs);
  telemetry::record_stage_parallelism("archive_write", pst);
  telemetry::counter("archive.bytes_on_disk")
      .add(bytes_on_disk.load(std::memory_order_relaxed));
  telemetry::counter("archive.bytes_in_memory")
      .add(tracing::in_memory_bytes(tc));

  for (int m = 0; m < topo.num_metahosts(); ++m) {
    const MetahostId mh{m};
    Json manifest;
    manifest.set("experiment", name_);
    manifest.set("format_version", static_cast<int>(version));
    manifest.set("metahost_id", m);
    Json ranks;
    for (Rank r :
         ranks_by_metahost_[static_cast<std::size_t>(m)])
      ranks.push_back(r);
    if (ranks.is_null()) ranks = Json(Json::Array{});
    manifest.set("ranks", ranks);
    save_json_file(dir_of(mh) + "/manifest." + std::to_string(m) + ".json",
                   manifest);
  }
}

void ExperimentArchive::write_traces(const simnet::Topology& topo,
                                     const tracing::TraceCollection& tc,
                                     std::size_t max_workers) const {
  WriteOptions opts;
  opts.max_workers = max_workers;
  write_traces(topo, tc, opts);
}

std::vector<Rank> ReadReport::quarantined_ranks() const {
  std::vector<Rank> out;
  out.reserve(quarantined.size());
  for (const auto& q : quarantined) out.push_back(q.rank);
  return out;
}

tracing::TraceCollection ExperimentArchive::read_traces(
    const ReadOptions& opts, ReadReport* report) const {
  MSC_CHECK(!dir_by_metahost_.empty(), "empty archive");
  telemetry::ScopedSpan span("archive_read");
  if (report) *report = ReadReport{};

  // Definitions are replicated into every partial archive; in permissive
  // mode a corrupt copy just means trying the next replica.
  tracing::TraceCollection tc;
  std::atomic<std::uint64_t> bytes_read{0};
  {
    const auto dirs = partial_dirs();
    bool have_defs = false;
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      const std::string path = dirs[i] + "/" + tracing::defs_filename();
      try {
        const MappedFile f = MappedFile::open(path, opts.use_mmap);
        tc = tracing::decode_defs(f.data(), f.size(), path);
        bytes_read.fetch_add(f.size(), std::memory_order_relaxed);
        have_defs = true;
        break;
      } catch (const Error&) {
        if (!opts.permissive || i + 1 == dirs.size()) throw;
      }
    }
    MSC_ASSERT(have_defs, "defs decode fell through");
  }
  // The defs header names the rank count, so each rank's Trace slot is
  // pre-sized before any trace file is opened; the per-rank decoders
  // then fill their slots straight from the mappings.

  // Flatten (metahost, rank) so each task reads + decodes one file into
  // its own rank slot.
  std::vector<std::pair<std::size_t, Rank>> files;
  for (std::size_t m = 0; m < dir_by_metahost_.size(); ++m)
    for (Rank r : ranks_by_metahost_[m]) files.emplace_back(m, r);

  std::mutex quarantine_mu;
  std::vector<QuarantineRecord> quarantined;
  telemetry::RecordingObserver rec_obs(
      "archive_read",
      telemetry::RecordingObserver::fanout_stride(files.size()));
  const auto pst = parallel_for(
      files.size(), opts.max_workers,
      [&](std::size_t i) {
        const auto [m, r] = files[i];
        const std::string path =
            dir_by_metahost_[m] + "/" + tracing::trace_filename(r);
        try {
          // Zero-copy: decode straight out of the mapping (or out of the
          // owned-buffer fallback — identical bytes either way).
          const MappedFile f = MappedFile::open(path, opts.use_mmap);
          auto trace = tracing::decode_local_trace(f.data(), f.size(), path);
          bytes_read.fetch_add(f.size(), std::memory_order_relaxed);
          if (trace.rank != r)
            throw Error(ErrorCode::Corrupt,
                        "trace file rank mismatch (file claims rank " +
                            std::to_string(trace.rank) + ")",
                        ErrorContext{path, r, -1});
          tc.ranks[static_cast<std::size_t>(r)] = std::move(trace);
        } catch (const Error& e) {
          if (!opts.permissive) throw e.with_context(ErrorContext{path, r, -1});
          // Quarantine: leave the rank as an empty trace and record why.
          tc.ranks[static_cast<std::size_t>(r)] = tracing::LocalTrace{};
          tc.ranks[static_cast<std::size_t>(r)].rank = r;
          const std::lock_guard<std::mutex> lock(quarantine_mu);
          quarantined.push_back(
              QuarantineRecord{r, path, e.code(), e.base_message()});
        }
      },
      &rec_obs);
  telemetry::record_stage_parallelism("archive_read", pst);
  telemetry::counter("archive.read.bytes")
      .add(bytes_read.load(std::memory_order_relaxed));

  if (!quarantined.empty()) {
    // Deterministic report order regardless of reader interleaving.
    std::sort(quarantined.begin(), quarantined.end(),
              [](const QuarantineRecord& a, const QuarantineRecord& b) {
                return a.rank < b.rank;
              });
    telemetry::counter("archive.read.quarantined")
        .add(quarantined.size());
    const std::size_t pruned = tracing::prune_quarantined(
        tc, [&] {
          std::vector<Rank> rs;
          for (const auto& q : quarantined) rs.push_back(q.rank);
          return rs;
        }());
    telemetry::counter("archive.read.pruned_events").add(pruned);
    if (report) {
      report->quarantined = std::move(quarantined);
      report->events_pruned = pruned;
    }
  }
  return tc;
}

tracing::TraceCollection ExperimentArchive::read_traces(
    std::size_t max_workers) const {
  ReadOptions opts;
  opts.max_workers = max_workers;
  return read_traces(opts);
}

tracing::StreamSource ExperimentArchive::stream_source(
    const ReadOptions& opts, ReadReport* report) const {
  MSC_CHECK(!dir_by_metahost_.empty(), "empty archive");
  telemetry::ScopedSpan span("archive_stream_open");
  if (report) *report = ReadReport{};

  tracing::StreamSource src;
  src.use_mmap = opts.use_mmap;
  std::atomic<std::uint64_t> bytes{0};
  {
    const auto dirs = partial_dirs();
    bool have_defs = false;
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      const std::string path = dirs[i] + "/" + tracing::defs_filename();
      try {
        const MappedFile f = MappedFile::open(path, opts.use_mmap);
        src.defs = tracing::decode_defs(f.data(), f.size(), path);
        bytes.fetch_add(f.size(), std::memory_order_relaxed);
        have_defs = true;
        break;
      } catch (const Error&) {
        if (!opts.permissive || i + 1 == dirs.size()) throw;
      }
    }
    MSC_ASSERT(have_defs, "defs decode fell through");
  }

  src.paths.resize(static_cast<std::size_t>(src.defs.num_ranks()));
  std::vector<std::pair<std::size_t, Rank>> files;
  for (std::size_t m = 0; m < dir_by_metahost_.size(); ++m)
    for (Rank r : ranks_by_metahost_[m]) {
      files.emplace_back(m, r);
      src.paths[static_cast<std::size_t>(r)] =
          dir_by_metahost_[m] + "/" + tracing::trace_filename(r);
    }

  // Open-time validation fan-out: everything short of the column
  // payloads is checked per rank, so a corrupt file is caught (and, in
  // permissive mode, quarantined) before any analysis state exists.
  // The replay re-opens the files; the whole file's bytes are counted
  // as read here, since streaming decodes all of them exactly once.
  std::mutex quarantine_mu;
  std::vector<QuarantineRecord> quarantined;
  telemetry::RecordingObserver rec_obs(
      "archive_stream_open",
      telemetry::RecordingObserver::fanout_stride(files.size()));
  const auto pst = parallel_for(
      files.size(), opts.max_workers,
      [&](std::size_t i) {
        const auto [m, r] = files[i];
        const std::string& path = src.paths[static_cast<std::size_t>(r)];
        try {
          const MappedFile f = MappedFile::open(path, opts.use_mmap);
          tracing::TraceStream s(f.data(), f.size(), path);
          bytes.fetch_add(f.size(), std::memory_order_relaxed);
          if (s.rank() != r)
            throw Error(ErrorCode::Corrupt,
                        "trace file rank mismatch (file claims rank " +
                            std::to_string(s.rank()) + ")",
                        ErrorContext{path, r, -1});
          if (opts.permissive) {
            // Quarantine decisions must match read_traces, and open-time
            // validation alone cannot see codec-level corruption inside
            // the column payloads. Permissive mode therefore drains each
            // stream once — windows are decoded and discarded, nothing
            // is materialized — so every rank is classified up front.
            // Strict mode skips the drain: payload corruption surfaces
            // from whichever replay window decodes it, with the same
            // error code and file/rank context.
            std::vector<tracing::Event> sink;
            while (!s.at_end()) {
              sink.clear();
              s.next(sink, 4096);
            }
          }
        } catch (const Error& e) {
          if (!opts.permissive)
            throw e.with_context(ErrorContext{path, r, -1});
          const std::lock_guard<std::mutex> lock(quarantine_mu);
          quarantined.push_back(
              QuarantineRecord{r, path, e.code(), e.base_message()});
        }
      },
      &rec_obs);
  telemetry::record_stage_parallelism("archive_stream_open", pst);
  telemetry::counter("archive.read.bytes")
      .add(bytes.load(std::memory_order_relaxed));

  if (!quarantined.empty()) {
    std::sort(quarantined.begin(), quarantined.end(),
              [](const QuarantineRecord& a, const QuarantineRecord& b) {
                return a.rank < b.rank;
              });
    telemetry::counter("archive.read.quarantined").add(quarantined.size());
    for (const auto& q : quarantined) src.quarantined.push_back(q.rank);
    if (report) report->quarantined = std::move(quarantined);
  }
  return src;
}

tracing::LocalTrace ExperimentArchive::read_local_trace(
    const simnet::Topology& topo, Rank r) const {
  const std::string path =
      dir_of(topo.metahost_of(r)) + "/" + tracing::trace_filename(r);
  try {
    const MappedFile f = MappedFile::open(path);
    return tracing::decode_local_trace(f.data(), f.size(), path);
  } catch (const Error& e) {
    throw e.with_context(ErrorContext{path, r, -1});
  }
}

tracing::TraceCollection ExperimentArchive::read_defs(MetahostId m) const {
  const std::string path = dir_of(m) + "/" + tracing::defs_filename();
  const MappedFile f = MappedFile::open(path);
  return tracing::decode_defs(f.data(), f.size(), path);
}

}  // namespace metascope::archive
