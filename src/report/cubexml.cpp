#include "report/cubexml.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace metascope::report {

// --- writer ----------------------------------------------------------------

namespace {

void xml_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '<': os << "&lt;"; break;
      case '>': os << "&gt;"; break;
      case '&': os << "&amp;"; break;
      case '"': os << "&quot;"; break;
      default: os << c;
    }
  }
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string to_cube_xml(const Cube& cube) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\"?>\n<cube version=\"1\" ranks=\""
     << cube.num_ranks() << "\">\n";

  os << " <metrics>\n";
  for (std::size_t i = 0; i < cube.metrics.size(); ++i) {
    const auto& d = cube.metrics.def(MetricId{static_cast<int>(i)});
    os << "  <metric id=\"" << d.id.get() << "\" parent=\""
       << d.parent.get() << "\" name=\"";
    xml_escape(os, d.name);
    os << "\" desc=\"";
    xml_escape(os, d.description);
    os << "\"/>\n";
  }
  os << " </metrics>\n <regions>\n";
  for (std::size_t i = 0; i < cube.regions.size(); ++i) {
    os << "  <region id=\"" << i << "\" name=\"";
    xml_escape(os, cube.regions.name(RegionId{static_cast<int>(i)}));
    os << "\"/>\n";
  }
  os << " </regions>\n <calltree>\n";
  for (std::size_t i = 0; i < cube.calls.size(); ++i) {
    const auto& n = cube.calls.node(CallPathId{static_cast<int>(i)});
    os << "  <cnode id=\"" << n.id.get() << "\" region=\""
       << n.region.get() << "\" parent=\"" << n.parent.get() << "\"/>\n";
  }
  os << " </calltree>\n <system>\n";
  for (const auto& mh : cube.system.metahosts) {
    os << "  <metahost id=\"" << mh.id.get() << "\" name=\"";
    xml_escape(os, mh.name);
    os << "\"/>\n";
  }
  for (const auto& loc : cube.system.locations) {
    os << "  <location rank=\"" << loc.process << "\" machine=\""
       << loc.machine.get() << "\" node=\"" << loc.node.get()
       << "\" thread=\"" << loc.thread << "\"/>\n";
  }
  for (const auto& c : cube.system.comms) {
    os << "  <comm id=\"" << c.id.get() << "\" name=\"";
    xml_escape(os, c.name);
    os << "\" members=\"";
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      if (i) os << ' ';
      os << c.members[i];
    }
    os << "\"/>\n";
  }
  os << " </system>\n <severity>\n";
  for (std::size_t m = 0; m < cube.metrics.size(); ++m) {
    const MetricId mid{static_cast<int>(m)};
    std::ostringstream row;
    bool any = false;
    for (std::size_t c = 0; c < cube.calls.size(); ++c) {
      for (Rank r = 0; r < cube.num_ranks(); ++r) {
        const double v = cube.get(mid, CallPathId{static_cast<int>(c)}, r);
        if (v == 0.0) continue;
        any = true;
        row << "   <v c=\"" << c << "\" r=\"" << r << "\">" << fmt_double(v)
            << "</v>\n";
      }
    }
    if (any)
      os << "  <row metric=\"" << m << "\">\n" << row.str() << "  </row>\n";
  }
  os << " </severity>\n</cube>\n";
  return os.str();
}

// --- minimal XML reader ------------------------------------------------------

namespace {

struct XmlNode {
  std::string tag;
  std::map<std::string, std::string> attrs;
  std::string text;
  std::vector<XmlNode> children;

  [[nodiscard]] const std::string& attr(const std::string& key) const {
    auto it = attrs.find(key);
    MSC_CHECK(it != attrs.end(), "xml: missing attribute " + key);
    return it->second;
  }
  [[nodiscard]] int attr_int(const std::string& key) const {
    return std::stoi(attr(key));
  }
  [[nodiscard]] const XmlNode& child(const std::string& tag_name) const {
    for (const auto& c : children)
      if (c.tag == tag_name) return c;
    throw Error("xml: missing element <" + tag_name + ">");
  }
};

class XmlParser {
 public:
  explicit XmlParser(const std::string& text) : t_(text) {}

  XmlNode parse() {
    skip_prolog();
    XmlNode root = parse_element();
    skip_ws();
    MSC_CHECK(pos_ >= t_.size(), "xml: trailing content");
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < t_.size() && std::isspace(static_cast<unsigned char>(
                                   t_[pos_])))
      ++pos_;
  }

  void skip_prolog() {
    skip_ws();
    if (t_.compare(pos_, 5, "<?xml") == 0) {
      const auto end = t_.find("?>", pos_);
      MSC_CHECK(end != std::string::npos, "xml: unterminated prolog");
      pos_ = end + 2;
    }
  }

  char peek() {
    MSC_CHECK(pos_ < t_.size(), "xml: unexpected end");
    return t_[pos_];
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < t_.size() &&
           (std::isalnum(static_cast<unsigned char>(t_[pos_])) ||
            t_[pos_] == '_' || t_[pos_] == '-'))
      ++pos_;
    MSC_CHECK(pos_ > start, "xml: expected name");
    return t_.substr(start, pos_ - start);
  }

  std::string unescape(const std::string& s) {
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out += s[i];
        continue;
      }
      if (s.compare(i, 4, "&lt;") == 0) {
        out += '<';
        i += 3;
      } else if (s.compare(i, 4, "&gt;") == 0) {
        out += '>';
        i += 3;
      } else if (s.compare(i, 5, "&amp;") == 0) {
        out += '&';
        i += 4;
      } else if (s.compare(i, 6, "&quot;") == 0) {
        out += '"';
        i += 5;
      } else {
        throw Error("xml: unknown entity");
      }
    }
    return out;
  }

  XmlNode parse_element() {
    skip_ws();
    MSC_CHECK(peek() == '<', "xml: expected element");
    ++pos_;
    XmlNode node;
    node.tag = parse_name();
    while (true) {
      skip_ws();
      const char c = peek();
      if (c == '/') {
        pos_ += 2;  // "/>"
        MSC_CHECK(t_[pos_ - 1] == '>', "xml: malformed empty element");
        return node;
      }
      if (c == '>') {
        ++pos_;
        break;
      }
      const std::string key = parse_name();
      skip_ws();
      MSC_CHECK(peek() == '=', "xml: expected '='");
      ++pos_;
      skip_ws();
      MSC_CHECK(peek() == '"', "xml: expected '\"'");
      ++pos_;
      const auto end = t_.find('"', pos_);
      MSC_CHECK(end != std::string::npos, "xml: unterminated attribute");
      node.attrs[key] = unescape(t_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    // Content: children and/or text until the closing tag.
    while (true) {
      const auto lt = t_.find('<', pos_);
      MSC_CHECK(lt != std::string::npos, "xml: unterminated element");
      node.text += unescape(t_.substr(pos_, lt - pos_));
      pos_ = lt;
      if (t_.compare(pos_, 2, "</") == 0) {
        pos_ += 2;
        const std::string closing = parse_name();
        MSC_CHECK(closing == node.tag, "xml: mismatched closing tag");
        skip_ws();
        MSC_CHECK(peek() == '>', "xml: malformed closing tag");
        ++pos_;
        return node;
      }
      node.children.push_back(parse_element());
    }
  }

  const std::string& t_;
  std::size_t pos_{0};
};

}  // namespace

Cube from_cube_xml(const std::string& xml) {
  const XmlNode root = XmlParser(xml).parse();
  MSC_CHECK(root.tag == "cube", "not a cube document");
  MSC_CHECK(root.attr("version") == "1", "unsupported cube version");

  Cube cube;
  for (const auto& m : root.child("metrics").children) {
    const int parent = m.attr_int("parent");
    const MetricId id = cube.metrics.add(
        m.attr("name"), m.attrs.count("desc") ? m.attr("desc") : "",
        MetricId{parent});
    MSC_CHECK(id.get() == m.attr_int("id"),
              "cube metrics must be stored in id order");
  }
  for (const auto& r : root.child("regions").children) {
    const RegionId id = cube.regions.intern(r.attr("name"));
    MSC_CHECK(id.get() == r.attr_int("id"),
              "cube regions must be stored in id order");
  }
  for (const auto& n : root.child("calltree").children) {
    const CallPathId id =
        cube.calls.get_or_add(CallPathId{n.attr_int("parent")},
                              RegionId{n.attr_int("region")});
    MSC_CHECK(id.get() == n.attr_int("id"),
              "cube call tree must be stored in id order");
  }
  for (const auto& s : root.child("system").children) {
    if (s.tag == "metahost") {
      cube.system.metahosts.push_back(
          tracing::MetahostDef{MetahostId{s.attr_int("id")},
                               s.attr("name")});
    } else if (s.tag == "location") {
      tracing::LocationDef loc;
      loc.process = s.attr_int("rank");
      loc.machine = MetahostId{s.attr_int("machine")};
      loc.node = NodeId{s.attr_int("node")};
      loc.thread = s.attr_int("thread");
      cube.system.locations.push_back(loc);
    } else if (s.tag == "comm") {
      tracing::CommDef c;
      c.id = CommId{s.attr_int("id")};
      c.name = s.attr("name");
      std::istringstream ms(s.attr("members"));
      Rank r;
      while (ms >> r) c.members.push_back(r);
      cube.system.comms.push_back(std::move(c));
    } else {
      throw Error("xml: unknown system element <" + s.tag + ">");
    }
  }
  // The cube's region table must mirror the defs' regions for rendering.
  cube.system.regions = cube.regions;
  for (const auto& row : root.child("severity").children) {
    const MetricId m{row.attr_int("metric")};
    for (const auto& v : row.children) {
      cube.add(m, CallPathId{v.attr_int("c")}, v.attr_int("r"),
               std::stod(v.text));
    }
  }
  return cube;
}

void save_cube(const std::string& path, const Cube& cube) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot write cube file: " + path);
  out << to_cube_xml(cube);
  if (!out) throw Error("write failed: " + path);
}

Cube load_cube(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open cube file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_cube_xml(ss.str());
}

}  // namespace metascope::report
