// CSV export of severity cubes — the lingua franca for spreadsheets and
// plotting scripts that do not read CUBE XML.
#pragma once

#include <string>

#include "report/cube.hpp"

namespace metascope::report {

/// Long-format dump: one row per non-zero (metric, call path, rank)
/// entry: metric,call_path,rank,metahost,exclusive_seconds.
std::string cube_to_csv(const Cube& cube);

/// Per-metric summary: metric,exclusive_seconds,inclusive_seconds,
/// percent_of_total.
std::string metric_summary_csv(const Cube& cube);

}  // namespace metascope::report
