// Text rendering of analysis results: the three coupled panels of the
// paper's Figures 6/7 — metric tree, call tree, system tree — as
// indented trees with severity percentages and severity-class markers.
#pragma once

#include <string>

#include "report/cube.hpp"

namespace metascope::report {

struct RenderOptions {
  /// Hide tree nodes whose inclusive severity is below this fraction of
  /// total time (0 shows everything).
  double cutoff_fraction{0.0005};
  /// Selected metric for the call-tree panel ("" = first root).
  std::string selected_metric;
  /// Selected call path (path string) for the system-tree panel
  /// ("" = all call paths).
  std::string selected_call_path;
  /// Show per-entry absolute seconds next to percentages.
  bool show_seconds{false};
};

/// Severity-class marker mirroring the browser's colored squares.
/// Boundaries (fractions of total time): <0.1% ".", <1% "o", <10% "O",
/// otherwise "#".
char severity_marker(double fraction);

/// The metric-tree panel: every pattern with its inclusive severity as a
/// percentage of total time.
std::string render_metric_tree(const Cube& cube,
                               const RenderOptions& opts = {});

/// The call-tree panel for one selected metric.
std::string render_call_tree(const Cube& cube, MetricId metric,
                             const RenderOptions& opts = {});

/// The system-tree panel (metahost / node / process) for one selected
/// metric, optionally restricted to one call path.
std::string render_system_tree(const Cube& cube, MetricId metric,
                               CallPathId cnode = CallPathId{},
                               const RenderOptions& opts = {});

/// All three panels, arranged like the paper's screenshots.
std::string render_report(const Cube& cube, const RenderOptions& opts = {});

/// The fine-grained grid classification (paper §6 future work): for one
/// grid pattern, the waiting time broken down by (waiter metahost <-
/// peer metahost) pair. Empty string when the pattern has no grid hits.
std::string render_pair_breakdown(const Cube& cube, MetricId metric);

}  // namespace metascope::report
