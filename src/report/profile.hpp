// Flat trace profile — the "statistical summaries" trace browsers offer
// (paper §3): per-region visit counts and inclusive/exclusive times,
// message statistics by size and by system scope, and the
// metahost-to-metahost communication matrix.
//
// Unlike the pattern analysis this is purely descriptive, but it is the
// first thing a user looks at, and the communication matrix makes the
// internal/external traffic split of a metacomputing run explicit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "tracing/trace.hpp"

namespace metascope::report {

struct RegionProfile {
  RegionId region;
  std::uint64_t visits{0};
  double inclusive{0.0};
  double exclusive{0.0};
};

/// Message scope by endpoint placement in the system tree.
enum class MessageScope { IntraNode = 0, IntraMetahost = 1, InterMetahost = 2 };

struct MessageProfile {
  std::uint64_t count{0};
  double bytes{0.0};
  RunningStats size;
  RunningStats transfer_gap;  ///< recv_time - send_time, seconds
};

struct TraceProfile {
  /// Aggregated over all ranks, indexed by region id (dense).
  std::vector<RegionProfile> regions;
  /// Message statistics per scope (index = MessageScope).
  MessageProfile messages[3];
  /// bytes[from][to] between metahosts (point-to-point payloads).
  std::vector<std::vector<double>> metahost_bytes;
  /// Message-size histogram, bucket i = sizes in [2^i, 2^(i+1)).
  std::vector<std::uint64_t> size_histogram;
  double total_time{0.0};

  [[nodiscard]] const MessageProfile& scope(MessageScope s) const {
    return messages[static_cast<int>(s)];
  }
};

/// Profiles the collection (any clock domain; gaps are only meaningful
/// once synchronized).
TraceProfile profile_traces(const tracing::TraceCollection& tc);

/// Renders the profile as text: region table sorted by exclusive time,
/// message scopes, and the metahost communication matrix.
std::string render_profile(const TraceProfile& profile,
                           const tracing::TraceDefs& defs,
                           std::size_t max_regions = 20);

}  // namespace metascope::report
