#include "report/algebra.hpp"

#include <functional>
#include <map>
#include <string>

#include "common/error.hpp"

namespace metascope::report {

namespace {

/// Maps every metric of `src` into `dst` (matching by name, creating
/// missing nodes with the same parentage). Returns src-id -> dst-id.
std::vector<MetricId> unify_metrics(Cube& dst, const Cube& src) {
  std::vector<MetricId> map(src.metrics.size());
  for (MetricId m : src.metrics.preorder()) {
    const auto& d = src.metrics.def(m);
    MetricId target;
    if (dst.metrics.contains(d.name)) {
      target = dst.metrics.find(d.name);
    } else {
      MetricId parent;
      if (d.parent.valid())
        parent = map[static_cast<std::size_t>(d.parent.get())];
      target = dst.metrics.add(d.name, d.description, parent);
    }
    map[static_cast<std::size_t>(m.get())] = target;
  }
  return map;
}

/// Maps every call path of `src` into `dst` (matching by region-name
/// path). Returns src-id -> dst-id.
std::vector<CallPathId> unify_calls(Cube& dst, const Cube& src) {
  std::vector<CallPathId> map(src.calls.size());
  for (CallPathId c : src.calls.preorder()) {
    const auto& n = src.calls.node(c);
    const std::string region_name = src.regions.name(n.region);
    const RegionId dst_region = dst.regions.intern(region_name);
    CallPathId dst_parent;
    if (n.parent.valid())
      dst_parent = map[static_cast<std::size_t>(n.parent.get())];
    map[static_cast<std::size_t>(c.get())] =
        dst.calls.get_or_add(dst_parent, dst_region);
  }
  return map;
}

/// Skeleton with `a`'s system tree and the union of all operand trees.
Cube make_skeleton(const std::vector<const Cube*>& cubes) {
  MSC_CHECK(!cubes.empty(), "cube algebra needs at least one operand");
  Cube out;
  out.system = cubes.front()->system;
  for (const Cube* c : cubes) {
    MSC_CHECK(c->num_ranks() == out.num_ranks(),
              "cube algebra operands must have the same rank count");
    unify_metrics(out, *c);
    unify_calls(out, *c);
  }
  return out;
}

void accumulate(Cube& dst, const Cube& src, double scale) {
  const auto mmap = unify_metrics(dst, src);
  const auto cmap = unify_calls(dst, src);
  for (std::size_t m = 0; m < src.metrics.size(); ++m) {
    for (std::size_t c = 0; c < src.calls.size(); ++c) {
      for (Rank r = 0; r < src.num_ranks(); ++r) {
        const double v = src.get(MetricId{static_cast<int>(m)},
                                 CallPathId{static_cast<int>(c)}, r);
        if (v != 0.0)
          dst.add(mmap[m], cmap[c], r, scale * v);
      }
    }
  }
}

}  // namespace

Cube cube_diff(const Cube& a, const Cube& b) {
  Cube out = make_skeleton({&a, &b});
  accumulate(out, a, 1.0);
  accumulate(out, b, -1.0);
  return out;
}

Cube cube_merge(const std::vector<const Cube*>& cubes) {
  Cube out = make_skeleton(cubes);
  for (const Cube* c : cubes) accumulate(out, *c, 1.0);
  return out;
}

Cube cube_mean(const std::vector<const Cube*>& cubes) {
  Cube out = make_skeleton(cubes);
  const double w = 1.0 / static_cast<double>(cubes.size());
  for (const Cube* c : cubes) accumulate(out, *c, w);
  return out;
}

}  // namespace metascope::report
