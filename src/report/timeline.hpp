// ASCII time-line rendering of traces — a text cousin of the VAMPIR
// zoomable time-line display the paper discusses in §3. One row per
// process, one character per time bucket showing the innermost region
// active at the bucket's midpoint; a legend maps characters to regions.
//
// This is the "manual" view the automatic pattern search supersedes; it
// is invaluable for debugging workloads and for seeing wait states with
// your own eyes before trusting the analyzer.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "tracing/trace.hpp"

namespace metascope::report {

struct TimelineOptions {
  /// Window to render; end <= begin means "the whole trace".
  double begin{0.0};
  double end{0.0};
  /// Characters across the time axis.
  int width{96};
  /// Ranks to show (empty = all).
  std::vector<Rank> ranks;
  /// Character shown when no region is active (before/after the trace).
  char idle{' '};
};

/// Renders the timeline. MPI regions get fixed glyphs:
///   s/r Send/Recv, i/j Isend/Irecv, w Wait, x Sendrecv, B Barrier,
///   A Allreduce, b Bcast, d Reduce, g Gather/Allgather, t Alltoall,
///   c Scatter; user regions get letters in order of first appearance,
///   '.' once the alphabet is exhausted.
std::string render_timeline(const tracing::TraceCollection& tc,
                            const TimelineOptions& opts = {});

}  // namespace metascope::report
