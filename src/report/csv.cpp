#include "report/csv.hpp"

#include <cstdio>
#include <sstream>

namespace metascope::report {

namespace {

/// Quotes a field if it contains separators (call paths contain '/',
/// which is fine, but names could contain commas or quotes).
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string cube_to_csv(const Cube& cube) {
  std::ostringstream os;
  os << "metric,call_path,rank,metahost,exclusive_seconds\n";
  for (std::size_t m = 0; m < cube.metrics.size(); ++m) {
    const MetricId mid{static_cast<int>(m)};
    const std::string& mname = cube.metrics.def(mid).name;
    for (std::size_t c = 0; c < cube.calls.size(); ++c) {
      const CallPathId cid{static_cast<int>(c)};
      std::string path;
      for (Rank r = 0; r < cube.num_ranks(); ++r) {
        const double v = cube.get(mid, cid, r);
        if (v == 0.0) continue;
        if (path.empty()) path = cube.calls.path_string(cid, cube.regions);
        os << csv_field(mname) << ',' << csv_field(path) << ',' << r << ','
           << csv_field(
                  cube.system.metahost(cube.system.metahost_of(r)).name)
           << ',' << num(v) << '\n';
      }
    }
  }
  return os.str();
}

std::string metric_summary_csv(const Cube& cube) {
  const double total = cube.total_time();
  std::ostringstream os;
  os << "metric,exclusive_seconds,inclusive_seconds,percent_of_total\n";
  for (MetricId m : cube.metrics.preorder()) {
    const double excl = cube.metric_total(m);
    const double incl = cube.metric_inclusive_total(m);
    os << csv_field(cube.metrics.def(m).name) << ',' << num(excl) << ','
       << num(incl) << ',' << num(total > 0.0 ? 100.0 * incl / total : 0.0)
       << '\n';
  }
  return os.str();
}

}  // namespace metascope::report
