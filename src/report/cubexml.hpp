// CUBE-style XML serialization of severity cubes, plus the minimal XML
// reader needed to load them back. Only non-zero severity entries are
// stored, keeping files compact.
#pragma once

#include <string>

#include "report/cube.hpp"

namespace metascope::report {

/// Serializes the cube (all trees + sparse severities) to XML.
std::string to_cube_xml(const Cube& cube);

/// Parses a document produced by to_cube_xml. Throws Error on malformed
/// input or unsupported versions.
Cube from_cube_xml(const std::string& xml);

/// File helpers.
void save_cube(const std::string& path, const Cube& cube);
Cube load_cube(const std::string& path);

}  // namespace metascope::report
