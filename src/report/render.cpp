#include "report/render.hpp"

#include <cstdio>
#include <functional>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/span.hpp"

namespace metascope::report {

namespace {

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%", fraction * 100.0);
  return buf;
}

std::string secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, " (%.4fs)", s);
  return buf;
}

}  // namespace

char severity_marker(double fraction) {
  if (fraction < 0.001) return '.';
  if (fraction < 0.01) return 'o';
  if (fraction < 0.10) return 'O';
  return '#';
}

std::string render_metric_tree(const Cube& cube, const RenderOptions& opts) {
  const double total = cube.total_time();
  MSC_CHECK(total > 0.0, "cube has no time");
  std::ostringstream os;
  os << "Metric tree (inclusive, % of total time " << total << " s)\n";
  const std::function<void(MetricId, int)> walk = [&](MetricId m,
                                                      int depth) {
    const double inc = cube.metric_inclusive_total(m);
    const double frac = inc / total;
    if (depth > 0 && frac < opts.cutoff_fraction) return;
    os << "  ";
    for (int i = 0; i < depth; ++i) os << "  ";
    os << '[' << severity_marker(frac) << "] " << pct(frac) << ' '
       << cube.metrics.def(m).name;
    if (opts.show_seconds) os << secs(inc);
    os << '\n';
    for (MetricId kid : cube.metrics.children(m)) walk(kid, depth + 1);
  };
  for (MetricId root : cube.metrics.roots()) walk(root, 0);
  return os.str();
}

std::string render_call_tree(const Cube& cube, MetricId metric,
                             const RenderOptions& opts) {
  const double total = cube.total_time();
  std::ostringstream os;
  os << "Call tree for metric '" << cube.metrics.def(metric).name
     << "' (inclusive over call subtree, % of total time)\n";
  const std::function<void(CallPathId, int)> walk = [&](CallPathId c,
                                                        int depth) {
    const double sub = cube.cnode_subtree_inclusive(metric, c);
    const double frac = sub / total;
    if (frac < opts.cutoff_fraction) return;
    os << "  ";
    for (int i = 0; i < depth; ++i) os << "  ";
    os << '[' << severity_marker(frac) << "] " << pct(frac) << ' '
       << cube.regions.name(cube.calls.node(c).region);
    if (opts.show_seconds) os << secs(sub);
    os << '\n';
    for (CallPathId kid : cube.calls.children(c)) walk(kid, depth + 1);
  };
  for (CallPathId root : cube.calls.roots()) walk(root, 0);
  return os.str();
}

std::string render_system_tree(const Cube& cube, MetricId metric,
                               CallPathId cnode,
                               const RenderOptions& opts) {
  const double total = cube.total_time();
  std::ostringstream os;
  os << "System tree for metric '" << cube.metrics.def(metric).name << "'";
  if (cnode.valid())
    os << " at call path '" << cube.calls.path_string(cnode, cube.regions)
       << "'";
  os << " (% of total time)\n";

  // Per-rank severity for the selection.
  const auto rank_value = [&](Rank r) {
    if (cnode.valid()) {
      // Inclusive over the call subtree at this rank.
      const std::function<double(CallPathId)> sub = [&](CallPathId c) {
        double s = cube.location_inclusive(metric, c, r);
        for (CallPathId kid : cube.calls.children(c)) s += sub(kid);
        return s;
      };
      return sub(cnode);
    }
    return cube.rank_inclusive_total(metric, r);
  };

  for (std::size_t mh = 0; mh < cube.system.metahosts.size(); ++mh) {
    const auto& mdef = cube.system.metahosts[mh];
    // Gather this metahost's ranks grouped by node.
    double mh_total = 0.0;
    std::vector<std::pair<Rank, double>> entries;
    for (Rank r = 0; r < cube.num_ranks(); ++r) {
      if (cube.system.location(r).machine != mdef.id) continue;
      const double v = rank_value(r);
      entries.emplace_back(r, v);
      mh_total += v;
    }
    if (entries.empty()) continue;
    os << "  [" << severity_marker(mh_total / total) << "] "
       << pct(mh_total / total) << ' ' << mdef.name << '\n';
    NodeId last_node{-1};
    for (const auto& [r, v] : entries) {
      const auto& loc = cube.system.location(r);
      if (loc.node != last_node) {
        // Node subtotal line.
        double node_total = 0.0;
        for (const auto& [r2, v2] : entries)
          if (cube.system.location(r2).node == loc.node) node_total += v2;
        os << "      [" << severity_marker(node_total / total) << "] "
           << pct(node_total / total) << " node " << loc.node.get() << '\n';
        last_node = loc.node;
      }
      if (v / total >= opts.cutoff_fraction) {
        os << "          [" << severity_marker(v / total) << "] "
           << pct(v / total) << " rank " << r;
        if (opts.show_seconds) os << secs(v);
        os << '\n';
      }
    }
  }
  return os.str();
}

std::string render_pair_breakdown(const Cube& cube, MetricId metric) {
  const double total = cube.total_time();
  std::ostringstream os;
  bool any = false;
  for (std::size_t a = 0; a < cube.system.metahosts.size(); ++a) {
    for (std::size_t b = 0; b < cube.system.metahosts.size(); ++b) {
      const double v = cube.pair_breakdown(
          metric, cube.system.metahosts[a].id, cube.system.metahosts[b].id);
      if (v <= 0.0) continue;
      if (!any) {
        os << "Breakdown of '" << cube.metrics.def(metric).name
           << "' by (waiter <- peer) metahost pair:\n";
        any = true;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%10.4f s  %5.1f%%  ", v,
                    100.0 * v / total);
      os << "  " << buf << cube.system.metahosts[a].name << " <- "
         << cube.system.metahosts[b].name << '\n';
    }
  }
  return any ? os.str() : std::string();
}

std::string render_report(const Cube& cube, const RenderOptions& opts) {
  telemetry::ScopedSpan span("report");
  if (telemetry::progress_enabled()) telemetry::progress("report", 0.0);
  telemetry::counter("report.renders").add(1);
  std::ostringstream os;
  os << render_metric_tree(cube, opts) << '\n';
  MetricId selected = cube.metrics.roots().front();
  if (!opts.selected_metric.empty())
    selected = cube.metrics.find(opts.selected_metric);
  os << render_call_tree(cube, selected, opts) << '\n';
  CallPathId cnode{};
  if (!opts.selected_call_path.empty()) {
    for (CallPathId c : cube.calls.preorder()) {
      if (cube.calls.path_string(c, cube.regions) ==
          opts.selected_call_path) {
        cnode = c;
        break;
      }
    }
    MSC_CHECK(cnode.valid(),
              "unknown call path: " + opts.selected_call_path);
  }
  os << render_system_tree(cube, selected, cnode, opts);
  if (telemetry::progress_enabled()) telemetry::progress("report", 1.0);
  return os.str();
}

}  // namespace metascope::report
