#include "report/cube.hpp"

#include <algorithm>
#include <cmath>

namespace metascope::report {

// --- MetricTree ------------------------------------------------------------

MetricId MetricTree::add(const std::string& name,
                         const std::string& description, MetricId parent) {
  MSC_CHECK(!name.empty(), "metric needs a name");
  MSC_CHECK(!contains(name), "duplicate metric name: " + name);
  MSC_CHECK(!parent.valid() ||
                static_cast<std::size_t>(parent.get()) < defs_.size(),
            "unknown parent metric");
  MetricDef d;
  d.id = MetricId{static_cast<int>(defs_.size())};
  d.name = name;
  d.description = description;
  d.parent = parent;
  defs_.push_back(d);
  children_.emplace_back();
  if (parent.valid())
    children_[static_cast<std::size_t>(parent.get())].push_back(d.id);
  return d.id;
}

const MetricDef& MetricTree::def(MetricId id) const {
  MSC_CHECK(id.valid() && static_cast<std::size_t>(id.get()) < defs_.size(),
            "unknown metric id");
  return defs_[static_cast<std::size_t>(id.get())];
}

MetricId MetricTree::find(const std::string& name) const {
  for (const auto& d : defs_)
    if (d.name == name) return d.id;
  throw Error("unknown metric: " + name);
}

bool MetricTree::contains(const std::string& name) const {
  for (const auto& d : defs_)
    if (d.name == name) return true;
  return false;
}

const std::vector<MetricId>& MetricTree::children(MetricId id) const {
  MSC_CHECK(id.valid() &&
                static_cast<std::size_t>(id.get()) < children_.size(),
            "unknown metric id");
  return children_[static_cast<std::size_t>(id.get())];
}

std::vector<MetricId> MetricTree::roots() const {
  std::vector<MetricId> out;
  for (const auto& d : defs_)
    if (!d.parent.valid()) out.push_back(d.id);
  return out;
}

std::vector<MetricId> MetricTree::preorder() const {
  std::vector<MetricId> out;
  out.reserve(defs_.size());
  std::vector<MetricId> stack = roots();
  std::reverse(stack.begin(), stack.end());
  while (!stack.empty()) {
    const MetricId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const auto& kids = children(id);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it)
      stack.push_back(*it);
  }
  return out;
}

bool MetricTree::operator==(const MetricTree& other) const {
  if (defs_.size() != other.defs_.size()) return false;
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    const auto& a = defs_[i];
    const auto& b = other.defs_[i];
    if (a.name != b.name || a.parent != b.parent) return false;
  }
  return true;
}

// --- CallTree ----------------------------------------------------------------

namespace {
std::uint64_t call_key(CallPathId parent, RegionId region) {
  return (static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(parent.get() + 1))
          << 32) |
         static_cast<std::uint32_t>(region.get());
}
}  // namespace

CallPathId CallTree::get_or_add(CallPathId parent, RegionId region) {
  MSC_CHECK(region.valid(), "call path needs a region");
  const auto key = call_key(parent, region);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  CallPathNode n;
  n.id = CallPathId{static_cast<int>(nodes_.size())};
  n.region = region;
  n.parent = parent;
  nodes_.push_back(n);
  children_.emplace_back();
  if (parent.valid())
    children_[static_cast<std::size_t>(parent.get())].push_back(n.id);
  index_.emplace(key, n.id);
  return n.id;
}

CallPathId CallTree::find(CallPathId parent, RegionId region) const {
  const auto it = index_.find(call_key(parent, region));
  return it == index_.end() ? CallPathId{} : it->second;
}

const CallPathNode& CallTree::node(CallPathId id) const {
  MSC_CHECK(id.valid() && static_cast<std::size_t>(id.get()) < nodes_.size(),
            "unknown call path id");
  return nodes_[static_cast<std::size_t>(id.get())];
}

const std::vector<CallPathId>& CallTree::children(CallPathId id) const {
  MSC_CHECK(id.valid() &&
                static_cast<std::size_t>(id.get()) < children_.size(),
            "unknown call path id");
  return children_[static_cast<std::size_t>(id.get())];
}

std::vector<CallPathId> CallTree::roots() const {
  std::vector<CallPathId> out;
  for (const auto& n : nodes_)
    if (!n.parent.valid()) out.push_back(n.id);
  return out;
}

std::vector<CallPathId> CallTree::preorder() const {
  std::vector<CallPathId> out;
  out.reserve(nodes_.size());
  std::vector<CallPathId> stack = roots();
  std::reverse(stack.begin(), stack.end());
  while (!stack.empty()) {
    const CallPathId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const auto& kids = children(id);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it)
      stack.push_back(*it);
  }
  return out;
}

std::string CallTree::path_string(CallPathId id,
                                  const NameTable<RegionId>& regions) const {
  std::vector<std::string> parts;
  CallPathId cur = id;
  while (cur.valid()) {
    const auto& n = node(cur);
    parts.push_back(regions.name(n.region));
    cur = n.parent;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += "/";
    out += *it;
  }
  return out;
}

bool CallTree::operator==(const CallTree& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].region != other.nodes_[i].region ||
        nodes_[i].parent != other.nodes_[i].parent)
      return false;
  }
  return true;
}

// --- Cube --------------------------------------------------------------------

void Cube::ensure(MetricId m) {
  MSC_CHECK(m.valid() && static_cast<std::size_t>(m.get()) < metrics.size(),
            "unknown metric");
  if (sev_.size() < metrics.size()) sev_.resize(metrics.size());
}

void Cube::add(MetricId m, CallPathId c, Rank r, double seconds) {
  ensure(m);
  MSC_CHECK(c.valid() && static_cast<std::size_t>(c.get()) < calls.size(),
            "unknown call path");
  MSC_CHECK(r >= 0 && r < num_ranks(), "rank out of range");
  auto& row = sev_[static_cast<std::size_t>(m.get())];
  const std::size_t need =
      calls.size() * static_cast<std::size_t>(num_ranks());
  if (row.size() < need) row.resize(need, 0.0);
  row[static_cast<std::size_t>(c.get()) *
          static_cast<std::size_t>(num_ranks()) +
      static_cast<std::size_t>(r)] += seconds;
}

double Cube::get(MetricId m, CallPathId c, Rank r) const {
  if (static_cast<std::size_t>(m.get()) >= sev_.size()) return 0.0;
  const auto& row = sev_[static_cast<std::size_t>(m.get())];
  const std::size_t idx = static_cast<std::size_t>(c.get()) *
                              static_cast<std::size_t>(num_ranks()) +
                          static_cast<std::size_t>(r);
  return idx < row.size() ? row[idx] : 0.0;
}

double Cube::metric_total(MetricId m) const {
  if (static_cast<std::size_t>(m.get()) >= sev_.size()) return 0.0;
  double s = 0.0;
  for (double v : sev_[static_cast<std::size_t>(m.get())]) s += v;
  return s;
}

double Cube::metric_inclusive_total(MetricId m) const {
  double s = metric_total(m);
  for (MetricId kid : metrics.children(m)) s += metric_inclusive_total(kid);
  return s;
}

double Cube::cnode_inclusive(MetricId m, CallPathId c) const {
  double s = 0.0;
  for (Rank r = 0; r < num_ranks(); ++r) s += location_inclusive(m, c, r);
  return s;
}

double Cube::cnode_subtree_inclusive(MetricId m, CallPathId c) const {
  double s = cnode_inclusive(m, c);
  for (CallPathId kid : calls.children(c))
    s += cnode_subtree_inclusive(m, kid);
  return s;
}

double Cube::location_inclusive(MetricId m, CallPathId c, Rank r) const {
  double s = get(m, c, r);
  for (MetricId kid : metrics.children(m))
    s += location_inclusive(kid, c, r);
  return s;
}

double Cube::rank_inclusive_total(MetricId m, Rank r) const {
  double s = 0.0;
  for (std::size_t c = 0; c < calls.size(); ++c)
    s += location_inclusive(m, CallPathId{static_cast<int>(c)}, r);
  return s;
}

double Cube::total_time() const {
  const auto roots = metrics.roots();
  MSC_CHECK(!roots.empty(), "cube has no metrics");
  return metric_inclusive_total(roots.front());
}

void Cube::add_pair_breakdown(MetricId m, MetahostId waiter, MetahostId peer,
                              double seconds) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.get()))
       << 32) |
      (static_cast<std::uint32_t>(waiter.get()) << 16) |
      static_cast<std::uint32_t>(peer.get());
  pair_sev_[key] += seconds;
}

double Cube::pair_breakdown(MetricId m, MetahostId waiter,
                            MetahostId peer) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.get()))
       << 32) |
      (static_cast<std::uint32_t>(waiter.get()) << 16) |
      static_cast<std::uint32_t>(peer.get());
  auto it = pair_sev_.find(key);
  return it == pair_sev_.end() ? 0.0 : it->second;
}

bool Cube::approx_equal(const Cube& other, double tol) const {
  if (!(metrics == other.metrics) || !(calls == other.calls)) return false;
  if (num_ranks() != other.num_ranks()) return false;
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    for (std::size_t c = 0; c < calls.size(); ++c) {
      for (Rank r = 0; r < num_ranks(); ++r) {
        const MetricId mid{static_cast<int>(m)};
        const CallPathId cid{static_cast<int>(c)};
        if (std::abs(get(mid, cid, r) - other.get(mid, cid, r)) > tol)
          return false;
      }
    }
  }
  return true;
}

}  // namespace metascope::report
