#include "report/profile.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "tracing/matching.hpp"

namespace metascope::report {

using tracing::EventType;

TraceProfile profile_traces(const tracing::TraceCollection& tc) {
  TraceProfile out;
  out.regions.resize(tc.defs.regions.size());
  for (std::size_t i = 0; i < out.regions.size(); ++i)
    out.regions[i].region = RegionId{static_cast<int>(i)};
  const std::size_t nmh = tc.defs.metahosts.size();
  out.metahost_bytes.assign(nmh, std::vector<double>(nmh, 0.0));
  out.size_histogram.assign(48, 0);

  // Region times from the enter/exit nesting of each rank.
  for (const auto& trace : tc.ranks) {
    struct Frame {
      RegionId region;
      double enter;
      double child;
    };
    std::vector<Frame> stack;
    for (const auto& e : trace.events) {
      switch (e.type) {
        case EventType::Enter: {
          // The enter belongs to the entered region; visits counted here.
          stack.push_back(Frame{e.region, e.time, 0.0});
          auto& rp =
              out.regions[static_cast<std::size_t>(e.region.get())];
          ++rp.visits;
          break;
        }
        case EventType::Exit:
        case EventType::CollExit: {
          MSC_CHECK(!stack.empty(), "profile: unbalanced trace");
          const Frame f = stack.back();
          stack.pop_back();
          const double dur = e.time - f.enter;
          auto& rp =
              out.regions[static_cast<std::size_t>(f.region.get())];
          rp.inclusive += dur;
          rp.exclusive += dur - f.child;
          if (!stack.empty()) stack.back().child += dur;
          break;
        }
        default:
          break;
      }
    }
    MSC_CHECK(stack.empty(), "profile: unbalanced trace");
    if (!trace.events.empty())
      out.total_time +=
          trace.events.back().time - trace.events.front().time;
  }

  // Message statistics from the matching.
  const auto pairs = tracing::match_messages(tc);
  for (const auto& p : pairs) {
    const auto& send = tc.ranks[static_cast<std::size_t>(p.send.rank)]
                           .events[p.send.index];
    const auto& recv = tc.ranks[static_cast<std::size_t>(p.recv.rank)]
                           .events[p.recv.index];
    const auto& from = tc.defs.location(p.send.rank);
    const auto& to = tc.defs.location(p.recv.rank);
    MessageScope scope = MessageScope::InterMetahost;
    if (from.machine == to.machine) {
      scope = from.node == to.node ? MessageScope::IntraNode
                                   : MessageScope::IntraMetahost;
    }
    auto& mp = out.messages[static_cast<int>(scope)];
    ++mp.count;
    mp.bytes += send.bytes;
    mp.size.add(send.bytes);
    mp.transfer_gap.add(recv.time - send.time);
    out.metahost_bytes[static_cast<std::size_t>(from.machine.get())]
                      [static_cast<std::size_t>(to.machine.get())] +=
        send.bytes;
    const int bucket = send.bytes < 1.0
                           ? 0
                           : std::min<int>(
                                 static_cast<int>(out.size_histogram.size()) - 1,
                                 static_cast<int>(std::log2(send.bytes)));
    ++out.size_histogram[static_cast<std::size_t>(bucket)];
  }
  return out;
}

std::string render_profile(const TraceProfile& profile,
                           const tracing::TraceDefs& defs,
                           std::size_t max_regions) {
  std::ostringstream os;
  os << "Flat profile (total time " << profile.total_time << " s)\n";

  std::vector<RegionProfile> sorted = profile.regions;
  std::sort(sorted.begin(), sorted.end(),
            [](const RegionProfile& a, const RegionProfile& b) {
              return a.exclusive > b.exclusive;
            });
  TextTable rt({"region", "visits", "exclusive [s]", "inclusive [s]",
                "% of total"});
  std::size_t shown = 0;
  for (const auto& rp : sorted) {
    if (rp.visits == 0 || shown++ >= max_regions) continue;
    rt.add_row({defs.regions.name(rp.region), std::to_string(rp.visits),
                TextTable::fixed(rp.exclusive, 4),
                TextTable::fixed(rp.inclusive, 4),
                TextTable::percent(rp.exclusive /
                                   std::max(profile.total_time, 1e-12))});
  }
  os << rt.render() << '\n';

  TextTable mt({"message scope", "count", "bytes", "mean size [B]",
                "mean gap [us]"});
  const char* labels[3] = {"intra-node", "intra-metahost",
                           "inter-metahost"};
  for (int s = 0; s < 3; ++s) {
    const auto& mp = profile.messages[s];
    mt.add_row({labels[s], std::to_string(mp.count),
                TextTable::fixed(mp.bytes, 0),
                TextTable::fixed(mp.size.mean(), 0),
                TextTable::fixed(mp.transfer_gap.mean() * 1e6, 1)});
  }
  os << mt.render() << '\n';

  os << "Metahost communication matrix (bytes, from row to column):\n";
  std::vector<std::string> headers{"from \\ to"};
  for (const auto& mh : defs.metahosts) headers.push_back(mh.name);
  TextTable cm(headers);
  for (std::size_t i = 0; i < profile.metahost_bytes.size(); ++i) {
    std::vector<std::string> row{defs.metahosts[i].name};
    for (double v : profile.metahost_bytes[i])
      row.push_back(TextTable::fixed(v, 0));
    cm.add_row(row);
  }
  os << cm.render();
  return os.str();
}

}  // namespace metascope::report
