// Cross-experiment cube algebra (Song et al. [15], the comparison
// support the paper names as planned future work for its analyzer).
//
// Operands may come from different experiments — e.g. the paper's
// three-metahost VIOLA run vs the homogeneous IBM run — so the trees need
// not be identical. Operations first build the union structure (metrics
// matched by name, call paths by region-name path, locations by rank) and
// then combine severities entry-wise. diff() may produce negative values;
// that is the point — it shows which waits grew and which shrank.
#pragma once

#include <vector>

#include "report/cube.hpp"

namespace metascope::report {

/// a - b. The result's system tree is taken from `a`.
Cube cube_diff(const Cube& a, const Cube& b);

/// Entry-wise sum of all operands (>= 1).
Cube cube_merge(const std::vector<const Cube*>& cubes);

/// Entry-wise arithmetic mean of all operands (>= 1).
Cube cube_mean(const std::vector<const Cube*>& cubes);

}  // namespace metascope::report
