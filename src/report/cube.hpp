// The severity cube: the three coupled hierarchies shown in the paper's
// Figures 6/7 — a metric (pattern) tree, a call tree, and the system tree
// (metahost / node / process) — plus the severity matrix mapping
// (metric, call path, location) to accumulated time.
//
// Severity values are EXCLUSIVE along the metric dimension: a metric node
// holds only the time not attributed to any of its children. The
// "total execution time penalty in percent" the paper's browser shows
// next to a pattern is inclusive_total(pattern) / inclusive_total(root).
#pragma once

#include <string>
#include <vector>

#include "common/name_table.hpp"
#include "common/types.hpp"
#include "tracing/defs.hpp"

namespace metascope::report {

// --- metric tree ---------------------------------------------------------

struct MetricDef {
  MetricId id;
  std::string name;
  std::string description;
  MetricId parent;  ///< invalid for roots
};

class MetricTree {
 public:
  MetricId add(const std::string& name, const std::string& description,
               MetricId parent = MetricId{});

  [[nodiscard]] const MetricDef& def(MetricId id) const;
  [[nodiscard]] MetricId find(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return defs_.size(); }
  [[nodiscard]] const std::vector<MetricId>& children(MetricId id) const;
  [[nodiscard]] std::vector<MetricId> roots() const;
  /// Pre-order traversal of the whole forest.
  [[nodiscard]] std::vector<MetricId> preorder() const;

  bool operator==(const MetricTree& other) const;

 private:
  std::vector<MetricDef> defs_;
  std::vector<std::vector<MetricId>> children_;
};

// --- call tree -----------------------------------------------------------

struct CallPathNode {
  CallPathId id;
  RegionId region;
  CallPathId parent;  ///< invalid for roots
};

class CallTree {
 public:
  /// Returns the node for `region` under `parent`, creating it if new.
  CallPathId get_or_add(CallPathId parent, RegionId region);

  /// Read-only lookup: the node for `region` under `parent`, or an
  /// invalid id if no such path exists. Safe to call concurrently once
  /// the tree is fully built (the streaming replay resolves call paths
  /// per rank task against the tree its prepare pass constructed).
  [[nodiscard]] CallPathId find(CallPathId parent, RegionId region) const;

  [[nodiscard]] const CallPathNode& node(CallPathId id) const;
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<CallPathId>& children(CallPathId id) const;
  [[nodiscard]] std::vector<CallPathId> roots() const;
  [[nodiscard]] std::vector<CallPathId> preorder() const;
  /// "main/solve/MPI_Recv"-style path string.
  [[nodiscard]] std::string path_string(
      CallPathId id, const NameTable<RegionId>& regions) const;

  bool operator==(const CallTree& other) const;

 private:
  std::vector<CallPathNode> nodes_;
  std::vector<std::vector<CallPathId>> children_;
  // (parent, region) -> node lookup.
  std::unordered_map<std::uint64_t, CallPathId> index_;
};

// --- the cube ------------------------------------------------------------

class Cube {
 public:
  Cube() = default;

  MetricTree metrics;
  CallTree calls;
  NameTable<RegionId> regions;
  /// System hierarchy straight from the trace definitions.
  tracing::TraceDefs system;

  [[nodiscard]] int num_ranks() const { return system.num_ranks(); }

  /// Accumulates `seconds` of exclusive severity.
  void add(MetricId m, CallPathId c, Rank r, double seconds);

  [[nodiscard]] double get(MetricId m, CallPathId c, Rank r) const;

  /// Sum over all call paths and ranks (exclusive in metric dimension).
  [[nodiscard]] double metric_total(MetricId m) const;
  /// metric_total over the metric's whole subtree.
  [[nodiscard]] double metric_inclusive_total(MetricId m) const;
  /// Sum over ranks for one (metric, cnode), inclusive over the metric
  /// subtree but exclusive along the call tree.
  [[nodiscard]] double cnode_inclusive(MetricId m, CallPathId c) const;
  /// Like cnode_inclusive but additionally summed over the call subtree.
  [[nodiscard]] double cnode_subtree_inclusive(MetricId m,
                                               CallPathId c) const;
  /// Per-rank value for one (metric, cnode) pair, metric-inclusive.
  [[nodiscard]] double location_inclusive(MetricId m, CallPathId c,
                                          Rank r) const;
  /// Sum over the metric subtree and all cnodes for one rank.
  [[nodiscard]] double rank_inclusive_total(MetricId m, Rank r) const;

  /// Total time (inclusive total of the first metric root).
  [[nodiscard]] double total_time() const;

  /// Grid-pattern extension (paper §6 future work): severity broken down
  /// by the (waiter metahost, peer metahost) pair.
  void add_pair_breakdown(MetricId m, MetahostId waiter, MetahostId peer,
                          double seconds);
  [[nodiscard]] double pair_breakdown(MetricId m, MetahostId waiter,
                                      MetahostId peer) const;

  /// True if both cubes have identical trees and severities equal within
  /// `tol` seconds per entry (used to verify serial vs parallel analyzer).
  [[nodiscard]] bool approx_equal(const Cube& other, double tol) const;

 private:
  void ensure(MetricId m);

  // sev_[metric][cnode * nranks + rank]; rows grow lazily.
  std::vector<std::vector<double>> sev_;
  std::unordered_map<std::uint64_t, double> pair_sev_;
};

}  // namespace metascope::report
