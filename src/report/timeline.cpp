#include "report/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace metascope::report {

using tracing::EventType;

namespace {

char mpi_glyph(const std::string& name) {
  if (name == "MPI_Send") return 's';
  if (name == "MPI_Recv") return 'r';
  if (name == "MPI_Isend") return 'i';
  if (name == "MPI_Irecv") return 'j';
  if (name == "MPI_Wait") return 'w';
  if (name == "MPI_Sendrecv") return 'x';
  if (name == "MPI_Barrier") return 'B';
  if (name == "MPI_Allreduce") return 'A';
  if (name == "MPI_Bcast") return 'b';
  if (name == "MPI_Reduce") return 'd';
  if (name == "MPI_Gather" || name == "MPI_Allgather") return 'g';
  if (name == "MPI_Alltoall") return 't';
  if (name == "MPI_Scatter") return 'c';
  return 0;
}

}  // namespace

std::string render_timeline(const tracing::TraceCollection& tc,
                            const TimelineOptions& opts) {
  MSC_CHECK(opts.width > 0, "timeline width must be positive");

  // Window bounds.
  double lo = opts.begin;
  double hi = opts.end;
  if (hi <= lo) {
    lo = kInfTime;
    hi = -kInfTime;
    for (const auto& t : tc.ranks) {
      if (t.events.empty()) continue;
      lo = std::min(lo, t.events.front().time);
      hi = std::max(hi, t.events.back().time);
    }
    MSC_CHECK(hi > lo, "timeline: no events to render");
  }
  const double dt = (hi - lo) / opts.width;

  // Glyph assignment.
  std::map<int, char> glyph;       // region id -> char
  std::string user_letters = "abcdefghklmnopquvyzEFGHKLMNOPQUVYZ";
  std::size_t next_user = 0;
  const auto glyph_of = [&](RegionId region) {
    auto it = glyph.find(region.get());
    if (it != glyph.end()) return it->second;
    const std::string& name = tc.defs.regions.name(region);
    char g = mpi_glyph(name);
    if (g == 0)
      g = next_user < user_letters.size() ? user_letters[next_user++] : '.';
    glyph.emplace(region.get(), g);
    return g;
  };

  std::vector<Rank> ranks = opts.ranks;
  if (ranks.empty())
    for (int r = 0; r < tc.num_ranks(); ++r) ranks.push_back(r);

  std::ostringstream os;
  {
    char head[128];
    std::snprintf(head, sizeof head,
                  "Timeline  [%.6f s .. %.6f s]  (%.2e s per column)\n", lo,
                  hi, dt);
    os << head;
  }

  for (Rank r : ranks) {
    MSC_CHECK(r >= 0 && r < tc.num_ranks(), "timeline: rank out of range");
    const auto& events = tc.ranks[static_cast<std::size_t>(r)].events;
    std::string row(static_cast<std::size_t>(opts.width), opts.idle);
    // Sweep events once, painting the innermost region per bucket.
    std::vector<RegionId> stack;
    std::size_t col = 0;
    std::size_t i = 0;
    for (col = 0; col < row.size(); ++col) {
      const double mid = lo + (static_cast<double>(col) + 0.5) * dt;
      while (i < events.size() && events[i].time <= mid) {
        const auto& e = events[i];
        if (e.type == EventType::Enter) {
          stack.push_back(e.region);
        } else if (e.type == EventType::Exit ||
                   e.type == EventType::CollExit) {
          if (!stack.empty()) stack.pop_back();
        }
        ++i;
      }
      if (!stack.empty()) row[col] = glyph_of(stack.back());
    }
    char label[32];
    std::snprintf(label, sizeof label, "%4d |", r);
    os << label << row << "|\n";
  }

  // Legend, sorted by glyph for stable output.
  std::map<char, std::string> legend;
  for (const auto& [region, g] : glyph)
    legend[g] = tc.defs.regions.name(RegionId{region});
  os << "legend:";
  for (const auto& [g, name] : legend) os << ' ' << g << '=' << name;
  os << '\n';
  return os.str();
}

}  // namespace metascope::report
