// Rate-limited stderr progress line for long pipeline stages.
//
// Off by default (benches and tests must stay quiet); `msc_run
// --progress` switches it on. Stages call progress(stage, fraction)
// freely — the reporter drops updates closer than 100 ms apart, except
// stage entry (fraction 0) and completion (fraction >= 1), which always
// print. One line per accepted update keeps the output pipe-friendly.
#pragma once

namespace metascope::telemetry {

void set_progress_enabled(bool on);
bool progress_enabled();

/// Reports `stage` at `fraction` complete (clamped to [0, 1]).
void progress(const char* stage, double fraction);

}  // namespace metascope::telemetry
