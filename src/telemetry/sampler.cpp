#include "telemetry/sampler.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace metascope::telemetry {

namespace {

/// 2^16 samples ≈ 18 hours at 1 s intervals, or 65 s at 1 ms — far
/// beyond any pipeline run this analyzer drives; the cap is a safety
/// net, not a budget.
constexpr std::size_t kMaxSamples = 1 << 16;

struct SamplerState {
  std::mutex m;
  std::condition_variable cv;
  std::thread thread;
  bool running{false};
  bool stop{false};
  int interval_ms{0};
  bool truncated{false};
  bool ever_ran{false};
  std::vector<Json> samples;
};

SamplerState& state() {
  static SamplerState* s = new SamplerState;
  return *s;
}

Json take_sample(std::chrono::steady_clock::time_point t0) {
  const double t_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Reuses the registry's snapshot path: counters/dcounters/gauges are
  // cheap merges; histograms are omitted (their buckets would dominate
  // the series without adding time resolution beyond the counters).
  Json all = Registry::instance().to_json();
  Json row{Json::Object{}};
  row.set("t_s", t_s);
  row.set("counters", all.at("counters"));
  row.set("dcounters", all.at("dcounters"));
  row.set("gauges", all.at("gauges"));
  return row;
}

void sampler_loop(std::chrono::steady_clock::time_point t0) {
  SamplerState& s = state();
  std::unique_lock<std::mutex> lock(s.m);
  for (;;) {
    s.cv.wait_for(lock, std::chrono::milliseconds(s.interval_ms),
                  [&] { return s.stop; });
    if (s.stop) return;
    if (s.samples.size() >= kMaxSamples) {
      s.truncated = true;
      continue;  // keep the thread parked until stop; drop new samples
    }
    lock.unlock();
    Json row = take_sample(t0);  // registry reads happen unlocked
    lock.lock();
    if (s.samples.size() < kMaxSamples) s.samples.push_back(std::move(row));
  }
}

}  // namespace

void start_sampler(int interval_ms) {
  if (interval_ms <= 0) return;
  SamplerState& s = state();
  std::unique_lock<std::mutex> lock(s.m);
  if (s.running) return;
  s.samples.clear();
  s.truncated = false;
  s.stop = false;
  s.running = true;
  s.ever_ran = true;
  s.interval_ms = interval_ms;
  const auto t0 = std::chrono::steady_clock::now();
  s.thread = std::thread([t0] { sampler_loop(t0); });
}

void stop_sampler() {
  SamplerState& s = state();
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(s.m);
    if (!s.running) return;
    s.stop = true;
    s.running = false;
    t = std::move(s.thread);
  }
  s.cv.notify_all();
  if (t.joinable()) t.join();
}

bool sampler_running() {
  SamplerState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  return s.running;
}

Json sampler_json() {
  SamplerState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  if (!s.ever_ran) return Json();
  Json rows{Json::Array{}};
  for (const Json& r : s.samples) rows.push_back(r);
  Json out{Json::Object{}};
  out.set("interval_ms", s.interval_ms);
  out.set("truncated", s.truncated);
  out.set("samples", std::move(rows));
  return out;
}

void clear_samples() {
  stop_sampler();
  SamplerState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  s.samples.clear();
  s.truncated = false;
  s.ever_ran = false;
}

}  // namespace metascope::telemetry
