#include "telemetry/trace_export.hpp"

#include <string>
#include <vector>

#include "telemetry/recorder.hpp"

namespace metascope::telemetry {

namespace {

constexpr int kPid = 1;  // one process; Chrome requires the field

Json meta_event(const char* name, int tid, const std::string& value) {
  Json e{Json::Object{}};
  e.set("ph", "M");
  e.set("pid", kPid);
  e.set("tid", tid);
  e.set("name", name);
  Json args{Json::Object{}};
  args.set("name", value);
  e.set("args", std::move(args));
  return e;
}

Json slice_event(const char* ph, int tid, double ts_us, const char* name,
                 std::uint32_t id) {
  Json e{Json::Object{}};
  e.set("ph", ph);
  e.set("pid", kPid);
  e.set("tid", tid);
  e.set("ts", ts_us);
  e.set("name", name ? name : "?");
  Json args{Json::Object{}};
  args.set("id", static_cast<std::int64_t>(id));
  e.set("args", std::move(args));
  return e;
}

Json instant_event(int tid, double ts_us, const char* name,
                   std::uint32_t id) {
  Json e = slice_event("i", tid, ts_us, name, id);
  e.set("s", "t");  // thread-scoped instant
  return e;
}

}  // namespace

Json chrome_trace_json() {
  const auto logs = Recorder::instance().snapshot();
  Json events{Json::Array{}};
  Json dropped{Json::Object{}};
  std::uint64_t total_events = 0;

  events.push_back(meta_event("process_name", 0, "metascope"));
  int tid = 0;
  for (const auto& log : logs) {
    const std::string label =
        log.label.empty() ? "thread " + std::to_string(tid) : log.label;
    events.push_back(meta_event("thread_name", tid, label));
    dropped.set(label, static_cast<std::int64_t>(log.dropped));

    // Per-track begin stack: ring wrap-around can strand an end whose
    // begin was overwritten (skipped) or a begin whose end is yet to
    // come when the snapshot was taken (closed at the last timestamp).
    std::vector<const TraceEvent*> open;
    double last_ts_us = 0.0;
    for (const TraceEvent& ev : log.events) {
      const double ts_us = static_cast<double>(ev.ts_ns) * 1e-3;
      last_ts_us = ts_us;
      switch (ev.kind) {
        case TraceEventKind::TaskBegin:
        case TraceEventKind::SpanBegin:
          open.push_back(&ev);
          events.push_back(slice_event("B", tid, ts_us, ev.name, ev.id));
          ++total_events;
          break;
        case TraceEventKind::TaskEnd:
        case TraceEventKind::TaskSuspend:
        case TraceEventKind::SpanEnd:
          if (open.empty()) break;  // begin lost to wrap-around
          open.pop_back();
          events.push_back(slice_event("E", tid, ts_us, ev.name, ev.id));
          ++total_events;
          if (ev.kind == TraceEventKind::TaskSuspend) {
            events.push_back(
                instant_event(tid, ts_us, "suspend", ev.id));
            ++total_events;
          }
          break;
        case TraceEventKind::TaskResume:
          events.push_back(instant_event(tid, ts_us, "resume", ev.id));
          ++total_events;
          break;
        case TraceEventKind::TaskSteal:
          events.push_back(instant_event(tid, ts_us, "steal", ev.id));
          ++total_events;
          break;
        case TraceEventKind::Mark:
          events.push_back(instant_event(tid, ts_us, ev.name, ev.id));
          ++total_events;
          break;
      }
    }
    while (!open.empty()) {
      const TraceEvent* b = open.back();
      open.pop_back();
      events.push_back(slice_event("E", tid, last_ts_us, b->name, b->id));
      ++total_events;
    }
    ++tid;
  }

  Json other{Json::Object{}};
  other.set("ring_capacity",
            static_cast<std::int64_t>(Recorder::instance().ring_capacity()));
  other.set("dropped_events", std::move(dropped));
  other.set("emitted_events", static_cast<std::int64_t>(total_events));
  Json out{Json::Object{}};
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", "ms");
  out.set("otherData", std::move(other));
  return out;
}

void save_chrome_trace(const std::string& path) {
  save_json_file(path, chrome_trace_json());
}

}  // namespace metascope::telemetry
