#include "telemetry/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace metascope::telemetry {

namespace detail {
RecorderCtl g_ctl;
#if defined(__GNUC__) && defined(__ELF__)
[[gnu::tls_model("initial-exec")]]
#endif
thread_local TlsHandle g_tls;
}  // namespace detail

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Smallest power of two >= cap, so the ring index is a mask instead of
/// an integer division in record_event().
std::size_t round_up_pow2(std::size_t cap) {
  std::size_t p = 1;
  while (p < cap) p <<= 1;
  return p;
}

}  // namespace

const char* trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::TaskBegin:
      return "task-begin";
    case TraceEventKind::TaskEnd:
      return "task-end";
    case TraceEventKind::TaskSuspend:
      return "suspend";
    case TraceEventKind::TaskResume:
      return "resume";
    case TraceEventKind::TaskSteal:
      return "steal";
    case TraceEventKind::SpanBegin:
      return "span-begin";
    case TraceEventKind::SpanEnd:
      return "span-end";
    case TraceEventKind::Mark:
      return "mark";
  }
  return "?";
}

/// One thread's bounded event ring. Only the owning thread writes;
/// `seq` (events ever written) is released after each slot write so a
/// snapshotting thread reads a consistent prefix. Events live at
/// seq % capacity — wrap-around overwrites the oldest, which is the
/// recorder's drop policy.
struct Recorder::Ring {
  explicit Ring(std::size_t cap)
      : slots(round_up_pow2(cap == 0 ? 1 : cap)),
        mask(slots.size() - 1) {}
  std::vector<TraceEvent> slots;  ///< ts_ns holds raw ticks until snapshot
  std::size_t mask;
  std::atomic<std::uint64_t> seq{0};
  std::string label;  ///< guarded by the recorder mutex
};

/// Out-of-line bridge so the anonymous-namespace thread-local below can
/// reach the recorder's private unregister hook.
struct TlsColdAccess {
  static void unregister(detail::TlsHandle* handle) {
    Recorder::instance().unregister_thread(handle);
  }
};

namespace {

/// Cold per-thread registration state; the hot fields live in
/// detail::g_tls (see recorder.hpp). reset()/configure() null the
/// handle's slots and zero its state, so a stale thread takes the slow
/// path and re-registers instead of writing into a retired ring. The
/// destructor pulls the handle off the recorder's walk list before the
/// thread's TLS goes away (g_tls itself is trivially destructible, so
/// late record_event calls from other TLS destructors stay safe).
struct TlsCold {
  Recorder::Ring* ring{nullptr};
  bool registered{false};
  std::string pending_label;  ///< label to apply on (re-)registration
  ~TlsCold() {
    if (registered) TlsColdAccess::unregister(&detail::g_tls);
  }
};
thread_local TlsCold tls_cold;

}  // namespace

Recorder::Recorder() {
  epoch_ticks_.store(detail::now_ticks());
  epoch_ns_.store(steady_now_ns());
}

Recorder& Recorder::instance() {
  static Recorder* r = new Recorder;  // leaked: threads may record at exit
  return *r;
}

void Recorder::configure(std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(m_);
  for (auto& r : rings_) retired_.push_back(std::move(r));
  rings_.clear();
  capacity_ = round_up_pow2(
      ring_capacity == 0 ? kDefaultRingCapacity : ring_capacity);
  epoch_ticks_.store(detail::now_ticks(), std::memory_order_relaxed);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  for (detail::TlsHandle* h : members_) {
    h->slots.store(nullptr, std::memory_order_relaxed);
    h->state.store(0, std::memory_order_relaxed);  // slow path re-registers
  }
}

void Recorder::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(m_);
  detail::g_ctl.enabled.store(on, std::memory_order_relaxed);
  for (detail::TlsHandle* h : members_) {
    // Threads without a ring go through the slow path on their next
    // record (to allocate one); a handle only ever gets state 1 here if
    // its owner already published the ring fields under this mutex.
    const bool has_ring =
        h->slots.load(std::memory_order_relaxed) != nullptr;
    h->state.store(on ? (has_ring ? 1 : 0) : std::int8_t{-1},
                   std::memory_order_relaxed);
  }
}

std::size_t Recorder::ring_capacity() const {
  std::lock_guard<std::mutex> lock(m_);
  return capacity_;
}

Recorder::Ring& Recorder::local_ring() {
  TlsCold& c = tls_cold;
  detail::TlsHandle& t = detail::g_tls;
  std::lock_guard<std::mutex> lock(m_);
  if (!c.registered) {
    members_.push_back(&t);
    c.registered = true;
  }
  if (c.ring == nullptr ||
      t.slots.load(std::memory_order_relaxed) == nullptr) {
    auto ring = std::make_unique<Ring>(capacity_);
    ring->label = c.pending_label;
    t.mask = ring->mask;
    t.seq = 0;
    t.seq_pub = &ring->seq;
    t.slots.store(ring->slots.data(), std::memory_order_relaxed);
    c.ring = ring.get();
    rings_.push_back(std::move(ring));
  }
  t.state.store(
      detail::g_ctl.enabled.load(std::memory_order_relaxed) ? 1 : -1,
      std::memory_order_relaxed);
  return *c.ring;
}

void Recorder::slow_register() {
  {
    TlsCold& c = tls_cold;
    detail::TlsHandle& t = detail::g_tls;
    std::lock_guard<std::mutex> lock(m_);
    if (!c.registered) {
      members_.push_back(&t);
      c.registered = true;
    }
    if (!detail::g_ctl.enabled.load(std::memory_order_relaxed)) {
      // Recording is off: remember the thread (so set_enabled can wake
      // it later) but don't allocate a ring it may never use.
      t.state.store(-1, std::memory_order_relaxed);
      return;
    }
  }
  (void)local_ring();  // allocates the ring and settles state
}

void Recorder::unregister_thread(detail::TlsHandle* handle) {
  std::lock_guard<std::mutex> lock(m_);
  members_.erase(std::remove(members_.begin(), members_.end(), handle),
                 members_.end());
}

void Recorder::record(TraceEventKind kind, const char* name,
                      std::uint32_t id) {
  record_event(kind, name, id);
}

void Recorder::set_thread_label(const std::string& label) {
  tls_cold.pending_label = label;  // survives ring retirement
  if (!recorder_enabled()) return;
  Ring& r = local_ring();
  std::lock_guard<std::mutex> lock(m_);
  r.label = label;
}

namespace detail {
void record_slow(TraceEventKind kind, const char* name, std::uint32_t id) {
  Recorder::instance().slow_register();
  // Only re-enter the fast path if registration ended with a live ring
  // (state stays -1 or 0 when recording is off) — otherwise this event
  // is dropped, matching the disabled no-op contract.
  if (g_tls.state.load(std::memory_order_relaxed) == 1)
    record_event(kind, name, id);
}
}  // namespace detail

std::vector<Recorder::ThreadLog> Recorder::snapshot() const {
  std::lock_guard<std::mutex> lock(m_);
  // Tick → nanosecond conversion, calibrated over the whole window from
  // the epoch to now: both clocks were read together at the epoch and
  // are read together here, so the rate error shrinks as the recording
  // gets longer. On the steady-clock fallback path the rate is ~1.
  const std::int64_t e_ticks =
      epoch_ticks_.load(std::memory_order_relaxed);
  const std::int64_t e_ns = epoch_ns_.load(std::memory_order_relaxed);
  const std::int64_t d_ticks = detail::now_ticks() - e_ticks;
  const double ns_per_tick =
      d_ticks > 0 ? static_cast<double>(steady_now_ns() - e_ns) /
                        static_cast<double>(d_ticks)
                  : 1.0;
  std::vector<ThreadLog> out;
  out.reserve(rings_.size());
  for (const auto& r : rings_) {
    const std::size_t cap = r->slots.size();
    const std::uint64_t s1 = r->seq.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(s1, cap);
    ThreadLog log;
    log.label = r->label;
    log.dropped = s1 - n;
    log.events.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = s1 - n; i < s1; ++i)
      log.events.push_back(r->slots[i % cap]);
    // If the owner raced us, the oldest copied slots may have been
    // overwritten mid-copy; trim them so the log is conservative (a
    // shorter tail) rather than torn.
    const std::uint64_t s2 = r->seq.load(std::memory_order_acquire);
    const std::uint64_t lapped =
        std::min<std::uint64_t>(s2 - s1, log.events.size());
    if (lapped > 0) {
      log.events.erase(log.events.begin(),
                       log.events.begin() + static_cast<std::ptrdiff_t>(lapped));
      log.dropped += lapped;
    }
    for (TraceEvent& e : log.events)
      e.ts_ns = static_cast<std::int64_t>(
          static_cast<double>(e.ts_ns - e_ticks) * ns_per_tick);
    out.push_back(std::move(log));
  }
  return out;
}

void Recorder::reset() {
  std::lock_guard<std::mutex> lock(m_);
  for (auto& r : rings_) retired_.push_back(std::move(r));
  rings_.clear();
  epoch_ticks_.store(detail::now_ticks(), std::memory_order_relaxed);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  for (detail::TlsHandle* h : members_) {
    h->slots.store(nullptr, std::memory_order_relaxed);
    h->state.store(0, std::memory_order_relaxed);  // slow path re-registers
  }
}

void set_thread_label(const std::string& label) {
  Recorder::instance().set_thread_label(label);
}

std::string postmortem_report(std::size_t last_n) {
  if (last_n == 0) return {};
  const auto logs = Recorder::instance().snapshot();
  std::uint64_t total = 0;
  for (const auto& log : logs) total += log.events.size();
  if (total == 0) return {};
  std::ostringstream os;
  os << "flight recorder postmortem (last " << last_n
     << " events per thread):\n";
  std::size_t tid = 0;
  for (const auto& log : logs) {
    os << "  [" << (log.label.empty() ? "thread " + std::to_string(tid)
                                      : log.label)
       << "]";
    if (log.dropped > 0) os << " (" << log.dropped << " older dropped)";
    os << "\n";
    const std::size_t n = std::min(last_n, log.events.size());
    for (std::size_t i = log.events.size() - n; i < log.events.size();
         ++i) {
      const TraceEvent& e = log.events[i];
      char ts[32];
      std::snprintf(ts, sizeof ts, "%+12.6f s", e.ts_ns * 1e-9);
      os << "    " << ts << "  " << trace_event_kind_name(e.kind) << "  "
         << (e.name ? e.name : "?") << " #" << e.id << "\n";
    }
    ++tid;
  }
  return os.str();
}

void RecordingObserver::on_worker_attach(std::size_t wid) {
  set_thread_label(std::string(stage_) + " worker " + std::to_string(wid));
}

void RecordingObserver::on_task_begin(std::size_t task) {
  if (!keep(task)) return;
  record_event(TraceEventKind::TaskBegin, stage_,
               static_cast<std::uint32_t>(task));
}

void RecordingObserver::on_task_end(std::size_t task, bool suspended) {
  if (!keep(task)) return;
  record_event(suspended ? TraceEventKind::TaskSuspend
                         : TraceEventKind::TaskEnd,
               stage_, static_cast<std::uint32_t>(task));
}

void RecordingObserver::on_task_resume(std::size_t task) {
  if (!keep(task)) return;
  record_event(TraceEventKind::TaskResume, stage_,
               static_cast<std::uint32_t>(task));
}

void RecordingObserver::on_task_steal(std::size_t task) {
  if (!keep(task)) return;
  record_event(TraceEventKind::TaskSteal, stage_,
               static_cast<std::uint32_t>(task));
}

}  // namespace metascope::telemetry
