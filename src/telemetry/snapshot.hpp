// Whole-telemetry snapshot: metrics registry + span tree (+ run
// metadata and, when the sampler ran, the time-resolved series) in one
// JSON document, and the reset that zeroes all of it. This is what
// `msc_run --metrics out.json` writes and what the bench sidecars
// embed.
//
// The document is versioned: "schema_version" bumps whenever the
// snapshot's shape changes incompatibly, so downstream tooling can
// evolve safely. History — 1: counters/dcounters/gauges/histograms/
// spans (PR 2-6, implicit); 2: adds schema_version itself, the "run"
// metadata object, and the optional "timeseries" section.
#pragma once

#include <string>

#include "common/json.hpp"

namespace metascope::telemetry {

/// Current snapshot schema version (see header comment for history).
constexpr int kSnapshotSchemaVersion = 2;

/// {"schema_version": 2, "counters": {...}, "dcounters": {...},
///  "gauges": {...}, "histograms": {...}, "spans": {...},
///  "run": {...} (when set_run_metadata was called),
///  "timeseries": {...} (when the sampler ran)}
Json snapshot_json();

/// Attaches run metadata (workload name, seed, rank count, worker
/// count, ...) to every subsequent snapshot as its "run" object. Pass
/// any JSON object; `msc_run` sets {"workload", "seed", "ranks",
/// "workers"}. A null value removes the section.
void set_run_metadata(Json meta);

/// Merges one key into the run metadata object (creating it when none
/// was set), preserving the other keys — for stages that learn facts
/// after the initial set_run_metadata call (e.g. the archive reader's
/// quarantine outcome).
void merge_run_metadata(const std::string& key, Json value);

/// The currently attached run metadata (null if none).
[[nodiscard]] Json run_metadata_json();

/// Writes the snapshot to `path` (pretty-printed), creating missing
/// parent directories; throws Error (path + errno detail) on
/// unwritable output.
void save_snapshot(const std::string& path);

/// Zeroes every metric, drops all spans, clears the sampler's series
/// and the run metadata, and retires the flight recorder's rings.
/// Registrations survive, so cached handles stay valid.
void reset();

}  // namespace metascope::telemetry
