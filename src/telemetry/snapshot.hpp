// Whole-telemetry snapshot: metrics registry + span tree in one JSON
// document, and the reset that zeroes both. This is what `msc_run
// --metrics out.json` writes and what the bench sidecars embed.
#pragma once

#include <string>

#include "common/json.hpp"

namespace metascope::telemetry {

/// {"counters": {...}, "gauges": {...}, "histograms": {...},
///  "spans": {...}}
Json snapshot_json();

/// Writes the snapshot to `path` (pretty-printed); throws Error on I/O
/// failure.
void save_snapshot(const std::string& path);

/// Zeroes every metric and drops all spans. Registrations survive, so
/// cached handles stay valid.
void reset();

}  // namespace metascope::telemetry
