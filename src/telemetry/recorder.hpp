// Flight recorder: an always-cheap execution-timeline trace of the
// analyzer itself.
//
// The telemetry registry (metrics.hpp) answers *how much* — counts and
// aggregate seconds per stage. It cannot answer *when* or *on which
// worker*: load imbalance, steal storms, and stragglers are invisible
// in aggregates. The recorder closes that gap the same way the source
// paper closes it for MPI codes — by keeping a timeline. Every thread
// that records owns a bounded ring buffer of timestamped events (task
// begin/end/suspend/resume/steal from the worker pools, span begin/end
// from ScopedSpan, progress marks, per-rank item begin/end from the
// parallelized stages); when a ring wraps, the oldest events are
// overwritten and counted as dropped, so memory stays bounded no matter
// how long the run is. The retained tail is exactly what a postmortem
// needs: "what was every worker doing just before the hang?"
//
// Hot-path discipline matches the registry: recording off (the default)
// costs one relaxed atomic load per call site; recording on costs a
// timestamp read (raw TSC on x86, steady_clock elsewhere — ticks are
// converted to nanoseconds only at snapshot time, calibrated over the
// whole recording window) plus four stores into thread-private memory —
// no locks, no shared cache lines, no division (ring capacities are
// rounded up to a power of two). -DMSC_NO_TELEMETRY compiles all of it
// out.
//
// Event names must be string literals (or otherwise outlive the
// recorder): rings store the pointer, not a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/parallel.hpp"

namespace metascope::telemetry {

enum class TraceEventKind : std::uint8_t {
  TaskBegin,    ///< a pool worker started (or resumed) driving a task
  TaskEnd,      ///< the step returned Done
  TaskSuspend,  ///< the step returned Suspend (yielded its worker)
  TaskResume,   ///< this thread marked a suspended task runnable
  TaskSteal,    ///< this thread took a task from another worker's deque
  SpanBegin,    ///< a ScopedSpan opened (pipeline phase)
  SpanEnd,      ///< a ScopedSpan closed
  Mark,         ///< instantaneous annotation (progress line, phase mark)
};

/// Name of `kind` as a short stable token ("task-begin", "steal", ...).
const char* trace_event_kind_name(TraceEventKind kind);

struct TraceEvent {
  std::int64_t ts_ns{0};     ///< steady-clock ns since the recorder epoch
  const char* name{nullptr};  ///< static string; never owned
  std::uint32_t id{0};       ///< task / rank / item id (0 when unused)
  TraceEventKind kind{TraceEventKind::Mark};
};

namespace detail {
/// Slow-path authority for whether recording is on. The hot path never
/// reads it: set_enabled() pushes the flag into every registered
/// thread's TlsHandle::state, so an enabled record() touches only its
/// own TLS line.
struct alignas(64) RecorderCtl {
  std::atomic<bool> enabled{false};
};
extern RecorderCtl g_ctl;

/// Per-thread cache of the hot ring fields, header-visible so
/// record_event() inlines the whole enabled path at the call site (no
/// out-of-line call, no singleton access). Everything the hot path
/// reads lives on this one cache line.
///
/// `state` is the three-way gate: 1 = enabled with a live ring (record
/// inline), -1 = registered but recording is off (return), 0 = this
/// thread must take the slow path (never recorded, or its ring was
/// retired by configure()/reset()). Only `state` and `slots` are ever
/// written by *other* threads (the recorder walks registered handles
/// under its mutex to flip them); `mask`, `seq`, and `seq_pub` are
/// owner-written only, so the benign stale-read race — a thread that
/// loads state==1 just as its ring is retired — lands its event in the
/// retired ring (kept allocated for exactly this reason) with a
/// matching mask, never in freed or mismatched memory.
struct alignas(64) TlsHandle {
  std::atomic<TraceEvent*> slots{nullptr};
  std::uint64_t mask{0};
  std::uint64_t seq{0};  ///< single writer; mirrored into *seq_pub
  std::atomic<std::uint64_t>* seq_pub{nullptr};
  std::atomic<std::int8_t> state{0};
};
#if defined(__GNUC__) && defined(__ELF__)
[[gnu::tls_model("initial-exec")]]
#endif
extern thread_local TlsHandle g_tls;

/// Out-of-line slow path for state==0: registers the calling thread
/// with the recorder, allocates its ring if recording is on, settles
/// `state`, and records the event if it can. Called once per thread
/// per ring retirement, not per event.
void record_slow(TraceEventKind kind, const char* name, std::uint32_t id);

/// Hot-path timestamp: raw TSC ticks on x86 (converted to ns at
/// snapshot time), steady_clock nanoseconds elsewhere.
inline std::int64_t now_ticks() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return static_cast<std::int64_t>(__builtin_ia32_rdtsc());
#else
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
#endif
}
}  // namespace detail

/// True when the recorder accepts events. Separate from
/// telemetry::enabled(): counters stay cheap enough to leave on always,
/// while the recorder is opt-in per run (`msc_run --trace-out`).
inline bool recorder_enabled() {
#if defined(MSC_NO_TELEMETRY)
  return false;
#else
  return detail::g_ctl.enabled.load(std::memory_order_relaxed);
#endif
}

class Recorder {
 public:
  static Recorder& instance();

  /// Opaque per-thread ring (defined in recorder.cpp; public only so
  /// the thread-local registration handle can hold a pointer to it).
  struct Ring;

  /// ~190 KiB per recording thread at 24 bytes/event — cheap enough to
  /// hold several full replay runs of per-task events.
  static constexpr std::size_t kDefaultRingCapacity = 8192;

  /// Sets the per-thread ring capacity (events), rounded up to the next
  /// power of two so the hot path indexes with a mask. Retires all
  /// existing rings (they stop receiving events and drop out of
  /// snapshots), so call before enabling. Tests shrink this to force
  /// wrap-around.
  void configure(std::size_t ring_capacity);

  void set_enabled(bool on);

  /// Appends one event to the calling thread's ring, registering the
  /// ring on first use. `name` must be a string literal (stored by
  /// pointer). No-op when the recorder is disabled.
  void record(TraceEventKind kind, const char* name, std::uint32_t id = 0);

  /// Labels the calling thread's ring for export ("replay worker 3",
  /// "pipeline"). Registers the ring if the thread has none yet.
  void set_thread_label(const std::string& label);

  /// One thread's retained timeline, oldest event first. `dropped`
  /// counts events overwritten by ring wrap-around — the exporter and
  /// the snapshot both surface it, so a truncated recording is never
  /// mistaken for a complete one.
  struct ThreadLog {
    std::string label;
    std::uint64_t dropped{0};
    std::vector<TraceEvent> events;
  };

  /// Copies every live ring, in thread-registration order. Exact when
  /// the recording threads have quiesced (after a pool join, after a
  /// deadlock unwound); concurrent writers cost at most a conservatively
  /// trimmed tail, never a torn read being reported as valid.
  [[nodiscard]] std::vector<ThreadLog> snapshot() const;

  /// Ring capacity snapshots are taken with (for drop accounting).
  [[nodiscard]] std::size_t ring_capacity() const;

  /// Retires every ring and restarts the epoch. Retired rings stay
  /// allocated until process exit (a live thread may still be mid-write
  /// in one); threads re-register on their next record.
  void reset();

 private:
  friend void detail::record_slow(TraceEventKind, const char*,
                                  std::uint32_t);
  friend struct TlsColdAccess;

  Recorder();
  Ring& local_ring();
  /// Registers the handle / allocates the ring as needed and settles
  /// TlsHandle::state for the calling thread (see record_slow).
  void slow_register();
  /// Drops a dying thread's handle from the walk list (its ring stays
  /// in snapshots). Called from the thread-local destructor.
  void unregister_thread(detail::TlsHandle* handle);

  mutable std::mutex m_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::unique_ptr<Ring>> retired_;
  std::vector<detail::TlsHandle*> members_;  ///< live threads, for state walks
  std::atomic<std::int64_t> epoch_ticks_{0};  ///< hot-clock at epoch
  std::atomic<std::int64_t> epoch_ns_{0};     ///< steady_clock at epoch
  std::size_t capacity_{kDefaultRingCapacity};
};

/// Hot-path shorthand: one relaxed TLS load when disabled; fully
/// inlined when enabled — a timestamp read, four stores into
/// thread-private memory, one release store, and a prefetch of the
/// next slot, all of whose control data sits on a single TLS cache
/// line (no shared lines at all on the hot path).
inline void record_event(TraceEventKind kind, const char* name,
                         std::uint32_t id = 0) {
#if !defined(MSC_NO_TELEMETRY)
  detail::TlsHandle& t = detail::g_tls;
  const std::int8_t st = t.state.load(std::memory_order_relaxed);
  if (st != 1) {
    if (st == 0) detail::record_slow(kind, name, id);
    return;
  }
  TraceEvent* const slots = t.slots.load(std::memory_order_relaxed);
  if (slots == nullptr) return;  // ring retired mid-call; drop one event
  TraceEvent& slot = slots[t.seq & t.mask];
  slot.ts_ns = detail::now_ticks();  // raw ticks until snapshot()
  slot.name = name;
  slot.id = id;
  slot.kind = kind;
  ++t.seq;
  t.seq_pub->store(t.seq, std::memory_order_release);
#if defined(__GNUC__)
  // The pipeline evicts the ring between events, so the next slot's
  // line would miss; prefetching it now hides that latency in the
  // (microseconds of) work before the next record.
  __builtin_prefetch(&slots[t.seq & t.mask], 1);
#endif
#else
  (void)kind;
  (void)name;
  (void)id;
#endif
}

/// Labels the calling thread's timeline track; no-op when disabled.
void set_thread_label(const std::string& label);

/// Human-readable dump of the last `last_n` events of every thread —
/// what each worker was doing just before a hang. Empty when the
/// recorder is disabled or has recorded nothing. The replay scheduler
/// prints this to stderr when the replay deadlocks
/// (ReplayOptions::postmortem_events).
[[nodiscard]] std::string postmortem_report(std::size_t last_n);

/// WorkerPool observer that streams the pool's task lifecycle into the
/// recorder: thread labels "<stage> worker <wid>", TaskBegin/TaskEnd/
/// TaskSuspend/TaskResume/TaskSteal events named after the stage with
/// the task index as id. Every parallelized pipeline stage passes one of
/// these to parallel_for; the replay scheduler's observer derives from
/// it to add the sampled registry hooks. Stateless beyond the stage
/// name, so one instance serves any number of runs.
class RecordingObserver : public WorkerPool::Observer {
 public:
  /// `stage` must be a string literal (event names are stored by
  /// pointer). `item_stride` > 1 decimates the per-item events: only
  /// every stride-th task id is recorded (begin and end gate on the
  /// same predicate, so recorded slices always pair). Large fan-outs
  /// — including the replay itself — pass fanout_stride(n) so recorder
  /// load stays bounded no matter the rank count.
  explicit RecordingObserver(const char* stage, std::uint32_t item_stride = 1)
      : stage_(stage), stride_(item_stride == 0 ? 1 : item_stride) {}

  /// Stride that caps a fan-out of `n` items at ~256 recorded slices —
  /// still dense enough to see imbalance, bounded no matter the rank
  /// count. Fan-outs of <= 256 items record every slice.
  static std::uint32_t fanout_stride(std::size_t n) {
    return n <= 256 ? 1 : static_cast<std::uint32_t>((n + 255) / 256);
  }

  [[nodiscard]] bool wants_events() const override {
    return recorder_enabled();
  }
  void on_worker_attach(std::size_t wid) override;
  void on_task_begin(std::size_t task) override;
  void on_task_end(std::size_t task, bool suspended) override;
  void on_task_resume(std::size_t task) override;
  void on_task_steal(std::size_t task) override;

  [[nodiscard]] const char* stage() const { return stage_; }
  [[nodiscard]] std::uint32_t item_stride() const { return stride_; }

 private:
  [[nodiscard]] bool keep(std::size_t task) const {
    return stride_ == 1 || task % stride_ == 0;
  }

  const char* stage_;
  std::uint32_t stride_;
};

}  // namespace metascope::telemetry
