// RAII phase timers recording wall time into a global span tree.
//
// A ScopedSpan marks one execution of a named pipeline stage. Spans nest
// via a thread-local stack: a span opened while another is live on the
// same thread becomes its child. Repeated executions of the same name
// under the same parent aggregate into one node (count + total seconds),
// so the tree stays bounded and snapshots are deterministic in shape.
//
// Spans mark *coarse* phases (simulate / trace / sync / prepare /
// replay / report) — open/close takes a mutex and is not meant for
// per-event use; per-event data belongs in counters and histograms.
#pragma once

#include <chrono>

#include "common/json.hpp"

namespace metascope::telemetry {

namespace detail {
struct SpanNode;
}

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  detail::SpanNode* node_{nullptr};  ///< null when recording is disabled
  detail::SpanNode* parent_{nullptr};  ///< thread's previous open span
  const char* name_{nullptr};  ///< for the flight-recorder end event
  std::chrono::steady_clock::time_point start_;
};

/// The aggregated span tree:
/// {"<name>": {"count": n, "total_s": t, "children": {...}}, ...}
Json span_tree_json();

/// Drops all recorded spans. Spans currently open finish into the
/// retired tree (kept alive, never reported) rather than the fresh one.
void reset_spans();

}  // namespace metascope::telemetry
