// Time-resolved metrics sampler: a background thread that snapshots the
// registry's counters, dcounters, and gauges every `interval_ms`,
// building the time-series the end-of-run aggregates cannot express —
// when the replay's suspension count exploded, how steal traffic ramps
// as a stage drains, whether progress stalls before a hang.
//
// The samples land in the telemetry snapshot as a "timeseries" section
// (snapshot.hpp), so `msc_run --metrics --sample-interval-ms=<n>`
// delivers both views in one JSON document. Sampling reads the same
// sharded cells a snapshot reads — it never contends with the hot-path
// writers. Sample count is capped (kMaxSamples) so a long run cannot
// grow the series without bound; truncation is flagged, never silent.
#pragma once

#include "common/json.hpp"

namespace metascope::telemetry {

/// Starts the sampler thread (no-op if already running or
/// `interval_ms` <= 0). Clears samples from any previous run.
void start_sampler(int interval_ms);

/// Stops and joins the sampler thread; the collected samples remain
/// available to sampler_json(). Safe to call when not running.
void stop_sampler();

[[nodiscard]] bool sampler_running();

/// {"interval_ms": n, "truncated": bool, "samples": [{"t_s": ...,
///  "counters": {...}, "dcounters": {...}, "gauges": {...}}, ...]}
/// or null if the sampler never ran (snapshot_json then omits the
/// "timeseries" section).
[[nodiscard]] Json sampler_json();

/// Drops all collected samples (telemetry::reset calls this).
void clear_samples();

}  // namespace metascope::telemetry
