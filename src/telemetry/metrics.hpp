// Pipeline-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, addressable by dotted name ("replay.steals").
//
// Hot-path discipline: the replay workers increment counters from every
// step, so an increment must never contend on a lock or even a shared
// cache line. Counters (and histogram buckets) are therefore *sharded*:
// each holds a small array of cache-line-padded atomic cells, a thread
// adds into its own cell with a relaxed fetch_add, and the cells are
// merged only when a snapshot is taken. Registration (name -> handle) is
// mutex-guarded but happens once per call site; call sites cache the
// returned reference (handles are stable for the process lifetime).
//
// Recording can be disabled two ways:
//  - at runtime via set_enabled(false): every record call becomes a
//    relaxed-load-and-return (what `bench_replay_scaling` compares
//    against to bound the telemetry overhead);
//  - at compile time via -DMSC_NO_TELEMETRY: record calls compile to
//    nothing.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace metascope {
struct ParallelForStats;  // common/parallel.hpp
}

namespace metascope::telemetry {

namespace detail {

/// Number of counter cells per metric. Sixteen cache lines bounds the
/// per-counter footprint at 1 KiB while keeping same-cell collisions
/// rare for any plausible worker count.
constexpr std::size_t kShards = 16;

extern std::atomic<bool> g_enabled;

/// Stable small id for the calling thread, assigned on first use.
std::size_t assign_shard();

inline std::size_t shard_index() {
  thread_local const std::size_t idx = assign_shard();
  return idx;
}

struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) DoubleCell {
  std::atomic<double> v{0.0};
};

}  // namespace detail

/// Global recording switch (default on). Disabling stops all counters,
/// gauges, histograms, and spans from recording; snapshots still work.
void set_enabled(bool on);

inline bool enabled() {
#if defined(MSC_NO_TELEMETRY)
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Monotonic event count. add() is the hot-path operation: a relaxed
/// atomic add into the calling thread's shard, no locks anywhere.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
#if !defined(MSC_NO_TELEMETRY)
    if (!enabled()) return;
    cells_[detail::shard_index() % detail::kShards].v.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  /// Merged value across shards (snapshot-time only).
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::Cell, detail::kShards> cells_;
};

/// Monotonic sum of double contributions (detected severity seconds,
/// accumulated durations). Same sharding discipline as Counter; the
/// hot-path add is a relaxed atomic<double>::fetch_add into the calling
/// thread's shard.
class DoubleCounter {
 public:
  void add(double v) noexcept {
#if !defined(MSC_NO_TELEMETRY)
    if (!enabled()) return;
    cells_[detail::shard_index() % detail::kShards].v.fetch_add(
        v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  /// Merged value across shards (snapshot-time only).
  [[nodiscard]] double value() const {
    double sum = 0.0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& c : cells_) c.v.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::DoubleCell, detail::kShards> cells_;
};

/// Last-write-wins instantaneous value (pool sizes, sim time, residuals).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if larger (lock-free running maximum).
  void max(double v) noexcept {
    if (!enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration
/// and never change, so observe() is a binary search plus one sharded
/// add. Tracks count, sum, and max alongside the buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;       ///< upper bounds, ascending
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count{0};
    double sum{0.0};
    double max{0.0};
  };
  [[nodiscard]] Snapshot snapshot() const;

  void reset();

 private:
  std::vector<double> bounds_;
  /// Row-major [shard][bucket]; bounds_.size() + 1 buckets per shard.
  /// Heap array because atomics are neither copyable nor movable.
  std::unique_ptr<detail::Cell[]> cells_;
  std::array<detail::DoubleCell, detail::kShards> sums_;
  std::atomic<double> max_{0.0};
};

/// The process-global registry. Metric handles returned by the lookup
/// functions are stable references; cache them at the call site.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  DoubleCounter& dcounter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first registration of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// {"counters": {...}, "dcounters": {...}, "gauges": {...},
  /// "histograms": {...}} with keys sorted by name — snapshots of
  /// identical state are identical.
  [[nodiscard]] Json to_json() const;

  /// Zeroes every registered metric (registrations survive). Tests and
  /// benches isolate runs with this.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<DoubleCounter>> dcounters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands for Registry::instance().
Counter& counter(const std::string& name);
DoubleCounter& dcounter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name, std::vector<double> bounds);

/// Records one parallelized pipeline stage's fan-out under a uniform
/// naming scheme: "pipeline.<stage>.workers" (gauge, pool size used),
/// "pipeline.<stage>.items" (counter, items processed), and
/// "pipeline.<stage>.worker_items" (histogram, items per worker — the
/// stage's load-balance distribution). Every stage that fans out on
/// common/parallel reports through this, so snapshots describe the
/// whole pipeline's parallelism consistently.
void record_stage_parallelism(const std::string& stage,
                              const ParallelForStats& stats);

}  // namespace metascope::telemetry
