#include "telemetry/snapshot.hpp"

#include <mutex>
#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/span.hpp"

namespace metascope::telemetry {

namespace {

std::mutex g_run_m;
Json& run_metadata_slot() {
  static Json* meta = new Json;
  return *meta;
}

}  // namespace

void set_run_metadata(Json meta) {
  std::lock_guard<std::mutex> lock(g_run_m);
  run_metadata_slot() = std::move(meta);
}

void merge_run_metadata(const std::string& key, Json value) {
  std::lock_guard<std::mutex> lock(g_run_m);
  Json& meta = run_metadata_slot();
  if (!meta.is_object()) meta = Json{Json::Object{}};
  meta.set(key, std::move(value));
}

Json run_metadata_json() {
  std::lock_guard<std::mutex> lock(g_run_m);
  return run_metadata_slot();
}

Json snapshot_json() {
  Json out = Registry::instance().to_json();
  out.set("schema_version", kSnapshotSchemaVersion);
  out.set("spans", span_tree_json());
  Json run = run_metadata_json();
  if (!run.is_null()) out.set("run", std::move(run));
  Json series = sampler_json();
  if (!series.is_null()) out.set("timeseries", std::move(series));
  return out;
}

void save_snapshot(const std::string& path) {
  save_json_file(path, snapshot_json());
}

void reset() {
  Registry::instance().reset();
  reset_spans();
  clear_samples();
  set_run_metadata(Json());
  Recorder::instance().reset();
}

}  // namespace metascope::telemetry
