#include "telemetry/snapshot.hpp"

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace metascope::telemetry {

Json snapshot_json() {
  Json out = Registry::instance().to_json();
  out.set("spans", span_tree_json());
  return out;
}

void save_snapshot(const std::string& path) {
  save_json_file(path, snapshot_json());
}

void reset() {
  Registry::instance().reset();
  reset_spans();
}

}  // namespace metascope::telemetry
