// Chrome Trace Event export of the flight recorder (recorder.hpp).
//
// Produces the JSON object format every timeline viewer understands —
// load the file in Perfetto (ui.perfetto.dev) or chrome://tracing and
// the analyzer's own run appears as one track per recording thread:
// the main thread's track carries the pipeline-phase spans (ScopedSpan
// begin/end), each worker track carries its task slices with suspend /
// resume / steal instants in between.
//
// Structural guarantees (validated by tests/test_telemetry_trace.cpp
// and tools/validate_chrome_trace.py in CI):
//  - every "B" has a matching "E" on the same tid (ring wrap-around can
//    orphan begins or ends; orphan ends are dropped, unclosed begins
//    are closed at the thread's last timestamp);
//  - timestamps are non-decreasing per tid (each ring is written by one
//    thread off one steady clock);
//  - drop accounting is explicit: otherData.dropped_events maps each
//    track to the number of events its ring overwrote, so a truncated
//    timeline is never mistaken for a complete one.
#pragma once

#include <string>

#include "common/json.hpp"

namespace metascope::telemetry {

/// {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}
/// built from the recorder's current contents. Deterministic given the
/// same recording (tracks in thread-registration order).
[[nodiscard]] Json chrome_trace_json();

/// Writes chrome_trace_json() to `path`, creating missing parent
/// directories; throws Error (path + errno detail) on unwritable
/// output. This is what `msc_run --trace-out` calls.
void save_chrome_trace(const std::string& path);

}  // namespace metascope::telemetry
