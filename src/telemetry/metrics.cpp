#include "telemetry/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace metascope::telemetry {

namespace detail {

std::atomic<bool> g_enabled{true};

std::size_t assign_shard() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// --- Histogram ---------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MSC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
            "histogram bucket bounds must be ascending");
  cells_ = std::make_unique<detail::Cell[]>(detail::kShards *
                                            (bounds_.size() + 1));
}

void Histogram::observe(double v) noexcept {
#if !defined(MSC_NO_TELEMETRY)
  if (!enabled()) return;
  // lower_bound, so bucket b counts values <= bounds[b] — matching the
  // "le" labels the snapshot JSON reports.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t shard = detail::shard_index() % detail::kShards;
  cells_[shard * (bounds_.size() + 1) + bucket].v.fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].v.fetch_add(v, std::memory_order_relaxed);
  double cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.assign(bounds_.size() + 1, 0);
  for (std::size_t shard = 0; shard < detail::kShards; ++shard) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b)
      s.counts[b] += cells_[shard * (bounds_.size() + 1) + b].v.load(
          std::memory_order_relaxed);
    s.sum += sums_[shard].v.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : s.counts) s.count += c;
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  const std::size_t n = detail::kShards * (bounds_.size() + 1);
  for (std::size_t i = 0; i < n; ++i)
    cells_[i].v.store(0, std::memory_order_relaxed);
  for (auto& s : sums_) s.v.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// --- Registry ----------------------------------------------------------

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

DoubleCounter& Registry::dcounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = dcounters_[name];
  if (!slot) slot = std::make_unique<DoubleCounter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Json Registry::to_json() const {
  std::lock_guard<std::mutex> lock(m_);
  Json counters{Json::Object{}};
  for (const auto& [name, c] : counters_)
    counters.set(name, Json(c->value()));
  Json dcounters{Json::Object{}};
  for (const auto& [name, c] : dcounters_)
    dcounters.set(name, Json(c->value()));
  Json gauges{Json::Object{}};
  for (const auto& [name, g] : gauges_) gauges.set(name, Json(g->value()));
  Json histograms{Json::Object{}};
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    Json buckets{Json::Array{}};
    for (std::size_t b = 0; b < s.counts.size(); ++b) {
      Json bucket{Json::Object{}};
      // The last bucket has no upper bound (overflow).
      if (b < s.bounds.size()) bucket.set("le", Json(s.bounds[b]));
      bucket.set("count", Json(s.counts[b]));
      buckets.push_back(std::move(bucket));
    }
    Json hj{Json::Object{}};
    hj.set("count", Json(s.count));
    hj.set("sum", Json(s.sum));
    hj.set("max", Json(s.max));
    hj.set("buckets", std::move(buckets));
    histograms.set(name, std::move(hj));
  }
  Json out{Json::Object{}};
  out.set("counters", std::move(counters));
  out.set("dcounters", std::move(dcounters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(m_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, c] : dcounters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}

DoubleCounter& dcounter(const std::string& name) {
  return Registry::instance().dcounter(name);
}

Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(const std::string& name, std::vector<double> bounds) {
  return Registry::instance().histogram(name, std::move(bounds));
}

void record_stage_parallelism(const std::string& stage,
                              const ParallelForStats& stats) {
  if (!enabled()) return;
  const std::string prefix = "pipeline." + stage;
  gauge(prefix + ".workers").set(static_cast<double>(stats.workers));
  counter(prefix + ".items").add(stats.items);
  Histogram& h = histogram(
      prefix + ".worker_items",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0});
  for (const std::size_t n : stats.items_per_worker)
    h.observe(static_cast<double>(n));
}

}  // namespace metascope::telemetry
