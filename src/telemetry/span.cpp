#include "telemetry/span.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"

namespace metascope::telemetry {

namespace detail {

struct SpanNode {
  std::uint64_t count{0};
  double total_s{0.0};
  std::map<std::string, std::unique_ptr<SpanNode>> children;
};

namespace {

std::mutex g_m;
// Owned behind a pointer so reset_spans() can swap in a fresh tree while
// open spans still hold (and harmlessly finish into) old nodes — the old
// tree stays alive until process exit rather than dangling.
std::vector<std::unique_ptr<SpanNode>> g_retired;
SpanNode* g_root = new SpanNode;

// Innermost open span of this thread; null = top level.
thread_local SpanNode* tls_current = nullptr;

Json node_children_json(const SpanNode& node) {
  Json out{Json::Object{}};
  for (const auto& [name, child] : node.children) {
    Json cj{Json::Object{}};
    cj.set("count", Json(child->count));
    cj.set("total_s", Json(child->total_s));
    if (!child->children.empty())
      cj.set("children", node_children_json(*child));
    out.set(name, std::move(cj));
  }
  return out;
}

}  // namespace
}  // namespace detail

ScopedSpan::ScopedSpan(const char* name) {
  if (!enabled()) return;
  name_ = name;
  // Spans double as the flight recorder's pipeline-phase track: the
  // begin/end land on the opening thread's ring (span names are string
  // literals, which is what the recorder requires).
  record_event(TraceEventKind::SpanBegin, name);
  std::lock_guard<std::mutex> lock(detail::g_m);
  parent_ = detail::tls_current;
  detail::SpanNode* attach = parent_ ? parent_ : detail::g_root;
  auto& slot = attach->children[name];
  if (!slot) slot = std::make_unique<detail::SpanNode>();
  node_ = slot.get();
  detail::tls_current = node_;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!node_) return;
  record_event(TraceEventKind::SpanEnd, name_);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  std::lock_guard<std::mutex> lock(detail::g_m);
  node_->count += 1;
  node_->total_s += elapsed;
  detail::tls_current = parent_;
}

Json span_tree_json() {
  std::lock_guard<std::mutex> lock(detail::g_m);
  return detail::node_children_json(*detail::g_root);
}

void reset_spans() {
  std::lock_guard<std::mutex> lock(detail::g_m);
  detail::g_retired.emplace_back(detail::g_root);
  detail::g_root = new detail::SpanNode;
}

}  // namespace metascope::telemetry
