#include "telemetry/progress.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "telemetry/recorder.hpp"

namespace metascope::telemetry {

namespace {

std::atomic<bool> g_progress{false};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::int64_t kMinGapNs = 100'000'000;  // 100 ms

std::atomic<std::int64_t> g_last_print{0};

}  // namespace

void set_progress_enabled(bool on) {
  g_progress.store(on, std::memory_order_relaxed);
}

bool progress_enabled() {
  return g_progress.load(std::memory_order_relaxed);
}

void progress(const char* stage, double fraction) {
  if (!progress_enabled()) return;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const bool boundary = fraction == 0.0 || fraction == 1.0;
  const std::int64_t now = now_ns();
  std::int64_t last = g_last_print.load(std::memory_order_relaxed);
  if (!boundary && now - last < kMinGapNs) return;
  // One printer wins each interval; losers drop their update (it is
  // only a progress line).
  if (!g_last_print.compare_exchange_strong(last, now,
                                            std::memory_order_relaxed) &&
      !boundary)
    return;
  // Accepted progress lines double as phase marks on the flight
  // recorder's timeline (id = percent); stage names are literals at
  // every call site, as the recorder requires.
  record_event(TraceEventKind::Mark, stage,
               static_cast<std::uint32_t>(fraction * 100.0));
  std::fprintf(stderr, "[msc %3.0f%%] %s\n", fraction * 100.0, stage);
}

}  // namespace metascope::telemetry
