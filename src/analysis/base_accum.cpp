#include "analysis/base_accum.hpp"

#include "common/error.hpp"

namespace metascope::analysis {

std::vector<RegionCategory> classify_cnodes(
    const report::CallTree& calls, const NameTable<RegionId>& regions) {
  std::vector<RegionCategory> out(calls.size());
  for (std::size_t c = 0; c < calls.size(); ++c) {
    const auto& node = calls.node(CallPathId{static_cast<int>(c)});
    out[c] = classify_region(regions.name(node.region));
  }
  return out;
}

MetricId category_metric(const PatternSet& ps, RegionCategory cat) {
  switch (cat) {
    case RegionCategory::User: return ps.time;
    case RegionCategory::PointToPoint: return ps.p2p;
    case RegionCategory::Collective: return ps.collective;
    case RegionCategory::Synchronization: return ps.synchronization;
  }
  MSC_ASSERT(false, "unknown region category");
}

PatternSet init_cube(report::Cube& cube, const tracing::TraceCollection& tc,
                     const PreparedTrace& prepared) {
  const PatternSet ps = PatternSet::install(cube.metrics);
  cube.calls = prepared.calls;
  cube.regions = tc.defs.regions;
  cube.system = tc.defs;

  const auto cats = classify_cnodes(cube.calls, cube.regions);
  for (Rank r = 0; r < tc.num_ranks(); ++r) {
    for (const auto& et :
         prepared.excl_time[static_cast<std::size_t>(r)]) {
      const MetricId m = category_metric(
          ps, cats[static_cast<std::size_t>(et.cnode.get())]);
      cube.add(m, et.cnode, r, et.seconds);
    }
  }
  return ps;
}

}  // namespace metascope::analysis
