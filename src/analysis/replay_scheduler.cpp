#include "analysis/replay_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "telemetry/progress.hpp"

namespace metascope::analysis {

namespace {

// Per-task lifecycle. Parked tasks are owned by the resource they wait
// on; the Running<->Notified leg absorbs a resume() that lands while the
// suspending step is still unwinding on its worker.
constexpr int kRunning = 0;
constexpr int kParked = 1;
constexpr int kNotified = 2;

// Worker index of the current thread, so tasks resumed from inside a
// step land on the resuming worker's own deque (cheap, cache-friendly);
// other workers steal them if the owner stays busy.
thread_local std::size_t tls_worker = 0;

// The *expensive* telemetry observations (clock reads, histogram
// updates) are sampled one-in-16 per thread; at thousands of task steps
// the distributions stay representative while the telemetry-on hot path
// holds the <=5% overhead budget bench_replay_scaling enforces.
// Counters are never sampled — they stay exact.
constexpr std::size_t kSampleStride = 16;
thread_local std::size_t tls_sample = 0;

inline bool sample_tick() { return tls_sample++ % kSampleStride == 0; }

// Scheduler counters batch into plain per-thread tallies and flush into
// the registry once, when the worker exits — the hot path pays a
// non-atomic increment instead of a registry add per event. Exactness
// is preserved: workers flush before run() joins them, so the post-join
// delta snapshot sees every increment.
struct LocalTally {
  std::uint64_t suspensions{0};
  std::uint64_t steals{0};
  std::uint64_t requeues{0};
  std::uint64_t tasks{0};
};
thread_local LocalTally tls_tally;

}  // namespace

ReplayScheduler::ReplayScheduler(std::size_t num_tasks,
                                 std::size_t max_workers)
    : num_tasks_(num_tasks),
      num_workers_(std::min(
          num_tasks == 0 ? std::size_t{1} : num_tasks,
          max_workers != 0
              ? max_workers
              : std::max<std::size_t>(
                    1, std::thread::hardware_concurrency()))),
      queues_(num_workers_),
      state_(new std::atomic<int>[num_tasks == 0 ? 1 : num_tasks]),
      c_suspensions_(telemetry::counter("replay.suspensions")),
      c_steals_(telemetry::counter("replay.steals")),
      c_requeues_(telemetry::counter("replay.requeues")),
      c_tasks_(telemetry::counter("replay.tasks")),
      h_task_runtime_us_(telemetry::histogram(
          "replay.task_runtime_us",
          {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6})),
      h_queue_depth_(telemetry::histogram(
          "replay.queue_depth",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0})) {
  for (std::size_t t = 0; t < num_tasks_; ++t)
    state_[t].store(kRunning, std::memory_order_relaxed);
  stats_.workers = num_workers_;
  stats_.tasks = num_tasks_;
}

void ReplayScheduler::push(std::size_t wid, std::size_t task) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(queues_[wid].m);
    queues_[wid].dq.push_back(task);
    depth = queues_[wid].dq.size();
  }
  if (telemetry::enabled() && sample_tick())
    h_queue_depth_.observe(static_cast<double>(depth));
  idle_cv_.notify_one();
}

bool ReplayScheduler::pop_local(std::size_t wid, std::size_t& task) {
  std::lock_guard<std::mutex> lock(queues_[wid].m);
  if (queues_[wid].dq.empty()) return false;
  task = queues_[wid].dq.front();
  queues_[wid].dq.pop_front();
  return true;
}

bool ReplayScheduler::steal(std::size_t wid, std::size_t& task) {
  for (std::size_t k = 1; k < num_workers_; ++k) {
    WorkerQueue& victim = queues_[(wid + k) % num_workers_];
    std::lock_guard<std::mutex> lock(victim.m);
    if (victim.dq.empty()) continue;
    // Steal from the back: the front is the victim's warmest work.
    task = victim.dq.back();
    victim.dq.pop_back();
    tls_tally.steals += 1;
    return true;
  }
  return false;
}

void ReplayScheduler::fail(std::exception_ptr err) {
  {
    std::lock_guard<std::mutex> lock(err_m_);
    if (!first_error_) first_error_ = err;
  }
  stop_.store(true);
  idle_cv_.notify_all();
}

void ReplayScheduler::resume(std::size_t task) {
  for (;;) {
    int s = state_[task].load();
    if (s == kParked) {
      if (state_[task].compare_exchange_strong(s, kRunning)) {
        inflight_.fetch_add(1);
        tls_tally.requeues += 1;
        push(tls_worker, task);
        return;
      }
    } else if (s == kRunning) {
      // The task is still unwinding from the step that registered the
      // wait; leave a note for its worker to requeue it.
      if (state_[task].compare_exchange_strong(s, kNotified)) return;
    } else {
      return;  // already notified
    }
  }
}

void ReplayScheduler::run_task(std::size_t task, const StepFn& step) {
  // Step-runtime histogram: two clock reads per sampled step (a step
  // runs a task until it finishes or suspends, so this is coarse),
  // skipped entirely when telemetry is off.
  const bool timed = telemetry::enabled() && sample_tick();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  StepResult r;
  try {
    r = step(task);
  } catch (...) {
    fail(std::current_exception());
    return;
  }
  if (timed) {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    h_task_runtime_us_.observe(us);
  }
  if (r == StepResult::Done) {
    tls_tally.tasks += 1;
    const std::size_t done = done_.fetch_add(1) + 1;
    inflight_.fetch_sub(1);
    if (telemetry::progress_enabled())
      telemetry::progress("replay", static_cast<double>(done) /
                                        static_cast<double>(num_tasks_));
    if (done_.load() == num_tasks_) idle_cv_.notify_all();
    return;
  }
  tls_tally.suspensions += 1;
  int expected = kRunning;
  if (state_[task].compare_exchange_strong(expected, kParked)) {
    inflight_.fetch_sub(1);
  } else {
    // resume() beat us to it (state is Notified): the wait is already
    // satisfied, so the task goes straight back to our deque.
    state_[task].store(kRunning);
    tls_tally.requeues += 1;
    push(tls_worker, task);
  }
}

void ReplayScheduler::flush_tally() {
  LocalTally& t = tls_tally;
  if (t.suspensions) c_suspensions_.add(t.suspensions);
  if (t.steals) c_steals_.add(t.steals);
  if (t.requeues) c_requeues_.add(t.requeues);
  if (t.tasks) c_tasks_.add(t.tasks);
  t = LocalTally{};
}

void ReplayScheduler::worker_loop(std::size_t wid, const StepFn& step) {
  tls_worker = wid;
  // Flush the thread's tally on every exit path of the loop.
  struct Flusher {
    ReplayScheduler* s;
    ~Flusher() { s->flush_tally(); }
  } flusher{this};
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    std::size_t task;
    if (pop_local(wid, task) || steal(wid, task)) {
      run_task(task, step);
      continue;
    }
    if (done_.load() == num_tasks_) return;
    if (inflight_.load() == 0) {
      // Re-check completion: the final Done increments done_ before
      // inflight_, so a zero inflight_ with done_ short of the total
      // means the remaining tasks are parked with no runner left to
      // ever wake them.
      if (done_.load() == num_tasks_) return;
      deadlock_.store(true);
      stop_.store(true);
      idle_cv_.notify_all();
      return;
    }
    // Another worker holds runnable work (or a resume is in flight);
    // doze until pushed work notifies us. The timeout makes the loop
    // robust against the notify racing our wait.
    std::unique_lock<std::mutex> lock(idle_m_);
    idle_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
}

void ReplayScheduler::run(const StepFn& step) {
  if (num_tasks_ == 0) return;
  telemetry::gauge("replay.workers").set(static_cast<double>(num_workers_));
  // Per-run stats are deltas against the process-global registry
  // counters. (Two schedulers running concurrently in one process would
  // see each other's increments; nothing in the codebase does that.)
  const std::uint64_t susp0 = c_suspensions_.value();
  const std::uint64_t steals0 = c_steals_.value();
  const std::uint64_t req0 = c_requeues_.value();
  inflight_.store(num_tasks_);
  for (std::size_t t = 0; t < num_tasks_; ++t) push(t % num_workers_, t);

  std::vector<std::thread> pool;
  pool.reserve(num_workers_);
  for (std::size_t w = 0; w < num_workers_; ++w)
    pool.emplace_back([this, w, &step] { worker_loop(w, step); });
  for (auto& t : pool) t.join();

  stats_.suspensions = c_suspensions_.value() - susp0;
  stats_.steals = c_steals_.value() - steals0;
  stats_.requeues = c_requeues_.value() - req0;

  if (first_error_) std::rethrow_exception(first_error_);
  if (deadlock_.load()) {
    const std::size_t stuck = num_tasks_ - done_.load();
    throw Error("parallel replay deadlocked: " + std::to_string(stuck) +
                " of " + std::to_string(num_tasks_) +
                " rank tasks suspended with no runnable peer (unmatched "
                "receive or truncated trace?)");
  }
}

}  // namespace metascope::analysis
