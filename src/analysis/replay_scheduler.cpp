#include "analysis/replay_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace metascope::analysis {

namespace {

// Per-task lifecycle. Parked tasks are owned by the resource they wait
// on; the Running<->Notified leg absorbs a resume() that lands while the
// suspending step is still unwinding on its worker.
constexpr int kRunning = 0;
constexpr int kParked = 1;
constexpr int kNotified = 2;

// Worker index of the current thread, so tasks resumed from inside a
// step land on the resuming worker's own deque (cheap, cache-friendly);
// other workers steal them if the owner stays busy.
thread_local std::size_t tls_worker = 0;

}  // namespace

ReplayScheduler::ReplayScheduler(std::size_t num_tasks,
                                 std::size_t max_workers)
    : num_tasks_(num_tasks),
      num_workers_(std::min(
          num_tasks == 0 ? std::size_t{1} : num_tasks,
          max_workers != 0
              ? max_workers
              : std::max<std::size_t>(
                    1, std::thread::hardware_concurrency()))),
      queues_(num_workers_),
      state_(new std::atomic<int>[num_tasks == 0 ? 1 : num_tasks]) {
  for (std::size_t t = 0; t < num_tasks_; ++t)
    state_[t].store(kRunning, std::memory_order_relaxed);
  stats_.workers = num_workers_;
  stats_.tasks = num_tasks_;
}

void ReplayScheduler::push(std::size_t wid, std::size_t task) {
  {
    std::lock_guard<std::mutex> lock(queues_[wid].m);
    queues_[wid].dq.push_back(task);
  }
  idle_cv_.notify_one();
}

bool ReplayScheduler::pop_local(std::size_t wid, std::size_t& task) {
  std::lock_guard<std::mutex> lock(queues_[wid].m);
  if (queues_[wid].dq.empty()) return false;
  task = queues_[wid].dq.front();
  queues_[wid].dq.pop_front();
  return true;
}

bool ReplayScheduler::steal(std::size_t wid, std::size_t& task) {
  for (std::size_t k = 1; k < num_workers_; ++k) {
    WorkerQueue& victim = queues_[(wid + k) % num_workers_];
    std::lock_guard<std::mutex> lock(victim.m);
    if (victim.dq.empty()) continue;
    // Steal from the back: the front is the victim's warmest work.
    task = victim.dq.back();
    victim.dq.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ReplayScheduler::fail(std::exception_ptr err) {
  {
    std::lock_guard<std::mutex> lock(err_m_);
    if (!first_error_) first_error_ = err;
  }
  stop_.store(true);
  idle_cv_.notify_all();
}

void ReplayScheduler::resume(std::size_t task) {
  for (;;) {
    int s = state_[task].load();
    if (s == kParked) {
      if (state_[task].compare_exchange_strong(s, kRunning)) {
        inflight_.fetch_add(1);
        requeues_.fetch_add(1, std::memory_order_relaxed);
        push(tls_worker, task);
        return;
      }
    } else if (s == kRunning) {
      // The task is still unwinding from the step that registered the
      // wait; leave a note for its worker to requeue it.
      if (state_[task].compare_exchange_strong(s, kNotified)) return;
    } else {
      return;  // already notified
    }
  }
}

void ReplayScheduler::run_task(std::size_t task, const StepFn& step) {
  StepResult r;
  try {
    r = step(task);
  } catch (...) {
    fail(std::current_exception());
    return;
  }
  if (r == StepResult::Done) {
    done_.fetch_add(1);
    inflight_.fetch_sub(1);
    if (done_.load() == num_tasks_) idle_cv_.notify_all();
    return;
  }
  suspensions_.fetch_add(1, std::memory_order_relaxed);
  int expected = kRunning;
  if (state_[task].compare_exchange_strong(expected, kParked)) {
    inflight_.fetch_sub(1);
  } else {
    // resume() beat us to it (state is Notified): the wait is already
    // satisfied, so the task goes straight back to our deque.
    state_[task].store(kRunning);
    requeues_.fetch_add(1, std::memory_order_relaxed);
    push(tls_worker, task);
  }
}

void ReplayScheduler::worker_loop(std::size_t wid, const StepFn& step) {
  tls_worker = wid;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    std::size_t task;
    if (pop_local(wid, task) || steal(wid, task)) {
      run_task(task, step);
      continue;
    }
    if (done_.load() == num_tasks_) return;
    if (inflight_.load() == 0) {
      // Re-check completion: the final Done increments done_ before
      // inflight_, so a zero inflight_ with done_ short of the total
      // means the remaining tasks are parked with no runner left to
      // ever wake them.
      if (done_.load() == num_tasks_) return;
      deadlock_.store(true);
      stop_.store(true);
      idle_cv_.notify_all();
      return;
    }
    // Another worker holds runnable work (or a resume is in flight);
    // doze until pushed work notifies us. The timeout makes the loop
    // robust against the notify racing our wait.
    std::unique_lock<std::mutex> lock(idle_m_);
    idle_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
}

void ReplayScheduler::run(const StepFn& step) {
  if (num_tasks_ == 0) return;
  inflight_.store(num_tasks_);
  for (std::size_t t = 0; t < num_tasks_; ++t) push(t % num_workers_, t);

  std::vector<std::thread> pool;
  pool.reserve(num_workers_);
  for (std::size_t w = 0; w < num_workers_; ++w)
    pool.emplace_back([this, w, &step] { worker_loop(w, step); });
  for (auto& t : pool) t.join();

  stats_.suspensions = suspensions_.load();
  stats_.steals = steals_.load();
  stats_.requeues = requeues_.load();

  if (first_error_) std::rethrow_exception(first_error_);
  if (deadlock_.load()) {
    const std::size_t stuck = num_tasks_ - done_.load();
    throw Error("parallel replay deadlocked: " + std::to_string(stuck) +
                " of " + std::to_string(num_tasks_) +
                " rank tasks suspended with no runnable peer (unmatched "
                "receive or truncated trace?)");
  }
}

}  // namespace metascope::analysis
