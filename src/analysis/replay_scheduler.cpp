#include "analysis/replay_scheduler.hpp"

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "telemetry/progress.hpp"

namespace metascope::analysis {

ReplayScheduler::TelemetryObserver::TelemetryObserver(
    std::uint32_t item_stride)
    : telemetry::RecordingObserver("replay", item_stride),
      h_task_runtime_us_(telemetry::histogram(
          "replay.task_runtime_us",
          {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6})),
      h_queue_depth_(telemetry::histogram(
          "replay.queue_depth",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0})) {}

bool ReplayScheduler::TelemetryObserver::wants_samples() const {
  return telemetry::enabled();
}

void ReplayScheduler::TelemetryObserver::on_task_done(std::size_t done,
                                                      std::size_t total) {
  if (telemetry::progress_enabled())
    telemetry::progress("replay", static_cast<double>(done) /
                                      static_cast<double>(total));
}

void ReplayScheduler::TelemetryObserver::on_task_runtime_us(double us) {
  h_task_runtime_us_.observe(us);
}

void ReplayScheduler::TelemetryObserver::on_queue_depth(double depth) {
  h_queue_depth_.observe(depth);
}

ReplayScheduler::ReplayScheduler(std::size_t num_tasks,
                                 std::size_t max_workers,
                                 std::size_t postmortem_events)
    : pool_(num_tasks, max_workers),
      obs_(telemetry::RecordingObserver::fanout_stride(num_tasks)),
      postmortem_events_(postmortem_events) {
  pool_.set_observer(&obs_);
  stats_.workers = pool_.stats().workers;
  stats_.tasks = pool_.stats().tasks;
}

void ReplayScheduler::run(const StepFn& step) {
  telemetry::gauge("replay.workers")
      .set(static_cast<double>(pool_.stats().workers));
  try {
    pool_.run(step);
  } catch (const DeadlockError& dl) {
    // Snapshot what did happen before the stall, then rephrase the
    // generic pool deadlock in replay terms. If the flight recorder was
    // on, dump what every worker was doing just before the hang first —
    // the workers have joined by now, so the rings are quiescent.
    if (postmortem_events_ > 0) {
      const std::string pm = telemetry::postmortem_report(postmortem_events_);
      if (!pm.empty()) std::fprintf(stderr, "%s", pm.c_str());
    }
    const PoolStats& ps = pool_.stats();
    stats_.suspensions = ps.suspensions;
    stats_.steals = ps.steals;
    stats_.requeues = ps.requeues;
    throw Error("parallel replay deadlocked: " +
                std::to_string(dl.stuck_tasks()) + " of " +
                std::to_string(dl.total_tasks()) +
                " rank tasks suspended with no runnable peer (unmatched "
                "receive or truncated trace?)");
  }
  const PoolStats& ps = pool_.stats();
  stats_.suspensions = ps.suspensions;
  stats_.steals = ps.steals;
  stats_.requeues = ps.requeues;
  // Registry counters stay cumulative: add this run's exact deltas.
  telemetry::counter("replay.suspensions").add(ps.suspensions);
  telemetry::counter("replay.steals").add(ps.steals);
  telemetry::counter("replay.requeues").add(ps.requeues);
  telemetry::counter("replay.tasks").add(ps.tasks);
}

}  // namespace metascope::analysis
