#include "analysis/patterns.hpp"

namespace metascope::analysis {

PatternSet PatternSet::install(report::MetricTree& tree) {
  PatternSet p;
  p.time = tree.add("Time", "Total execution time");
  p.mpi = tree.add("MPI", "Time spent in MPI calls", p.time);
  p.communication =
      tree.add("Communication", "MPI communication", p.mpi);
  p.p2p = tree.add("Point-to-point", "Point-to-point communication",
                   p.communication);
  p.late_sender = tree.add(
      "Late Sender",
      "Blocking receive posted earlier than the matching send", p.p2p);
  p.grid_late_sender =
      tree.add("Grid Late Sender",
               "Late Sender with sender and receiver on different metahosts",
               p.late_sender);
  p.late_receiver = tree.add(
      "Late Receiver",
      "Sender blocked in a synchronous send until the receive was posted",
      p.p2p);
  p.grid_late_receiver = tree.add(
      "Grid Late Receiver",
      "Late Receiver with sender and receiver on different metahosts",
      p.late_receiver);
  p.collective =
      tree.add("Collective", "Collective communication", p.communication);
  p.early_reduce = tree.add(
      "Early Reduce",
      "Root of an N-to-1 operation waiting for the last contribution",
      p.collective);
  p.grid_early_reduce =
      tree.add("Grid Early Reduce",
               "Early Reduce on a communicator spanning metahosts",
               p.early_reduce);
  p.late_broadcast = tree.add(
      "Late Broadcast",
      "Non-root entered a 1-to-N operation before the root", p.collective);
  p.grid_late_broadcast =
      tree.add("Grid Late Broadcast",
               "Late Broadcast on a communicator spanning metahosts",
               p.late_broadcast);
  p.wait_nxn = tree.add(
      "Wait at N x N",
      "Time in an N-to-N operation until all participants reached it",
      p.collective);
  p.grid_wait_nxn =
      tree.add("Grid Wait at N x N",
               "Wait at N x N on a communicator spanning metahosts",
               p.wait_nxn);
  p.synchronization =
      tree.add("Synchronization", "MPI synchronization", p.mpi);
  p.wait_barrier =
      tree.add("Wait at Barrier",
               "Time in a barrier until all participants reached it",
               p.synchronization);
  p.grid_wait_barrier =
      tree.add("Grid Wait at Barrier",
               "Wait at Barrier on a communicator spanning metahosts",
               p.wait_barrier);
  return p;
}

RegionCategory classify_region(const std::string& name) {
  if (name.rfind("MPI_", 0) != 0) return RegionCategory::User;
  if (name == "MPI_Barrier") return RegionCategory::Synchronization;
  if (name == "MPI_Send" || name == "MPI_Recv" || name == "MPI_Isend" ||
      name == "MPI_Irecv" || name == "MPI_Wait" || name == "MPI_Sendrecv")
    return RegionCategory::PointToPoint;
  return RegionCategory::Collective;
}

CollectiveKind collective_kind(const std::string& name) {
  if (name == "MPI_Allreduce" || name == "MPI_Allgather" ||
      name == "MPI_Alltoall")
    return CollectiveKind::NxN;
  if (name == "MPI_Barrier") return CollectiveKind::Barrier;
  if (name == "MPI_Bcast" || name == "MPI_Scatter")
    return CollectiveKind::OneToN;
  if (name == "MPI_Reduce" || name == "MPI_Gather")
    return CollectiveKind::NToOne;
  return CollectiveKind::NotACollective;
}

}  // namespace metascope::analysis
