#include "analysis/patterns.hpp"

namespace metascope::analysis {

PatternSet PatternSet::from_tree(const report::MetricTree& tree) {
  PatternSet p;
  auto lookup = [&](const char* name) {
    return tree.contains(name) ? tree.find(name) : MetricId{};
  };
  p.time = lookup("Time");
  p.mpi = lookup("MPI");
  p.communication = lookup("Communication");
  p.p2p = lookup("Point-to-point");
  p.late_sender = lookup("Late Sender");
  p.grid_late_sender = lookup("Grid Late Sender");
  p.late_receiver = lookup("Late Receiver");
  p.grid_late_receiver = lookup("Grid Late Receiver");
  p.collective = lookup("Collective");
  p.early_reduce = lookup("Early Reduce");
  p.grid_early_reduce = lookup("Grid Early Reduce");
  p.late_broadcast = lookup("Late Broadcast");
  p.grid_late_broadcast = lookup("Grid Late Broadcast");
  p.wait_nxn = lookup("Wait at N x N");
  p.grid_wait_nxn = lookup("Grid Wait at N x N");
  p.nxn_completion = lookup("N x N Completion");
  p.grid_nxn_completion = lookup("Grid N x N Completion");
  p.synchronization = lookup("Synchronization");
  p.wait_barrier = lookup("Wait at Barrier");
  p.grid_wait_barrier = lookup("Grid Wait at Barrier");
  p.barrier_completion = lookup("Barrier Completion");
  p.grid_barrier_completion = lookup("Grid Barrier Completion");
  return p;
}

RegionCategory classify_region(const std::string& name) {
  if (name.rfind("MPI_", 0) != 0) return RegionCategory::User;
  if (name == "MPI_Barrier") return RegionCategory::Synchronization;
  if (name == "MPI_Send" || name == "MPI_Recv" || name == "MPI_Isend" ||
      name == "MPI_Irecv" || name == "MPI_Wait" || name == "MPI_Sendrecv")
    return RegionCategory::PointToPoint;
  return RegionCategory::Collective;
}

CollectiveKind collective_kind(const std::string& name) {
  if (name == "MPI_Allreduce" || name == "MPI_Allgather" ||
      name == "MPI_Alltoall")
    return CollectiveKind::NxN;
  if (name == "MPI_Barrier") return CollectiveKind::Barrier;
  if (name == "MPI_Bcast" || name == "MPI_Scatter")
    return CollectiveKind::OneToN;
  if (name == "MPI_Reduce" || name == "MPI_Gather")
    return CollectiveKind::NToOne;
  return CollectiveKind::NotACollective;
}

RegionClassTable::RegionClassTable(const NameTable<RegionId>& regions) {
  info_.resize(regions.size());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const std::string& name = regions.all()[i];
    info_[i].category = classify_region(name);
    info_[i].kind = collective_kind(name);
    info_[i].blocking_send = name == "MPI_Send";
  }
}

}  // namespace metascope::analysis
