#include "analysis/analyzer.hpp"
#include "analysis/pattern_engine.hpp"
#include "analysis/prepare.hpp"
#include "analysis/replay_core.hpp"
#include "common/error.hpp"
#include "telemetry/span.hpp"
#include "tracing/matching.hpp"

namespace metascope::analysis {

AnalysisResult analyze_serial(const tracing::TraceCollection& tc,
                              const ReplayOptions& opts) {
  MSC_CHECK(tc.synchronized || tc.scheme == tracing::SyncScheme::None,
            "analyze_serial requires synchronized timestamps");
  AnalysisResult res;
  // The serial analyzer is the single-threaded reference (and the
  // baseline benches compare against), so its prepare stays on one
  // worker too.
  const PreparedTrace prep = prepare(tc, 1);
  PatternRegistry registry = PatternRegistry::standard();
  registry.select(opts.patterns);
  PatternEngine engine(registry, res.cube);
  res.patterns = engine.install(tc, prep);

  // Post-mortem matching resolves both sides of every message; the
  // collective grouping walks each rank's op events once. Evaluation
  // order is the pattern engine's canonical order, shared with the
  // parallel analyzer. The span carries the same "replay" name as the
  // parallel analyzer's: it is the same pipeline stage, differently
  // implemented.
  telemetry::ScopedSpan replay_span("replay");
  const auto pairs = tracing::match_messages(tc);
  std::vector<P2pRecord> p2p;
  p2p.reserve(pairs.size());
  for (const auto& p : pairs)
    p2p.push_back(P2pRecord{make_side(prep, p.send.rank, p.send.index),
                            make_side(prep, p.recv.rank, p.recv.index),
                            p.recv.index});

  engine.dispatch(std::move(p2p), group_collectives(tc, prep), res.stats);
  fill_trace_stats(tc, res.stats);
  return res;
}

}  // namespace metascope::analysis
