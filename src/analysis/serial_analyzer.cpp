#include <map>

#include "analysis/analyzer.hpp"
#include "analysis/base_accum.hpp"
#include "analysis/prepare.hpp"
#include "analysis/wait_rules.hpp"
#include "common/error.hpp"
#include "tracing/epilog_io.hpp"
#include "tracing/matching.hpp"

namespace metascope::analysis {

using tracing::EventType;

namespace {

P2pSide side_of(const PreparedTrace& prep, const tracing::EventRef& ref) {
  const auto& ann = prep.per_rank[static_cast<std::size_t>(ref.rank)];
  P2pSide s;
  s.rank = ref.rank;
  s.op_enter = ann.op_enter[ref.index];
  s.op_exit = ann.op_exit[ref.index];
  s.cnode = ann.cnode[ref.index];
  s.region = prep.calls.node(s.cnode).region;
  return s;
}

}  // namespace

AnalysisResult analyze_serial(const tracing::TraceCollection& tc) {
  MSC_CHECK(tc.synchronized || tc.scheme == tracing::SyncScheme::None,
            "analyze_serial requires synchronized timestamps");
  AnalysisResult res;
  const PreparedTrace prep = prepare(tc);
  res.patterns = init_cube(res.cube, tc, prep);
  const PatternSet& ps = res.patterns;

  std::vector<WaitHit> hits;

  // --- point-to-point patterns over the matched messages ---------------
  const auto pairs = tracing::match_messages(tc);
  res.stats.messages = pairs.size();
  for (const auto& p : pairs)
    p2p_hits(ps, tc.defs, side_of(prep, p.send), side_of(prep, p.recv),
             hits);

  // --- collective patterns over grouped instances ----------------------
  struct Instance {
    std::vector<CollMember> members;
    Rank root{kNoRank};
    RegionId region;
  };
  std::map<std::pair<int, int>, Instance> instances;  // (comm, seq)
  std::vector<std::map<int, int>> seq_counter(
      static_cast<std::size_t>(tc.num_ranks()));
  for (const auto& trace : tc.ranks) {
    const auto ri = static_cast<std::size_t>(trace.rank);
    const auto& ann = prep.per_rank[ri];
    for (std::uint32_t i = 0; i < trace.events.size(); ++i) {
      const auto& e = trace.events[i];
      if (e.type != EventType::CollExit) continue;
      const int seq = seq_counter[ri][e.comm.get()]++;
      Instance& inst = instances[{e.comm.get(), seq}];
      CollMember m;
      m.rank = trace.rank;
      m.enter = ann.op_enter[i];
      m.exit = ann.op_exit[i];
      m.cnode = ann.cnode[i];
      inst.members.push_back(m);
      inst.root = e.root;
      inst.region = e.region;
    }
  }
  res.stats.collective_instances = instances.size();
  for (const auto& [key, inst] : instances) {
    const auto& comm =
        tc.defs.comms[static_cast<std::size_t>(key.first)];
    MSC_CHECK(inst.members.size() == comm.members.size(),
              "incomplete collective instance in trace");
    const CollectiveKind kind =
        collective_kind(tc.defs.regions.name(inst.region));
    collective_hits(ps, tc.defs, kind, comm.members, inst.members,
                    inst.root, hits);
  }

  for (const auto& h : hits) apply_hit(res.cube, h);

  res.stats.events = tc.total_events();
  for (const auto& t : tc.ranks)
    res.stats.trace_bytes += tracing::encode_local_trace(t).size();
  return res;
}

}  // namespace metascope::analysis
