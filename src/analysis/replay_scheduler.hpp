// Replay-facing client of the shared bounded worker pool
// (common/parallel.hpp). The scheduling machinery — resumable tasks,
// work stealing, the Running/Parked/Notified suspend/resume state
// machine, quiescence-based deadlock detection — lives in WorkerPool;
// this wrapper keeps the replay's public semantics stable and wires the
// pool into the telemetry registry:
//
//  - "replay.suspensions" / "replay.steals" / "replay.requeues" /
//    "replay.tasks" registry counters stay cumulative across runs;
//  - "replay.task_runtime_us" and "replay.queue_depth" histograms are
//    fed from the pool's one-in-16 sampled observer hooks;
//  - task completions drive the rate-limited "replay" progress line;
//  - when the flight recorder is on, the pool's lifecycle hooks stream
//    per-rank task begin/end/suspend/resume/steal events onto each
//    worker's timeline (telemetry::RecordingObserver base);
//  - pool deadlocks surface as a replay-specific Error (unmatched
//    receive / truncated trace), not the pool's generic one — and when
//    the recorder is on, the last-N events of every worker are dumped
//    to stderr first, so the hang is diagnosable instead of opaque.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"

namespace metascope::analysis {

/// Step verdict of one resumable rank task (shared with every other
/// pool client via common/parallel.hpp).
using StepResult = ::metascope::StepOutcome;

/// Per-run snapshot of the scheduler's behaviour. Since the pool
/// extraction these are the pool's *exact* internal counters (merged
/// from per-thread tallies at the join barrier) — they no longer depend
/// on telemetry being enabled. The registry counters
/// ("replay.suspensions", "replay.steals", "replay.requeues",
/// "replay.tasks") receive the same per-run deltas, so registry values
/// remain cumulative across runs.
struct SchedulerStats {
  std::size_t workers{0};      ///< pool size actually used
  std::size_t tasks{0};        ///< tasks driven to completion
  std::size_t suspensions{0};  ///< times a step returned Suspend
  std::size_t steals{0};       ///< tasks taken from another worker's deque
  std::size_t requeues{0};     ///< tasks re-enqueued after a resume
};

class ReplayScheduler {
 public:
  /// `max_workers` == 0 selects std::thread::hardware_concurrency();
  /// the pool never exceeds the task count. `postmortem_events` is the
  /// last-N-per-worker flight-recorder dump printed to stderr when the
  /// replay deadlocks (0 disables; no-op unless the recorder is on).
  ReplayScheduler(std::size_t num_tasks, std::size_t max_workers = 0,
                  std::size_t postmortem_events = 32);

  using StepFn = WorkerPool::StepFn;

  /// Drives every task to Done. `step(t)` advances task t until it
  /// finishes or suspends; a suspending step must arrange for resume(t)
  /// to be called by whichever task satisfies the awaited resource.
  /// Throws Error if the replay deadlocks (all unfinished tasks
  /// suspended with nothing left running) and rethrows the first
  /// exception any step raised.
  void run(const StepFn& step);

  /// Marks a suspended task runnable. Must be called from inside a
  /// running step (i.e. on a worker thread). Safe against the
  /// suspend/resume race; at most one resume may be issued per
  /// suspension.
  void resume(std::size_t task) { pool_.resume(task); }

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }

 private:
  /// Routes the pool's observer hooks into the registry histograms and
  /// the progress reporter; the RecordingObserver base streams the
  /// lifecycle hooks onto the flight recorder as "replay" task events,
  /// decimated by fanout_stride(num_tasks) like every other stage
  /// fan-out so recorder load stays bounded at high rank counts.
  class TelemetryObserver : public telemetry::RecordingObserver {
   public:
    explicit TelemetryObserver(std::uint32_t item_stride);
    [[nodiscard]] bool wants_samples() const override;
    void on_task_done(std::size_t done, std::size_t total) override;
    void on_task_runtime_us(double us) override;
    void on_queue_depth(double depth) override;

   private:
    telemetry::Histogram& h_task_runtime_us_;
    telemetry::Histogram& h_queue_depth_;
  };

  WorkerPool pool_;
  TelemetryObserver obs_;
  SchedulerStats stats_;
  std::size_t postmortem_events_;
};

}  // namespace metascope::analysis
