// Bounded worker-pool scheduler for the parallel replay.
//
// The old parallel analyzer spawned one OS thread per application rank
// and parked it in a condition-variable wait whenever its replay had to
// wait for a peer — fine for 32 ranks, hopeless for thousands. Here each
// rank's replay is a resumable task: a cursor over its op events that
// *suspends* (returns control to the pool) on an unsatisfied Recv or an
// incomplete collective instead of blocking a thread. A fixed pool of
// workers — hardware concurrency by default — drives all tasks, each
// worker owning a deque of runnable tasks and stealing from its peers
// when it runs dry.
//
// Suspension protocol: before returning Suspend, the task registers
// itself with the awaited resource (under that resource's lock). The
// task that later satisfies the resource calls resume(). The inevitable
// race — resume() arriving while the suspending step is still unwinding
// on its worker — is resolved with a per-task state machine
// (Running / Parked / Notified): whichever side loses the CAS hands the
// task back to a run queue, so a wakeup is never lost and a task never
// runs on two workers at once.
//
// If every task is suspended and none is runnable, no resume() can ever
// arrive (only running tasks signal), so the scheduler reports the
// deadlock as an Error instead of hanging — e.g. a truncated trace whose
// Recv has no matching Send.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/metrics.hpp"

namespace metascope::analysis {

enum class StepResult {
  Done,     ///< the task finished its whole replay
  Suspend,  ///< the task registered with a resource and yields its worker
};

/// Per-run snapshot of the scheduler's behaviour. The live counters
/// behind these fields are the telemetry registry's sharded counters
/// ("replay.suspensions", "replay.steals", "replay.requeues"); run()
/// records the registry values at entry and fills this struct with the
/// end-minus-start delta. With telemetry disabled
/// (telemetry::set_enabled(false) or -DMSC_NO_TELEMETRY) the counters do
/// not record and these fields read zero.
struct SchedulerStats {
  std::size_t workers{0};      ///< pool size actually used
  std::size_t tasks{0};        ///< tasks driven to completion
  std::size_t suspensions{0};  ///< times a step returned Suspend
  std::size_t steals{0};       ///< tasks taken from another worker's deque
  std::size_t requeues{0};     ///< tasks re-enqueued after a resume
};

class ReplayScheduler {
 public:
  /// `max_workers` == 0 selects std::thread::hardware_concurrency();
  /// the pool never exceeds the task count.
  ReplayScheduler(std::size_t num_tasks, std::size_t max_workers = 0);

  using StepFn = std::function<StepResult(std::size_t task)>;

  /// Drives every task to Done. `step(t)` advances task t until it
  /// finishes or suspends; a suspending step must arrange for resume(t)
  /// to be called by whichever task satisfies the awaited resource.
  /// Throws Error if the replay deadlocks (all unfinished tasks
  /// suspended with nothing left running) and rethrows the first
  /// exception any step raised.
  void run(const StepFn& step);

  /// Marks a suspended task runnable. Must be called from inside a
  /// running step (i.e. on a worker thread). Safe against the
  /// suspend/resume race; at most one resume may be issued per
  /// suspension.
  void resume(std::size_t task);

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }

 private:
  struct WorkerQueue {
    std::mutex m;
    std::deque<std::size_t> dq;
  };

  void worker_loop(std::size_t wid, const StepFn& step);
  void run_task(std::size_t task, const StepFn& step);
  void push(std::size_t wid, std::size_t task);
  bool pop_local(std::size_t wid, std::size_t& task);
  bool steal(std::size_t wid, std::size_t& task);
  void fail(std::exception_ptr err);
  /// Adds the calling thread's batched tally into the registry counters.
  void flush_tally();

  std::size_t num_tasks_;
  std::size_t num_workers_;
  std::vector<WorkerQueue> queues_;
  std::unique_ptr<std::atomic<int>[]> state_;

  std::atomic<std::size_t> done_{0};
  /// Tasks queued or currently running (not parked). When this reaches
  /// zero with done_ < num_tasks_, the replay has deadlocked.
  std::atomic<std::size_t> inflight_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> deadlock_{false};

  std::mutex idle_m_;
  std::condition_variable idle_cv_;

  std::mutex err_m_;
  std::exception_ptr first_error_;

  // Cached registry handles. Workers batch their counts into plain
  // per-thread tallies and flush them here on exit; histograms are
  // sampled one-in-16. Handles are stable for the process lifetime.
  telemetry::Counter& c_suspensions_;
  telemetry::Counter& c_steals_;
  telemetry::Counter& c_requeues_;
  telemetry::Counter& c_tasks_;
  telemetry::Histogram& h_task_runtime_us_;
  telemetry::Histogram& h_queue_depth_;
  SchedulerStats stats_;
};

}  // namespace metascope::analysis
