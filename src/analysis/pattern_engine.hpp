// The pluggable pattern engine: wait-state detection as replay
// callbacks instead of a hardwired accumulation layer.
//
// A PatternDetector subscribes to the replay events it cares about
// (region enter/exit, matched point-to-point message, completed
// collective instance, finalize) and emits severities through a
// PatternSink. A PatternRegistry owns the detector instances, declares
// each pattern's metric-tree node (parent, name, description, optional
// grid child), builds the report::MetricTree from whatever detectors
// are enabled, and threads per-pattern enable/disable from
// ReplayOptions::patterns / `msc_run --patterns`.
//
// Determinism contract (what keeps cubes bit-identical between the
// serial and the parallel analyzer, and across worker counts):
//
//  - The engine, not the detector, owns dispatch order. Callbacks fire
//    in one canonical order regardless of how the records were
//    collected: the region pass walks ranks ascending and each rank's
//    call paths in id order; p2p records are sorted by (receiver rank,
//    receive position); collective instances by (communicator,
//    sequence) with members sorted by rank.
//  - Within one record, detectors fire in registration order.
//  - A detector must be a pure function of the callback context: no
//    clocks, no randomness, no cross-record state that depends on
//    anything but the canonical stream. (Cross-record state that *is*
//    a function of the stream — counters, running extrema flushed in
//    finalize — is fine.)
//  - Every severity must come out of clamp_wait (or be otherwise
//    provably in [0, op duration]) so the category partition of total
//    time never goes negative.
//
// The region pass dispatches per (rank, call path): region_enter when a
// rank's visit to a call path begins, then region_exit carrying that
// rank's exclusive seconds in the path aggregated over all occurrences.
// This granularity is deliberate — it reproduces the pre-engine base
// accumulation's floating-point chains exactly (one add per cell), which
// the golden-severity fixture locks in.
//
// Adding a detector: subclass PatternDetector, fill a DetectorSpec
// (key, metric node, callback mask), implement the callbacks against
// PatternSink, and registry.add(std::make_unique<MyDetector>()). See
// detectors.cpp for the nine built-ins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/patterns.hpp"
#include "analysis/prepare.hpp"
#include "analysis/replay_core.hpp"
#include "analysis/wait_rules.hpp"
#include "report/cube.hpp"
#include "tracing/trace.hpp"

namespace metascope::analysis {

// --- callback contexts ---------------------------------------------------

/// One (rank, call path) visit in the region pass. For region_exit,
/// `seconds` is the rank's exclusive time in the path over all
/// occurrences; for region_enter it is zero.
struct RegionCtx {
  CallPathId cnode;
  Rank rank{kNoRank};
  double seconds{0.0};
  RegionCategory category{RegionCategory::User};
};

/// One matched point-to-point message, both sides resolved.
struct P2pCtx {
  const tracing::TraceDefs* defs{nullptr};
  const P2pSide* send{nullptr};
  const P2pSide* recv{nullptr};
  /// Send-side region is a blocking standard send (MPI_Send) — from the
  /// RegionClassTable, no string compare on this path.
  bool send_is_blocking_standard{false};
  /// Message crossed metahosts (grid specializations fire).
  bool grid{false};
};

/// One completed collective instance. Members are sorted by rank; the
/// engine precomputes the last arrival once so every collective
/// detector shares the same scan.
struct CollCtx {
  const tracing::TraceDefs* defs{nullptr};
  CollectiveKind kind{CollectiveKind::NotACollective};
  const std::vector<Rank>* comm_members{nullptr};
  const std::vector<CollMember>* members{nullptr};
  Rank root{kNoRank};
  /// Communicator spans metahosts (grid specializations fire).
  bool grid{false};
  /// Enter time of the last-arriving member (ties: lowest rank) and its
  /// metahost — the peer of every wait/completion in this instance.
  double last_enter{0.0};
  MetahostId last_enter_mh;
};

// --- sink ----------------------------------------------------------------

/// Where detectors emit. Also tallies per-detector hit counts and
/// seconds, flushed to "analysis.pattern.<key>.{hits,seconds}" telemetry
/// in one batch after dispatch (never per hit on the hot path).
class PatternSink {
 public:
  PatternSink(report::Cube& cube, std::size_t num_detectors);

  /// Base (non-wait) time into a category metric. No category
  /// subtraction: this *is* the category's time.
  void base_time(MetricId metric, CallPathId cnode, Rank rank,
                 double seconds);

  /// One wait severity: `metric` gains `seconds` at (cnode, rank), the
  /// owning `category` loses the same amount (severity stays an exact
  /// partition of total time), and the (waiter, peer) metahost pair
  /// breakdown is recorded. Non-positive seconds are ignored.
  void severity(MetricId metric, MetricId category, CallPathId cnode,
                Rank rank, double seconds, MetahostId waiter_mh,
                MetahostId peer_mh);

  struct Tally {
    std::uint64_t hits{0};
    double seconds{0.0};
  };
  [[nodiscard]] const std::vector<Tally>& tallies() const {
    return tallies_;
  }

  /// Engine-internal: attributes subsequent emissions to detector slot
  /// `i` for the telemetry tallies.
  void set_current(std::size_t i) { current_ = i; }

 private:
  report::Cube* cube_;
  std::size_t current_{0};
  std::vector<Tally> tallies_;
};

// --- detectors -----------------------------------------------------------

/// Callback subscription bits (DetectorSpec::callbacks).
enum : unsigned {
  kOnRegion = 1u << 0,      ///< region_enter / region_exit
  kOnP2p = 1u << 1,         ///< p2p_matched
  kOnCollective = 1u << 2,  ///< collective_completed
  kOnFinalize = 1u << 3,    ///< finalize
};

/// The metric-tree node a detector contributes. Empty `name` means the
/// detector owns no node of its own (structural detectors). Empty
/// `grid_name` means no grid child.
struct MetricNodeSpec {
  std::string name;
  std::string description;
  /// Name of the parent node — for built-ins this is also the category
  /// metric the severity is subtracted from.
  std::string parent;
  std::string grid_name;
  std::string grid_description;
};

struct DetectorSpec {
  /// Stable key for --patterns selection and telemetry
  /// ("late_sender", "barrier_completion", ...).
  std::string key;
  MetricNodeSpec node;
  unsigned callbacks{0};
  /// Structural detectors (the category time partition) are always
  /// enabled and not selectable.
  bool structural{false};
};

class PatternDetector {
 public:
  virtual ~PatternDetector() = default;

  [[nodiscard]] virtual const DetectorSpec& spec() const = 0;

  /// Called once after the metric tree is built; the default resolves
  /// the spec's node, grid child, and parent (category) ids. Override
  /// to resolve additional anchors.
  virtual void bind(const report::MetricTree& tree);

  virtual void region_enter(const RegionCtx& ctx, PatternSink& sink);
  virtual void region_exit(const RegionCtx& ctx, PatternSink& sink);
  virtual void p2p_matched(const P2pCtx& ctx, PatternSink& sink);
  virtual void collective_completed(const CollCtx& ctx, PatternSink& sink);
  virtual void finalize(PatternSink& sink);

 protected:
  /// Resolved by the default bind().
  MetricId metric_;
  MetricId grid_metric_;
  MetricId category_;

  /// Base node or its grid child (when it exists) by locality.
  [[nodiscard]] MetricId metric_of(bool grid) const {
    return grid && grid_metric_.valid() ? grid_metric_ : metric_;
  }
};

// --- registry ------------------------------------------------------------

class PatternRegistry {
 public:
  PatternRegistry() = default;
  PatternRegistry(PatternRegistry&&) = default;
  PatternRegistry& operator=(PatternRegistry&&) = default;

  /// All built-in detectors, in canonical registration order: the
  /// category time partition, then Late Sender, Late Receiver, Early
  /// Reduce, Late Broadcast, Wait at N x N, N x N Completion, Wait at
  /// Barrier, Barrier Completion.
  static PatternRegistry standard();

  void add(std::unique_ptr<PatternDetector> detector);

  /// Restricts to the named detector keys (structural detectors stay).
  /// An empty list enables everything. Throws Error on an unknown key,
  /// listing the valid ones.
  void select(const std::vector<std::string>& keys);

  /// One row per detector, for `msc_run --list-patterns`.
  struct Entry {
    std::string key;
    std::string metric;  ///< empty for structural detectors
    std::string description;
    bool structural{false};
    bool enabled{true};
  };
  [[nodiscard]] std::vector<Entry> entries() const;

  /// Builds the metric tree — the category skeleton (Time / MPI /
  /// Communication / Point-to-point / Collective / Synchronization)
  /// plus every enabled detector's node and grid child — and binds the
  /// enabled detectors to their resolved ids.
  void install(report::MetricTree& tree);

  [[nodiscard]] std::size_t size() const { return detectors_.size(); }
  [[nodiscard]] bool is_enabled(std::size_t i) const { return enabled_[i]; }
  [[nodiscard]] PatternDetector& detector(std::size_t i) {
    return *detectors_[i];
  }

 private:
  std::vector<std::unique_ptr<PatternDetector>> detectors_;
  std::vector<bool> enabled_;
};

// --- engine --------------------------------------------------------------

/// Drives one analysis: builds the cube skeleton from the registry,
/// runs the region pass, then dispatches the collected match records in
/// canonical order. Both analyzers share this one dispatch path — the
/// serial/parallel difference ends at record collection.
class PatternEngine {
 public:
  PatternEngine(PatternRegistry& registry, report::Cube& cube);

  /// Installs the metric tree into the cube, copies the call/region/
  /// system trees, binds detectors, and runs the region pass (base
  /// category time). Returns the PatternSet view over the tree.
  PatternSet install(const tracing::TraceCollection& tc,
                     const PreparedTrace& prep);

  /// Streaming variant of install: trees and detector binding only, no
  /// region pass. The streaming analyzer's call tree and exclusive
  /// times come out of its own windowed passes, so it installs first
  /// and runs region_pass() once the replay has accumulated them.
  PatternSet install_trees(const tracing::TraceCollection& tc,
                           const report::CallTree& calls,
                           const RegionClassTable& region_table);

  /// The region pass over per-rank exclusive times, detached from
  /// PreparedTrace: ranks ascending, each rank's call paths in id
  /// order — exactly the add sequence install(tc, prep) runs, so cubes
  /// stay bit-identical whichever entry point built the trees.
  void region_pass(const std::vector<std::vector<ExclusiveTime>>& excl_time);

  /// Sorts the records into canonical order, dispatches p2p_matched
  /// once per message and collective_completed once per instance, runs
  /// finalize, fills stats.messages / stats.collective_instances, and
  /// flushes the per-pattern telemetry tallies.
  void dispatch(std::vector<P2pRecord>&& p2p,
                std::vector<CollInstance>&& colls, AnalysisStats& stats);

 private:
  PatternRegistry* registry_;
  report::Cube* cube_;
  const tracing::TraceCollection* tc_{nullptr};
  const RegionClassTable* region_table_{nullptr};
  PatternSink sink_;
  /// Enabled detectors per callback, as (slot, detector) in
  /// registration order.
  struct Sub {
    std::size_t slot;
    PatternDetector* det;
  };
  std::vector<Sub> on_region_, on_p2p_, on_coll_, on_final_;

  void flush_telemetry();
};

}  // namespace metascope::analysis
