#include "analysis/wait_rules.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace metascope::analysis {

double clamp_wait(double wait, double op_dur) {
  return std::clamp(wait, 0.0, std::max(op_dur, 0.0));
}

void apply_hit(report::Cube& cube, const WaitHit& hit) {
  if (hit.seconds <= 0.0) return;
  cube.add(hit.metric, hit.cnode, hit.rank, hit.seconds);
  cube.add(hit.category, hit.cnode, hit.rank, -hit.seconds);
  cube.add_pair_breakdown(hit.metric, hit.waiter_mh, hit.peer_mh,
                          hit.seconds);
}

double late_sender_wait(const P2pSide& send, const P2pSide& recv) {
  return clamp_wait(send.op_enter - recv.op_enter,
                    recv.op_exit - recv.op_enter);
}

double late_receiver_wait(const P2pSide& send, const P2pSide& recv,
                          bool blocking_standard_send) {
  if (!blocking_standard_send) return 0.0;
  if (recv.op_enter > send.op_exit) return 0.0;
  return clamp_wait(recv.op_enter - send.op_enter,
                    send.op_exit - send.op_enter);
}

double collective_completion_wait(double last_enter, const CollMember& m) {
  if (m.enter >= last_enter) return 0.0;
  return clamp_wait(m.exit - last_enter, m.exit - m.enter);
}

bool comm_spans_metahosts(const tracing::TraceDefs& defs,
                          const std::vector<Rank>& comm_members) {
  MSC_CHECK(!comm_members.empty(), "empty communicator");
  const MetahostId first = defs.metahost_of(comm_members.front());
  for (Rank r : comm_members)
    if (defs.metahost_of(r) != first) return true;
  return false;
}

void p2p_hits(const PatternSet& ps, const tracing::TraceDefs& defs,
              const RegionClassTable& rct, const P2pSide& send,
              const P2pSide& recv, std::vector<WaitHit>& out) {
  const bool grid = defs.crosses_metahosts(send.rank, recv.rank);
  const double ls = late_sender_wait(send, recv);
  if (ls > 0.0) {
    WaitHit h;
    h.metric = ps.late_sender_of(grid);
    h.category = ps.p2p;
    h.cnode = recv.cnode;
    h.rank = recv.rank;
    h.seconds = ls;
    h.waiter_mh = defs.metahost_of(recv.rank);
    h.peer_mh = defs.metahost_of(send.rank);
    out.push_back(h);
  }
  const double lr = late_receiver_wait(
      send, recv, rct.is_blocking_standard_send(send.region));
  if (lr > 0.0) {
    WaitHit h;
    h.metric = ps.late_receiver_of(grid);
    h.category = ps.p2p;
    h.cnode = send.cnode;
    h.rank = send.rank;
    h.seconds = lr;
    h.waiter_mh = defs.metahost_of(send.rank);
    h.peer_mh = defs.metahost_of(recv.rank);
    out.push_back(h);
  }
}

void collective_hits(const PatternSet& ps, const tracing::TraceDefs& defs,
                     CollectiveKind kind,
                     const std::vector<Rank>& comm_members,
                     const std::vector<CollMember>& members, Rank root,
                     std::vector<WaitHit>& out) {
  MSC_CHECK(!members.empty(), "collective with no members");
  const bool grid = comm_spans_metahosts(defs, comm_members);

  // The participant entering last (peer of NxN/barrier waits).
  std::size_t last_idx = 0;
  for (std::size_t i = 1; i < members.size(); ++i)
    if (members[i].enter > members[last_idx].enter) last_idx = i;
  const double last_enter = members[last_idx].enter;
  const MetahostId last_mh = defs.metahost_of(members[last_idx].rank);

  switch (kind) {
    case CollectiveKind::NxN:
    case CollectiveKind::Barrier: {
      const bool barrier = kind == CollectiveKind::Barrier;
      const MetricId metric =
          barrier ? ps.wait_barrier_of(grid) : ps.wait_nxn_of(grid);
      const MetricId category =
          barrier ? ps.synchronization : ps.collective;
      for (const auto& m : members) {
        const double w =
            clamp_wait(last_enter - m.enter, m.exit - m.enter);
        if (w <= 0.0) continue;
        WaitHit h;
        h.metric = metric;
        h.category = category;
        h.cnode = m.cnode;
        h.rank = m.rank;
        h.seconds = w;
        h.waiter_mh = defs.metahost_of(m.rank);
        h.peer_mh = last_mh;
        out.push_back(h);
      }
      break;
    }
    case CollectiveKind::OneToN: {
      // Non-roots entering before the root wait for the root's data.
      MSC_CHECK(root != kNoRank, "1-to-N collective without root");
      double root_enter = 0.0;
      bool found = false;
      for (const auto& m : members) {
        if (m.rank == root) {
          root_enter = m.enter;
          found = true;
        }
      }
      MSC_CHECK(found, "root not among collective members");
      for (const auto& m : members) {
        if (m.rank == root) continue;
        const double w =
            clamp_wait(root_enter - m.enter, m.exit - m.enter);
        if (w <= 0.0) continue;
        WaitHit h;
        h.metric = ps.late_broadcast_of(grid);
        h.category = ps.collective;
        h.cnode = m.cnode;
        h.rank = m.rank;
        h.seconds = w;
        h.waiter_mh = defs.metahost_of(m.rank);
        h.peer_mh = defs.metahost_of(root);
        out.push_back(h);
      }
      break;
    }
    case CollectiveKind::NToOne: {
      // The root waits until the last contribution was sent.
      MSC_CHECK(root != kNoRank, "N-to-1 collective without root");
      const CollMember* root_m = nullptr;
      double last_sender_enter = -kInfTime;
      MetahostId last_sender_mh;
      for (const auto& m : members) {
        if (m.rank == root) {
          root_m = &m;
        } else if (m.enter > last_sender_enter) {
          last_sender_enter = m.enter;
          last_sender_mh = defs.metahost_of(m.rank);
        }
      }
      MSC_CHECK(root_m != nullptr, "root not among collective members");
      if (members.size() > 1) {
        const double w = clamp_wait(last_sender_enter - root_m->enter,
                                    root_m->exit - root_m->enter);
        if (w > 0.0) {
          WaitHit h;
          h.metric = ps.early_reduce_of(grid);
          h.category = ps.collective;
          h.cnode = root_m->cnode;
          h.rank = root_m->rank;
          h.seconds = w;
          h.waiter_mh = defs.metahost_of(root_m->rank);
          h.peer_mh = last_sender_mh;
          out.push_back(h);
        }
      }
      break;
    }
    case CollectiveKind::NotACollective:
      MSC_ASSERT(false, "collective_hits on non-collective");
  }
}

}  // namespace metascope::analysis
