// Match-record collection shared by both analyzers. The serial
// (merged-trace) and parallel (replay) analyzers used to duplicate the
// p2p-side construction and collective-instance grouping; they now
// differ only in *how* they collect the raw match records:
//
//  - analyze_serial matches messages post-mortem and walks each rank's
//    op events once;
//  - analyze_parallel re-enacts the communication on a bounded worker
//    pool and collects the same records from the replay.
//
// Either way the records funnel into PatternEngine::dispatch
// (pattern_engine.hpp), which fires the detector callbacks in one
// canonical order — p2p records by (receiver rank, receive position),
// collective instances by (communicator, sequence) with members sorted
// by rank. Canonical order makes the floating-point accumulation
// identical between analyzers and across repeated parallel runs: cubes
// are bit-identical, not merely close, regardless of worker count or
// interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/prepare.hpp"
#include "analysis/wait_rules.hpp"
#include "tracing/trace.hpp"

namespace metascope::analysis {

/// One matched point-to-point message, both sides fully resolved.
struct P2pRecord {
  P2pSide send;
  P2pSide recv;
  /// Receive event's index in the receiver's trace — with recv.rank the
  /// canonical sort key (each Recv event matches exactly one message).
  std::uint32_t recv_index{0};
};

/// One collective instance: the seq-th collective on a communicator.
struct CollInstance {
  int comm{0};
  int seq{0};
  std::vector<CollMember> members;
  Rank root{kNoRank};
  RegionId region;
};

/// Builds one side of a p2p transfer from a rank's annotated event.
P2pSide make_side(const PreparedTrace& prep, Rank rank, std::uint32_t index);

/// Groups every CollExit event into instances keyed by (comm, seq) using
/// per-rank flat sequence counters. Used by the serial analyzer; the
/// parallel analyzer builds the same instances during the replay.
std::vector<CollInstance> group_collectives(const tracing::TraceCollection& tc,
                                            const PreparedTrace& prep);

/// Fills the trace-volume stats the *materializing* analyzers report:
/// total events and resident trace bytes, where "resident" is the whole
/// collection (tracing::in_memory_bytes) because that is what those
/// analyzers actually hold. analyze_streaming does not call this — it
/// accounts only the windows resident at once and reports the
/// high-water mark (asserted against the budget in the stream tests).
void fill_trace_stats(const tracing::TraceCollection& tc,
                      AnalysisStats& stats);

}  // namespace metascope::analysis
