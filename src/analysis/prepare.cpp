#include "analysis/prepare.hpp"

#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/span.hpp"

namespace metascope::analysis {

using tracing::Event;
using tracing::EventType;

namespace {

[[noreturn]] void fail_at(Rank rank, std::uint32_t i, const char* what) {
  std::ostringstream os;
  os << "malformed trace: rank " << rank << " event " << i << ": " << what;
  throw Error(os.str());
}

}  // namespace

PreparedTrace prepare(const tracing::TraceCollection& tc,
                      std::size_t max_workers) {
  telemetry::ScopedSpan span("prepare");
  if (telemetry::progress_enabled()) telemetry::progress("prepare", 0.0);
  PreparedTrace out;
  out.tc = &tc;
  out.region_table = RegionClassTable(tc.defs.regions);
  out.per_rank.resize(static_cast<std::size_t>(tc.num_ranks()));
  out.excl_time.resize(static_cast<std::size_t>(tc.num_ranks()));
  out.rank_span.resize(static_cast<std::size_t>(tc.num_ranks()), 0.0);

  // Pass 1 (serial): call-path id assignment + structural validation.
  // Ids must be identical to the historical single-pass walk — ranks in
  // order, events in order, get_or_add at every Enter — so serial and
  // parallel cubes stay bit-identical for any worker count. The walk
  // also performs every structural check (unbalanced Enter/Exit,
  // message outside a region, negative durations), so the parallel
  // annotation pass below runs on validated input and cannot fail.
  // Per rank it records the assigned id of each Enter, in order; the
  // annotation pass replays the stack from that list without touching
  // the (single-threaded) call-tree index.
  std::vector<std::vector<CallPathId>> enter_cnodes(
      static_cast<std::size_t>(tc.num_ranks()));
  for (const auto& trace : tc.ranks) {
    auto& enters = enter_cnodes[static_cast<std::size_t>(trace.rank)];
    struct OpenFrame {
      CallPathId cnode;
      double enter_time;
    };
    std::vector<OpenFrame> stack;
    for (std::uint32_t i = 0; i < trace.events.size(); ++i) {
      const Event& e = trace.events[i];
      switch (e.type) {
        case EventType::Enter: {
          const CallPathId parent =
              stack.empty() ? CallPathId{} : stack.back().cnode;
          const CallPathId c = out.calls.get_or_add(parent, e.region);
          stack.push_back(OpenFrame{c, e.time});
          enters.push_back(c);
          break;
        }
        case EventType::Exit:
        case EventType::CollExit: {
          if (stack.empty()) fail_at(trace.rank, i, "Exit without Enter");
          if (e.time - stack.back().enter_time < 0.0)
            fail_at(trace.rank, i, "negative region duration");
          stack.pop_back();
          break;
        }
        case EventType::Send:
        case EventType::Recv: {
          if (stack.empty())
            fail_at(trace.rank, i, "message event outside any region");
          break;
        }
      }
    }
    if (!stack.empty())
      fail_at(trace.rank, static_cast<std::uint32_t>(trace.events.size()),
              "unclosed region");
  }

  // Pass 2 (parallel, one task per rank): the heavy per-event
  // annotation — call-path tags, enclosing-op windows, the op-event
  // index the replay iterates, exclusive times, rank spans. Each task
  // writes only its own rank's slots and reads the call tree ids from
  // its private enter list, so results are deterministic and identical
  // for every worker count.
  telemetry::RecordingObserver rec_obs(
      "prepare", telemetry::RecordingObserver::fanout_stride(tc.ranks.size()));
  const auto pst = parallel_for(
      tc.ranks.size(), max_workers,
      [&](std::size_t ti) {
        const auto& trace = tc.ranks[ti];
        const auto ri = static_cast<std::size_t>(trace.rank);
        const auto& enters = enter_cnodes[ri];
        auto& ann = out.per_rank[ri];
        const std::size_t n = trace.events.size();
        ann.cnode.assign(n, CallPathId{});
        ann.op_enter.assign(n, 0.0);
        ann.op_exit.assign(n, 0.0);

        struct Frame {
          CallPathId cnode;
          double enter_time;
          double child_time;
          std::uint32_t first_event;  ///< first event index in this frame
        };
        std::vector<Frame> stack;
        std::vector<bool> op_filled(n, false);
        std::size_t next_enter = 0;
        // Per-cnode exclusive accumulation for this rank (ordered map:
        // the emitted ExclusiveTime list is sorted by call-path id).
        std::map<int, double> excl;

        for (std::uint32_t i = 0; i < n; ++i) {
          const Event& e = trace.events[i];
          switch (e.type) {
            case EventType::Enter: {
              const CallPathId c = enters[next_enter++];
              stack.push_back(Frame{c, e.time, 0.0, i + 1});
              ann.cnode[i] = c;
              break;
            }
            case EventType::Exit:
            case EventType::CollExit: {
              Frame f = stack.back();
              stack.pop_back();
              ann.cnode[i] = f.cnode;
              const double dur = e.time - f.enter_time;
              excl[f.cnode.get()] += dur - f.child_time;
              if (!stack.empty()) stack.back().child_time += dur;
              // Backfill enclosing-op times for the events inside this
              // frame (Send/Recv live directly inside their MPI call
              // frame).
              for (std::uint32_t k = f.first_event; k < i; ++k) {
                if ((trace.events[k].type == EventType::Send ||
                     trace.events[k].type == EventType::Recv) &&
                    !op_filled[k]) {
                  ann.op_enter[k] = f.enter_time;
                  ann.op_exit[k] = e.time;
                  op_filled[k] = true;
                }
              }
              if (e.type == EventType::CollExit) {
                ann.op_enter[i] = f.enter_time;
                ann.op_exit[i] = e.time;
              }
              break;
            }
            case EventType::Send:
            case EventType::Recv: {
              ann.cnode[i] = stack.back().cnode;
              break;
            }
          }
          if (e.type == EventType::Send || e.type == EventType::Recv ||
              e.type == EventType::CollExit)
            ann.op_events.push_back(i);
        }

        auto& et = out.excl_time[ri];
        et.reserve(excl.size());
        for (const auto& [cnode, seconds] : excl)
          et.push_back(ExclusiveTime{CallPathId{cnode}, seconds});

        if (!trace.events.empty())
          out.rank_span[ri] =
              trace.events.back().time - trace.events.front().time;
      },
      &rec_obs);
  telemetry::record_stage_parallelism("prepare", pst);

  // Validate collective-instance completeness up front: every member of
  // a communicator must have recorded the same number of collectives on
  // it. Failing here (instead of mid-replay) lets the parallel analyzer
  // reject a truncated trace before any worker could wait on an instance
  // that will never complete.
  std::vector<std::vector<int>> coll_counts(
      tc.defs.comms.size(),
      std::vector<int>(static_cast<std::size_t>(tc.num_ranks()), 0));
  for (const auto& trace : tc.ranks) {
    const auto ri = static_cast<std::size_t>(trace.rank);
    for (const std::uint32_t i : out.per_rank[ri].op_events) {
      const Event& e = trace.events[i];
      if (e.type == EventType::CollExit)
        ++coll_counts[static_cast<std::size_t>(e.comm.get())][ri];
    }
  }
  for (const auto& comm : tc.defs.comms) {
    const auto& counts = coll_counts[static_cast<std::size_t>(comm.id.get())];
    for (const Rank r : comm.members) {
      const int expected =
          counts[static_cast<std::size_t>(comm.members.front())];
      if (counts[static_cast<std::size_t>(r)] != expected) {
        std::ostringstream os;
        os << "incomplete collective instance in trace: rank " << r
           << " recorded " << counts[static_cast<std::size_t>(r)]
           << " collectives on communicator " << comm.id.get()
           << " but rank " << comm.members.front() << " recorded "
           << expected;
        throw Error(os.str());
      }
    }
  }
  telemetry::counter("prepare.ranks").add(out.per_rank.size());
  telemetry::counter("prepare.call_paths").add(out.calls.size());
  if (telemetry::progress_enabled()) telemetry::progress("prepare", 1.0);
  return out;
}

}  // namespace metascope::analysis
