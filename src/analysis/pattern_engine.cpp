#include "analysis/pattern_engine.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace metascope::analysis {

// --- PatternSink ---------------------------------------------------------

PatternSink::PatternSink(report::Cube& cube, std::size_t num_detectors)
    : cube_(&cube), tallies_(num_detectors) {}

void PatternSink::base_time(MetricId metric, CallPathId cnode, Rank rank,
                            double seconds) {
  cube_->add(metric, cnode, rank, seconds);
  Tally& t = tallies_[current_];
  t.hits += 1;
  t.seconds += seconds;
}

void PatternSink::severity(MetricId metric, MetricId category,
                           CallPathId cnode, Rank rank, double seconds,
                           MetahostId waiter_mh, MetahostId peer_mh) {
  if (seconds <= 0.0) return;
  cube_->add(metric, cnode, rank, seconds);
  cube_->add(category, cnode, rank, -seconds);
  cube_->add_pair_breakdown(metric, waiter_mh, peer_mh, seconds);
  Tally& t = tallies_[current_];
  t.hits += 1;
  t.seconds += seconds;
}

// --- PatternDetector -----------------------------------------------------

void PatternDetector::bind(const report::MetricTree& tree) {
  const MetricNodeSpec& n = spec().node;
  if (!n.name.empty()) metric_ = tree.find(n.name);
  if (!n.grid_name.empty() && tree.contains(n.grid_name))
    grid_metric_ = tree.find(n.grid_name);
  if (!n.parent.empty() && tree.contains(n.parent))
    category_ = tree.find(n.parent);
}

void PatternDetector::region_enter(const RegionCtx&, PatternSink&) {}
void PatternDetector::region_exit(const RegionCtx&, PatternSink&) {}
void PatternDetector::p2p_matched(const P2pCtx&, PatternSink&) {}
void PatternDetector::collective_completed(const CollCtx&, PatternSink&) {}
void PatternDetector::finalize(PatternSink&) {}

// --- PatternRegistry -----------------------------------------------------

void PatternRegistry::add(std::unique_ptr<PatternDetector> detector) {
  detectors_.push_back(std::move(detector));
  enabled_.push_back(true);
}

void PatternRegistry::select(const std::vector<std::string>& keys) {
  if (keys.empty()) return;
  for (const std::string& key : keys) {
    bool known = false;
    for (const auto& d : detectors_)
      if (d->spec().key == key && !d->spec().structural) known = true;
    if (!known) {
      std::ostringstream os;
      os << "unknown pattern key '" << key << "'; valid keys:";
      for (const auto& d : detectors_)
        if (!d->spec().structural) os << " " << d->spec().key;
      throw Error(os.str());
    }
  }
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    const DetectorSpec& s = detectors_[i]->spec();
    enabled_[i] = s.structural ||
                  std::find(keys.begin(), keys.end(), s.key) != keys.end();
  }
}

std::vector<PatternRegistry::Entry> PatternRegistry::entries() const {
  std::vector<Entry> out;
  out.reserve(detectors_.size());
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    const DetectorSpec& s = detectors_[i]->spec();
    out.push_back(Entry{s.key, s.node.name, s.node.description,
                        s.structural, enabled_[i]});
  }
  return out;
}

void PatternRegistry::install(report::MetricTree& tree) {
  // The category skeleton always exists: the structural time partition
  // accumulates into it whether or not any wait detector is enabled.
  const MetricId time = tree.add("Time", "Total execution time");
  const MetricId mpi = tree.add("MPI", "Time spent in MPI calls", time);
  const MetricId comm =
      tree.add("Communication", "MPI communication", mpi);
  tree.add("Point-to-point", "Point-to-point communication", comm);
  tree.add("Collective", "Collective communication", comm);
  tree.add("Synchronization", "MPI synchronization", mpi);

  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (!enabled_[i]) continue;
    const MetricNodeSpec& n = detectors_[i]->spec().node;
    if (n.name.empty()) continue;
    MSC_CHECK(n.parent.empty() || tree.contains(n.parent),
              "pattern '" + n.name + "' declares unknown parent metric '" +
                  n.parent + "'");
    const MetricId parent =
        n.parent.empty() ? MetricId{} : tree.find(n.parent);
    const MetricId base = tree.add(n.name, n.description, parent);
    if (!n.grid_name.empty())
      tree.add(n.grid_name, n.grid_description, base);
  }

  for (std::size_t i = 0; i < detectors_.size(); ++i)
    if (enabled_[i]) detectors_[i]->bind(tree);
}

// --- PatternEngine -------------------------------------------------------

PatternEngine::PatternEngine(PatternRegistry& registry, report::Cube& cube)
    : registry_(&registry), cube_(&cube), sink_(cube, registry.size()) {
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (!registry.is_enabled(i)) continue;
    PatternDetector& d = registry.detector(i);
    const unsigned mask = d.spec().callbacks;
    if (mask & kOnRegion) on_region_.push_back(Sub{i, &d});
    if (mask & kOnP2p) on_p2p_.push_back(Sub{i, &d});
    if (mask & kOnCollective) on_coll_.push_back(Sub{i, &d});
    if (mask & kOnFinalize) on_final_.push_back(Sub{i, &d});
  }
}

PatternSet PatternEngine::install(const tracing::TraceCollection& tc,
                                  const PreparedTrace& prep) {
  const PatternSet ps = install_trees(tc, prep.calls, prep.region_table);
  region_pass(prep.excl_time);
  return ps;
}

PatternSet PatternEngine::install_trees(const tracing::TraceCollection& tc,
                                        const report::CallTree& calls,
                                        const RegionClassTable& region_table) {
  tc_ = &tc;
  region_table_ = &region_table;
  registry_->install(cube_->metrics);
  cube_->calls = calls;
  cube_->regions = tc.defs.regions;
  cube_->system = tc.defs;
  return PatternSet::from_tree(cube_->metrics);
}

void PatternEngine::region_pass(
    const std::vector<std::vector<ExclusiveTime>>& excl_time) {
  MSC_CHECK(tc_ != nullptr, "PatternEngine::region_pass before install");
  // Region pass: per-cnode categories from the class table (indexed
  // loads, no strings), then ranks ascending, call paths in id order —
  // exactly the pre-engine base accumulation's add sequence.
  const report::CallTree& calls = cube_->calls;
  std::vector<RegionCategory> cats(calls.size());
  for (std::size_t c = 0; c < calls.size(); ++c)
    cats[c] = region_table_->category(
        calls.node(CallPathId{static_cast<int>(c)}).region);

  for (Rank r = 0; r < tc_->num_ranks(); ++r) {
    for (const auto& et : excl_time[static_cast<std::size_t>(r)]) {
      RegionCtx ctx;
      ctx.cnode = et.cnode;
      ctx.rank = r;
      ctx.category = cats[static_cast<std::size_t>(et.cnode.get())];
      for (const Sub& s : on_region_) {
        sink_.set_current(s.slot);
        s.det->region_enter(ctx, sink_);
      }
      ctx.seconds = et.seconds;
      for (const Sub& s : on_region_) {
        sink_.set_current(s.slot);
        s.det->region_exit(ctx, sink_);
      }
    }
  }
}

void PatternEngine::dispatch(std::vector<P2pRecord>&& p2p,
                             std::vector<CollInstance>&& colls,
                             AnalysisStats& stats) {
  MSC_CHECK(tc_ != nullptr, "PatternEngine::dispatch before install");
  telemetry::ScopedSpan span("dispatch");
  const tracing::TraceDefs& defs = tc_->defs;

  // Canonical order, independent of collection order: p2p by (receiver,
  // receive position), instances by (comm, seq), members by rank.
  std::sort(p2p.begin(), p2p.end(),
            [](const P2pRecord& a, const P2pRecord& b) {
              if (a.recv.rank != b.recv.rank) return a.recv.rank < b.recv.rank;
              return a.recv_index < b.recv_index;
            });
  std::sort(colls.begin(), colls.end(),
            [](const CollInstance& a, const CollInstance& b) {
              if (a.comm != b.comm) return a.comm < b.comm;
              return a.seq < b.seq;
            });

  for (const P2pRecord& r : p2p) {
    P2pCtx ctx;
    ctx.defs = &defs;
    ctx.send = &r.send;
    ctx.recv = &r.recv;
    ctx.send_is_blocking_standard =
        region_table_->is_blocking_standard_send(r.send.region);
    ctx.grid = defs.crosses_metahosts(r.send.rank, r.recv.rank);
    for (const Sub& s : on_p2p_) {
      sink_.set_current(s.slot);
      s.det->p2p_matched(ctx, sink_);
    }
  }

  for (CollInstance& inst : colls) {
    const auto& comm = defs.comms[static_cast<std::size_t>(inst.comm)];
    MSC_CHECK(inst.members.size() == comm.members.size(),
              "incomplete collective instance in trace");
    std::sort(inst.members.begin(), inst.members.end(),
              [](const CollMember& a, const CollMember& b) {
                return a.rank < b.rank;
              });
    CollCtx ctx;
    ctx.defs = &defs;
    ctx.kind = region_table_->kind(inst.region);
    ctx.comm_members = &comm.members;
    ctx.members = &inst.members;
    ctx.root = inst.root;
    ctx.grid = comm_spans_metahosts(defs, comm.members);
    // Last arrival (ties: lowest rank — members are sorted), shared by
    // every wait/completion detector on this instance.
    std::size_t last_idx = 0;
    for (std::size_t i = 1; i < inst.members.size(); ++i)
      if (inst.members[i].enter > inst.members[last_idx].enter) last_idx = i;
    ctx.last_enter = inst.members[last_idx].enter;
    ctx.last_enter_mh = defs.metahost_of(inst.members[last_idx].rank);
    for (const Sub& s : on_coll_) {
      sink_.set_current(s.slot);
      s.det->collective_completed(ctx, sink_);
    }
  }

  for (const Sub& s : on_final_) {
    sink_.set_current(s.slot);
    s.det->finalize(sink_);
  }

  stats.messages = p2p.size();
  stats.collective_instances = colls.size();
  telemetry::counter("analysis.messages").add(stats.messages);
  telemetry::counter("analysis.collectives").add(stats.collective_instances);
  flush_telemetry();
}

void PatternEngine::flush_telemetry() {
  if (!telemetry::enabled()) return;
  const auto& tallies = sink_.tallies();
  for (std::size_t i = 0; i < registry_->size(); ++i) {
    if (!registry_->is_enabled(i)) continue;
    const std::string& key = registry_->detector(i).spec().key;
    // Register even at zero so enabled patterns always appear in
    // snapshots; one registry touch per detector per run, never per hit.
    telemetry::counter("analysis.pattern." + key + ".hits")
        .add(tallies[i].hits);
    telemetry::dcounter("analysis.pattern." + key + ".seconds")
        .add(tallies[i].seconds);
  }
}

}  // namespace metascope::analysis
