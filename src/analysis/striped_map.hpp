// Lock-striped hash map for the parallel replay's shared registries
// (message channels, collective-instance groups). A single global mutex
// over a std::map serializes every rank on one cache line; striping by
// key hash lets unrelated channels proceed in parallel while keeping the
// per-key critical sections trivial to reason about: all access happens
// inside a callback that runs under the owning shard's lock.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace metascope::analysis {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedMap {
 public:
  explicit StripedMap(std::size_t num_shards = 64)
      : shards_(num_shards ? num_shards : 1) {}

  /// Runs `fn(Value&)` under the owning shard's lock, default-creating
  /// the value on first use. Returns fn's result.
  template <typename Fn>
  auto with(const Key& key, Fn&& fn) {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.m);
    return std::forward<Fn>(fn)(s.map[key]);
  }

  /// Visits every (key, value) pair, shard by shard, under each shard's
  /// lock. Iteration order is unspecified; callers needing a canonical
  /// order must sort what they collect.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.m);
      for (auto& [key, value] : s.map) fn(key, value);
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.m);
      n += s.map.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex m;
    std::unordered_map<Key, Value, Hash> map;
  };

  Shard& shard_of(const Key& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
};

/// boost-style hash combiner for composite keys.
inline std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace metascope::analysis
