// The pure wait-state formulas (paper §3–§4). Detectors in
// detectors.cpp evaluate these from pattern-engine callbacks; the
// formulas stay free functions so tests can probe edge cases directly
// and bench_replay_scaling can reproduce the pre-engine "direct call"
// accumulation as its dispatch-overhead baseline.
//
// Waits are always clamped into the waiting operation's own duration, so
// severity never exceeds measured time even under residual clock error.
#pragma once

#include <vector>

#include "analysis/patterns.hpp"
#include "report/cube.hpp"
#include "tracing/defs.hpp"

namespace metascope::analysis {

/// One detected wait: `metric` gains `seconds` at (cnode, rank) and the
/// owning category metric loses the same amount (severity stays a
/// partition of total time).
struct WaitHit {
  MetricId metric;
  MetricId category;
  CallPathId cnode;
  Rank rank{kNoRank};
  double seconds{0.0};
  /// Metahosts for the grid breakdown (waiter first).
  MetahostId waiter_mh;
  MetahostId peer_mh;
};

/// Applies a hit to the cube (pattern +, category -, pair breakdown).
void apply_hit(report::Cube& cube, const WaitHit& hit);

/// clamp(wait, 0, max(op_dur, 0)) — every formula routes through this,
/// which is why severities are never negative and never exceed the
/// waiting operation's measured duration.
double clamp_wait(double wait, double op_dur);

/// What each side of a point-to-point transfer knows about itself.
struct P2pSide {
  Rank rank{kNoRank};
  double op_enter{0.0};
  double op_exit{0.0};
  CallPathId cnode;
  /// Region of the MPI call the event sits in (MPI_Send / MPI_Sendrecv /
  /// MPI_Recv / MPI_Wait / ...). Late Receiver only applies to plain
  /// blocking sends.
  RegionId region;
};

/// Late Sender: receiver blocked because the send started later.
/// Returns seconds (0 if no wait).
double late_sender_wait(const P2pSide& send, const P2pSide& recv);

/// Late Receiver: a *blocking standard send* still inside the call when
/// the receive was posted — the rendezvous handshake made the sender
/// wait. Two guards keep it honest:
///  - `blocking_standard_send` must hold, i.e. the send-side region is
///    MPI_Send (an MPI_Sendrecv's late exit is its own receive half,
///    already covered by Late Sender; an MPI_Isend never blocks) — the
///    caller reads it from the RegionClassTable, no string compare;
///  - the receive must have been posted before the send op ended (an
///    eager send that completed long before the receive was posted did
///    not wait for it).
double late_receiver_wait(const P2pSide& send, const P2pSide& recv,
                          bool blocking_standard_send);

/// One member of a collective instance.
struct CollMember {
  Rank rank{kNoRank};
  double enter{0.0};
  double exit{0.0};
  CallPathId cnode;
};

/// Completion ("drain") time of one collective member: the part of its
/// dwell after the last participant arrived. Members that themselves
/// arrived at `last_enter` (including every member of a single-member
/// or simultaneously-entered instance) have no completion wait — their
/// whole dwell is intrinsic operation time, not drain.
double collective_completion_wait(double last_enter, const CollMember& m);

/// True if the communicator spans more than one metahost.
bool comm_spans_metahosts(const tracing::TraceDefs& defs,
                          const std::vector<Rank>& comm_members);

// --- pre-engine direct emitters -----------------------------------------
// These reproduce the hardwired accumulation exactly as it ran before the
// pattern engine (Late Sender/Receiver per message; the wait patterns per
// collective instance — no Completion). bench_replay_scaling uses them as
// the direct-call baseline its <=5% dispatch-overhead gate compares
// against; they are not called on any analyzer path.

/// Emits Late Sender / Late Receiver hits (with grid specialization) for
/// one matched message.
void p2p_hits(const PatternSet& ps, const tracing::TraceDefs& defs,
              const RegionClassTable& rct, const P2pSide& send,
              const P2pSide& recv, std::vector<WaitHit>& out);

/// Emits hits for one completed collective instance. `root` is the
/// global root rank (kNoRank for rootless); `kind` from the class table.
/// The grid flag is decided from the communicator's full member list
/// (paper: "the entire communicator is searched for processes differing
/// in their machine location component").
void collective_hits(const PatternSet& ps, const tracing::TraceDefs& defs,
                     CollectiveKind kind, const std::vector<Rank>& comm_members,
                     const std::vector<CollMember>& members, Rank root,
                     std::vector<WaitHit>& out);

}  // namespace metascope::analysis
