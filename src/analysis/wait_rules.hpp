// The wait-state formulas shared verbatim by the serial and the parallel
// analyzer — both must produce bit-identical severities.
//
// Waits are always clamped into the waiting operation's own duration, so
// severity never exceeds measured time even under residual clock error.
#pragma once

#include <vector>

#include "analysis/patterns.hpp"
#include "report/cube.hpp"
#include "tracing/defs.hpp"

namespace metascope::analysis {

/// One detected wait: `metric` gains `seconds` at (cnode, rank) and the
/// owning category metric loses the same amount (severity stays a
/// partition of total time).
struct WaitHit {
  MetricId metric;
  MetricId category;
  CallPathId cnode;
  Rank rank{kNoRank};
  double seconds{0.0};
  /// Metahosts for the grid breakdown (waiter first).
  MetahostId waiter_mh;
  MetahostId peer_mh;
};

/// Applies a hit to the cube (pattern +, category -, pair breakdown).
void apply_hit(report::Cube& cube, const WaitHit& hit);

/// What each side of a point-to-point transfer knows about itself.
struct P2pSide {
  Rank rank{kNoRank};
  double op_enter{0.0};
  double op_exit{0.0};
  CallPathId cnode;
  /// Region of the MPI call the event sits in (MPI_Send / MPI_Sendrecv /
  /// MPI_Recv / MPI_Wait / ...). Late Receiver only applies to plain
  /// blocking sends.
  RegionId region;
};

/// Late Sender: receiver blocked because the send started later.
/// Returns seconds (0 if no wait).
double late_sender_wait(const P2pSide& send, const P2pSide& recv);

/// Late Receiver: a *blocking standard send* (region MPI_Send) still
/// inside the call when the receive was posted — the rendezvous
/// handshake made the sender wait. Two guards keep it honest:
///  - region must be MPI_Send (an MPI_Sendrecv's late exit is its own
///    receive half, already covered by Late Sender; an MPI_Isend never
///    blocks);
///  - the receive must have been posted before the send op ended (an
///    eager send that completed long before the receive was posted did
///    not wait for it).
double late_receiver_wait(const NameTable<RegionId>& regions,
                          const P2pSide& send, const P2pSide& recv);

/// Emits Late Sender / Late Receiver hits (with grid specialization) for
/// one matched message.
void p2p_hits(const PatternSet& ps, const tracing::TraceDefs& defs,
              const P2pSide& send, const P2pSide& recv,
              std::vector<WaitHit>& out);

/// One member of a collective instance.
struct CollMember {
  Rank rank{kNoRank};
  double enter{0.0};
  double exit{0.0};
  CallPathId cnode;
};

/// Emits hits for one completed collective instance. `root` is the
/// global root rank (kNoRank for rootless); `kind` from collective_kind().
/// The grid flag is decided from the communicator's full member list
/// (paper: "the entire communicator is searched for processes differing
/// in their machine location component").
void collective_hits(const PatternSet& ps, const tracing::TraceDefs& defs,
                     CollectiveKind kind, const std::vector<Rank>& comm_members,
                     const std::vector<CollMember>& members, Rank root,
                     std::vector<WaitHit>& out);

/// True if the communicator spans more than one metahost.
bool comm_spans_metahosts(const tracing::TraceDefs& defs,
                          const std::vector<Rank>& comm_members);

}  // namespace metascope::analysis
