// The pattern (metric) hierarchy searched for by the analyzers.
//
// Base wait-state patterns follow KOJAK (paper §3, [18]); every one has a
// "grid" specialization that fires when the communication crosses
// metahost boundaries (paper §4 "Metacomputing patterns", Figure 4). The
// grid versions are children of their base pattern, mirroring the
// non-grid hierarchy exactly as the paper's browser arranges them.
//
//   Time
//   └─ MPI
//      ├─ Communication
//      │  ├─ Point-to-point            (p2p op time that is not waiting)
//      │  │  ├─ Late Sender            ├─ Grid Late Sender
//      │  │  └─ Late Receiver          └─ Grid Late Receiver
//      │  └─ Collective                (collective comm time not waiting)
//      │     ├─ Early Reduce           ├─ Grid Early Reduce
//      │     ├─ Late Broadcast         ├─ Grid Late Broadcast
//      │     └─ Wait at N x N          └─ Grid Wait at N x N
//      └─ Synchronization              (barrier time that is not waiting)
//         └─ Wait at Barrier           └─ Grid Wait at Barrier
//
// Severities are exclusive: a wait counted in a grid child is not also in
// the base pattern; the base pattern's inclusive total covers both.
#pragma once

#include <string>

#include "report/cube.hpp"

namespace metascope::analysis {

struct PatternSet {
  MetricId time;
  MetricId mpi;
  MetricId communication;
  MetricId p2p;
  MetricId late_sender;
  MetricId grid_late_sender;
  MetricId late_receiver;
  MetricId grid_late_receiver;
  MetricId collective;
  MetricId early_reduce;
  MetricId grid_early_reduce;
  MetricId late_broadcast;
  MetricId grid_late_broadcast;
  MetricId wait_nxn;
  MetricId grid_wait_nxn;
  MetricId synchronization;
  MetricId wait_barrier;
  MetricId grid_wait_barrier;

  /// Installs the full hierarchy into an empty metric tree.
  static PatternSet install(report::MetricTree& tree);

  /// Base pattern or its grid child, by whether the wait crossed
  /// metahosts.
  [[nodiscard]] MetricId late_sender_of(bool grid) const {
    return grid ? grid_late_sender : late_sender;
  }
  [[nodiscard]] MetricId late_receiver_of(bool grid) const {
    return grid ? grid_late_receiver : late_receiver;
  }
  [[nodiscard]] MetricId early_reduce_of(bool grid) const {
    return grid ? grid_early_reduce : early_reduce;
  }
  [[nodiscard]] MetricId late_broadcast_of(bool grid) const {
    return grid ? grid_late_broadcast : late_broadcast;
  }
  [[nodiscard]] MetricId wait_nxn_of(bool grid) const {
    return grid ? grid_wait_nxn : wait_nxn;
  }
  [[nodiscard]] MetricId wait_barrier_of(bool grid) const {
    return grid ? grid_wait_barrier : wait_barrier;
  }
};

/// Where a region's exclusive time belongs in the metric tree.
enum class RegionCategory {
  User,             ///< -> Time (root) exclusive
  PointToPoint,     ///< MPI p2p calls
  Collective,       ///< MPI collective communication
  Synchronization,  ///< MPI_Barrier
};

RegionCategory classify_region(const std::string& name);

/// Collective pattern family by MPI region name.
enum class CollectiveKind {
  NxN,        ///< Allreduce / Allgather / Alltoall
  Barrier,    ///< Barrier
  OneToN,     ///< Bcast / Scatter (Late Broadcast family)
  NToOne,     ///< Reduce / Gather (Early Reduce family)
  NotACollective,
};

CollectiveKind collective_kind(const std::string& name);

}  // namespace metascope::analysis
