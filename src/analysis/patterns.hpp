// The pattern (metric) hierarchy searched for by the analyzers.
//
// Base wait-state patterns follow KOJAK (paper §3, [18]); every one has a
// "grid" specialization that fires when the communication crosses
// metahost boundaries (paper §4 "Metacomputing patterns", Figure 4). The
// grid versions are children of their base pattern, mirroring the
// non-grid hierarchy exactly as the paper's browser arranges them. The
// two Completion patterns are Scalasca-style additions (not in the
// paper's fixed set): they cover the drain phase of a collective — the
// time an early-arriving member spends inside the operation after the
// last participant has finally arrived.
//
//   Time
//   └─ MPI
//      ├─ Communication
//      │  ├─ Point-to-point            (p2p op time that is not waiting)
//      │  │  ├─ Late Sender            ├─ Grid Late Sender
//      │  │  └─ Late Receiver          └─ Grid Late Receiver
//      │  └─ Collective                (collective comm time not waiting)
//      │     ├─ Early Reduce           ├─ Grid Early Reduce
//      │     ├─ Late Broadcast         ├─ Grid Late Broadcast
//      │     ├─ Wait at N x N          ├─ Grid Wait at N x N
//      │     └─ N x N Completion       └─ Grid N x N Completion
//      └─ Synchronization              (barrier time that is not waiting)
//         ├─ Wait at Barrier           ├─ Grid Wait at Barrier
//         └─ Barrier Completion        └─ Grid Barrier Completion
//
// Severities are exclusive: a wait counted in a grid child is not also in
// the base pattern; the base pattern's inclusive total covers both.
//
// Since the pattern-engine refactor this hierarchy is not hardwired:
// each pattern is a PatternDetector registered with a PatternRegistry
// (pattern_engine.hpp), which builds the metric tree from whatever set
// of detectors is enabled. PatternSet below is a convenience view over
// the well-known built-in metrics.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "report/cube.hpp"

namespace metascope::analysis {

/// Resolved metric ids of the built-in patterns — a view over a metric
/// tree built by PatternRegistry::install. Fields of patterns that were
/// not enabled (or of detectors missing from the registry) stay invalid;
/// callers that toggle patterns must check valid() before use.
struct PatternSet {
  MetricId time;
  MetricId mpi;
  MetricId communication;
  MetricId p2p;
  MetricId late_sender;
  MetricId grid_late_sender;
  MetricId late_receiver;
  MetricId grid_late_receiver;
  MetricId collective;
  MetricId early_reduce;
  MetricId grid_early_reduce;
  MetricId late_broadcast;
  MetricId grid_late_broadcast;
  MetricId wait_nxn;
  MetricId grid_wait_nxn;
  MetricId nxn_completion;
  MetricId grid_nxn_completion;
  MetricId synchronization;
  MetricId wait_barrier;
  MetricId grid_wait_barrier;
  MetricId barrier_completion;
  MetricId grid_barrier_completion;

  /// Fills every field whose well-known metric name exists in `tree`.
  static PatternSet from_tree(const report::MetricTree& tree);

  /// Base pattern or its grid child, by whether the wait crossed
  /// metahosts.
  [[nodiscard]] MetricId late_sender_of(bool grid) const {
    return grid ? grid_late_sender : late_sender;
  }
  [[nodiscard]] MetricId late_receiver_of(bool grid) const {
    return grid ? grid_late_receiver : late_receiver;
  }
  [[nodiscard]] MetricId early_reduce_of(bool grid) const {
    return grid ? grid_early_reduce : early_reduce;
  }
  [[nodiscard]] MetricId late_broadcast_of(bool grid) const {
    return grid ? grid_late_broadcast : late_broadcast;
  }
  [[nodiscard]] MetricId wait_nxn_of(bool grid) const {
    return grid ? grid_wait_nxn : wait_nxn;
  }
  [[nodiscard]] MetricId wait_barrier_of(bool grid) const {
    return grid ? grid_wait_barrier : wait_barrier;
  }
  [[nodiscard]] MetricId nxn_completion_of(bool grid) const {
    return grid ? grid_nxn_completion : nxn_completion;
  }
  [[nodiscard]] MetricId barrier_completion_of(bool grid) const {
    return grid ? grid_barrier_completion : barrier_completion;
  }
};

/// Where a region's exclusive time belongs in the metric tree.
enum class RegionCategory {
  User,             ///< -> Time (root) exclusive
  PointToPoint,     ///< MPI p2p calls
  Collective,       ///< MPI collective communication
  Synchronization,  ///< MPI_Barrier
};

/// Name-based classification — definition-time only. The analyzers never
/// call these per event: prepare() bakes the answers into a
/// RegionClassTable and the hot paths look classifications up by id.
RegionCategory classify_region(const std::string& name);

/// Collective pattern family by MPI region name.
enum class CollectiveKind {
  NxN,        ///< Allreduce / Allgather / Alltoall
  Barrier,    ///< Barrier
  OneToN,     ///< Bcast / Scatter (Late Broadcast family)
  NToOne,     ///< Reduce / Gather (Early Reduce family)
  NotACollective,
};

CollectiveKind collective_kind(const std::string& name);

/// RegionId -> {category, collective kind, blocking-send?} computed once
/// per analysis from the region name table, so per-event/per-message
/// classification on the replay hot path is an indexed load instead of a
/// string compare.
class RegionClassTable {
 public:
  RegionClassTable() = default;
  explicit RegionClassTable(const NameTable<RegionId>& regions);

  [[nodiscard]] RegionCategory category(RegionId id) const {
    return info_[index(id)].category;
  }
  [[nodiscard]] CollectiveKind kind(RegionId id) const {
    return info_[index(id)].kind;
  }
  /// True for the blocking standard send (MPI_Send) — the only region
  /// whose rendezvous handshake can produce a Late Receiver wait.
  [[nodiscard]] bool is_blocking_standard_send(RegionId id) const {
    return info_[index(id)].blocking_send;
  }
  [[nodiscard]] std::size_t size() const { return info_.size(); }

 private:
  struct Info {
    RegionCategory category{RegionCategory::User};
    CollectiveKind kind{CollectiveKind::NotACollective};
    bool blocking_send{false};
  };
  [[nodiscard]] std::size_t index(RegionId id) const {
    MSC_CHECK(id.valid() &&
                  static_cast<std::size_t>(id.get()) < info_.size(),
              "region id outside class table");
    return static_cast<std::size_t>(id.get());
  }
  std::vector<Info> info_;
};

}  // namespace metascope::analysis
