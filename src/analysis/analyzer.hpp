// The two trace analyzers (paper §3 "Trace analysis", §4 "Parallel trace
// analysis"):
//
//  - analyze_serial: the KOJAK-style baseline — conceptually merges the
//    local traces into one global stream and searches it in one pass;
//  - analyze_parallel: the SCALASCA-style analyzer — re-enacts the
//    application's communication, exchanging only the few bytes each
//    pattern needs (timestamps and call-path ids) instead of whole
//    traces. Each rank's replay is a resumable task driven by a bounded
//    worker pool (replay_scheduler.hpp), so the analysis scales to
//    thousands of ranks without spawning a thread per rank. Each task
//    touches only its own local trace, which is why this analyzer works
//    without a shared file system.
//
// Both collect match records into the shared replay core
// (replay_core.hpp), which evaluates the pattern formulas in one
// canonical order: the cubes are bit-identical, and tests enforce it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/patterns.hpp"
#include "report/cube.hpp"
#include "tracing/trace.hpp"

namespace metascope::tracing {
struct StreamSource;  // tracing/stream.hpp
}

namespace metascope::analysis {

/// Per-analysis summary counters. Since the telemetry refactor these
/// are *snapshots of the global metrics registry* (src/telemetry): the
/// live counting happens in registry counters — "analysis.messages",
/// "analysis.events", "replay.bytes", "replay.suspensions",
/// "replay.steals", "replay.requeues", … — and this struct captures the
/// per-run delta so existing callers keep a plain-value API. With
/// telemetry disabled (telemetry::set_enabled(false) or
/// -DMSC_NO_TELEMETRY) the registry-backed fields read zero.
struct AnalysisStats {
  std::size_t messages{0};
  std::size_t collective_instances{0};
  /// Bytes moved between analysis workers during the replay (parallel
  /// analyzer only). Compare against trace_bytes_in_memory: the paper's
  /// claim is that this is much smaller than shipping traces around.
  std::size_t replay_bytes{0};
  /// Resident size of the trace data the analysis held at its peak —
  /// deliberately NOT the encoded on-disk size, which depends on the
  /// trace format version and is accounted separately by the archive
  /// layer (telemetry counters archive.bytes_on_disk / .read.bytes).
  /// Materializing analyzers report tracing::in_memory_bytes of the
  /// whole collection; analyze_streaming counts only resident windows
  /// (plus the always-materialized sync records) and reports the
  /// high-water mark, which is what the memory budget bounds.
  std::size_t trace_bytes_in_memory{0};
  std::size_t events{0};

  // Replay-scheduler counters (parallel analyzer only; zero for serial).
  /// Worker threads the pool actually used.
  std::size_t replay_workers{0};
  /// Rank replay tasks driven to completion (== ranks).
  std::size_t replay_tasks{0};
  /// Times a task suspended on an unsatisfied Recv / incomplete
  /// collective instead of blocking a thread.
  std::size_t replay_suspensions{0};
  /// Tasks taken from another worker's run queue.
  std::size_t replay_steals{0};
  /// Tasks re-enqueued after a resume.
  std::size_t replay_requeues{0};
};

struct AnalysisResult {
  report::Cube cube;
  PatternSet patterns;
  AnalysisStats stats;
};

/// Tuning knobs shared by both analyzers.
struct ReplayOptions {
  /// Worker-pool size cap; 0 = std::thread::hardware_concurrency().
  /// The pool never exceeds the rank count. Tests pin this to exercise
  /// specific schedules (e.g. a 2-worker pool over 1024 ranks).
  /// Ignored by analyze_serial.
  std::size_t max_workers{0};
  /// Pattern-detector keys to enable (PatternRegistry::standard keys,
  /// e.g. "late_sender", "barrier_completion"). Empty = all detectors.
  /// The structural category time partition is always on. Throws Error
  /// on an unknown key.
  std::vector<std::string> patterns;
  /// When the parallel replay deadlocks and the flight recorder is on,
  /// dump the last N recorded events of every worker thread to stderr
  /// before throwing. 0 disables the postmortem. Ignored by
  /// analyze_serial.
  std::size_t postmortem_events{32};
  /// analyze_streaming only: cap on the decoded trace events resident
  /// across all ranks at once. Drives window *sizing* — each rank's
  /// window holds ~budget/(ranks * per-event footprint) events, floored
  /// at one event — never cross-rank blocking, so a tiny budget can
  /// degrade to single-event windows but can never deadlock the
  /// replay. A window extends past its nominal size only while a
  /// Send/Recv inside it still awaits its enclosing call's exit (in
  /// practice a handful of events: messages sit directly inside their
  /// MPI call region). 0 = a generous default window (4096 events per
  /// rank). Ignored by the materializing analyzers.
  std::size_t memory_budget_bytes{0};
};

/// Serial (merged-trace) pattern search. Requires a synchronized
/// collection (or scheme None, whose clocks are the engine's own).
AnalysisResult analyze_serial(const tracing::TraceCollection& tc,
                              const ReplayOptions& opts = {});

/// Parallel replay-based pattern search on a bounded worker pool:
/// message matching re-enacted over lock-striped in-memory channels,
/// one resumable task per rank. Produces a cube bit-identical to
/// analyze_serial, for any worker count.
AnalysisResult analyze_parallel(const tracing::TraceCollection& tc,
                                const ReplayOptions& opts = {});

/// Out-of-core streaming replay over a v3 archive: the same parallel
/// replay, but each rank task decodes its trace in bounded windows
/// straight out of the mapped file (tracing::TraceStream) instead of
/// materializing the event vectors first. Peak trace-resident memory is
/// bounded by ReplayOptions::memory_budget_bytes; the severity cube is
/// bit-identical to analyze_serial / analyze_parallel for any budget
/// and worker count. Requires a synchronized source (or scheme None) —
/// clock correction rewrites timestamps in memory, so archives must be
/// written *after* synchronization to be streamable.
AnalysisResult analyze_streaming(const tracing::StreamSource& src,
                                 const ReplayOptions& opts = {});

}  // namespace metascope::analysis
