// The two trace analyzers (paper §3 "Trace analysis", §4 "Parallel trace
// analysis"):
//
//  - analyze_serial: the KOJAK-style baseline — conceptually merges the
//    local traces into one global stream and searches it in one pass;
//  - analyze_parallel: the SCALASCA-style analyzer — one analysis worker
//    per application process replays the application's communication,
//    exchanging only the few bytes each pattern needs (timestamps and
//    call-path ids) instead of whole traces. Each worker touches only its
//    own local trace, which is why this analyzer works without a shared
//    file system.
//
// Both produce identical severity cubes; tests enforce it.
#pragma once

#include <cstddef>

#include "analysis/patterns.hpp"
#include "report/cube.hpp"
#include "tracing/trace.hpp"

namespace metascope::analysis {

struct AnalysisStats {
  std::size_t messages{0};
  std::size_t collective_instances{0};
  /// Bytes moved between analysis workers during the replay (parallel
  /// analyzer only). Compare against trace_bytes: the paper's claim is
  /// that this is much smaller than shipping traces around.
  std::size_t replay_bytes{0};
  /// Total encoded size of all local traces.
  std::size_t trace_bytes{0};
  std::size_t events{0};
};

struct AnalysisResult {
  report::Cube cube;
  PatternSet patterns;
  AnalysisStats stats;
};

/// Serial (merged-trace) pattern search. Requires a synchronized
/// collection (or scheme None, whose clocks are the engine's own).
AnalysisResult analyze_serial(const tracing::TraceCollection& tc);

/// Parallel replay-based pattern search: one worker thread per rank,
/// message matching re-enacted over in-memory channels. Produces a cube
/// bit-identical to analyze_serial.
AnalysisResult analyze_parallel(const tracing::TraceCollection& tc);

}  // namespace metascope::analysis
