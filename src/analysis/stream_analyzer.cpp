// Out-of-core streaming replay: the SCALASCA-style parallel analysis
// of parallel_analyzer.cpp, re-targeted at v3 archives on disk instead
// of materialized event vectors. Each rank task owns a windowed cursor
// (tracing::TraceStream) over its mapped trace file and decodes one
// bounded window of communication events at a time; a consumed window
// is evicted before the next one is brought in, so peak trace-resident
// memory is ~ budget instead of ~ trace size.
//
// Two streaming passes replace prepare():
//
//  - a *light* pass (serial, ranks in order) over the type/time/region/
//    comm/peer columns only: call-path ids are assigned by the identical
//    get_or_add walk the materializing prepare runs, every structural
//    check fires with the identical diagnostic, and collective-instance
//    completeness is validated up front so no replay task can wait on
//    an instance that never completes;
//  - the *window* pass inside each replay task: per-event annotation
//    (call-path tags via CallTree::find against the tree the light pass
//    built, enclosing-op windows, exclusive times) happens as events
//    decode, and only annotated communication events are retained.
//
// A window nominally holds budget/(ranks * per-event footprint) events
// and extends only while a Send/Recv in it still awaits its enclosing
// call's exit; the budget drives window *sizing*, never cross-rank
// blocking, so tiny budgets degrade to single-event windows but cannot
// deadlock. Severity accumulation order is unchanged — same per-rank
// exclusive-time chains, same canonical dispatch — so the cube is
// bit-identical to analyze_serial / analyze_parallel for any budget.
//
// Permissive sources (StreamSource::quarantined) are filtered on the
// fly, mirroring tracing::prune_quarantined: events of quarantined
// ranks never decode, surviving ranks drop Send/Recv with a
// quarantined peer, and CollExit on a communicator containing one
// degrades to a plain Exit.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/pattern_engine.hpp"
#include "analysis/prepare.hpp"
#include "analysis/replay_core.hpp"
#include "analysis/replay_scheduler.hpp"
#include "analysis/striped_map.hpp"
#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "tracing/stream.hpp"

namespace metascope::analysis {

using tracing::Event;
using tracing::EventType;

namespace {

constexpr std::size_t kPeerWireBytes = 24;
constexpr std::size_t kNoWaiter = static_cast<std::size_t>(-1);
/// Window size (events per rank) when no memory budget is given.
constexpr std::size_t kDefaultWindowEvents = 4096;
/// Decode granularity: events pulled from the column cursors per call.
/// Bounded so the lookahead ring stays small next to tiny windows.
constexpr std::size_t kMaxDecodeChunk = 256;

struct PeerInfo {
  Rank rank{kNoRank};
  double op_enter{0.0};
  double op_exit{0.0};
  CallPathId cnode;
};

struct Channel {
  std::deque<PeerInfo> q;
  std::size_t waiter{kNoWaiter};
};

struct ChannelKey {
  Rank src{kNoRank};
  Rank dst{kNoRank};
  int tag{0};
  int comm{0};
  bool operator==(const ChannelKey&) const = default;
};

struct ChannelKeyHash {
  std::size_t operator()(const ChannelKey& k) const {
    std::size_t h = std::hash<int>{}(k.src);
    h = hash_combine(h, std::hash<int>{}(k.dst));
    h = hash_combine(h, std::hash<int>{}(k.tag));
    return hash_combine(h, std::hash<int>{}(k.comm));
  }
};

struct CollGroup {
  std::vector<CollMember> members;
  Rank root{kNoRank};
  RegionId region;
  std::vector<std::size_t> waiters;
};

struct CollKey {
  int comm{0};
  int seq{0};
  bool operator==(const CollKey&) const = default;
};

struct CollKeyHash {
  std::size_t operator()(const CollKey& k) const {
    return hash_combine(std::hash<int>{}(k.comm), std::hash<int>{}(k.seq));
  }
};

/// One annotated communication event resident in a rank's window.
struct WinEvent {
  Event e;
  CallPathId cnode;
  double op_enter{0.0};
  double op_exit{0.0};
  /// Position in the rank's filtered event stream — the canonical
  /// receive-order sort key (monotone per rank, like the materialized
  /// analyzers' raw event index over the pruned collection).
  std::uint32_t index{0};
};

/// Quarantine filtering state, mirroring tracing::prune_quarantined.
struct QuarantineFilter {
  std::vector<char> rank_q;  ///< by rank: events of these never decode
  std::vector<char> comm_q;  ///< by comm: collectives here degrade

  [[nodiscard]] bool drop_msg(std::int64_t peer) const {
    return peer >= 0 && peer < static_cast<std::int64_t>(rank_q.size()) &&
           rank_q[static_cast<std::size_t>(peer)] != 0;
  }
  [[nodiscard]] bool degrade_coll(int comm) const {
    return comm_q[static_cast<std::size_t>(comm)] != 0;
  }
};

/// Trace-resident byte accounting shared by every rank task: the live
/// total feeds the "analysis.stream.resident_bytes" gauge, the atomic
/// high-water mark is authoritative for AnalysisStats (it works with
/// telemetry disabled) and also raises the
/// "analysis.stream.resident_bytes_peak" gauge.
class Residency {
 public:
  Residency()
      : cur_gauge_(telemetry::gauge("analysis.stream.resident_bytes")),
        peak_gauge_(telemetry::gauge("analysis.stream.resident_bytes_peak")) {}

  void adjust(std::ptrdiff_t delta) {
    const std::size_t cur =
        now_.fetch_add(static_cast<std::size_t>(delta),
                       std::memory_order_relaxed) +
        static_cast<std::size_t>(delta);
    cur_gauge_.set(static_cast<double>(cur));
    std::size_t p = peak_.load(std::memory_order_relaxed);
    while (cur > p &&
           !peak_.compare_exchange_weak(p, cur, std::memory_order_relaxed)) {
    }
    peak_gauge_.max(static_cast<double>(cur));
  }

  [[nodiscard]] std::size_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> now_{0};
  std::atomic<std::size_t> peak_{0};
  telemetry::Gauge& cur_gauge_;
  telemetry::Gauge& peak_gauge_;
};

/// One open frame of the window pass's region stack.
struct Frame {
  CallPathId cnode;
  double enter_time{0.0};
  double child_time{0.0};
  /// Window slots of Send/Recv events awaiting this frame's exit.
  std::vector<std::uint32_t> open_ops;
};

/// Everything one rank task owns: the mapped file and its windowed
/// cursor, the persistent annotation state bridging windows, the
/// current window, and the replay-side state.
struct RankStream {
  MappedFile file;
  std::optional<tracing::TraceStream> ts;  ///< nullopt: quarantined rank

  // Decoded-but-unannotated lookahead ring (bounded by kMaxDecodeChunk).
  std::vector<Event> raw;
  std::size_t rpos{0};

  // Annotation state, persistent across windows.
  std::vector<Frame> stack;
  std::size_t open_ops{0};      ///< unfilled Send/Recv in current window
  std::map<int, double> excl;   ///< per-cnode exclusive seconds
  std::uint32_t next_index{0};  ///< filtered-stream position

  // Current window.
  std::vector<WinEvent> win;
  std::size_t wpos{0};
  std::size_t resident{0};       ///< bytes this rank currently accounts
  std::uint32_t windows_filled{0};

  // Replay state.
  std::vector<int> coll_seq;
  std::vector<P2pRecord> records;
  std::uint64_t wire_bytes{0};

  // Tallies from the light pass.
  std::uint64_t events_kept{0};
  std::uint64_t pruned{0};
};

[[noreturn]] void fail_at(Rank rank, std::uint32_t i, const char* what) {
  std::ostringstream os;
  os << "malformed trace: rank " << rank << " event " << i << ": " << what;
  throw Error(os.str());
}

/// The light pass over one rank: the identical serial walk prepare()'s
/// pass 1 runs — get_or_add at every Enter, every structural check with
/// the identical diagnostic — plus per-communicator collective counts
/// for the completeness validation. Quarantine filtering is applied
/// first, so indices in diagnostics match the pruned collection's.
void light_pass(Rank rank, const tracing::TraceStream& ts,
                const QuarantineFilter& filt, report::CallTree& calls,
                std::vector<std::vector<int>>& coll_counts, RankStream& rs) {
  struct Open {
    CallPathId cnode;
    double enter_time;
  };
  std::vector<Open> stack;
  std::uint32_t idx = 0;
  ts.scan_light([&](const tracing::LightEvent& le) {
    EventType type = le.type;
    if ((type == EventType::Send || type == EventType::Recv) &&
        filt.drop_msg(le.peer)) {
      ++rs.pruned;
      return;
    }
    if (type == EventType::CollExit &&
        filt.degrade_coll(static_cast<int>(le.comm))) {
      type = EventType::Exit;
      ++rs.pruned;
    }
    switch (type) {
      case EventType::Enter: {
        const CallPathId parent =
            stack.empty() ? CallPathId{} : stack.back().cnode;
        const CallPathId c =
            calls.get_or_add(parent, RegionId{static_cast<int>(le.region)});
        stack.push_back(Open{c, le.time});
        break;
      }
      case EventType::Exit:
      case EventType::CollExit: {
        if (stack.empty()) fail_at(rank, idx, "Exit without Enter");
        if (le.time - stack.back().enter_time < 0.0)
          fail_at(rank, idx, "negative region duration");
        stack.pop_back();
        if (type == EventType::CollExit)
          ++coll_counts[static_cast<std::size_t>(le.comm)]
                       [static_cast<std::size_t>(rank)];
        break;
      }
      case EventType::Send:
      case EventType::Recv: {
        if (stack.empty())
          fail_at(rank, idx, "message event outside any region");
        break;
      }
    }
    ++idx;
  });
  if (!stack.empty()) fail_at(rank, idx, "unclosed region");
  rs.events_kept = idx;
}

}  // namespace

AnalysisResult analyze_streaming(const tracing::StreamSource& src,
                                 const ReplayOptions& opts) {
  const tracing::TraceCollection& tc = src.defs;
  MSC_CHECK(tc.synchronized || tc.scheme == tracing::SyncScheme::None,
            "analyze_streaming requires synchronized timestamps");
  const auto n = static_cast<std::size_t>(tc.num_ranks());
  MSC_CHECK(src.paths.size() == n, "stream source paths/defs mismatch");
  const tracing::TraceDefs& defs = tc.defs;

  QuarantineFilter filt;
  filt.rank_q.assign(n, 0);
  for (const Rank r : src.quarantined)
    filt.rank_q[static_cast<std::size_t>(r)] = 1;
  filt.comm_q.assign(defs.comms.size(), 0);
  for (const auto& comm : defs.comms)
    for (const Rank r : comm.members)
      if (filt.rank_q[static_cast<std::size_t>(r)] != 0)
        filt.comm_q[static_cast<std::size_t>(comm.id.get())] = 1;

  AnalysisResult res;
  report::CallTree calls;
  const RegionClassTable region_table(defs.regions);
  std::vector<RankStream> streams(n);
  Residency residency;
  telemetry::Counter& windows_counter =
      telemetry::counter("analysis.stream.windows");

  // Streaming prepare: open every surviving rank's file and run the
  // light pass, ranks in ascending order so call-path ids match the
  // materializing prepare exactly. Quarantined ranks stay closed and
  // stream zero events.
  {
    telemetry::ScopedSpan span("prepare");
    std::vector<std::vector<int>> coll_counts(
        defs.comms.size(), std::vector<int>(n, 0));
    // Opening + header/type-stream validation is per-rank independent
    // and syscall-heavy (open, mmap, first page faults), so it fans out
    // like read_traces' decode. The call-path walk below stays serial in
    // rank order — that order is what makes the ids match the
    // materializing prepare. An open error is stashed, not thrown: the
    // serial walk rethrows it at the rank's slot, so the surfacing rank
    // is the lowest failing one exactly as under the old serial loop.
    std::vector<std::exception_ptr> open_err(n);
    parallel_for(n, opts.max_workers, [&](std::size_t r) {
      if (filt.rank_q[r] != 0) return;
      RankStream& rs = streams[r];
      try {
        rs.file = MappedFile::open(src.paths[r], src.use_mmap);
        rs.ts.emplace(rs.file.data(), rs.file.size(), src.paths[r]);
      } catch (const Error&) {
        open_err[r] = std::current_exception();
      }
    });
    for (std::size_t r = 0; r < n; ++r) {
      RankStream& rs = streams[r];
      rs.coll_seq.assign(defs.comms.size(), 0);
      if (filt.rank_q[r] != 0) continue;
      try {
        if (open_err[r]) std::rethrow_exception(open_err[r]);
        light_pass(static_cast<Rank>(r), *rs.ts, filt, calls, coll_counts,
                   rs);
      } catch (const Error& e) {
        throw e.with_context(
            ErrorContext{src.paths[r], static_cast<Rank>(r), -1});
      }
      // Sync records are materialized for the stream's whole lifetime;
      // window bytes come and go on top of this floor.
      rs.resident =
          rs.ts->sync().size() * sizeof(tracing::OffsetRecord);
      residency.adjust(static_cast<std::ptrdiff_t>(rs.resident));
    }

    // Collective-completeness validation, identical to prepare()'s:
    // failing here (instead of mid-replay) means no task can wait on an
    // instance that never completes.
    for (const auto& comm : defs.comms) {
      const auto& counts =
          coll_counts[static_cast<std::size_t>(comm.id.get())];
      for (const Rank r : comm.members) {
        const int expected =
            counts[static_cast<std::size_t>(comm.members.front())];
        if (counts[static_cast<std::size_t>(r)] != expected) {
          std::ostringstream os;
          os << "incomplete collective instance in trace: rank " << r
             << " recorded " << counts[static_cast<std::size_t>(r)]
             << " collectives on communicator " << comm.id.get()
             << " but rank " << comm.members.front() << " recorded "
             << expected;
          throw Error(os.str());
        }
      }
    }
    telemetry::counter("prepare.ranks").add(n);
    telemetry::counter("prepare.call_paths").add(calls.size());
  }

  PatternRegistry registry = PatternRegistry::standard();
  registry.select(opts.patterns);
  PatternEngine engine(registry, res.cube);
  res.patterns = engine.install_trees(tc, calls, region_table);

  // Window sizing: the budget bounds the bytes of annotated events
  // resident across all ranks at once; the floor of one event per rank
  // keeps a pathological budget from stalling (it degrades to
  // single-event windows instead).
  const std::size_t window_events =
      opts.memory_budget_bytes == 0
          ? kDefaultWindowEvents
          : std::max<std::size_t>(
                1, opts.memory_budget_bytes /
                       (std::max<std::size_t>(n, 1) * sizeof(WinEvent)));
  const std::size_t chunk =
      std::max<std::size_t>(1, std::min(window_events, kMaxDecodeChunk));

  // Evicts the consumed window and decodes + annotates the next one.
  // The window extends past its nominal size only while a Send/Recv in
  // it still awaits its enclosing call's exit, which is what guarantees
  // every op window is complete before the replay consumes the event.
  auto fill_window = [&](RankStream& rs) {
    rs.win.clear();
    rs.wpos = 0;
    tracing::TraceStream& ts = *rs.ts;
    while (rs.win.size() < window_events || rs.open_ops > 0) {
      if (rs.rpos == rs.raw.size()) {
        if (ts.at_end()) break;
        rs.raw.clear();
        rs.rpos = 0;
        ts.next(rs.raw, chunk);
        continue;
      }
      const Event& e = rs.raw[rs.rpos++];
      EventType type = e.type;
      if ((type == EventType::Send || type == EventType::Recv) &&
          filt.drop_msg(e.peer))
        continue;
      if (type == EventType::CollExit && filt.degrade_coll(e.comm.get()))
        type = EventType::Exit;
      switch (type) {
        case EventType::Enter: {
          const CallPathId parent =
              rs.stack.empty() ? CallPathId{} : rs.stack.back().cnode;
          const CallPathId c = calls.find(parent, e.region);
          MSC_CHECK(c.valid(), "streaming window pass met a call path "
                               "the light pass never created");
          rs.stack.push_back(Frame{c, e.time, 0.0, {}});
          break;
        }
        case EventType::Exit:
        case EventType::CollExit: {
          Frame f = std::move(rs.stack.back());
          rs.stack.pop_back();
          const double dur = e.time - f.enter_time;
          rs.excl[f.cnode.get()] += dur - f.child_time;
          if (!rs.stack.empty()) rs.stack.back().child_time += dur;
          for (const std::uint32_t slot : f.open_ops) {
            rs.win[slot].op_enter = f.enter_time;
            rs.win[slot].op_exit = e.time;
          }
          rs.open_ops -= f.open_ops.size();
          if (type == EventType::CollExit) {
            WinEvent w;
            w.e = e;
            w.cnode = f.cnode;
            w.op_enter = f.enter_time;
            w.op_exit = e.time;
            w.index = rs.next_index;
            rs.win.push_back(w);
          }
          break;
        }
        case EventType::Send:
        case EventType::Recv: {
          WinEvent w;
          w.e = e;
          w.cnode = rs.stack.back().cnode;
          w.index = rs.next_index;
          rs.win.push_back(w);
          rs.stack.back().open_ops.push_back(
              static_cast<std::uint32_t>(rs.win.size() - 1));
          ++rs.open_ops;
          break;
        }
      }
      ++rs.next_index;
    }
    MSC_CHECK(rs.open_ops == 0,
              "streaming window closed with unfilled message ops");
    const std::size_t now =
        rs.win.capacity() * sizeof(WinEvent) +
        rs.raw.capacity() * sizeof(Event) +
        rs.ts->sync().size() * sizeof(tracing::OffsetRecord);
    // Capacities go quiescent after the first few windows; skipping the
    // no-op adjust keeps the shared atomics off the steady-state path.
    if (now != rs.resident) {
      residency.adjust(static_cast<std::ptrdiff_t>(now) -
                       static_cast<std::ptrdiff_t>(rs.resident));
      rs.resident = now;
    }
  };

  telemetry::ScopedSpan replay_span("replay");
  StripedMap<ChannelKey, Channel, ChannelKeyHash> channels;
  StripedMap<CollKey, CollGroup, CollKeyHash> colls;
  telemetry::Counter& replay_bytes = telemetry::counter("replay.bytes");
  const std::uint64_t replay_bytes0 = replay_bytes.value();

  ReplayScheduler sched(n, opts.max_workers, opts.postmortem_events);

  auto step = [&](std::size_t ti) -> StepResult {
    const Rank me = static_cast<Rank>(ti);
    RankStream& rs = streams[ti];
    if (!rs.ts) return StepResult::Done;  // quarantined: zero events
    for (;;) {
      if (rs.wpos == rs.win.size()) {
        if (rs.ts->at_end() && rs.rpos == rs.raw.size() &&
            rs.wpos == rs.win.size() && rs.win.empty()) {
          // Fully consumed: release the last resident bytes and flush
          // this rank's window tally in one add (per-window counter
          // bumps would contend across workers under tiny budgets).
          residency.adjust(-static_cast<std::ptrdiff_t>(rs.resident));
          rs.resident = 0;
          rs.raw = {};
          rs.win = {};
          // Unmap here, on the worker, rather than in the analyzer's
          // epilogue: the stream is consumed, and a thousand munmaps
          // overlap the still-running ranks instead of serializing
          // after the replay. The cursor borrows the mapping's bytes,
          // so it goes first.
          rs.ts.reset();
          rs.file = MappedFile();
          windows_counter.add(rs.windows_filled);
          rs.windows_filled = 0;
          return StepResult::Done;
        }
        fill_window(rs);
        if (rs.win.empty()) continue;  // Enter/Exit-only tail -> Done
        // Periodic cooperative yield: hand the worker back so other
        // ranks' windows interleave under tiny budgets, but only every
        // 32nd window — yielding on every fill dominates the replay
        // wall once single-event windows make fills cheap and frequent.
        // Self-resume before Suspend is the pool's sanctioned yield
        // (the Notified state requeues us). Correctness never depends
        // on this: blocking ops suspend on their own.
        if (++rs.windows_filled % 32 == 0) {
          sched.resume(ti);
          return StepResult::Suspend;
        }
        continue;
      }
      const WinEvent& w = rs.win[rs.wpos];
      switch (w.e.type) {
        case EventType::Send: {
          std::size_t waiter = kNoWaiter;
          channels.with(
              ChannelKey{me, w.e.peer, w.e.tag, w.e.comm.get()},
              [&](Channel& c) {
                c.q.push_back(
                    PeerInfo{me, w.op_enter, w.op_exit, w.cnode});
                std::swap(waiter, c.waiter);
              });
          rs.wire_bytes += kPeerWireBytes;
          ++rs.wpos;
          if (waiter != kNoWaiter) sched.resume(waiter);
          break;
        }
        case EventType::Recv: {
          PeerInfo got;
          bool have = false;
          channels.with(ChannelKey{w.e.peer, me, w.e.tag, w.e.comm.get()},
                        [&](Channel& c) {
                          if (!c.q.empty()) {
                            got = c.q.front();
                            c.q.pop_front();
                            have = true;
                          } else {
                            c.waiter = ti;
                          }
                        });
          // Suspend *before* consuming: the sender that fills the
          // channel resumes us and the retry is guaranteed to pop.
          if (!have) return StepResult::Suspend;
          rs.records.push_back(P2pRecord{
              P2pSide{got.rank, got.op_enter, got.op_exit, got.cnode,
                      calls.node(got.cnode).region},
              P2pSide{me, w.op_enter, w.op_exit, w.cnode,
                      calls.node(w.cnode).region},
              w.index});
          ++rs.wpos;
          break;
        }
        case EventType::CollExit: {
          const int comm_id = w.e.comm.get();
          const int seq = rs.coll_seq[static_cast<std::size_t>(comm_id)]++;
          const auto& comm = defs.comms[static_cast<std::size_t>(comm_id)];
          bool complete = false;
          std::vector<std::size_t> waiters;
          colls.with(CollKey{comm_id, seq}, [&](CollGroup& g) {
            CollMember m;
            m.rank = me;
            m.enter = w.op_enter;
            m.exit = w.op_exit;
            m.cnode = w.cnode;
            g.members.push_back(m);
            g.root = w.e.root;
            g.region = w.e.region;
            if (g.members.size() == comm.members.size()) {
              complete = true;
              waiters.swap(g.waiters);
            } else {
              g.waiters.push_back(ti);
            }
          });
          rs.wire_bytes += kPeerWireBytes;
          // Our arrival is recorded either way: advance past the event
          // before suspending so the resumed task does not re-enroll.
          ++rs.wpos;
          if (!complete) return StepResult::Suspend;
          for (const std::size_t wt : waiters) sched.resume(wt);
          break;
        }
        case EventType::Enter:
        case EventType::Exit:
          // Unreachable: windows retain communication events only.
          ++rs.wpos;
          break;
      }
    }
  };

  sched.run(step);

  // Region pass before dispatch — the same cube add order as the
  // materializing analyzers (install's region pass precedes their
  // replay): per-rank exclusive times come out of the window pass's
  // accumulators, sorted by call-path id (map iteration order).
  std::vector<std::vector<ExclusiveTime>> excl_time(n);
  for (std::size_t r = 0; r < n; ++r) {
    auto& et = excl_time[r];
    et.reserve(streams[r].excl.size());
    for (const auto& [cnode, seconds] : streams[r].excl)
      et.push_back(ExclusiveTime{CallPathId{cnode}, seconds});
  }
  engine.region_pass(excl_time);

  std::vector<P2pRecord> p2p;
  for (auto& rs : streams) {
    p2p.insert(p2p.end(), rs.records.begin(), rs.records.end());
    rs.records.clear();
  }
  std::vector<CollInstance> instances;
  colls.for_each([&](const CollKey& key, CollGroup& g) {
    CollInstance inst;
    inst.comm = key.comm;
    inst.seq = key.seq;
    inst.members = std::move(g.members);
    inst.root = g.root;
    inst.region = g.region;
    instances.push_back(std::move(inst));
  });
  engine.dispatch(std::move(p2p), std::move(instances), res.stats);

  std::uint64_t total_events = 0;
  std::uint64_t pruned = 0;
  std::uint64_t wire_total = 0;
  for (const RankStream& rs : streams) {
    total_events += rs.events_kept;
    pruned += rs.pruned;
    wire_total += rs.wire_bytes;
  }
  res.stats.events = total_events;
  // "Resident" under streaming = the high-water mark of bytes the
  // windows (plus materialized sync records) held at once — what the
  // memory budget actually bounds, not the full collection size.
  res.stats.trace_bytes_in_memory = residency.peak();
  telemetry::counter("analysis.events").add(total_events);
  telemetry::counter("analysis.trace_bytes_in_memory")
      .add(res.stats.trace_bytes_in_memory);
  if (pruned > 0)
    telemetry::counter("archive.read.pruned_events").add(pruned);
  replay_bytes.add(wire_total);
  res.stats.replay_bytes = replay_bytes.value() - replay_bytes0;
  const SchedulerStats& ss = sched.stats();
  res.stats.replay_workers = ss.workers;
  res.stats.replay_tasks = ss.tasks;
  res.stats.replay_suspensions = ss.suspensions;
  res.stats.replay_steals = ss.steals;
  res.stats.replay_requeues = ss.requeues;
  return res;
}

}  // namespace metascope::analysis
