// The built-in pattern detectors (paper §3–§4 wait states, KOJAK [18],
// plus the two Scalasca-style Completion patterns), expressed as
// pattern-engine callbacks. Each detector evaluates the pure formulas
// from wait_rules.hpp against its callback context and emits through
// the PatternSink; none of them keeps cross-record state, so the
// engine's canonical dispatch order fully determines the accumulation.
#include <memory>

#include "analysis/pattern_engine.hpp"
#include "analysis/wait_rules.hpp"
#include "common/error.hpp"

namespace metascope::analysis {

namespace {

// --- structural: the category time partition -----------------------------

/// Accumulates every rank's exclusive region time into its category
/// metric (Time / Point-to-point / Collective / Synchronization). Wait
/// detectors afterwards move time out of the categories into patterns,
/// so severity stays an exact partition of total time. Structural:
/// always enabled, owns no metric node of its own.
class CategoryTimeDetector final : public PatternDetector {
 public:
  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "category_time", MetricNodeSpec{}, kOnRegion, /*structural=*/true};
    return s;
  }

  void bind(const report::MetricTree& tree) override {
    time_ = tree.find("Time");
    p2p_ = tree.find("Point-to-point");
    collective_ = tree.find("Collective");
    synchronization_ = tree.find("Synchronization");
  }

  void region_exit(const RegionCtx& ctx, PatternSink& sink) override {
    sink.base_time(metric_for(ctx.category), ctx.cnode, ctx.rank,
                   ctx.seconds);
  }

 private:
  [[nodiscard]] MetricId metric_for(RegionCategory cat) const {
    switch (cat) {
      case RegionCategory::User: return time_;
      case RegionCategory::PointToPoint: return p2p_;
      case RegionCategory::Collective: return collective_;
      case RegionCategory::Synchronization: return synchronization_;
    }
    MSC_ASSERT(false, "unknown region category");
  }

  MetricId time_, p2p_, collective_, synchronization_;
};

// --- point-to-point ------------------------------------------------------

class LateSenderDetector final : public PatternDetector {
 public:
  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "late_sender",
        MetricNodeSpec{
            "Late Sender",
            "Blocking receive posted earlier than the matching send",
            "Point-to-point", "Grid Late Sender",
            "Late Sender with sender and receiver on different metahosts"},
        kOnP2p};
    return s;
  }

  void p2p_matched(const P2pCtx& ctx, PatternSink& sink) override {
    const double w = late_sender_wait(*ctx.send, *ctx.recv);
    if (w <= 0.0) return;
    sink.severity(metric_of(ctx.grid), category_, ctx.recv->cnode,
                  ctx.recv->rank, w, ctx.defs->metahost_of(ctx.recv->rank),
                  ctx.defs->metahost_of(ctx.send->rank));
  }
};

class LateReceiverDetector final : public PatternDetector {
 public:
  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "late_receiver",
        MetricNodeSpec{
            "Late Receiver",
            "Sender blocked in a synchronous send until the receive was "
            "posted",
            "Point-to-point", "Grid Late Receiver",
            "Late Receiver with sender and receiver on different metahosts"},
        kOnP2p};
    return s;
  }

  void p2p_matched(const P2pCtx& ctx, PatternSink& sink) override {
    const double w = late_receiver_wait(*ctx.send, *ctx.recv,
                                        ctx.send_is_blocking_standard);
    if (w <= 0.0) return;
    sink.severity(metric_of(ctx.grid), category_, ctx.send->cnode,
                  ctx.send->rank, w, ctx.defs->metahost_of(ctx.send->rank),
                  ctx.defs->metahost_of(ctx.recv->rank));
  }
};

// --- collectives ---------------------------------------------------------

class EarlyReduceDetector final : public PatternDetector {
 public:
  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "early_reduce",
        MetricNodeSpec{
            "Early Reduce",
            "Root of an N-to-1 operation waiting for the last contribution",
            "Collective", "Grid Early Reduce",
            "Early Reduce on a communicator spanning metahosts"},
        kOnCollective};
    return s;
  }

  void collective_completed(const CollCtx& ctx, PatternSink& sink) override {
    if (ctx.kind != CollectiveKind::NToOne) return;
    // The root waits until the last contribution was sent.
    MSC_CHECK(ctx.root != kNoRank, "N-to-1 collective without root");
    const CollMember* root_m = nullptr;
    double last_sender_enter = -kInfTime;
    MetahostId last_sender_mh;
    for (const CollMember& m : *ctx.members) {
      if (m.rank == ctx.root) {
        root_m = &m;
      } else if (m.enter > last_sender_enter) {
        last_sender_enter = m.enter;
        last_sender_mh = ctx.defs->metahost_of(m.rank);
      }
    }
    MSC_CHECK(root_m != nullptr, "root not among collective members");
    if (ctx.members->size() <= 1) return;
    const double w = clamp_wait(last_sender_enter - root_m->enter,
                                root_m->exit - root_m->enter);
    if (w <= 0.0) return;
    sink.severity(metric_of(ctx.grid), category_, root_m->cnode,
                  root_m->rank, w, ctx.defs->metahost_of(root_m->rank),
                  last_sender_mh);
  }
};

class LateBroadcastDetector final : public PatternDetector {
 public:
  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "late_broadcast",
        MetricNodeSpec{
            "Late Broadcast",
            "Non-root entered a 1-to-N operation before the root",
            "Collective", "Grid Late Broadcast",
            "Late Broadcast on a communicator spanning metahosts"},
        kOnCollective};
    return s;
  }

  void collective_completed(const CollCtx& ctx, PatternSink& sink) override {
    if (ctx.kind != CollectiveKind::OneToN) return;
    // Non-roots entering before the root wait for the root's data.
    MSC_CHECK(ctx.root != kNoRank, "1-to-N collective without root");
    double root_enter = 0.0;
    bool found = false;
    for (const CollMember& m : *ctx.members) {
      if (m.rank == ctx.root) {
        root_enter = m.enter;
        found = true;
      }
    }
    MSC_CHECK(found, "root not among collective members");
    for (const CollMember& m : *ctx.members) {
      if (m.rank == ctx.root) continue;
      const double w = clamp_wait(root_enter - m.enter, m.exit - m.enter);
      if (w <= 0.0) continue;
      sink.severity(metric_of(ctx.grid), category_, m.cnode, m.rank, w,
                    ctx.defs->metahost_of(m.rank),
                    ctx.defs->metahost_of(ctx.root));
    }
  }
};

/// Shared body of Wait at N x N / Wait at Barrier: every member's time
/// from its own entry until the last participant arrived.
class WaitAtCollectiveDetector : public PatternDetector {
 protected:
  explicit WaitAtCollectiveDetector(CollectiveKind kind) : kind_(kind) {}

 public:
  void collective_completed(const CollCtx& ctx, PatternSink& sink) override {
    if (ctx.kind != kind_) return;
    for (const CollMember& m : *ctx.members) {
      const double w =
          clamp_wait(ctx.last_enter - m.enter, m.exit - m.enter);
      if (w <= 0.0) continue;
      sink.severity(metric_of(ctx.grid), category_, m.cnode, m.rank, w,
                    ctx.defs->metahost_of(m.rank), ctx.last_enter_mh);
    }
  }

 private:
  CollectiveKind kind_;
};

class WaitAtNxNDetector final : public WaitAtCollectiveDetector {
 public:
  WaitAtNxNDetector() : WaitAtCollectiveDetector(CollectiveKind::NxN) {}

  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "wait_nxn",
        MetricNodeSpec{
            "Wait at N x N",
            "Time in an N-to-N operation until all participants reached it",
            "Collective", "Grid Wait at N x N",
            "Wait at N x N on a communicator spanning metahosts"},
        kOnCollective};
    return s;
  }
};

class WaitAtBarrierDetector final : public WaitAtCollectiveDetector {
 public:
  WaitAtBarrierDetector()
      : WaitAtCollectiveDetector(CollectiveKind::Barrier) {}

  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "wait_barrier",
        MetricNodeSpec{
            "Wait at Barrier",
            "Time in a barrier until all participants reached it",
            "Synchronization", "Grid Wait at Barrier",
            "Wait at Barrier on a communicator spanning metahosts"},
        kOnCollective};
    return s;
  }
};

/// Shared body of the two Completion patterns: for members that arrived
/// before the last participant, the tail of their dwell after that last
/// arrival — the operation's drain phase. Members arriving at the last
/// enter time (every member of a single-member or simultaneously
/// entered instance) contribute nothing, so the detectors emit zero —
/// never negative — severity on those edge cases.
class CompletionDetector : public PatternDetector {
 protected:
  explicit CompletionDetector(CollectiveKind kind) : kind_(kind) {}

 public:
  void collective_completed(const CollCtx& ctx, PatternSink& sink) override {
    if (ctx.kind != kind_) return;
    for (const CollMember& m : *ctx.members) {
      const double w = collective_completion_wait(ctx.last_enter, m);
      if (w <= 0.0) continue;
      sink.severity(metric_of(ctx.grid), category_, m.cnode, m.rank, w,
                    ctx.defs->metahost_of(m.rank), ctx.last_enter_mh);
    }
  }

 private:
  CollectiveKind kind_;
};

class NxNCompletionDetector final : public CompletionDetector {
 public:
  NxNCompletionDetector() : CompletionDetector(CollectiveKind::NxN) {}

  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "nxn_completion",
        MetricNodeSpec{
            "N x N Completion",
            "Time completing an N-to-N operation after the last "
            "participant arrived",
            "Collective", "Grid N x N Completion",
            "N x N Completion on a communicator spanning metahosts"},
        kOnCollective};
    return s;
  }
};

class BarrierCompletionDetector final : public CompletionDetector {
 public:
  BarrierCompletionDetector()
      : CompletionDetector(CollectiveKind::Barrier) {}

  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "barrier_completion",
        MetricNodeSpec{
            "Barrier Completion",
            "Time completing a barrier after the last participant arrived",
            "Synchronization", "Grid Barrier Completion",
            "Barrier Completion on a communicator spanning metahosts"},
        kOnCollective};
    return s;
  }
};

}  // namespace

PatternRegistry PatternRegistry::standard() {
  PatternRegistry reg;
  // Registration order is the per-record dispatch order and therefore
  // part of the bit-exactness contract: Late Sender before Late
  // Receiver mirrors the pre-engine hit-emission order, and the wait
  // detectors precede their Completion counterparts.
  reg.add(std::make_unique<CategoryTimeDetector>());
  reg.add(std::make_unique<LateSenderDetector>());
  reg.add(std::make_unique<LateReceiverDetector>());
  reg.add(std::make_unique<EarlyReduceDetector>());
  reg.add(std::make_unique<LateBroadcastDetector>());
  reg.add(std::make_unique<WaitAtNxNDetector>());
  reg.add(std::make_unique<NxNCompletionDetector>());
  reg.add(std::make_unique<WaitAtBarrierDetector>());
  reg.add(std::make_unique<BarrierCompletionDetector>());
  return reg;
}

}  // namespace metascope::analysis
