// Pre-analysis pass ("definition unification"): builds the global call
// tree, annotates every event with its call path and enclosing-operation
// times, and accumulates per-call-path exclusive times. Call-path ids
// are assigned in a serial first pass (ranks in order, events in order)
// so that ids — and therefore cubes — are bit-identical between the
// serial and the parallel analysis for any worker count; the heavy
// per-event annotation then fans out one task per rank.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/patterns.hpp"
#include "report/cube.hpp"
#include "tracing/trace.hpp"

namespace metascope::analysis {

/// Per-event annotations for one rank, index-aligned with the trace's
/// event vector.
struct EventAnnotations {
  /// Call path the event belongs to (for Enter: the entered path).
  std::vector<CallPathId> cnode;
  /// For Send/Recv/CollExit events: timestamp of the enclosing MPI call's
  /// Enter. Zero for other events.
  std::vector<double> op_enter;
  /// For Send/Recv/CollExit events: timestamp of the enclosing MPI call's
  /// Exit (== CollExit time for collectives).
  std::vector<double> op_exit;
  /// Indices of the communication events (Send/Recv/CollExit), in trace
  /// order. Replay loops iterate this instead of the full event vector,
  /// skipping Enter/Exit entirely.
  std::vector<std::uint32_t> op_events;
};

/// One (call path, seconds) exclusive-time contribution.
struct ExclusiveTime {
  CallPathId cnode;
  double seconds{0.0};
};

struct PreparedTrace {
  const tracing::TraceCollection* tc{nullptr};
  report::CallTree calls;
  /// RegionId -> {category, collective kind, blocking-send?}, computed
  /// once here so replay hot paths never classify by region name.
  RegionClassTable region_table;
  std::vector<EventAnnotations> per_rank;
  /// Exclusive time per call path, per rank (summed over occurrences).
  std::vector<std::vector<ExclusiveTime>> excl_time;
  /// Per-rank span (last event time - first event time).
  std::vector<double> rank_span;
};

/// Annotates all ranks. Throws Error on malformed traces (unbalanced
/// Enter/Exit, events outside any region) and on incomplete collective
/// instances (a communicator member missing from a collective), so both
/// analyzers fail fast before any replay starts. The per-rank annotation
/// pass runs on up to `max_workers` threads (0 = hardware concurrency);
/// results are identical for every worker count.
PreparedTrace prepare(const tracing::TraceCollection& tc,
                      std::size_t max_workers = 0);

}  // namespace metascope::analysis
