#include "analysis/replay_core.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace metascope::analysis {

using tracing::EventType;

P2pSide make_side(const PreparedTrace& prep, Rank rank, std::uint32_t index) {
  const auto& ann = prep.per_rank[static_cast<std::size_t>(rank)];
  P2pSide s;
  s.rank = rank;
  s.op_enter = ann.op_enter[index];
  s.op_exit = ann.op_exit[index];
  s.cnode = ann.cnode[index];
  s.region = prep.calls.node(s.cnode).region;
  return s;
}

std::vector<CollInstance> group_collectives(const tracing::TraceCollection& tc,
                                            const PreparedTrace& prep) {
  std::vector<CollInstance> out;
  // (comm, seq) packed into one word -> index into `out`.
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::vector<int> coll_seq(tc.defs.comms.size());
  for (const auto& trace : tc.ranks) {
    const auto ri = static_cast<std::size_t>(trace.rank);
    const auto& ann = prep.per_rank[ri];
    std::fill(coll_seq.begin(), coll_seq.end(), 0);
    for (const std::uint32_t i : ann.op_events) {
      const auto& e = trace.events[i];
      if (e.type != EventType::CollExit) continue;
      const int comm = e.comm.get();
      const int seq = coll_seq[static_cast<std::size_t>(comm)]++;
      const std::uint64_t key = (static_cast<std::uint64_t>(
                                     static_cast<std::uint32_t>(comm))
                                 << 32) |
                                static_cast<std::uint32_t>(seq);
      auto [it, fresh] = index.try_emplace(key, out.size());
      if (fresh) {
        out.emplace_back();
        out.back().comm = comm;
        out.back().seq = seq;
      }
      CollInstance& inst = out[it->second];
      CollMember m;
      m.rank = trace.rank;
      m.enter = ann.op_enter[i];
      m.exit = ann.op_exit[i];
      m.cnode = ann.cnode[i];
      inst.members.push_back(m);
      inst.root = e.root;
      inst.region = e.region;
    }
  }
  return out;
}

void fill_trace_stats(const tracing::TraceCollection& tc,
                      AnalysisStats& stats) {
  stats.events = tc.total_events();
  stats.trace_bytes_in_memory = tracing::in_memory_bytes(tc);
  telemetry::counter("analysis.events").add(stats.events);
  telemetry::counter("analysis.trace_bytes_in_memory")
      .add(stats.trace_bytes_in_memory);
}

}  // namespace metascope::analysis
