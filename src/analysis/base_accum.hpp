// Shared between the serial and parallel analyzers: cube construction and
// base (non-wait) time accumulation.
#pragma once

#include <vector>

#include "analysis/patterns.hpp"
#include "analysis/prepare.hpp"
#include "report/cube.hpp"
#include "tracing/trace.hpp"

namespace metascope::analysis {

/// Per-call-path region category, indexed by CallPathId.
std::vector<RegionCategory> classify_cnodes(
    const report::CallTree& calls, const NameTable<RegionId>& regions);

/// Metric a category's exclusive time belongs to.
MetricId category_metric(const PatternSet& ps, RegionCategory cat);

/// Builds the cube skeleton (metric tree, call tree, system) and
/// accumulates every rank's exclusive times into the category metrics.
/// Wait detection afterwards moves time from categories into patterns.
PatternSet init_cube(report::Cube& cube, const tracing::TraceCollection& tc,
                     const PreparedTrace& prepared);

}  // namespace metascope::analysis
