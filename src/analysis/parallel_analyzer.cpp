// SCALASCA-style parallel replay analysis: one worker thread per
// application process. Workers re-enact the recorded communication over
// in-memory channels, moving only the few bytes each pattern formula
// needs. The exchange protocol per message mirrors the original
// communication direction:
//
//   sender:   push {rank, enter, exit, cnode}  -> forward channel
//   receiver: pop                              <- forward channel
//
// The receiver then evaluates BOTH point-to-point patterns — Late Sender
// (it is the waiter) and Late Receiver (the sender was the waiter; the
// hit record simply carries the sender's rank and call path). Senders
// never block in the replay, exactly like an eager MPI send, so any
// deadlock-free application trace replays deadlock-free. Collectives
// synchronize through a per-instance context; the last arriver evaluates
// the pattern formulas for the whole instance.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "analysis/analyzer.hpp"
#include "analysis/base_accum.hpp"
#include "analysis/prepare.hpp"
#include "analysis/wait_rules.hpp"
#include "common/error.hpp"
#include "tracing/epilog_io.hpp"

namespace metascope::analysis {

using tracing::EventType;

namespace {

/// Timestamps + call path one replay side shares with its peer.
/// Wire size when packed: rank (4) + two timestamps (16) + cnode (4).
constexpr std::size_t kPeerWireBytes = 24;

struct PeerInfo {
  Rank rank{kNoRank};
  double op_enter{0.0};
  double op_exit{0.0};
  CallPathId cnode;
};

class Channel {
 public:
  void push(const PeerInfo& info) {
    {
      std::lock_guard<std::mutex> lock(m_);
      q_.push_back(info);
    }
    cv_.notify_one();
  }

  PeerInfo pop() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [this] { return !q_.empty(); });
    PeerInfo info = q_.front();
    q_.pop_front();
    return info;
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::deque<PeerInfo> q_;
};

/// Channels keyed by (src, dst, tag, comm); created on first use.
class ChannelMap {
 public:
  Channel& get(Rank src, Rank dst, int tag, int comm) {
    const auto key = std::tuple(src, dst, tag, comm);
    std::lock_guard<std::mutex> lock(m_);
    auto& slot = map_[key];
    if (!slot) slot = std::make_unique<Channel>();
    return *slot;
  }

 private:
  std::mutex m_;
  std::map<std::tuple<Rank, Rank, int, int>, std::unique_ptr<Channel>> map_;
};

/// Rendezvous context for one collective instance.
struct CollCtx {
  std::mutex m;
  std::condition_variable cv;
  std::vector<CollMember> members;
  Rank root{kNoRank};
  RegionId region;
  bool done{false};
  std::vector<WaitHit> hits;
};

class CollCtxMap {
 public:
  CollCtx& get(int comm, int seq) {
    const auto key = std::pair(comm, seq);
    std::lock_guard<std::mutex> lock(m_);
    auto& slot = map_[key];
    if (!slot) slot = std::make_unique<CollCtx>();
    return *slot;
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  std::mutex m_;
  std::map<std::pair<int, int>, std::unique_ptr<CollCtx>> map_;
};

}  // namespace

AnalysisResult analyze_parallel(const tracing::TraceCollection& tc) {
  MSC_CHECK(tc.synchronized || tc.scheme == tracing::SyncScheme::None,
            "analyze_parallel requires synchronized timestamps");
  AnalysisResult res;
  // Definition unification runs serially (as SCALASCA's does) so that
  // call-path ids match the serial analyzer exactly.
  const PreparedTrace prep = prepare(tc);
  res.patterns = init_cube(res.cube, tc, prep);
  const PatternSet& ps = res.patterns;
  const tracing::TraceDefs& defs = tc.defs;

  ChannelMap fwd;
  CollCtxMap colls;
  std::atomic<std::size_t> replay_bytes{0};
  std::atomic<std::size_t> messages{0};

  const int n = tc.num_ranks();
  std::vector<std::vector<WaitHit>> worker_hits(
      static_cast<std::size_t>(n));
  std::vector<std::exception_ptr> worker_error(
      static_cast<std::size_t>(n));

  auto worker = [&](Rank me) {
    try {
      const auto ri = static_cast<std::size_t>(me);
      const auto& trace = tc.ranks[ri];
      const auto& ann = prep.per_rank[ri];
      auto& hits = worker_hits[ri];
      std::map<int, int> coll_seq;

      for (std::uint32_t i = 0; i < trace.events.size(); ++i) {
        const auto& e = trace.events[i];
        switch (e.type) {
          case EventType::Send: {
            PeerInfo mine{me, ann.op_enter[i], ann.op_exit[i], ann.cnode[i]};
            fwd.get(me, e.peer, e.tag, e.comm.get()).push(mine);
            replay_bytes += kPeerWireBytes;
            break;
          }
          case EventType::Recv: {
            const PeerInfo send_side =
                fwd.get(e.peer, me, e.tag, e.comm.get()).pop();
            messages += 1;
            // The receiver holds both sides' data and evaluates both
            // point-to-point patterns with the shared formulas. Regions
            // come from the (read-only) unified call tree.
            P2pSide send_s{send_side.rank, send_side.op_enter,
                           send_side.op_exit, send_side.cnode,
                           prep.calls.node(send_side.cnode).region};
            P2pSide recv_s{me, ann.op_enter[i], ann.op_exit[i],
                           ann.cnode[i],
                           prep.calls.node(ann.cnode[i]).region};
            p2p_hits(ps, defs, send_s, recv_s, hits);
            break;
          }
          case EventType::CollExit: {
            const int seq = coll_seq[e.comm.get()]++;
            CollCtx& ctx = colls.get(e.comm.get(), seq);
            const auto& comm =
                defs.comms[static_cast<std::size_t>(e.comm.get())];
            CollMember m;
            m.rank = me;
            m.enter = ann.op_enter[i];
            m.exit = ann.op_exit[i];
            m.cnode = ann.cnode[i];
            std::unique_lock<std::mutex> lock(ctx.m);
            ctx.members.push_back(m);
            ctx.root = e.root;
            ctx.region = e.region;
            replay_bytes += kPeerWireBytes;
            if (ctx.members.size() == comm.members.size()) {
              const CollectiveKind kind =
                  collective_kind(defs.regions.name(ctx.region));
              collective_hits(ps, defs, kind, comm.members, ctx.members,
                              ctx.root, ctx.hits);
              ctx.done = true;
              // The last arriver adopts the instance's hits.
              hits.insert(hits.end(), ctx.hits.begin(), ctx.hits.end());
              lock.unlock();
              ctx.cv.notify_all();
            } else {
              ctx.cv.wait(lock, [&ctx] { return ctx.done; });
            }
            break;
          }
          case EventType::Enter:
          case EventType::Exit:
            break;
        }
      }
    } catch (...) {
      worker_error[static_cast<std::size_t>(me)] = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) threads.emplace_back(worker, r);
  for (auto& t : threads) t.join();
  for (const auto& err : worker_error)
    if (err) std::rethrow_exception(err);

  for (const auto& hits : worker_hits)
    for (const auto& h : hits) apply_hit(res.cube, h);

  res.stats.messages = messages.load();
  res.stats.collective_instances = colls.size();
  res.stats.replay_bytes = replay_bytes.load();
  res.stats.events = tc.total_events();
  for (const auto& t : tc.ranks)
    res.stats.trace_bytes += tracing::encode_local_trace(t).size();
  return res;
}

}  // namespace metascope::analysis
