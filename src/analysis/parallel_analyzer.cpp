// SCALASCA-style parallel replay analysis on a bounded worker pool.
// Each application rank becomes a resumable replay task: a cursor over
// its communication events (precomputed by prepare(), so Enter/Exit are
// never touched) that re-enacts the recorded communication, moving only
// the few bytes each pattern formula needs. The exchange protocol per
// message mirrors the original communication direction:
//
//   sender:   push {rank, enter, exit, cnode}  -> forward channel
//   receiver: pop                              <- forward channel
//
// Senders never block, exactly like an eager MPI send. A receiver whose
// channel is empty — or a collective member whose instance is not yet
// complete — *suspends* (yields its worker back to the pool) instead of
// blocking an OS thread, so a pool sized by hardware concurrency drives
// thousands of ranks. Channels and collective instances live in
// lock-striped hash maps keyed by (src, dst, tag, comm) / (comm, seq):
// unrelated channels never contend on one global lock.
//
// The replay only *collects* match records; pattern evaluation happens
// afterwards in the pattern engine's canonical dispatch order, which is
// what makes the cube bit-identical to analyze_serial for any worker
// count and any interleaving.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/pattern_engine.hpp"
#include "analysis/prepare.hpp"
#include "analysis/replay_core.hpp"
#include "analysis/replay_scheduler.hpp"
#include "analysis/striped_map.hpp"
#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace metascope::analysis {

using tracing::EventType;

namespace {

/// Timestamps + call path one replay side shares with its peer.
/// Wire size when packed: rank (4) + two timestamps (16) + cnode (4).
constexpr std::size_t kPeerWireBytes = 24;

constexpr std::size_t kNoWaiter = static_cast<std::size_t>(-1);

struct PeerInfo {
  Rank rank{kNoRank};
  double op_enter{0.0};
  double op_exit{0.0};
  CallPathId cnode;
};

/// One message channel: FIFO of in-flight sends plus at most one
/// suspended receiver (each channel has a single consumer — the
/// destination rank replays its events in order).
struct Channel {
  std::deque<PeerInfo> q;
  std::size_t waiter{kNoWaiter};
};

struct ChannelKey {
  Rank src{kNoRank};
  Rank dst{kNoRank};
  int tag{0};
  int comm{0};
  bool operator==(const ChannelKey&) const = default;
};

struct ChannelKeyHash {
  std::size_t operator()(const ChannelKey& k) const {
    std::size_t h = std::hash<int>{}(k.src);
    h = hash_combine(h, std::hash<int>{}(k.dst));
    h = hash_combine(h, std::hash<int>{}(k.tag));
    return hash_combine(h, std::hash<int>{}(k.comm));
  }
};

/// One collective instance under construction: arrived members plus the
/// tasks suspended until the last member arrives.
struct CollGroup {
  std::vector<CollMember> members;
  Rank root{kNoRank};
  RegionId region;
  std::vector<std::size_t> waiters;
};

struct CollKey {
  int comm{0};
  int seq{0};
  bool operator==(const CollKey&) const = default;
};

struct CollKeyHash {
  std::size_t operator()(const CollKey& k) const {
    return hash_combine(std::hash<int>{}(k.comm), std::hash<int>{}(k.seq));
  }
};

/// Mutable replay state of one rank task between suspensions.
struct RankTask {
  std::size_t cursor{0};       ///< position in the rank's op-event list
  std::vector<int> coll_seq;   ///< per-communicator instance counter
  std::vector<P2pRecord> records;
  /// Wire volume this task re-enacted; tallied locally (a task runs on
  /// one worker at a time) and added to "replay.bytes" once at the end.
  std::uint64_t wire_bytes{0};
};

}  // namespace

AnalysisResult analyze_parallel(const tracing::TraceCollection& tc,
                                const ReplayOptions& opts) {
  MSC_CHECK(tc.synchronized || tc.scheme == tracing::SyncScheme::None,
            "analyze_parallel requires synchronized timestamps");
  AnalysisResult res;
  // Definition unification assigns call-path ids serially (as
  // SCALASCA's does) so ids match the serial analyzer exactly, then
  // fans the per-rank annotation out on the worker pool. It also
  // validates collective completeness, so no replay task can wait
  // forever on an instance that never completes.
  const PreparedTrace prep = prepare(tc, opts.max_workers);
  PatternRegistry registry = PatternRegistry::standard();
  registry.select(opts.patterns);
  PatternEngine engine(registry, res.cube);
  res.patterns = engine.install(tc, prep);
  const tracing::TraceDefs& defs = tc.defs;

  telemetry::ScopedSpan replay_span("replay");
  StripedMap<ChannelKey, Channel, ChannelKeyHash> channels;
  StripedMap<CollKey, CollGroup, CollKeyHash> colls;
  // Wire-volume counter: tallied per task during the replay, added to
  // the registry in one batch at the end; the per-run figure for
  // AnalysisStats is the end-minus-start delta.
  telemetry::Counter& replay_bytes = telemetry::counter("replay.bytes");
  const std::uint64_t replay_bytes0 = replay_bytes.value();

  const auto n = static_cast<std::size_t>(tc.num_ranks());
  std::vector<RankTask> tasks(n);
  for (auto& t : tasks) t.coll_seq.assign(defs.comms.size(), 0);

  ReplayScheduler sched(n, opts.max_workers, opts.postmortem_events);

  auto step = [&](std::size_t ti) -> StepResult {
    const Rank me = static_cast<Rank>(ti);
    const auto& trace = tc.ranks[ti];
    const auto& ann = prep.per_rank[ti];
    RankTask& st = tasks[ti];

    while (st.cursor < ann.op_events.size()) {
      const std::uint32_t i = ann.op_events[st.cursor];
      const auto& e = trace.events[i];
      switch (e.type) {
        case EventType::Send: {
          std::size_t waiter = kNoWaiter;
          channels.with(
              ChannelKey{me, e.peer, e.tag, e.comm.get()},
              [&](Channel& c) {
                c.q.push_back(PeerInfo{me, ann.op_enter[i], ann.op_exit[i],
                                       ann.cnode[i]});
                std::swap(waiter, c.waiter);
              });
          st.wire_bytes += kPeerWireBytes;
          ++st.cursor;
          if (waiter != kNoWaiter) sched.resume(waiter);
          break;
        }
        case EventType::Recv: {
          PeerInfo got;
          bool have = false;
          channels.with(ChannelKey{e.peer, me, e.tag, e.comm.get()},
                        [&](Channel& c) {
                          if (!c.q.empty()) {
                            got = c.q.front();
                            c.q.pop_front();
                            have = true;
                          } else {
                            c.waiter = ti;
                          }
                        });
          // Suspend *before* consuming: the sender that fills the
          // channel resumes us and the retry is guaranteed to pop.
          if (!have) return StepResult::Suspend;
          st.records.push_back(
              P2pRecord{P2pSide{got.rank, got.op_enter, got.op_exit,
                                got.cnode,
                                prep.calls.node(got.cnode).region},
                        make_side(prep, me, i), i});
          ++st.cursor;
          break;
        }
        case EventType::CollExit: {
          const int comm_id = e.comm.get();
          const int seq =
              st.coll_seq[static_cast<std::size_t>(comm_id)]++;
          const auto& comm =
              defs.comms[static_cast<std::size_t>(comm_id)];
          bool complete = false;
          std::vector<std::size_t> waiters;
          colls.with(CollKey{comm_id, seq}, [&](CollGroup& g) {
            CollMember m;
            m.rank = me;
            m.enter = ann.op_enter[i];
            m.exit = ann.op_exit[i];
            m.cnode = ann.cnode[i];
            g.members.push_back(m);
            g.root = e.root;
            g.region = e.region;
            if (g.members.size() == comm.members.size()) {
              complete = true;
              waiters.swap(g.waiters);
            } else {
              g.waiters.push_back(ti);
            }
          });
          st.wire_bytes += kPeerWireBytes;
          // Our arrival is recorded either way: advance past the event
          // before suspending so the resumed task does not re-enroll.
          ++st.cursor;
          if (!complete) return StepResult::Suspend;
          for (const std::size_t w : waiters) sched.resume(w);
          break;
        }
        case EventType::Enter:
        case EventType::Exit:
          // Unreachable: op_events holds communication events only.
          ++st.cursor;
          break;
      }
    }
    return StepResult::Done;
  };

  sched.run(step);

  std::vector<P2pRecord> p2p;
  for (auto& t : tasks) {
    p2p.insert(p2p.end(), t.records.begin(), t.records.end());
    t.records.clear();
  }
  std::vector<CollInstance> instances;
  colls.for_each([&](const CollKey& key, CollGroup& g) {
    CollInstance inst;
    inst.comm = key.comm;
    inst.seq = key.seq;
    inst.members = std::move(g.members);
    inst.root = g.root;
    inst.region = g.region;
    instances.push_back(std::move(inst));
  });

  engine.dispatch(std::move(p2p), std::move(instances), res.stats);
  fill_trace_stats(tc, res.stats);
  std::uint64_t wire_total = 0;
  for (const RankTask& t : tasks) wire_total += t.wire_bytes;
  replay_bytes.add(wire_total);
  res.stats.replay_bytes = replay_bytes.value() - replay_bytes0;
  const SchedulerStats& ss = sched.stats();
  res.stats.replay_workers = ss.workers;
  res.stats.replay_tasks = ss.tasks;
  res.stats.replay_suspensions = ss.suspensions;
  res.stats.replay_steals = ss.steals;
  res.stats.replay_requeues = ss.requeues;
  return res;
}

}  // namespace metascope::analysis
