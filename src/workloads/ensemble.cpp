#include "workloads/ensemble.hpp"

#include "common/error.hpp"

namespace metascope::workloads {

simmpi::Program build_ensemble(const EnsembleConfig& cfg) {
  MSC_CHECK(cfg.members >= 2, "ensemble needs at least two members");
  MSC_CHECK(cfg.ranks_per_member >= 1, "members need ranks");
  MSC_CHECK(cfg.cycles >= 1 && cfg.timesteps >= 1,
            "ensemble needs cycles and timesteps");
  const int n = cfg.num_ranks();
  simmpi::ProgramBuilder b(n);

  // Member communicators and the leader communicator.
  std::vector<CommId> member_comm;
  std::vector<Rank> leaders;
  for (int m = 0; m < cfg.members; ++m) {
    std::vector<Rank> ranks;
    for (int i = 0; i < cfg.ranks_per_member; ++i)
      ranks.push_back(m * cfg.ranks_per_member + i);
    leaders.push_back(ranks.front());
    member_comm.push_back(
        b.comms().create("member_" + std::to_string(m), ranks));
  }
  const CommId leaders_comm = b.comms().create("leaders", leaders);
  const Rank root = 0;

  for (Rank r = 0; r < n; ++r) {
    auto& p = b.on(r);
    const int member = r / cfg.ranks_per_member;
    const bool is_leader = r == leaders[static_cast<std::size_t>(member)];
    const bool is_root = r == root;
    p.enter("main").enter("forecast_driver");
    for (int cycle = 0; cycle < cfg.cycles; ++cycle) {
      // Initial conditions for this cycle.
      p.enter("receive_initial_conditions");
      p.bcast(root, cfg.state_bytes);
      p.exit();

      // Member-local integration.
      p.enter("integrate_member");
      for (int step = 0; step < cfg.timesteps; ++step) {
        p.enter("model_step");
        p.compute(cfg.step_work);
        p.exit();
        p.enter("stability_check");
        p.allreduce(16.0, member_comm[static_cast<std::size_t>(member)]);
        p.exit();
      }
      p.exit();

      // Leaders deliver forecasts to the root.
      if (is_leader) {
        p.enter("deliver_forecast");
        p.gather(root, cfg.forecast_bytes, leaders_comm);
        p.exit();
      }

      // Root statistics + next-cycle perturbations for the leaders.
      if (is_root) {
        p.enter("ensemble_statistics");
        p.compute(cfg.stats_work);
        p.exit();
      }
      if (is_leader) {
        p.enter("receive_perturbations");
        p.scatter(root, cfg.perturbation_bytes, leaders_comm);
        p.exit();
      }
    }
    p.exit().exit();  // forecast_driver, main
  }
  return b.take();
}

}  // namespace metascope::workloads
