#include "workloads/config.hpp"

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/ensemble.hpp"
#include "workloads/metatrace.hpp"
#include "workloads/microworkloads.hpp"

namespace metascope::workloads {

namespace {

// Sanity caps on config-driven allocations. A config file is ingested
// like any other external input: a flipped digit must become a typed
// LimitExceeded Error, not a multi-gigabyte Program. The caps are far
// above every preset and bench in the repo (1024-rank pipelines build
// ~10^5 ops) while bounding worst-case memory to a few hundred MB.
constexpr std::int64_t kMaxConfigMetahosts = 1024;
constexpr std::int64_t kMaxConfigNodes = 1 << 16;
constexpr std::int64_t kMaxConfigRanks = 1 << 20;
constexpr std::int64_t kMaxConfigSteps = 1 << 20;
constexpr std::int64_t kMaxConfigOps = 1 << 22;

void check_limit(bool ok, const std::string& what) {
  if (!ok) throw Error(ErrorCode::LimitExceeded, "config: " + what);
}

/// Bounded non-negative integer field: rejects values outside [0, cap]
/// so downstream op-list sizing arithmetic cannot overflow.
std::int64_t bounded_int(const Json& doc, const std::string& key,
                         std::int64_t dflt, std::int64_t cap) {
  const std::int64_t v = doc.int_or(key, dflt);
  check_limit(v >= 0 && v <= cap,
              "'" + key + "' = " + std::to_string(v) +
                  " outside [0, " + std::to_string(cap) + "]");
  return v;
}

simnet::LinkSpec parse_link(const Json& doc) {
  simnet::LinkSpec link;
  link.latency_mean = microseconds(doc.number_or("latency_us", 20.0));
  link.latency_stddev = microseconds(doc.number_or("jitter_us", 0.5));
  link.bandwidth_bps = doc.number_or("bandwidth_gbps", 1.0) * 1e9;
  link.asymmetry = doc.number_or("asymmetry", 0.0);
  MSC_CHECK(link.latency_mean >= 0.0, "config: negative latency");
  MSC_CHECK(link.bandwidth_bps > 0.0, "config: bandwidth must be positive");
  MSC_CHECK(link.asymmetry >= 0.0 && link.asymmetry < 1.0,
            "config: asymmetry must be in [0, 1)");
  return link;
}

simmpi::Program parse_workload(const Json& doc, int nranks) {
  const std::string kind = doc.string_or("kind", "metatrace");
  if (kind == "metatrace") {
    MetaTraceConfig mt;
    mt.trace_ranks = static_cast<int>(
        bounded_int(doc, "trace_ranks", nranks / 2, kMaxConfigRanks));
    mt.partrace_ranks = static_cast<int>(bounded_int(
        doc, "partrace_ranks", nranks - mt.trace_ranks, kMaxConfigRanks));
    MSC_CHECK(mt.trace_ranks + mt.partrace_ranks == nranks,
              "config: metatrace ranks must sum to the placement size");
    if (doc.has("dims")) {
      const auto& dims = doc.at("dims").as_array();
      MSC_CHECK(dims.size() == 3, "config: dims needs three entries");
      for (int d = 0; d < 3; ++d)
        mt.dims[d] = static_cast<int>(dims[static_cast<std::size_t>(d)].as_int());
    } else {
      // Default to a flat 1D chain of trace ranks.
      mt.dims[0] = mt.trace_ranks;
      mt.dims[1] = 1;
      mt.dims[2] = 1;
    }
    mt.coupling_steps = static_cast<int>(
        bounded_int(doc, "coupling_steps", 4, kMaxConfigSteps));
    mt.cg_iterations = static_cast<int>(
        bounded_int(doc, "cg_iterations", 30, kMaxConfigSteps));
    // Every coupling step emits ~cg_iterations ops per rank; bound the
    // product so a fuzzer-supplied config cannot demand a 10^12-op
    // Program that individually-plausible fields would allow.
    check_limit(static_cast<std::int64_t>(nranks) * mt.coupling_steps *
                        (mt.cg_iterations + 8) <=
                    kMaxConfigOps,
                "metatrace would build more than " +
                    std::to_string(kMaxConfigOps) + " ops");
    mt.cg_work = doc.number_or("cg_work_s", 0.004);
    mt.halo_bytes = doc.number_or("halo_bytes", 32.0 * 1024.0);
    mt.field_mb_total = doc.number_or("field_mb_total", 200.0);
    mt.partrace_work_factor = doc.number_or("partrace_work_factor", 1.5);
    return build_metatrace(mt);
  }
  if (kind == "ensemble") {
    EnsembleConfig ec;
    ec.members =
        static_cast<int>(bounded_int(doc, "members", 4, kMaxConfigRanks));
    ec.ranks_per_member = static_cast<int>(bounded_int(
        doc, "ranks_per_member", ec.members > 0 ? nranks / ec.members : 0,
        kMaxConfigRanks));
    MSC_CHECK(ec.num_ranks() == nranks,
              "config: ensemble members*ranks_per_member must equal the "
              "placement size");
    ec.cycles = static_cast<int>(bounded_int(doc, "cycles", 3, kMaxConfigSteps));
    ec.timesteps =
        static_cast<int>(bounded_int(doc, "timesteps", 10, kMaxConfigSteps));
    check_limit(static_cast<std::int64_t>(nranks) * ec.cycles *
                        (ec.timesteps + 8) <=
                    kMaxConfigOps,
                "ensemble would build more than " +
                    std::to_string(kMaxConfigOps) + " ops");
    ec.step_work = doc.number_or("step_work_s", 0.005);
    ec.stats_work = doc.number_or("stats_work_s", 0.01);
    ec.state_bytes = doc.number_or("state_bytes", 256.0 * 1024.0);
    ec.forecast_bytes = doc.number_or("forecast_bytes", 128.0 * 1024.0);
    return build_ensemble(ec);
  }
  if (kind == "clockbench") {
    ClockBenchConfig bc;
    bc.rounds =
        static_cast<int>(bounded_int(doc, "rounds", 1000, kMaxConfigSteps));
    check_limit(static_cast<std::int64_t>(nranks) * bc.rounds <= kMaxConfigOps,
                "clockbench would build more than " +
                    std::to_string(kMaxConfigOps) + " ops");
    bc.message_bytes = doc.number_or("message_bytes", 64.0);
    bc.pad_work = doc.number_or("pad_work_s", 0.002);
    bc.seed = static_cast<std::uint64_t>(doc.int_or("seed", 0xBE4C4));
    return build_clock_bench(nranks, bc);
  }
  if (kind == "pattern-demo") {
    const std::string pattern = doc.string_or("pattern", "late-sender");
    const double gap = doc.number_or("gap_s", 0.25);
    if (pattern == "late-sender") return late_sender_program(gap);
    if (pattern == "late-receiver") return late_receiver_program(gap);
    if (pattern == "wait-barrier") {
      std::vector<double> delays(static_cast<std::size_t>(nranks), 0.0);
      for (std::size_t i = 0; i < delays.size(); ++i)
        delays[i] = gap * static_cast<double>(i) /
                    static_cast<double>(delays.size());
      return wait_barrier_program(delays);
    }
    throw Error("config: unknown pattern '" + pattern + "'");
  }
  throw Error("config: unknown workload kind '" + kind + "'");
}

}  // namespace

tracing::SyncScheme parse_sync_scheme(const std::string& name) {
  if (name == "none") return tracing::SyncScheme::None;
  if (name == "flat-single") return tracing::SyncScheme::FlatSingle;
  if (name == "flat-two") return tracing::SyncScheme::FlatTwo;
  if (name == "hierarchical-two")
    return tracing::SyncScheme::HierarchicalTwo;
  throw Error("config: unknown sync scheme '" + name + "'");
}

simnet::Topology parse_topology(const Json& doc) {
  if (doc.has("preset")) {
    const std::string preset = doc.at("preset").as_string();
    if (preset == "viola-experiment1") return simnet::make_viola_experiment1();
    if (preset == "viola") return simnet::make_viola();
    if (preset == "ibm-power")
      return simnet::make_ibm_power(
          static_cast<int>(doc.int_or("procs", 32)));
    throw Error("config: unknown topology preset '" + preset + "'");
  }
  simnet::Topology topo;
  MSC_CHECK(doc.has("metahosts"), "config: topology needs metahosts");
  const auto& metahosts = doc.at("metahosts").as_array();
  check_limit(
      static_cast<std::int64_t>(metahosts.size()) <= kMaxConfigMetahosts,
      "more than " + std::to_string(kMaxConfigMetahosts) + " metahosts");
  for (const auto& mh : metahosts) {
    simnet::MetahostSpec spec;
    spec.name = mh.at("name").as_string();
    spec.num_nodes =
        static_cast<int>(bounded_int(mh, "nodes", 1, kMaxConfigNodes));
    spec.cpus_per_node =
        static_cast<int>(bounded_int(mh, "cpus_per_node", 1, kMaxConfigNodes));
    check_limit(static_cast<std::int64_t>(spec.num_nodes) *
                        spec.cpus_per_node <=
                    kMaxConfigRanks,
                "metahost '" + spec.name + "' would hold more than " +
                    std::to_string(kMaxConfigRanks) + " cpus");
    spec.speed_factor = mh.number_or("speed", 1.0);
    spec.internal = parse_link(mh);
    spec.has_global_clock = mh.bool_or("global_clock", false);
    topo.add_metahost(spec);
  }
  if (doc.has("external")) {
    topo.set_default_external(parse_link(doc.at("external")));
  }
  MSC_CHECK(doc.has("placement"), "config: topology needs placement");
  for (const auto& p : doc.at("placement").as_array()) {
    topo.place_block(
        MetahostId{static_cast<int>(p.at("metahost").as_int())},
        static_cast<int>(p.at("nodes").as_int()),
        static_cast<int>(p.at("procs_per_node").as_int()));
    check_limit(topo.num_ranks() <= kMaxConfigRanks,
                "placement places more than " +
                    std::to_string(kMaxConfigRanks) + " ranks");
  }
  MSC_CHECK(topo.num_ranks() > 0, "config: placement placed no ranks");
  return topo;
}

ExperimentSpec parse_experiment(const Json& doc) {
  simnet::Topology topo = parse_topology(doc.at("topology"));
  simmpi::Program prog =
      parse_workload(doc.has("workload") ? doc.at("workload") : Json(),
                     topo.num_ranks());
  MSC_CHECK(prog.num_ranks() == topo.num_ranks(),
            "config: workload rank count differs from placement");

  ExperimentConfig cfg;
  cfg.measurement.scheme =
      parse_sync_scheme(doc.string_or("sync", "hierarchical-two"));
  if (doc.has("clocks")) {
    const Json& c = doc.at("clocks");
    cfg.perfect_clocks = c.bool_or("perfect", false);
    cfg.clocks.max_offset = c.number_or("max_offset_s", 0.5);
    cfg.clocks.max_drift = c.number_or("max_drift", 1e-5);
    cfg.clocks.granularity = c.number_or("granularity_s", 1e-7);
    cfg.clocks.read_noise = c.number_or("read_noise_s", 5e-8);
  }
  const auto seed = static_cast<std::uint64_t>(doc.int_or("seed", 42));
  cfg.clock_seed = seed;
  cfg.engine.seed = seed + 1;
  cfg.measurement.seed = seed + 2;

  ExperimentSpec spec{doc.string_or("name", "experiment"), std::move(topo),
                      std::move(prog), cfg, {}, {}};
  if (doc.has("analysis")) {
    const Json& a = doc.at("analysis");
    if (a.has("patterns"))
      for (const auto& p : a.at("patterns").as_array())
        spec.patterns.push_back(p.as_string());
  }
  if (doc.has("telemetry")) {
    const Json& t = doc.at("telemetry");
    spec.telemetry.trace_out = t.string_or("trace_out", "");
    spec.telemetry.sample_interval_ms =
        static_cast<int>(t.int_or("sample_interval_ms", 0));
    const std::int64_t cap = t.int_or("ring_capacity", 0);
    MSC_CHECK(cap >= 0, "config: telemetry.ring_capacity must be >= 0");
    spec.telemetry.ring_capacity = static_cast<std::size_t>(cap);
  }
  return spec;
}

ExperimentSpec load_experiment(const std::string& path) {
  return parse_experiment(load_json_file(path));
}

}  // namespace metascope::workloads
