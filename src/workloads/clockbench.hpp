// The clock-condition validation benchmark (paper §5, Table 2):
// "a benchmark that has been specifically designed to exchange a large
// number of short messages between varying pairs of processes", so that
// send and receive events are chronologically close and any residual
// synchronization error shows up as clock-condition violations.
//
// Each round, all ranks meet at a barrier (keeping entry times tight);
// then a pseudo-random pair exchanges a ping and a pong. Pairs are drawn
// uniformly, so the benchmark covers intra-node, internal, and external
// links in proportion.
#pragma once

#include <cstdint>

#include "simmpi/program.hpp"

namespace metascope::workloads {

struct ClockBenchConfig {
  int rounds{1500};
  double message_bytes{64.0};
  /// Nominal per-round compute between exchanges (stretches the run so
  /// uncompensated drift accumulates — what separates Table 2's rows
  /// (i) and (ii)).
  double pad_work{0.002};
  std::uint64_t seed{0xBE4C4ULL};
};

simmpi::Program build_clock_bench(int num_ranks,
                                  const ClockBenchConfig& cfg = {});

}  // namespace metascope::workloads
