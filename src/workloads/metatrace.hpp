// Synthetic reproduction of MetaTrace (paper §5), the coupled
// multi-physics application:
//
//  * "Trace"    — a CG-style groundwater-flow solver on the first
//    `trace_ranks` ranks: per coupling step it runs `cg_iterations` of
//    compute + 3D nearest-neighbour halo exchange (function
//    cgiteration()), with a small Allreduce every `allreduce_interval`
//    iterations (the CG dot products);
//  * "Partrace" — a particle tracker on the remaining ranks: per step it
//    waits at a barrier and receives the velocity field
//    (ReadVelFieldFromTrace()), tracks particles (trackparticles()), and
//    sends steering data back (sendsteering());
//  * coupling   — Trace ends each step in printtolink(): a world barrier
//    followed by the parallel transfer of the velocity field
//    (field_mb_total split across rank pairs); Trace consumes the
//    previous step's steering in getsteering() at the start of each step.
//
// The communication skeleton reproduces the wait states of Figures 6/7:
// heterogeneous cluster speeds turn the halo exchange into (Grid) Late
// Sender inside cgiteration() on the faster cluster, and the coupling
// barrier into (Grid) Wait at Barrier inside ReadVelFieldFromTrace() on
// the Partrace side.
#pragma once

#include "simmpi/program.hpp"

namespace metascope::workloads {

struct MetaTraceConfig {
  int trace_ranks{16};
  int partrace_ranks{16};
  /// 3D domain decomposition of Trace; dims must multiply to trace_ranks.
  int dims[3]{4, 2, 2};
  int coupling_steps{4};
  int cg_iterations{30};
  /// Nominal seconds of CG compute per iteration (speed factor 1.0).
  double cg_work{0.004};
  /// One small Allreduce per this many CG iterations.
  int allreduce_interval{10};
  double halo_bytes{32.0 * 1024.0};
  /// Total velocity-field size pushed Trace -> Partrace per step (paper:
  /// a chunk of 200 MB every 10-15 seconds).
  double field_mb_total{200.0};
  double steering_bytes{2048.0};
  /// Nominal Partrace tracking work per step, as a fraction of the
  /// nominal Trace CG time per step. Calibrated so that the VIOLA
  /// experiment-1 severities land near the paper's Figure 6 values
  /// (Grid Late Sender ~9 %, Grid Wait at Barrier ~23 %).
  double partrace_work_factor{1.5};
};

/// Builds the MetaTrace program. Trace occupies ranks
/// [0, trace_ranks), Partrace [trace_ranks, trace_ranks+partrace_ranks).
simmpi::Program build_metatrace(const MetaTraceConfig& cfg = {});

/// Message tags used by the coupled program (exposed for tests).
inline constexpr int kHaloTagBase = 10;  ///< +dim (0..2)
inline constexpr int kFieldTag = 1;
inline constexpr int kSteeringTag = 2;

}  // namespace metascope::workloads
