// End-to-end experiment driver: program -> engine -> clocks -> traces.
//
// Composes the full measurement pipeline the way a real instrumented run
// would: execute the application on the simulated metacomputer, stamp
// every event through the node-local clocks, and take offset
// measurements per the configured synchronization scheme. The result is
// ready for clocksync::synchronize() and the analyzers.
#pragma once

#include <cstdint>

#include "simmpi/engine.hpp"
#include "simnet/clock.hpp"
#include "tracing/measurement.hpp"

namespace metascope::workloads {

struct ExperimentConfig {
  simmpi::EngineConfig engine;
  tracing::MeasurementConfig measurement;
  simnet::ClockCharacteristics clocks;
  /// Seed for drawing the node clock models.
  std::uint64_t clock_seed{42};
  /// Identity clocks (offset 0, drift 0) — for analyzer-correctness tests
  /// where ground truth must be exact.
  bool perfect_clocks{false};
};

struct ExperimentData {
  simnet::ClockSet clocks;
  simmpi::ExecResult exec;
  tracing::TraceCollection traces;
};

/// Runs one experiment. The topology and program must agree on the rank
/// count.
ExperimentData run_experiment(const simnet::Topology& topo,
                              const simmpi::Program& prog,
                              const ExperimentConfig& cfg = {});

}  // namespace metascope::workloads
