#include "workloads/microworkloads.hpp"

#include "common/error.hpp"

namespace metascope::workloads {

simmpi::Program late_sender_program(double gap, double bytes) {
  simmpi::ProgramBuilder b(2);
  b.on(0).enter("main").compute(gap).enter("do_send")
      .send(1, 0, bytes).exit().exit();
  b.on(1).enter("main").enter("do_recv").recv(0, 0).exit().exit();
  return b.take();
}

simmpi::Program late_receiver_program(double gap, double bytes) {
  simmpi::ProgramBuilder b(2);
  b.on(0).enter("main").enter("do_send").send(1, 0, bytes).exit().exit();
  b.on(1).enter("main").compute(gap).enter("do_recv")
      .recv(0, 0).exit().exit();
  return b.take();
}

namespace {
simmpi::Program staggered_collective(const std::vector<double>& delays,
                                     simmpi::OpKind kind, double bytes) {
  MSC_CHECK(delays.size() >= 2, "collective needs at least two ranks");
  simmpi::ProgramBuilder b(static_cast<int>(delays.size()));
  for (Rank r = 0; r < static_cast<int>(delays.size()); ++r) {
    auto& t = b.on(r);
    t.enter("main").compute(delays[static_cast<std::size_t>(r)]);
    t.enter("sync_point");
    switch (kind) {
      case simmpi::OpKind::Allreduce: t.allreduce(bytes); break;
      case simmpi::OpKind::Barrier: t.barrier(); break;
      case simmpi::OpKind::Reduce: t.reduce(0, bytes); break;
      case simmpi::OpKind::Bcast: t.bcast(0, bytes); break;
      default: MSC_CHECK(false, "unsupported microworkload collective");
    }
    t.exit().exit();
  }
  return b.take();
}
}  // namespace

simmpi::Program wait_nxn_program(const std::vector<double>& delays,
                                 double bytes) {
  return staggered_collective(delays, simmpi::OpKind::Allreduce, bytes);
}

simmpi::Program wait_barrier_program(const std::vector<double>& delays) {
  return staggered_collective(delays, simmpi::OpKind::Barrier, 0.0);
}

simmpi::Program early_reduce_program(const std::vector<double>& delays,
                                     double bytes) {
  MSC_CHECK(delays.front() == 0.0,
            "early_reduce expects the root (rank 0) to enter first");
  return staggered_collective(delays, simmpi::OpKind::Reduce, bytes);
}

simmpi::Program late_broadcast_program(int num_ranks, double root_delay,
                                       double bytes) {
  std::vector<double> delays(static_cast<std::size_t>(num_ranks), 0.0);
  delays.front() = root_delay;
  return staggered_collective(delays, simmpi::OpKind::Bcast, bytes);
}

}  // namespace metascope::workloads
