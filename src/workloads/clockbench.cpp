#include "workloads/clockbench.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace metascope::workloads {

simmpi::Program build_clock_bench(int num_ranks,
                                  const ClockBenchConfig& cfg) {
  MSC_CHECK(num_ranks >= 2, "clock bench needs at least two ranks");
  MSC_CHECK(cfg.rounds > 0, "clock bench needs rounds");
  simmpi::ProgramBuilder b(num_ranks);
  Rng rng(cfg.seed);

  for (Rank r = 0; r < num_ranks; ++r) b.on(r).enter("main");

  for (int round = 0; round < cfg.rounds; ++round) {
    const Rank a =
        static_cast<Rank>(rng.uniform_index(static_cast<std::uint64_t>(num_ranks)));
    Rank c =
        static_cast<Rank>(rng.uniform_index(static_cast<std::uint64_t>(num_ranks - 1)));
    if (c >= a) ++c;
    for (Rank r = 0; r < num_ranks; ++r) {
      b.on(r).compute(cfg.pad_work);
      b.on(r).barrier();
    }
    b.on(a).enter("exchange").send(c, round, cfg.message_bytes);
    b.on(a).recv(c, round).exit();
    b.on(c).enter("exchange").recv(a, round);
    b.on(c).send(a, round, cfg.message_bytes).exit();
  }

  for (Rank r = 0; r < num_ranks; ++r) b.on(r).exit();
  return b.take();
}

}  // namespace metascope::workloads
