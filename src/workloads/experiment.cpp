#include "workloads/experiment.hpp"

#include "common/rng.hpp"

namespace metascope::workloads {

ExperimentData run_experiment(const simnet::Topology& topo,
                              const simmpi::Program& prog,
                              const ExperimentConfig& cfg) {
  Rng clock_rng(cfg.clock_seed);
  ExperimentData data{
      cfg.perfect_clocks
          ? simnet::ClockSet::perfect(topo)
          : simnet::ClockSet::randomized(topo, cfg.clocks, clock_rng),
      {},
      {}};
  data.exec = simmpi::execute(topo, prog, cfg.engine);
  data.traces =
      tracing::collect_traces(topo, data.clocks, prog, data.exec,
                              cfg.measurement);
  return data;
}

}  // namespace metascope::workloads
