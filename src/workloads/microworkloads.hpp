// Minimal programs that construct each wait-state pattern exactly
// (paper Figure 4). Used by the pattern unit tests and by the
// bench_fig4_patterns harness: every builder documents the wait the
// analyzer is expected to report.
#pragma once

#include "simmpi/program.hpp"

namespace metascope::workloads {

/// Figure 4(a): rank 0 computes `gap` seconds, then sends `bytes` to
/// rank 1, which posted its receive immediately. Expected: Late Sender
/// at rank 1 of ~`gap` seconds (grid iff the ranks sit on different
/// metahosts).
simmpi::Program late_sender_program(double gap, double bytes = 1024.0);

/// Rank 0 sends a rendezvous-sized message immediately; rank 1 computes
/// `gap` seconds before posting the receive. Expected: Late Receiver at
/// rank 0 of ~`gap` seconds. `bytes` must exceed the engine's eager
/// threshold for the sender to block.
simmpi::Program late_receiver_program(double gap, double bytes = 1 << 20);

/// Figure 4(b): every rank computes delay[i] seconds then joins an
/// Allreduce. Expected: Wait at N x N of (max(delay) - delay[i]) at each
/// rank.
simmpi::Program wait_nxn_program(const std::vector<double>& delays,
                                 double bytes = 1024.0);

/// Same staggering at an MPI_Barrier. Expected: Wait at Barrier.
simmpi::Program wait_barrier_program(const std::vector<double>& delays);

/// Root (rank 0) enters a Reduce first; the others delay. Expected:
/// Early Reduce at the root of ~(max delay) seconds.
simmpi::Program early_reduce_program(const std::vector<double>& delays,
                                     double bytes = 1024.0);

/// Non-roots enter a Bcast immediately; the root (rank 0) delays by
/// `root_delay`. Expected: Late Broadcast of ~root_delay at non-roots.
simmpi::Program late_broadcast_program(int num_ranks, double root_delay,
                                       double bytes = 1024.0);

}  // namespace metascope::workloads
