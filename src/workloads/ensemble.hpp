// Ensemble forecast workload — the paper's introduction motivates
// metacomputing with compute problems that "must be calculated under
// real-time conditions (e.g. weather forecast)". This proxy runs an
// ensemble of forecast members, each member a process group (naturally
// placed one member per metahost), coordinated by a global root:
//
//   per cycle:
//     root  ──Bcast──▶ everyone         (initial conditions)
//     member groups: timesteps of compute + member-local Allreduce
//                    (CFL/stability check)
//     member leaders ──Gather──▶ root   (member forecasts)
//     root: compute statistics
//     root ──Scatter──▶ leaders         (next-cycle perturbations)
//
// On a heterogeneous metacomputer the slowest member gates every cycle:
// the root shows (Grid) Early Reduce at the Gather, the fast members
// show (Grid) Late Broadcast waiting for the root's next cycle, and the
// member-local Allreduce shows Wait at N x N when the member spans
// machines.
#pragma once

#include "simmpi/program.hpp"

namespace metascope::workloads {

struct EnsembleConfig {
  int members{4};
  int ranks_per_member{4};
  int cycles{3};
  int timesteps{10};
  /// Nominal seconds per timestep at speed 1.0.
  double step_work{0.005};
  /// Root's statistics work per cycle, nominal seconds.
  double stats_work{0.01};
  double state_bytes{256.0 * 1024.0};    ///< Bcast payload
  double forecast_bytes{128.0 * 1024.0}; ///< per-leader Gather payload
  double perturbation_bytes{16.0 * 1024.0};  ///< Scatter payload

  [[nodiscard]] int num_ranks() const { return members * ranks_per_member; }
};

/// Builds the program. Rank layout: member m owns ranks
/// [m*ranks_per_member, (m+1)*ranks_per_member); rank 0 is the global
/// root and leader of member 0; each member's lowest rank is its leader.
simmpi::Program build_ensemble(const EnsembleConfig& cfg = {});

}  // namespace metascope::workloads
