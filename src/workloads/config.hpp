// JSON experiment descriptions: lets users define a metacomputer, a
// workload, clock characteristics, and a synchronization scheme in a
// config file and run the whole pipeline without writing C++ (see the
// msc_run example).
//
// Schema (all sizes/latencies in the units of the field name):
// {
//   "name": "my-experiment",
//   "seed": 7,
//   "topology": { "preset": "viola-experiment1" | "ibm-power" }
//     or {
//       "metahosts": [ { "name": "A", "nodes": 4, "cpus_per_node": 2,
//                        "speed": 1.0, "latency_us": 20, "jitter_us": 1,
//                        "bandwidth_gbps": 1.0, "global_clock": false } ],
//       "external": { "latency_us": 1000, "jitter_us": 4,
//                     "bandwidth_gbps": 1.25, "asymmetry": 0.08 },
//       "placement": [ { "metahost": 0, "nodes": 4, "procs_per_node": 2 } ]
//     },
//   "workload": { "kind": "metatrace" | "clockbench" | "pattern-demo",
//                 ... kind-specific knobs ... },
//   "clocks": { "perfect": false, "max_offset_s": 0.5, "max_drift": 1e-5 },
//   "sync": "hierarchical-two" | "flat-two" | "flat-single" | "none",
//   "analysis": { "patterns": ["late_sender", "wait_barrier", ...] },
//   "telemetry": { "trace_out": "trace.json", "sample_interval_ms": 50,
//                  "ring_capacity": 8192 }
// }
//
// "analysis.patterns" restricts the pattern engine to the named
// detector keys (see `msc_run --list-patterns`); omitted or empty means
// every built-in pattern runs.
//
// "telemetry" configures the flight recorder and sampler the same way
// the msc_run flags do (--trace-out / --sample-interval-ms override the
// config values).
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "simmpi/program.hpp"
#include "simnet/topology.hpp"
#include "workloads/experiment.hpp"

namespace metascope::workloads {

/// Flight-recorder / sampler settings from the config's "telemetry"
/// section. Defaults mean "off": no trace written, no sampling.
struct TelemetrySpec {
  /// Chrome Trace Event JSON output path; empty = recorder off.
  std::string trace_out;
  /// Metrics time-series sampling period; <= 0 = sampler off.
  int sample_interval_ms{0};
  /// Per-thread recorder ring capacity in events; 0 = default.
  std::size_t ring_capacity{0};
};

struct ExperimentSpec {
  std::string name;
  simnet::Topology topology;
  simmpi::Program program;
  ExperimentConfig config;
  /// Pattern-detector keys to enable (empty = all), fed to
  /// analysis::ReplayOptions::patterns.
  std::vector<std::string> patterns;
  TelemetrySpec telemetry;
};

/// Parses a complete experiment spec; throws Error with a field-level
/// message on any problem (unknown preset, placement overflow, ...).
ExperimentSpec parse_experiment(const Json& doc);

/// Convenience: load + parse a config file.
ExperimentSpec load_experiment(const std::string& path);

/// The individual pieces (exposed for reuse and tests).
simnet::Topology parse_topology(const Json& topo_doc);
tracing::SyncScheme parse_sync_scheme(const std::string& name);

}  // namespace metascope::workloads
