#include "workloads/metatrace.hpp"

#include "common/error.hpp"

namespace metascope::workloads {

namespace {

/// Rank -> (x, y, z) in the Trace decomposition.
struct Coord {
  int x, y, z;
};

Coord coord_of(int r, const int dims[3]) {
  Coord c;
  c.x = r % dims[0];
  c.y = (r / dims[0]) % dims[1];
  c.z = r / (dims[0] * dims[1]);
  return c;
}

int rank_of(Coord c, const int dims[3]) {
  return c.x + dims[0] * (c.y + dims[1] * c.z);
}

}  // namespace

simmpi::Program build_metatrace(const MetaTraceConfig& cfg) {
  MSC_CHECK(cfg.dims[0] * cfg.dims[1] * cfg.dims[2] == cfg.trace_ranks,
            "decomposition dims must multiply to trace_ranks");
  MSC_CHECK(cfg.partrace_ranks > 0 && cfg.trace_ranks > 0,
            "both submodels need ranks");
  const int nt = cfg.trace_ranks;
  const int np = cfg.partrace_ranks;
  simmpi::ProgramBuilder b(nt + np);

  const CommId world = b.comms().world();
  std::vector<Rank> trace_members;
  std::vector<Rank> partrace_members;
  for (Rank r = 0; r < nt; ++r) trace_members.push_back(r);
  for (Rank r = nt; r < nt + np; ++r) partrace_members.push_back(r);
  const CommId comm_trace = b.comms().create("comm_trace", trace_members);
  b.comms().create("comm_partrace", partrace_members);

  // Trace rank i exchanges the field/steering with Partrace rank
  // nt + (i % np); Partrace rank j talks to Trace rank (j - nt) % nt.
  const auto field_partner_of_trace = [&](Rank t) { return nt + (t % np); };
  const auto field_sources_of_partrace = [&](Rank p) {
    std::vector<Rank> srcs;
    for (Rank t = 0; t < nt; ++t)
      if (field_partner_of_trace(t) == p) srcs.push_back(t);
    return srcs;
  };
  const double field_bytes_per_trace_rank =
      cfg.field_mb_total * 1e6 / static_cast<double>(nt);
  const double trace_step_work =
      cfg.cg_work * static_cast<double>(cfg.cg_iterations);
  const double partrace_step_work =
      trace_step_work * cfg.partrace_work_factor;

  // ---- Trace ranks ------------------------------------------------------
  for (Rank r = 0; r < nt; ++r) {
    auto& t = b.on(r);
    const Coord c = coord_of(r, cfg.dims);
    t.enter("main").enter("trace_main");
    t.compute(0.001);  // init
    for (int step = 0; step < cfg.coupling_steps; ++step) {
      t.enter("cgiteration");
      for (int it = 0; it < cfg.cg_iterations; ++it) {
        t.enter("finelassdt");
        t.compute(cfg.cg_work);
        t.exit();
        // Halo exchange with the 3D nearest neighbours (non-periodic).
        for (int dim = 0; dim < 3; ++dim) {
          Coord lo = c;
          Coord hi = c;
          --(dim == 0 ? lo.x : dim == 1 ? lo.y : lo.z);
          ++(dim == 0 ? hi.x : dim == 1 ? hi.y : hi.z);
          const bool has_lo =
              (dim == 0 ? lo.x : dim == 1 ? lo.y : lo.z) >= 0;
          const bool has_hi =
              (dim == 0 ? hi.x : dim == 1 ? hi.y : hi.z) < cfg.dims[dim];
          const int tag = kHaloTagBase + dim;
          if (has_lo && has_hi) {
            // Exchange with both neighbours in one shot each.
            t.sendrecv(rank_of(hi, cfg.dims), cfg.halo_bytes,
                       rank_of(lo, cfg.dims), cfg.halo_bytes, tag, world);
            t.sendrecv(rank_of(lo, cfg.dims), cfg.halo_bytes,
                       rank_of(hi, cfg.dims), cfg.halo_bytes, tag, world);
          } else if (has_hi) {
            t.sendrecv(rank_of(hi, cfg.dims), cfg.halo_bytes,
                       rank_of(hi, cfg.dims), cfg.halo_bytes, tag, world);
          } else if (has_lo) {
            t.sendrecv(rank_of(lo, cfg.dims), cfg.halo_bytes,
                       rank_of(lo, cfg.dims), cfg.halo_bytes, tag, world);
          }
        }
        if (cfg.allreduce_interval > 0 &&
            (it + 1) % cfg.allreduce_interval == 0) {
          // CG residual norm.
          t.allreduce(16.0, comm_trace);
        }
      }
      t.exit();  // cgiteration

      // Consume the steering data of the previous step (the initial one
      // is primed by Partrace before its first step). Placed after the
      // CG loop so steering transfer overlaps with computation — on a
      // heterogeneous cluster the slow CG hides it; on a homogeneous one
      // Trace arrives early and waits for Partrace (paper Fig. 7).
      t.enter("getsteering");
      t.recv(field_partner_of_trace(r), kSteeringTag);
      t.exit();

      // Coupling: synchronize with Partrace, then push the field.
      t.enter("printtolink");
      t.barrier(world);
      t.send(field_partner_of_trace(r), kFieldTag,
             field_bytes_per_trace_rank);
      t.exit();
    }
    t.exit().exit();  // trace_main, main
  }

  // ---- Partrace ranks ----------------------------------------------------
  for (Rank r = nt; r < nt + np; ++r) {
    auto& t = b.on(r);
    const auto sources = field_sources_of_partrace(r);
    t.enter("main").enter("partrace_main");
    t.compute(0.001);  // init
    // Prime the steering channel so Trace's first getsteering matches.
    t.enter("sendsteering");
    for (Rank src : sources) t.send(src, kSteeringTag, cfg.steering_bytes);
    t.exit();
    for (int step = 0; step < cfg.coupling_steps; ++step) {
      t.enter("ReadVelFieldFromTrace");
      t.barrier(world);
      for (Rank src : sources)
        t.recv(src, kFieldTag, world);
      t.exit();

      t.enter("trackparticles");
      t.compute(partrace_step_work);
      t.exit();

      // The steering produced by the final step has no consumer (Trace
      // reads steering at the start of the *next* step).
      if (step + 1 < cfg.coupling_steps) {
        t.enter("sendsteering");
        for (Rank src : sources)
          t.send(src, kSteeringTag, cfg.steering_bytes);
        t.exit();
      }
    }
    t.exit().exit();  // partrace_main, main
  }

  return b.take();
}

}  // namespace metascope::workloads
