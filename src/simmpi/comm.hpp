// Communicators and groups for the simulated MPI layer.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace metascope::simmpi {

/// A communicator: an ordered set of global ranks. Position in `members`
/// is the communicator-local rank.
struct Communicator {
  CommId id;
  std::string name;
  std::vector<Rank> members;

  [[nodiscard]] int size() const { return static_cast<int>(members.size()); }
  /// Local rank of a global rank, or -1 if not a member.
  [[nodiscard]] int local_rank(Rank global) const;
  [[nodiscard]] bool contains(Rank global) const {
    return local_rank(global) >= 0;
  }
};

/// Registry of communicators. Communicator 0 is always MPI_COMM_WORLD.
class CommSet {
 public:
  /// Creates the world communicator over ranks [0, nranks).
  explicit CommSet(int nranks);

  [[nodiscard]] CommId world() const { return CommId{0}; }

  /// Defines a sub-communicator; members must be valid world ranks.
  CommId create(const std::string& name, std::vector<Rank> members);

  [[nodiscard]] const Communicator& get(CommId id) const;
  [[nodiscard]] std::size_t size() const { return comms_.size(); }
  [[nodiscard]] int world_size() const { return world_size_; }

 private:
  int world_size_;
  std::vector<Communicator> comms_;
};

}  // namespace metascope::simmpi
