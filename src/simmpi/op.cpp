#include "simmpi/op.hpp"

namespace metascope::simmpi {

const char* mpi_region_name(OpKind k) {
  switch (k) {
    case OpKind::Send: return "MPI_Send";
    case OpKind::Recv: return "MPI_Recv";
    case OpKind::Isend: return "MPI_Isend";
    case OpKind::Irecv: return "MPI_Irecv";
    case OpKind::Wait: return "MPI_Wait";
    case OpKind::SendRecv: return "MPI_Sendrecv";
    case OpKind::Barrier: return "MPI_Barrier";
    case OpKind::Bcast: return "MPI_Bcast";
    case OpKind::Reduce: return "MPI_Reduce";
    case OpKind::Allreduce: return "MPI_Allreduce";
    case OpKind::Gather: return "MPI_Gather";
    case OpKind::Allgather: return "MPI_Allgather";
    case OpKind::Scatter: return "MPI_Scatter";
    case OpKind::Alltoall: return "MPI_Alltoall";
    case OpKind::Compute:
    case OpKind::Enter:
    case OpKind::Exit:
      break;
  }
  return "";
}

}  // namespace metascope::simmpi
