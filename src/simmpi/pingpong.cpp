#include "simmpi/pingpong.hpp"

#include "common/error.hpp"
#include "simnet/network.hpp"

namespace metascope::simmpi {

PingPongResult ping_pong(const simnet::Topology& topo, Rank a, Rank b,
                         int reps, Rng& rng, double bytes) {
  MSC_CHECK(a != b, "ping-pong needs two distinct ranks");
  MSC_CHECK(reps > 0, "ping-pong needs repetitions");
  simnet::Network net(topo, rng.split(0x70696e67ULL));
  PingPongResult out;
  out.repetitions = reps;
  for (int i = 0; i < reps; ++i) {
    const Dur rtt =
        net.sample_delay(a, b, bytes) + net.sample_delay(b, a, bytes);
    out.one_way.add(rtt / 2.0);
  }
  return out;
}

}  // namespace metascope::simmpi
