// Execution events produced by the engine, stamped in *true* global time.
//
// The tracing layer converts these into trace events with local-clock
// stamps; analysis-side event types live in tracing/event.hpp. Event
// sequences are per-rank and time-monotonic within a rank.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace metascope::simmpi {

enum class ExecEventType : std::uint8_t {
  Enter,     ///< entered a region (user function or MPI call)
  Exit,      ///< left the innermost region
  Send,      ///< message handed to the network (inside an MPI send region)
  Recv,      ///< message fully received (inside an MPI recv/wait region)
  CollExit,  ///< leave a collective region, with collective metadata
};

struct ExecEvent {
  ExecEventType type{ExecEventType::Enter};
  TrueTime time;
  /// Enter: region entered. CollExit: the MPI collective region.
  RegionId region;
  /// Send: destination rank. Recv: source rank.
  Rank peer{kNoRank};
  int tag{0};
  /// Send/Recv: message payload size.
  double bytes{0.0};
  CommId comm{0};
  /// CollExit: root (kNoRank for rootless), bytes contributed/received.
  Rank root{kNoRank};
  double sent_bytes{0.0};
  double recvd_bytes{0.0};
};

/// Aggregate counters for the run (diagnostics and benchmarks).
struct EngineStats {
  std::uint64_t messages{0};
  double message_bytes{0.0};
  std::uint64_t collectives{0};
  std::uint64_t events{0};
  std::uint64_t sweeps{0};  ///< fixed-point sweeps until quiescence
};

/// Result of executing a Program: per-rank event streams in true time.
struct ExecResult {
  std::vector<std::vector<ExecEvent>> per_rank;
  /// Completion time of the last rank.
  TrueTime end_time;
  /// Per-rank completion times.
  std::vector<TrueTime> rank_end;
  EngineStats stats;

  [[nodiscard]] int num_ranks() const {
    return static_cast<int>(per_rank.size());
  }
};

}  // namespace metascope::simmpi
