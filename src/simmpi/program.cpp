#include "simmpi/program.hpp"

#include <map>
#include <sstream>

#include "common/error.hpp"

namespace metascope::simmpi {

std::size_t Program::total_ops() const {
  std::size_t n = 0;
  for (const auto& v : ops) n += v.size();
  return n;
}

void Program::validate() const {
  const int n = num_ranks();
  // Per-communicator collective call sequences must be identical across
  // members; p2p sends/recvs must pair up per (src, dst, tag, comm).
  std::map<std::pair<int, int>, std::vector<OpKind>> coll_seq;  // (comm,rank)
  std::map<std::tuple<int, int, int, int>, long> p2p_balance;

  for (Rank r = 0; r < n; ++r) {
    int depth = 0;
    int requests = 0;
    std::vector<bool> waited;
    for (const auto& op : ops[static_cast<std::size_t>(r)]) {
      std::ostringstream where;
      where << "rank " << r;
      switch (op.kind) {
        case OpKind::Enter:
          MSC_CHECK(op.region.valid(), where.str() + ": Enter without region");
          ++depth;
          break;
        case OpKind::Exit:
          MSC_CHECK(depth > 0, where.str() + ": Exit without Enter");
          --depth;
          break;
        case OpKind::Compute:
          MSC_CHECK(op.work >= 0.0, where.str() + ": negative work");
          break;
        case OpKind::Send:
        case OpKind::Isend:
          MSC_CHECK(op.peer >= 0 && op.peer < n && op.peer != r,
                    where.str() + ": bad send peer");
          p2p_balance[{r, op.peer, op.tag, op.comm.get()}] += 1;
          break;
        case OpKind::Recv:
        case OpKind::Irecv:
          MSC_CHECK(op.peer >= 0 && op.peer < n && op.peer != r,
                    where.str() + ": bad recv peer");
          p2p_balance[{op.peer, r, op.tag, op.comm.get()}] -= 1;
          break;
        case OpKind::SendRecv:
          MSC_CHECK(op.peer >= 0 && op.peer < n,
                    where.str() + ": bad sendrecv dst");
          MSC_CHECK(op.recv_peer >= 0 && op.recv_peer < n,
                    where.str() + ": bad sendrecv src");
          p2p_balance[{r, op.peer, op.tag, op.comm.get()}] += 1;
          p2p_balance[{op.recv_peer, r, op.tag, op.comm.get()}] -= 1;
          break;
        default:
          break;
      }
      if (op.kind == OpKind::Isend || op.kind == OpKind::Irecv) {
        MSC_CHECK(op.request == requests,
                  where.str() + ": request slots must be sequential");
        ++requests;
        waited.push_back(false);
      }
      if (op.kind == OpKind::Wait) {
        MSC_CHECK(op.request >= 0 && op.request < requests,
                  where.str() + ": Wait on unknown request");
        MSC_CHECK(!waited[static_cast<std::size_t>(op.request)],
                  where.str() + ": double Wait on request");
        waited[static_cast<std::size_t>(op.request)] = true;
      }
      if (is_collective(op.kind)) {
        const Communicator& c = comms.get(op.comm);
        MSC_CHECK(c.contains(r),
                  where.str() + ": collective on non-member communicator");
        if (op.kind != OpKind::Barrier && op.kind != OpKind::Allreduce &&
            op.kind != OpKind::Allgather && op.kind != OpKind::Alltoall) {
          MSC_CHECK(op.root >= 0 && c.contains(op.root),
                    where.str() + ": rooted collective needs member root");
        }
        coll_seq[{op.comm.get(), r}].push_back(op.kind);
      }
    }
    std::ostringstream where;
    where << "rank " << r;
    MSC_CHECK(depth == 0, where.str() + ": unbalanced Enter/Exit");
    for (std::size_t q = 0; q < waited.size(); ++q)
      MSC_CHECK(waited[q], where.str() + ": request never waited");
  }

  for (const auto& [key, bal] : p2p_balance) {
    if (bal != 0) {
      std::ostringstream os;
      os << "unmatched point-to-point: " << std::get<0>(key) << " -> "
         << std::get<1>(key) << " tag " << std::get<2>(key) << " comm "
         << std::get<3>(key) << " (balance " << bal << ")";
      throw Error(os.str());
    }
  }

  for (std::size_t c = 0; c < comms.size(); ++c) {
    const Communicator& comm = comms.get(CommId{static_cast<int>(c)});
    std::vector<OpKind> ref;
    bool have_ref = false;
    Rank ref_rank = kNoRank;
    for (Rank m : comm.members) {
      auto it = coll_seq.find({static_cast<int>(c), m});
      std::vector<OpKind> seq =
          it == coll_seq.end() ? std::vector<OpKind>{} : it->second;
      if (!have_ref) {
        ref = std::move(seq);
        ref_rank = m;
        have_ref = true;
        continue;
      }
      if (seq != ref) {
        std::ostringstream os;
        os << "collective sequence mismatch on " << comm.name << ": rank "
           << ref_rank << " has " << ref.size() << " collectives, rank " << m
           << " has " << seq.size();
        throw Error(os.str());
      }
    }
  }
}

RankCursor& RankCursor::enter(const std::string& region) {
  Op op;
  op.kind = OpKind::Enter;
  op.region = prog_->regions.intern(region);
  ops().push_back(op);
  return *this;
}

RankCursor& RankCursor::exit() {
  Op op;
  op.kind = OpKind::Exit;
  ops().push_back(op);
  return *this;
}

RankCursor& RankCursor::compute(double seconds) {
  Op op;
  op.kind = OpKind::Compute;
  op.work = seconds;
  ops().push_back(op);
  return *this;
}

RankCursor& RankCursor::send(Rank dst, int tag, double bytes, CommId comm) {
  Op op;
  op.kind = OpKind::Send;
  op.peer = dst;
  op.tag = tag;
  op.bytes = bytes;
  op.comm = comm;
  ops().push_back(op);
  return *this;
}

RankCursor& RankCursor::recv(Rank src, int tag, CommId comm) {
  Op op;
  op.kind = OpKind::Recv;
  op.peer = src;
  op.tag = tag;
  op.comm = comm;
  ops().push_back(op);
  return *this;
}

int RankCursor::isend(Rank dst, int tag, double bytes, CommId comm) {
  Op op;
  op.kind = OpKind::Isend;
  op.peer = dst;
  op.tag = tag;
  op.bytes = bytes;
  op.comm = comm;
  op.request = next_request_++;
  ops().push_back(op);
  return op.request;
}

int RankCursor::irecv(Rank src, int tag, CommId comm) {
  Op op;
  op.kind = OpKind::Irecv;
  op.peer = src;
  op.tag = tag;
  op.comm = comm;
  op.request = next_request_++;
  ops().push_back(op);
  return op.request;
}

RankCursor& RankCursor::wait(int request) {
  Op op;
  op.kind = OpKind::Wait;
  op.request = request;
  ops().push_back(op);
  return *this;
}

RankCursor& RankCursor::sendrecv(Rank dst, double send_bytes, Rank src,
                                 double recv_bytes, int tag, CommId comm) {
  Op op;
  op.kind = OpKind::SendRecv;
  op.peer = dst;
  op.bytes = send_bytes;
  op.recv_peer = src;
  op.recv_bytes = recv_bytes;
  op.tag = tag;
  op.comm = comm;
  ops().push_back(op);
  return *this;
}

namespace {
Op collective_op(OpKind kind, Rank root, double bytes, CommId comm) {
  Op op;
  op.kind = kind;
  op.root = root;
  op.bytes = bytes;
  op.comm = comm;
  return op;
}
}  // namespace

RankCursor& RankCursor::barrier(CommId comm) {
  ops().push_back(collective_op(OpKind::Barrier, kNoRank, 0.0, comm));
  return *this;
}

RankCursor& RankCursor::bcast(Rank root, double bytes, CommId comm) {
  ops().push_back(collective_op(OpKind::Bcast, root, bytes, comm));
  return *this;
}

RankCursor& RankCursor::reduce(Rank root, double bytes, CommId comm) {
  ops().push_back(collective_op(OpKind::Reduce, root, bytes, comm));
  return *this;
}

RankCursor& RankCursor::allreduce(double bytes, CommId comm) {
  ops().push_back(collective_op(OpKind::Allreduce, kNoRank, bytes, comm));
  return *this;
}

RankCursor& RankCursor::gather(Rank root, double bytes, CommId comm) {
  ops().push_back(collective_op(OpKind::Gather, root, bytes, comm));
  return *this;
}

RankCursor& RankCursor::allgather(double bytes, CommId comm) {
  ops().push_back(collective_op(OpKind::Allgather, kNoRank, bytes, comm));
  return *this;
}

RankCursor& RankCursor::scatter(Rank root, double bytes, CommId comm) {
  ops().push_back(collective_op(OpKind::Scatter, root, bytes, comm));
  return *this;
}

RankCursor& RankCursor::alltoall(double bytes, CommId comm) {
  ops().push_back(collective_op(OpKind::Alltoall, kNoRank, bytes, comm));
  return *this;
}

}  // namespace metascope::simmpi
