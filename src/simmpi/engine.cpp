#include "simmpi/engine.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "simmpi/collectives.hpp"
#include "simnet/network.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/span.hpp"

namespace metascope::simmpi {

namespace {

// ---------------------------------------------------------------------
// Half identification: every point-to-point transfer has a send half and
// a receive half, each owned by one (rank, op). SendRecv ops own one of
// each. Halves are keyed for the matching tables.
// ---------------------------------------------------------------------

enum class HalfSide : std::uint8_t { SendHalf = 0, RecvHalf = 1 };

std::uint64_t half_key(Rank rank, std::uint32_t op_idx, HalfSide side) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 33) |
         (static_cast<std::uint64_t>(op_idx) << 1) |
         static_cast<std::uint64_t>(side);
}

struct HalfState {
  bool posted{false};
  TrueTime post_time;
  bool timed{false};
  bool rendezvous{false};
  double bytes{0.0};
  Rank src{kNoRank};
  Rank dst{kNoRank};
  // Outputs (valid once timed). All stored on the *send* half; the recv
  // half holds only posted/post_time and a pointer to its partner.
  TrueTime send_event;
  TrueTime send_done;
  TrueTime arrival;
};

struct CollInstance {
  std::vector<TrueTime> enter;
  std::vector<bool> present;
  int arrived{0};
  bool timed{false};
  CollTiming timing;
  OpKind kind{OpKind::Barrier};
  Rank root{kNoRank};
  double bytes{0.0};
};

struct RequestState {
  std::uint64_t half{0};
  bool is_recv{false};
  double bytes{0.0};
  Rank peer{kNoRank};
  int tag{0};
  CommId comm{0};
};

class EngineImpl {
 public:
  EngineImpl(const simnet::Topology& topo, const Program& prog,
             const EngineConfig& cfg)
      : topo_(topo),
        prog_(prog),
        cfg_(cfg),
        net_(topo, Rng(cfg.seed)),
        mpi_region_(static_cast<std::size_t>(17)) {
    MSC_CHECK(topo_.num_ranks() == prog_.num_ranks(),
              "topology rank count differs from program rank count");
    const auto n = static_cast<std::size_t>(prog_.num_ranks());
    now_.assign(n, TrueTime{0.0});
    ip_.assign(n, 0);
    posted_current_.assign(n, false);
    events_.assign(n, {});
    requests_.assign(n, {});
    coll_count_.assign(n, std::vector<int>(prog_.comms.size(), 0));
    // Intern MPI call regions into a const_cast-free private copy? The
    // program owns the region table; engine emits region ids from it. MPI
    // regions were interned at build time by the cursor only for user
    // regions, so intern them here into the lookup used for events.
    build_mpi_regions();
    precompute_matching();
  }

  ExecResult run() {
    std::size_t total_ops = 0;
    for (const auto& ops : prog_.ops) total_ops += ops.size();
    bool progress = true;
    while (progress) {
      progress = false;
      ++stats_.sweeps;
      for (Rank r = 0; r < prog_.num_ranks(); ++r)
        progress = advance(r) || progress;
      if (telemetry::progress_enabled() && total_ops > 0) {
        std::size_t executed = 0;
        for (const std::size_t i : ip_) executed += i;
        telemetry::progress("simulate",
                            static_cast<double>(executed) /
                                static_cast<double>(total_ops));
      }
    }
    for (Rank r = 0; r < prog_.num_ranks(); ++r) {
      if (ip_[static_cast<std::size_t>(r)] <
          prog_.ops[static_cast<std::size_t>(r)].size()) {
        std::ostringstream os;
        const auto& op = prog_.ops[static_cast<std::size_t>(
            r)][ip_[static_cast<std::size_t>(r)]];
        os << "simulated deadlock: rank " << r << " blocked at op "
           << ip_[static_cast<std::size_t>(r)] << " (kind "
           << static_cast<int>(op.kind) << ", peer " << op.peer << ", tag "
           << op.tag << ")";
        throw Error(os.str());
      }
    }
    ExecResult out;
    out.per_rank = std::move(events_);
    out.rank_end.resize(now_.size());
    out.end_time = TrueTime{0.0};
    for (std::size_t r = 0; r < now_.size(); ++r) {
      out.rank_end[r] = now_[r];
      out.end_time = std::max(out.end_time, now_[r]);
    }
    for (const auto& v : out.per_rank) stats_.events += v.size();
    out.stats = stats_;
    return out;
  }

 private:
  // --- setup -----------------------------------------------------------

  void build_mpi_regions() {
    // MPI call regions were pre-interned by the Program constructor.
    for (OpKind k :
         {OpKind::Send, OpKind::Recv, OpKind::Isend, OpKind::Irecv,
          OpKind::Wait, OpKind::SendRecv, OpKind::Barrier, OpKind::Bcast,
          OpKind::Reduce, OpKind::Allreduce, OpKind::Gather,
          OpKind::Allgather, OpKind::Scatter, OpKind::Alltoall})
      mpi_region_[static_cast<std::size_t>(k)] =
          prog_.regions.find(mpi_region_name(k));
  }

  RegionId mpi_region(OpKind k) const {
    return mpi_region_[static_cast<std::size_t>(k)];
  }

  void precompute_matching() {
    // Channel = (src, dst, tag, comm). The i-th send half on a channel
    // matches the i-th recv half (MPI non-overtaking order).
    struct Channel {
      std::vector<std::uint64_t> sends;
      std::vector<std::uint64_t> recvs;
    };
    std::map<std::tuple<Rank, Rank, int, int>, Channel> channels;
    for (Rank r = 0; r < prog_.num_ranks(); ++r) {
      const auto& ops = prog_.ops[static_cast<std::size_t>(r)];
      for (std::uint32_t i = 0; i < ops.size(); ++i) {
        const Op& op = ops[i];
        switch (op.kind) {
          case OpKind::Send:
          case OpKind::Isend:
            channels[{r, op.peer, op.tag, op.comm.get()}].sends.push_back(
                half_key(r, i, HalfSide::SendHalf));
            break;
          case OpKind::Recv:
          case OpKind::Irecv:
            channels[{op.peer, r, op.tag, op.comm.get()}].recvs.push_back(
                half_key(r, i, HalfSide::RecvHalf));
            break;
          case OpKind::SendRecv:
            channels[{r, op.peer, op.tag, op.comm.get()}].sends.push_back(
                half_key(r, i, HalfSide::SendHalf));
            channels[{op.recv_peer, r, op.tag, op.comm.get()}]
                .recvs.push_back(half_key(r, i, HalfSide::RecvHalf));
            break;
          default:
            break;
        }
      }
    }
    for (const auto& [key, ch] : channels) {
      MSC_ASSERT(ch.sends.size() == ch.recvs.size(),
                 "validate() should have rejected unmatched p2p");
      for (std::size_t i = 0; i < ch.sends.size(); ++i) {
        partner_[ch.sends[i]] = ch.recvs[i];
        partner_[ch.recvs[i]] = ch.sends[i];
      }
    }
  }

  // --- helpers ---------------------------------------------------------

  Dur overhead(Rank r) const { return cfg_.cpu_overhead / topo_.speed_of(r); }

  HalfState& half(std::uint64_t key) { return halves_[key]; }

  std::uint64_t partner_of(std::uint64_t key) const {
    auto it = partner_.find(key);
    MSC_ASSERT(it != partner_.end(), "unmatched half");
    return it->second;
  }

  void post_send_half(Rank r, std::uint32_t op_idx, const Op& op,
                      TrueTime t, Rank dst, double bytes) {
    const auto key = half_key(r, op_idx, HalfSide::SendHalf);
    HalfState& h = half(key);
    h.posted = true;
    h.post_time = t;
    h.bytes = bytes;
    h.src = r;
    h.dst = dst;
    h.rendezvous = bytes > cfg_.eager_threshold;
    (void)op;
    try_time_send(key);
  }

  void post_recv_half(Rank r, std::uint32_t op_idx, TrueTime t, Rank src) {
    const auto key = half_key(r, op_idx, HalfSide::RecvHalf);
    HalfState& h = half(key);
    h.posted = true;
    h.post_time = t;
    h.src = src;
    h.dst = r;
    // A rendezvous sender might be blocked on this post.
    try_time_send(partner_of(key));
  }

  /// Attempts to compute the transfer times for a send half. Eager sends
  /// time immediately; rendezvous sends require the posted receive.
  void try_time_send(std::uint64_t send_key) {
    HalfState& s = half(send_key);
    if (!s.posted || s.timed) return;
    const Dur o = overhead(s.src);
    if (!s.rendezvous) {
      s.send_event = s.post_time + 0.5 * o;
      const auto& link = topo_.link_between(s.src, s.dst);
      s.send_done = s.post_time + o + s.bytes / link.bandwidth_bps;
      s.arrival = s.send_event + net_.sample_delay(s.src, s.dst, s.bytes);
      s.timed = true;
    } else {
      const HalfState& rhalf = half(partner_of(send_key));
      if (!rhalf.posted) return;
      const Dur o_r = overhead(s.dst);
      const Dur l1 = net_.sample_delay(s.src, s.dst, 0.0);
      const Dur l2 = net_.sample_delay(s.dst, s.src, 0.0);
      const Dur l3 = net_.sample_delay(s.src, s.dst, 0.0);
      const TrueTime rts_at_recv = s.post_time + o + l1;
      const TrueTime cts_at_sender =
          std::max(rts_at_recv, rhalf.post_time + o_r) + l2;
      const auto& link = topo_.link_between(s.src, s.dst);
      s.send_event = s.post_time + 0.5 * o;
      s.send_done = cts_at_sender + s.bytes / link.bandwidth_bps;
      s.arrival = s.send_done + l3;
      s.timed = true;
    }
    ++stats_.messages;
    stats_.message_bytes += s.bytes;
  }

  void emit(Rank r, ExecEvent ev) {
    events_[static_cast<std::size_t>(r)].push_back(ev);
  }

  void emit_enter(Rank r, TrueTime t, RegionId region) {
    ExecEvent ev;
    ev.type = ExecEventType::Enter;
    ev.time = t;
    ev.region = region;
    emit(r, ev);
  }

  void emit_exit(Rank r, TrueTime t) {
    ExecEvent ev;
    ev.type = ExecEventType::Exit;
    ev.time = t;
    emit(r, ev);
  }

  void emit_send(Rank r, TrueTime t, Rank dst, int tag, double bytes,
                 CommId comm) {
    ExecEvent ev;
    ev.type = ExecEventType::Send;
    ev.time = t;
    ev.peer = dst;
    ev.tag = tag;
    ev.bytes = bytes;
    ev.comm = comm;
    emit(r, ev);
  }

  void emit_recv(Rank r, TrueTime t, Rank src, int tag, double bytes,
                 CommId comm) {
    ExecEvent ev;
    ev.type = ExecEventType::Recv;
    ev.time = t;
    ev.peer = src;
    ev.tag = tag;
    ev.bytes = bytes;
    ev.comm = comm;
    emit(r, ev);
  }

  // --- the sweep -------------------------------------------------------

  /// Advances rank r as far as possible; true if any op resolved.
  bool advance(Rank r) {
    const auto ri = static_cast<std::size_t>(r);
    const auto& ops = prog_.ops[ri];
    bool progressed = false;
    while (ip_[ri] < ops.size()) {
      const auto op_idx = static_cast<std::uint32_t>(ip_[ri]);
      const Op& op = ops[op_idx];
      const TrueTime t = now_[ri];
      const Dur o = overhead(r);

      // Post side effects exactly once per op.
      if (!posted_current_[ri]) {
        switch (op.kind) {
          case OpKind::Send:
            post_send_half(r, op_idx, op, t, op.peer, op.bytes);
            break;
          case OpKind::Recv:
            post_recv_half(r, op_idx, t, op.peer);
            break;
          case OpKind::Isend: {
            post_send_half(r, op_idx, op, t, op.peer, op.bytes);
            RequestState req;
            req.half = half_key(r, op_idx, HalfSide::SendHalf);
            req.is_recv = false;
            req.bytes = op.bytes;
            req.peer = op.peer;
            req.tag = op.tag;
            req.comm = op.comm;
            requests_[ri].push_back(req);
            break;
          }
          case OpKind::Irecv: {
            post_recv_half(r, op_idx, t, op.peer);
            RequestState req;
            req.half = half_key(r, op_idx, HalfSide::RecvHalf);
            req.is_recv = true;
            req.peer = op.peer;
            req.tag = op.tag;
            req.comm = op.comm;
            requests_[ri].push_back(req);
            break;
          }
          case OpKind::SendRecv:
            post_send_half(r, op_idx, op, t, op.peer, op.bytes);
            post_recv_half(r, op_idx, t, op.recv_peer);
            break;
          default:
            if (is_collective(op.kind)) post_collective(r, op, t);
            break;
        }
        posted_current_[ri] = true;
      }

      // Try to resolve the op.
      TrueTime done = t;
      bool resolved = false;
      switch (op.kind) {
        case OpKind::Compute: {
          done = t + op.work / topo_.speed_of(r);
          resolved = true;
          break;
        }
        case OpKind::Enter: {
          emit_enter(r, t, op.region);
          resolved = true;
          break;
        }
        case OpKind::Exit: {
          emit_exit(r, t);
          resolved = true;
          break;
        }
        case OpKind::Send: {
          const HalfState& s = half(half_key(r, op_idx, HalfSide::SendHalf));
          if (!s.timed) break;
          emit_enter(r, t, mpi_region(OpKind::Send));
          emit_send(r, s.send_event, op.peer, op.tag, op.bytes, op.comm);
          done = s.send_done;
          emit_exit(r, done);
          resolved = true;
          break;
        }
        case OpKind::Recv: {
          const HalfState& s = half(
              partner_of(half_key(r, op_idx, HalfSide::RecvHalf)));
          if (!s.timed) break;
          done = std::max(t, s.arrival) + o;
          emit_enter(r, t, mpi_region(OpKind::Recv));
          emit_recv(r, done, op.peer, op.tag, s.bytes, op.comm);
          emit_exit(r, done);
          resolved = true;
          break;
        }
        case OpKind::Isend: {
          // The call itself returns immediately; transfer may still be
          // pending (rendezvous) and completes at Wait.
          emit_enter(r, t, mpi_region(OpKind::Isend));
          emit_send(r, t + 0.5 * o, op.peer, op.tag, op.bytes, op.comm);
          done = t + o;
          emit_exit(r, done);
          resolved = true;
          break;
        }
        case OpKind::Irecv: {
          emit_enter(r, t, mpi_region(OpKind::Irecv));
          done = t + o;
          emit_exit(r, done);
          resolved = true;
          break;
        }
        case OpKind::Wait: {
          const RequestState& req =
              requests_[ri][static_cast<std::size_t>(op.request)];
          if (req.is_recv) {
            const HalfState& s = half(partner_of(req.half));
            if (!s.timed) break;
            done = std::max(t, s.arrival) + o;
            emit_enter(r, t, mpi_region(OpKind::Wait));
            emit_recv(r, done, req.peer, req.tag, s.bytes, req.comm);
            emit_exit(r, done);
          } else {
            const HalfState& s = half(req.half);
            if (!s.timed) break;
            done = std::max(t, s.send_done) + 0.5 * o;
            emit_enter(r, t, mpi_region(OpKind::Wait));
            emit_exit(r, done);
          }
          resolved = true;
          break;
        }
        case OpKind::SendRecv: {
          const HalfState& s = half(half_key(r, op_idx, HalfSide::SendHalf));
          const HalfState& ps = half(
              partner_of(half_key(r, op_idx, HalfSide::RecvHalf)));
          if (!s.timed || !ps.timed) break;
          const TrueTime recv_done = std::max(t, ps.arrival) + o;
          done = std::max(s.send_done, recv_done);
          emit_enter(r, t, mpi_region(OpKind::SendRecv));
          emit_send(r, s.send_event, op.peer, op.tag, op.bytes, op.comm);
          emit_recv(r, recv_done, op.recv_peer, op.tag, ps.bytes, op.comm);
          emit_exit(r, done);
          resolved = true;
          break;
        }
        default: {
          MSC_ASSERT(is_collective(op.kind), "unhandled op kind");
          CollInstance& inst = coll_instance_of(r, op_idx);
          if (!inst.timed) break;
          const Communicator& comm = prog_.comms.get(op.comm);
          const int local = comm.local_rank(r);
          done = inst.timing.exit[static_cast<std::size_t>(local)];
          emit_enter(r, t, mpi_region(op.kind));
          ExecEvent ev;
          ev.type = ExecEventType::CollExit;
          ev.time = done;
          ev.region = mpi_region(op.kind);
          ev.comm = op.comm;
          ev.root = op.root;
          ev.bytes = op.bytes;
          ev.sent_bytes =
              inst.timing.sent_bytes[static_cast<std::size_t>(local)];
          ev.recvd_bytes =
              inst.timing.recvd_bytes[static_cast<std::size_t>(local)];
          emit(r, ev);
          resolved = true;
          break;
        }
      }

      if (!resolved) break;
      now_[ri] = done;
      ++ip_[ri];
      posted_current_[ri] = false;
      progressed = true;
    }
    return progressed;
  }

  // --- collectives -----------------------------------------------------

  void post_collective(Rank r, const Op& op, TrueTime t) {
    const auto ri = static_cast<std::size_t>(r);
    const auto ci = static_cast<std::size_t>(op.comm.get());
    const int seq = coll_count_[ri][ci]++;
    const Communicator& comm = prog_.comms.get(op.comm);
    auto& list = coll_instances_[op.comm.get()];
    if (static_cast<std::size_t>(seq) >= list.size()) {
      list.resize(static_cast<std::size_t>(seq) + 1);
    }
    CollInstance& inst = list[static_cast<std::size_t>(seq)];
    if (inst.enter.empty()) {
      inst.enter.assign(static_cast<std::size_t>(comm.size()), TrueTime{});
      inst.present.assign(static_cast<std::size_t>(comm.size()), false);
      inst.kind = op.kind;
      inst.root = op.root;
      inst.bytes = op.bytes;
    }
    MSC_ASSERT(inst.kind == op.kind,
               "collective kind mismatch (validate() hole?)");
    const int local = comm.local_rank(r);
    MSC_ASSERT(local >= 0, "collective poster not a member");
    const auto lu = static_cast<std::size_t>(local);
    MSC_ASSERT(!inst.present[lu], "double collective post");
    inst.present[lu] = true;
    inst.enter[lu] = t;
    ++inst.arrived;
    // Remember which instance this rank's op refers to.
    coll_ref_[half_key(r, current_op_index(r), HalfSide::SendHalf)] = seq;
    if (inst.arrived == comm.size()) {
      auto pit = comm_profile_.find(op.comm.get());
      if (pit == comm_profile_.end()) {
        pit = comm_profile_
                  .emplace(op.comm.get(), profile_comm(topo_, comm))
                  .first;
      }
      inst.timing =
          time_collective(inst.kind, topo_, comm, pit->second, inst.enter,
                          inst.root, inst.bytes, cfg_.cpu_overhead);
      inst.timed = true;
      ++stats_.collectives;
    }
  }

  std::uint32_t current_op_index(Rank r) const {
    return static_cast<std::uint32_t>(ip_[static_cast<std::size_t>(r)]);
  }

  CollInstance& coll_instance_of(Rank r, std::uint32_t op_idx) {
    const auto key = half_key(r, op_idx, HalfSide::SendHalf);
    auto it = coll_ref_.find(key);
    MSC_ASSERT(it != coll_ref_.end(), "collective op not posted");
    const Op& op = prog_.ops[static_cast<std::size_t>(r)][op_idx];
    return coll_instances_[op.comm.get()][static_cast<std::size_t>(
        it->second)];
  }

  // --- state -----------------------------------------------------------

  const simnet::Topology& topo_;
  const Program& prog_;
  EngineConfig cfg_;
  simnet::Network net_;

  std::vector<TrueTime> now_;
  std::vector<std::size_t> ip_;
  std::vector<bool> posted_current_;
  std::vector<std::vector<ExecEvent>> events_;
  std::vector<std::vector<RequestState>> requests_;
  std::vector<std::vector<int>> coll_count_;

  std::unordered_map<std::uint64_t, std::uint64_t> partner_;
  std::unordered_map<std::uint64_t, HalfState> halves_;
  std::unordered_map<int, std::vector<CollInstance>> coll_instances_;
  std::unordered_map<std::uint64_t, int> coll_ref_;
  std::unordered_map<int, CommLinkProfile> comm_profile_;
  std::vector<RegionId> mpi_region_;

  EngineStats stats_;
};

}  // namespace

ExecResult execute(const simnet::Topology& topo, const Program& prog,
                   const EngineConfig& cfg) {
  telemetry::ScopedSpan span("simulate");
  EngineImpl impl(topo, prog, cfg);
  ExecResult out = impl.run();
  // The engine is single-threaded, so its aggregate counters transfer to
  // the registry in one shot instead of per-event increments.
  telemetry::counter("sim.events").add(out.stats.events);
  telemetry::counter("sim.messages").add(out.stats.messages);
  telemetry::counter("sim.collectives").add(out.stats.collectives);
  telemetry::counter("sim.sweeps").add(out.stats.sweeps);
  telemetry::gauge("sim.time_s").set(out.end_time.s);
  if (telemetry::progress_enabled()) telemetry::progress("simulate", 1.0);
  return out;
}

}  // namespace metascope::simmpi
