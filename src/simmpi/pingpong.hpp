// Ping-pong latency measurement over the simulated network — the
// MetaMPICH measurement behind the paper's Table 1. Returns the sampled
// one-way latency statistics (half round-trip of zero-byte messages).
#pragma once

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "simnet/topology.hpp"

namespace metascope::simmpi {

struct PingPongResult {
  RunningStats one_way;  ///< seconds
  int repetitions{0};
};

/// Measures rank `a` <-> rank `b` with `reps` ping-pongs.
PingPongResult ping_pong(const simnet::Topology& topo, Rank a, Rank b,
                         int reps, Rng& rng, double bytes = 0.0);

}  // namespace metascope::simmpi
