// Analytic timing models for collective operations.
//
// Collectives are modelled at the algorithm level (binomial/dissemination
// rounds over the slowest link in the communicator), not message by
// message. That is accurate enough to reproduce the wait-state patterns —
// which depend on the *spread of entry times*, not on the internals of the
// collective — while keeping the engine's fixed-point simple.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/op.hpp"
#include "simnet/topology.hpp"

namespace metascope::simmpi {

/// Per-member outcome of one collective instance.
struct CollTiming {
  std::vector<TrueTime> exit;       ///< same order as comm.members
  std::vector<double> sent_bytes;   ///< contribution pushed by each member
  std::vector<double> recvd_bytes;  ///< data landing at each member
};

/// Worst-case link characteristics within a communicator; cached by the
/// engine per communicator.
struct CommLinkProfile {
  Dur max_latency{0.0};
  double min_bandwidth{1e18};
  int rounds{0};  ///< ceil(log2(size)), at least 1 for size > 1
};

CommLinkProfile profile_comm(const simnet::Topology& topo,
                             const Communicator& comm);

/// Computes exit times for a collective whose members entered at `enter`
/// (ordered like comm.members). `per_rank_bytes` is the payload each rank
/// contributes (Op::bytes).
CollTiming time_collective(OpKind kind, const simnet::Topology& topo,
                           const Communicator& comm,
                           const CommLinkProfile& profile,
                           const std::vector<TrueTime>& enter, Rank root,
                           double per_rank_bytes, Dur cpu_overhead);

}  // namespace metascope::simmpi
