#include "simmpi/collectives.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace metascope::simmpi {

namespace {

int log2_rounds(int n) {
  int rounds = 0;
  int span = 1;
  while (span < n) {
    span *= 2;
    ++rounds;
  }
  return std::max(rounds, 1);
}

TrueTime max_of(const std::vector<TrueTime>& ts) {
  TrueTime m = ts.front();
  for (const auto& t : ts) m = std::max(m, t);
  return m;
}

}  // namespace

CommLinkProfile profile_comm(const simnet::Topology& topo,
                             const Communicator& comm) {
  CommLinkProfile p;
  const int n = comm.size();
  if (n == 1) {
    p.rounds = 0;
    p.max_latency = 0.0;
    p.min_bandwidth = 1e18;
    return p;
  }
  p.rounds = log2_rounds(n);
  // The dissemination/binomial stages are bounded by the worst link among
  // members. A full O(n^2) pair scan is exact but needless: the worst link
  // is external iff members span metahosts, else the slowest internal link
  // of any occupied metahost.
  std::vector<bool> seen;
  std::vector<MetahostId> hosts;
  for (Rank r : comm.members) {
    const MetahostId m = topo.metahost_of(r);
    if (std::find(hosts.begin(), hosts.end(), m) == hosts.end())
      hosts.push_back(m);
  }
  for (MetahostId m : hosts) {
    const auto& spec = topo.metahost(m);
    p.max_latency = std::max(p.max_latency, spec.internal.latency_mean);
    p.min_bandwidth = std::min(p.min_bandwidth, spec.internal.bandwidth_bps);
  }
  for (std::size_t i = 0; i < hosts.size(); ++i)
    for (std::size_t j = i + 1; j < hosts.size(); ++j) {
      const auto& l = topo.external_link(hosts[i], hosts[j]);
      p.max_latency = std::max(p.max_latency, l.latency_mean);
      p.min_bandwidth = std::min(p.min_bandwidth, l.bandwidth_bps);
    }
  return p;
}

CollTiming time_collective(OpKind kind, const simnet::Topology& topo,
                           const Communicator& comm,
                           const CommLinkProfile& profile,
                           const std::vector<TrueTime>& enter, Rank root,
                           double per_rank_bytes, Dur cpu_overhead) {
  const int n = comm.size();
  MSC_CHECK(static_cast<int>(enter.size()) == n,
            "collective enter/member size mismatch");
  CollTiming out;
  out.exit.resize(static_cast<std::size_t>(n));
  out.sent_bytes.assign(static_cast<std::size_t>(n), 0.0);
  out.recvd_bytes.assign(static_cast<std::size_t>(n), 0.0);

  const TrueTime last = max_of(enter);
  const double bw = profile.min_bandwidth;
  const Dur lat = profile.max_latency;
  const int rounds = profile.rounds;
  const int root_local = root >= 0 ? comm.local_rank(root) : -1;

  auto all_exit_at = [&](TrueTime t) {
    for (auto& e : out.exit) e = t;
  };

  switch (kind) {
    case OpKind::Barrier: {
      // Dissemination barrier: no rank leaves before the last has entered.
      all_exit_at(last + static_cast<double>(rounds) * lat + cpu_overhead);
      break;
    }
    case OpKind::Allreduce: {
      // Recursive doubling: log2(n) rounds each moving the payload.
      const Dur cost =
          static_cast<double>(rounds) * (lat + per_rank_bytes / bw);
      all_exit_at(last + cost + cpu_overhead);
      for (int i = 0; i < n; ++i) {
        out.sent_bytes[static_cast<std::size_t>(i)] = per_rank_bytes;
        out.recvd_bytes[static_cast<std::size_t>(i)] = per_rank_bytes;
      }
      break;
    }
    case OpKind::Allgather:
    case OpKind::Alltoall: {
      // Ring/pairwise: every rank moves (n-1) blocks.
      const Dur cost = static_cast<double>(rounds) * lat +
                       static_cast<double>(n - 1) * per_rank_bytes / bw;
      all_exit_at(last + cost + cpu_overhead);
      for (int i = 0; i < n; ++i) {
        out.sent_bytes[static_cast<std::size_t>(i)] =
            per_rank_bytes * static_cast<double>(n - 1);
        out.recvd_bytes[static_cast<std::size_t>(i)] =
            per_rank_bytes * static_cast<double>(n - 1);
      }
      break;
    }
    case OpKind::Bcast:
    case OpKind::Scatter: {
      MSC_CHECK(root_local >= 0, "rooted collective without root");
      const TrueTime root_enter = enter[static_cast<std::size_t>(root_local)];
      for (int i = 0; i < n; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        if (i == root_local) {
          out.exit[iu] = root_enter + per_rank_bytes / bw + cpu_overhead;
          out.sent_bytes[iu] =
              per_rank_bytes *
              (kind == OpKind::Scatter ? static_cast<double>(n - 1) : 1.0);
          continue;
        }
        const Rank g = comm.members[iu];
        const auto& link = topo.link_between(root, g);
        // Data reaches rank i after the root entered plus the tree depth
        // in latency terms plus the serialized payload.
        const Dur path = static_cast<double>(rounds) * link.latency_mean +
                         per_rank_bytes / link.bandwidth_bps;
        out.exit[iu] =
            std::max(enter[iu], root_enter + path) + cpu_overhead;
        out.recvd_bytes[iu] = per_rank_bytes;
      }
      break;
    }
    case OpKind::Reduce:
    case OpKind::Gather: {
      MSC_CHECK(root_local >= 0, "rooted collective without root");
      // Root cannot finish before every contribution has arrived.
      TrueTime root_done = enter[static_cast<std::size_t>(root_local)];
      for (int i = 0; i < n; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        if (i == root_local) continue;
        const Rank g = comm.members[iu];
        const auto& link = topo.link_between(g, root);
        const TrueTime arrive = enter[iu] + link.latency_mean +
                                per_rank_bytes / link.bandwidth_bps;
        root_done = std::max(root_done, arrive);
      }
      const double gather_factor =
          kind == OpKind::Gather ? static_cast<double>(n - 1) : 1.0;
      root_done = root_done + static_cast<double>(rounds) * cpu_overhead +
                  (gather_factor - 1.0) * per_rank_bytes / bw;
      for (int i = 0; i < n; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        if (i == root_local) {
          out.exit[iu] = root_done + cpu_overhead;
          out.recvd_bytes[iu] = per_rank_bytes * gather_factor;
        } else {
          // Non-roots fire their contribution and leave.
          out.exit[iu] = enter[iu] + per_rank_bytes / bw + cpu_overhead;
          out.sent_bytes[iu] = per_rank_bytes;
        }
      }
      break;
    }
    default:
      MSC_ASSERT(false, "not a collective op");
  }
  return out;
}

}  // namespace metascope::simmpi
