// Deterministic discrete-event execution of a Program on a Topology.
//
// The engine runs a fixed-point sweep over ranks: each rank advances
// through its op sequence as far as dependencies allow (message matching,
// rendezvous handshakes, collective completion), accumulating per-rank
// event streams in true global time. MPI semantics modelled:
//
//  - eager protocol for payloads <= eager_threshold: the sender never
//    blocks on the receiver; the message waits in the "network";
//  - rendezvous above the threshold: the sender blocks until the matching
//    receive is posted (RTS/CTS handshake over the link);
//  - non-overtaking matching per (source, destination, tag, communicator);
//  - collectives complete per the analytic models in collectives.hpp.
//
// Determinism: all latency jitter comes from one seeded RNG and the sweep
// order is fixed, so identical inputs give bit-identical event streams.
#pragma once

#include <cstdint>

#include "simmpi/exec_event.hpp"
#include "simmpi/program.hpp"
#include "simnet/topology.hpp"

namespace metascope::simmpi {

struct EngineConfig {
  /// Messages above this size use the rendezvous protocol, bytes.
  double eager_threshold{65536.0};
  /// CPU cost of one MPI call at speed factor 1.0, seconds.
  Dur cpu_overhead{2e-6};
  /// Seed for message-latency jitter.
  std::uint64_t seed{1};
};

/// Executes `prog` on `topo`. Throws Error on deadlock (a blocking
/// dependency that can never be satisfied), reporting rank and op index.
ExecResult execute(const simnet::Topology& topo, const Program& prog,
                   const EngineConfig& cfg = {});

}  // namespace metascope::simmpi
