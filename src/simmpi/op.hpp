// Operation model for simulated per-rank MPI programs.
//
// A rank program is a static sequence of operations. All modelled
// workloads have data-independent control flow, so a static sequence is
// exactly as expressive as running real code — and keeps the simulator a
// deterministic fixed-point computation over virtual time.
#pragma once

#include <string>

#include "common/types.hpp"

namespace metascope::simmpi {

enum class OpKind : std::uint8_t {
  Compute,   ///< busy CPU for work/speed seconds
  Enter,     ///< enter a user region
  Exit,      ///< exit the current user region
  Send,      ///< blocking standard send
  Recv,      ///< blocking receive
  Isend,     ///< nonblocking send; completes at Wait
  Irecv,     ///< nonblocking receive; completes at Wait
  Wait,      ///< wait for one request
  SendRecv,  ///< combined send+receive (deadlock-free halo exchange)
  Barrier,
  Bcast,
  Reduce,
  Allreduce,
  Gather,
  Allgather,
  Scatter,
  Alltoall,
};

/// True for the group operations that involve a whole communicator.
constexpr bool is_collective(OpKind k) {
  switch (k) {
    case OpKind::Barrier:
    case OpKind::Bcast:
    case OpKind::Reduce:
    case OpKind::Allreduce:
    case OpKind::Gather:
    case OpKind::Allgather:
    case OpKind::Scatter:
    case OpKind::Alltoall:
      return true;
    default:
      return false;
  }
}

/// MPI function name used as the implicit region for an operation.
const char* mpi_region_name(OpKind k);

struct Op {
  OpKind kind{OpKind::Compute};
  /// Enter: user region id (interned in the program's region table).
  RegionId region;
  /// Compute: nominal seconds of work at speed factor 1.0.
  double work{0.0};
  /// Send/Isend: destination. Recv/Irecv: source. SendRecv: destination.
  Rank peer{kNoRank};
  /// SendRecv: source of the receive half.
  Rank recv_peer{kNoRank};
  int tag{0};
  /// Payload bytes (send side; collectives: per-rank contribution).
  double bytes{0.0};
  /// SendRecv: bytes of the receive half.
  double recv_bytes{0.0};
  CommId comm{0};
  /// Rooted collectives: root as a *global* rank.
  Rank root{kNoRank};
  /// Isend/Irecv: request slot assigned by the builder; Wait: slot waited.
  int request{-1};
};

}  // namespace metascope::simmpi
