// Program container and fluent builder for per-rank op sequences.
#pragma once

#include <string>
#include <vector>

#include "common/name_table.hpp"
#include "common/types.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/op.hpp"

namespace metascope::simmpi {

/// A complete simulated application: one op sequence per rank plus the
/// region and communicator definition tables shared by all ranks.
struct Program {
  explicit Program(int nranks)
      : comms(nranks), ops(static_cast<std::size_t>(nranks)) {
    // Pre-intern the MPI call regions so that region ids are stable and
    // the engine never has to mutate a const program.
    for (OpKind k :
         {OpKind::Send, OpKind::Recv, OpKind::Isend, OpKind::Irecv,
          OpKind::Wait, OpKind::SendRecv, OpKind::Barrier, OpKind::Bcast,
          OpKind::Reduce, OpKind::Allreduce, OpKind::Gather,
          OpKind::Allgather, OpKind::Scatter, OpKind::Alltoall})
      regions.intern(mpi_region_name(k));
  }

  [[nodiscard]] int num_ranks() const { return comms.world_size(); }

  NameTable<RegionId> regions;
  CommSet comms;
  std::vector<std::vector<Op>> ops;

  /// Total op count across ranks (diagnostics).
  [[nodiscard]] std::size_t total_ops() const;

  /// Validates structural sanity: balanced Enter/Exit, peers in range,
  /// matching collective sequences per communicator, matched p2p counts.
  /// Throws Error with a precise description on the first defect.
  void validate() const;
};

/// Fluent per-rank cursor. Obtained from ProgramBuilder::on().
class RankCursor {
 public:
  RankCursor(Program& prog, Rank rank) : prog_(&prog), rank_(rank) {}

  RankCursor& enter(const std::string& region);
  RankCursor& exit();
  RankCursor& compute(double seconds);
  RankCursor& send(Rank dst, int tag, double bytes, CommId comm = CommId{0});
  RankCursor& recv(Rank src, int tag, CommId comm = CommId{0});
  /// Returns the request slot for the matching wait().
  int isend(Rank dst, int tag, double bytes, CommId comm = CommId{0});
  int irecv(Rank src, int tag, CommId comm = CommId{0});
  RankCursor& wait(int request);
  RankCursor& sendrecv(Rank dst, double send_bytes, Rank src,
                       double recv_bytes, int tag, CommId comm = CommId{0});
  RankCursor& barrier(CommId comm = CommId{0});
  RankCursor& bcast(Rank root, double bytes, CommId comm = CommId{0});
  RankCursor& reduce(Rank root, double bytes, CommId comm = CommId{0});
  RankCursor& allreduce(double bytes, CommId comm = CommId{0});
  RankCursor& gather(Rank root, double bytes, CommId comm = CommId{0});
  RankCursor& allgather(double bytes, CommId comm = CommId{0});
  RankCursor& scatter(Rank root, double bytes, CommId comm = CommId{0});
  RankCursor& alltoall(double bytes, CommId comm = CommId{0});

 private:
  std::vector<Op>& ops() { return prog_->ops[static_cast<std::size_t>(rank_)]; }

  Program* prog_;
  Rank rank_;
  int next_request_{0};
};

/// Owns a Program under construction and hands out rank cursors.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(int nranks) : prog_(nranks) {
    cursors_.reserve(static_cast<std::size_t>(nranks));
    for (Rank r = 0; r < nranks; ++r) cursors_.emplace_back(prog_, r);
  }

  /// Cursor for one rank; cursors stay valid until take().
  RankCursor& on(Rank r) {
    MSC_CHECK(r >= 0 && r < prog_.num_ranks(), "rank out of range");
    return cursors_[static_cast<std::size_t>(r)];
  }

  Program& program() { return prog_; }
  CommSet& comms() { return prog_.comms; }

  /// Validates and moves the finished program out.
  Program take() {
    prog_.validate();
    return std::move(prog_);
  }

 private:
  Program prog_;
  std::vector<RankCursor> cursors_;
};

}  // namespace metascope::simmpi
