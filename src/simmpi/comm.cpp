#include "simmpi/comm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace metascope::simmpi {

int Communicator::local_rank(Rank global) const {
  auto it = std::find(members.begin(), members.end(), global);
  if (it == members.end()) return -1;
  return static_cast<int>(it - members.begin());
}

CommSet::CommSet(int nranks) : world_size_(nranks) {
  MSC_CHECK(nranks > 0, "communicator world must be non-empty");
  Communicator world;
  world.id = CommId{0};
  world.name = "MPI_COMM_WORLD";
  world.members.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    world.members[static_cast<std::size_t>(r)] = r;
  comms_.push_back(std::move(world));
}

CommId CommSet::create(const std::string& name, std::vector<Rank> members) {
  MSC_CHECK(!members.empty(), "communicator must be non-empty");
  for (Rank r : members)
    MSC_CHECK(r >= 0 && r < world_size_, "communicator member out of range");
  Communicator c;
  c.id = CommId{static_cast<int>(comms_.size())};
  c.name = name;
  c.members = std::move(members);
  comms_.push_back(std::move(c));
  return comms_.back().id;
}

const Communicator& CommSet::get(CommId id) const {
  MSC_CHECK(id.valid() && static_cast<std::size_t>(id.get()) < comms_.size(),
            "unknown communicator");
  return comms_[static_cast<std::size_t>(id.get())];
}

}  // namespace metascope::simmpi
