#include "clocksync/amortization.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/span.hpp"
#include "tracing/matching.hpp"

namespace metascope::clocksync {

namespace {

/// One pass: computes required receive times from the current matching
/// and forward-amortizes each rank's stream. Returns repairs made.
std::size_t repair_pass(tracing::TraceCollection& tc,
                        const AmortizationConfig& cfg, double& max_shift) {
  const auto pairs = tracing::match_messages(tc);
  // required[rank] maps event index -> minimum allowed timestamp.
  std::vector<std::unordered_map<std::uint32_t, double>> required(
      static_cast<std::size_t>(tc.num_ranks()));
  for (const auto& p : pairs) {
    const double send_time =
        tc.ranks[static_cast<std::size_t>(p.send.rank)]
            .events[p.send.index]
            .time;
    required[static_cast<std::size_t>(p.recv.rank)][p.recv.index] =
        send_time + cfg.min_message_gap;
  }

  // The forward sweep touches only its own rank's stream, so ranks fan
  // out one task each; per-rank tallies are reduced in rank order below
  // so report numbers match the old serial loop exactly.
  std::vector<std::size_t> repaired_by_rank(tc.ranks.size(), 0);
  std::vector<double> max_shift_by_rank(tc.ranks.size(), 0.0);
  telemetry::RecordingObserver rec_obs(
      "amortize",
      telemetry::RecordingObserver::fanout_stride(tc.ranks.size()));
  const auto pst = parallel_for(
      tc.ranks.size(), cfg.max_workers,
      [&](std::size_t ti) {
        auto& trace = tc.ranks[ti];
        const auto& req = required[static_cast<std::size_t>(trace.rank)];
        double shift = 0.0;   // magnitude of the active amortization
        double anchor = 0.0;  // original time where it was introduced
        double window = cfg.decay_window;
        for (std::uint32_t i = 0; i < trace.events.size(); ++i) {
          auto& e = trace.events[i];
          const double original = e.time;
          double active = 0.0;
          if (shift > 0.0) {
            active =
                shift * std::max(0.0, 1.0 - (original - anchor) / window);
          }
          auto it = req.find(i);
          if (it != req.end() && original + active < it->second) {
            active = it->second - original;
            shift = active;
            anchor = original;
            // Keep the time mapping monotone: the decay slope must stay
            // above -1, so widen the window for large shifts.
            window = std::max(cfg.decay_window, 2.0 * shift);
            ++repaired_by_rank[ti];
            max_shift_by_rank[ti] = std::max(max_shift_by_rank[ti], active);
          }
          e.time = original + active;
        }
      },
      &rec_obs);
  telemetry::record_stage_parallelism("amortize", pst);
  std::size_t repaired = 0;
  for (std::size_t r = 0; r < tc.ranks.size(); ++r) {
    repaired += repaired_by_rank[r];
    max_shift = std::max(max_shift, max_shift_by_rank[r]);
  }
  return repaired;
}

}  // namespace

namespace {

AmortizationReport amortize_impl(tracing::TraceCollection& tc,
                                 const AmortizationConfig& cfg) {
  MSC_CHECK(tc.synchronized || tc.scheme == tracing::SyncScheme::None,
            "amortization runs after synchronization");
  MSC_CHECK(cfg.min_message_gap >= 0.0, "negative message gap");
  MSC_CHECK(cfg.decay_window > 0.0, "decay window must be positive");
  AmortizationReport rep;
  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    ++rep.passes;
    const std::size_t repaired = repair_pass(tc, cfg, rep.max_shift);
    rep.repaired_receives += repaired;
    if (repaired == 0) return rep;
  }
  // Check whether the final pass left any violation.
  const auto pairs = tracing::match_messages(tc);
  for (const auto& p : pairs) {
    const double s = tc.ranks[static_cast<std::size_t>(p.send.rank)]
                         .events[p.send.index]
                         .time;
    const double r = tc.ranks[static_cast<std::size_t>(p.recv.rank)]
                         .events[p.recv.index]
                         .time;
    if (r < s) {
      rep.converged = false;
      break;
    }
  }
  return rep;
}

}  // namespace

AmortizationReport amortize_violations(tracing::TraceCollection& tc,
                                       const AmortizationConfig& cfg) {
  telemetry::ScopedSpan span("amortize");
  const AmortizationReport rep = amortize_impl(tc, cfg);
  telemetry::counter("sync.amortize_passes").add(rep.passes);
  telemetry::counter("sync.amortize_repairs").add(rep.repaired_receives);
  telemetry::gauge("sync.amortize_max_shift_s").max(rep.max_shift);
  return rep;
}

}  // namespace metascope::clocksync
