// Forward amortization: repairing residual clock-condition violations
// after linear correction (extension beyond the paper; the follow-up
// work on controlled logical clocks made this standard in Scalasca).
//
// Linear interpolation cannot remove non-linear clock behaviour or
// measurement bias, so a receive may still be stamped before its matching
// send. The repair advances every receive to at least
// send_time + min_latency_fraction * (observed message gap floor), then
// re-establishes intra-process order by forward-propagating the shift
// with an exponentially decaying amortization, so local interval lengths
// are disturbed as little as possible.
#pragma once

#include <cstddef>

#include "tracing/trace.hpp"

namespace metascope::clocksync {

struct AmortizationConfig {
  /// Minimum send->receive gap enforced, seconds (a conservative lower
  /// bound on any network latency).
  double min_message_gap{1e-7};
  /// Length of the window over which a shift decays back to zero.
  double decay_window{0.01};
  /// Repair passes (later receives can re-violate after earlier shifts;
  /// a few passes reach a fixed point in practice).
  int max_passes{5};
  /// Workers for the per-rank amortization sweep (0 = hardware
  /// concurrency). The repaired timestamps are identical for any count.
  std::size_t max_workers{0};
};

struct AmortizationReport {
  std::size_t repaired_receives{0};
  std::size_t passes{0};
  double max_shift{0.0};
  /// True if a pass limit was hit with violations remaining.
  bool converged{true};
};

/// Repairs violations in place. Requires a synchronized collection.
/// Post-condition (when converged): no matched receive precedes its send
/// by construction, and each process's event order is preserved.
AmortizationReport amortize_violations(tracing::TraceCollection& tc,
                                       const AmortizationConfig& cfg = {});

}  // namespace metascope::clocksync
