// Clock-condition checking (paper §5, Table 2).
//
// The clock condition is the causal order of communication: a message's
// receive event must not precede its send event in the (corrected) global
// time domain. The parallel analyzer was extended to report violations of
// this condition; the counts over the short-message benchmark are the
// paper's Table 2.
#pragma once

#include <cstddef>

#include "tracing/trace.hpp"

namespace metascope::clocksync {

struct ViolationReport {
  std::size_t messages{0};
  std::size_t violations{0};
  /// Largest observed reversal (send_time - recv_time), seconds.
  double worst_reversal{0.0};
  /// Mean |recv - send| over all messages (diagnostic).
  double mean_gap{0.0};

  [[nodiscard]] double violation_rate() const {
    return messages ? static_cast<double>(violations) /
                          static_cast<double>(messages)
                    : 0.0;
  }
};

/// Counts messages whose receive timestamp precedes the matching send
/// timestamp. Usually run on a synchronized collection, but works on any
/// clock domain (e.g. to show raw unsynchronized traces violate heavily).
ViolationReport check_clock_condition(const tracing::TraceCollection& tc);

}  // namespace metascope::clocksync
