// Linear timestamp corrections (paper §3): under the constant-drift
// assumption every node clock is a linear function of any reference
// clock, so the post-mortem correction is itself linear:
//
//     global(t_local) = intercept + slope * t_local
//
// Corrections compose (slave -> local master -> metamaster), which is
// exactly how the hierarchical scheme stacks its two measurements.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "tracing/trace.hpp"

namespace metascope::clocksync {

struct LinearCorrection {
  double intercept{0.0};
  double slope{1.0};

  [[nodiscard]] double apply(double local) const {
    return intercept + slope * local;
  }

  /// outer ∘ inner: first map through `inner`, then through `outer`.
  [[nodiscard]] static LinearCorrection compose(
      const LinearCorrection& outer, const LinearCorrection& inner) {
    return {outer.intercept + outer.slope * inner.intercept,
            outer.slope * inner.slope};
  }

  [[nodiscard]] static LinearCorrection identity() { return {}; }

  bool operator==(const LinearCorrection&) const = default;
};

/// Builds one correction per rank from the offset records embedded in the
/// traces, according to the collection's synchronization scheme:
///
///  - FlatSingle: offset shift only (no drift compensation) — the paper's
///    Table 2 row (i);
///  - FlatTwo: linear interpolation between the start and end offsets
///    against the global master — row (ii), the pre-metacomputing method;
///  - HierarchicalTwo: per-process interpolation against the local master
///    composed with the local master's interpolation against the
///    metamaster — row (iii), this paper's contribution;
///  - None: identities.
std::vector<LinearCorrection> build_corrections(
    const tracing::TraceCollection& tc);

/// Applies per-rank corrections to all event timestamps in place and
/// flags the collection as synchronized. Each rank's rewrite is
/// independent, so the work fans out on up to `max_workers` threads
/// (0 = hardware concurrency); results are identical for any count.
void apply_corrections(tracing::TraceCollection& tc,
                       const std::vector<LinearCorrection>& corrections,
                       std::size_t max_workers = 0);

/// build + apply in one step; returns the corrections used.
std::vector<LinearCorrection> synchronize(tracing::TraceCollection& tc,
                                          std::size_t max_workers = 0);

}  // namespace metascope::clocksync
