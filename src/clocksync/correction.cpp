#include "clocksync/correction.hpp"

#include <cmath>
#include <functional>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/span.hpp"

namespace metascope::clocksync {

namespace {

using tracing::OffsetRecord;
using tracing::SyncScheme;
using tracing::TraceCollection;

/// Finds the record of the given phase; throws if absent.
const OffsetRecord& record_of_phase(const tracing::LocalTrace& t, int phase) {
  for (const auto& r : t.sync)
    if (r.phase == phase) return r;
  std::ostringstream os;
  os << "rank " << t.rank << " lacks phase-" << phase << " offset record";
  throw Error(os.str());
}

/// Correction mapping this process's clock onto its reference process's
/// clock from one offset record (shift only).
LinearCorrection from_single(const OffsetRecord& rec) {
  return {rec.offset, 1.0};
}

/// Correction from two offset records by linear interpolation:
/// offset(t) = o_b + (o_e - o_b) * (t - t_b) / (t_e - t_b);
/// corrected(t) = t + offset(t).
LinearCorrection from_two(const OffsetRecord& begin,
                          const OffsetRecord& end) {
  const double span = end.local_mid - begin.local_mid;
  MSC_CHECK(span > 1e-9, "offset measurements too close for interpolation");
  const double rate = (end.offset - begin.offset) / span;
  return {begin.offset - rate * begin.local_mid, 1.0 + rate};
}

}  // namespace

std::vector<LinearCorrection> build_corrections(const TraceCollection& tc) {
  const int n = tc.num_ranks();
  std::vector<LinearCorrection> out(static_cast<std::size_t>(n));
  switch (tc.scheme) {
    case SyncScheme::None:
      return out;
    case SyncScheme::FlatSingle: {
      for (int r = 1; r < n; ++r) {
        const auto& t = tc.ranks[static_cast<std::size_t>(r)];
        const auto& rec = record_of_phase(t, 0);
        MSC_CHECK(rec.ref_rank == 0, "flat record must reference rank 0");
        out[static_cast<std::size_t>(r)] = from_single(rec);
      }
      return out;
    }
    case SyncScheme::FlatTwo: {
      for (int r = 1; r < n; ++r) {
        const auto& t = tc.ranks[static_cast<std::size_t>(r)];
        const auto& rb = record_of_phase(t, 0);
        const auto& re = record_of_phase(t, 1);
        MSC_CHECK(rb.ref_rank == 0 && re.ref_rank == 0,
                  "flat record must reference rank 0");
        out[static_cast<std::size_t>(r)] = from_two(rb, re);
      }
      return out;
    }
    case SyncScheme::HierarchicalTwo: {
      // Every non-metamaster rank has records against exactly one
      // reference; chase the reference chain (slave -> local master ->
      // metamaster) composing interpolations. Chains are at most two
      // deep, but the resolver is generic with cycle detection.
      std::vector<int> state(static_cast<std::size_t>(n), 0);  // 0/1/2
      // Recursive lambda via explicit stack-free recursion.
      const std::function<const LinearCorrection&(Rank)> resolve =
          [&](Rank r) -> const LinearCorrection& {
        auto& slot = out[static_cast<std::size_t>(r)];
        auto& st = state[static_cast<std::size_t>(r)];
        if (st == 2) return slot;
        MSC_CHECK(st != 1, "cycle in offset-record references");
        st = 1;
        const auto& t = tc.ranks[static_cast<std::size_t>(r)];
        if (t.sync.empty()) {
          // The metamaster: defines the global domain.
          slot = LinearCorrection::identity();
          st = 2;
          return slot;
        }
        const auto& rb = record_of_phase(t, 0);
        const auto& re = record_of_phase(t, 1);
        MSC_CHECK(rb.ref_rank == re.ref_rank,
                  "phase records reference different masters");
        // ref_rank arrives from decoded trace bytes — bound it before
        // it indexes anything (a garbage reference must be a typed
        // error, not an out-of-bounds write).
        if (rb.ref_rank < 0 || rb.ref_rank >= n)
          throw Error(ErrorCode::Corrupt,
                      "offset record of rank " + std::to_string(r) +
                          " references nonexistent rank " +
                          std::to_string(rb.ref_rank),
                      ErrorContext{"", r, -1});
        const LinearCorrection to_ref = from_two(rb, re);
        slot = LinearCorrection::compose(resolve(rb.ref_rank), to_ref);
        st = 2;
        return slot;
      };
      for (Rank r = 0; r < n; ++r) resolve(r);
      return out;
    }
  }
  return out;
}

void apply_corrections(tracing::TraceCollection& tc,
                       const std::vector<LinearCorrection>& corrections,
                       std::size_t max_workers) {
  MSC_CHECK(corrections.size() == static_cast<std::size_t>(tc.num_ranks()),
            "one correction per rank required");
  MSC_CHECK(!tc.synchronized, "collection already synchronized");
  // One task per rank: each rewrites only its own trace's timestamps.
  telemetry::RecordingObserver rec_obs(
      "sync_apply",
      telemetry::RecordingObserver::fanout_stride(tc.ranks.size()));
  const auto pst = parallel_for(
      tc.ranks.size(), max_workers,
      [&](std::size_t i) {
        auto& t = tc.ranks[i];
        const auto& c = corrections[static_cast<std::size_t>(t.rank)];
        for (auto& e : t.events) e.time = c.apply(e.time);
      },
      &rec_obs);
  telemetry::record_stage_parallelism("sync_apply", pst);
  tc.synchronized = true;
}

std::vector<LinearCorrection> synchronize(tracing::TraceCollection& tc,
                                          std::size_t max_workers) {
  telemetry::ScopedSpan span("sync");
  if (telemetry::progress_enabled()) telemetry::progress("sync", 0.0);
  auto c = build_corrections(tc);
  apply_corrections(tc, c, max_workers);
  telemetry::counter("sync.corrections_built").add(c.size());
  telemetry::counter("sync.passes").add(1);
  if (telemetry::progress_enabled()) telemetry::progress("sync", 1.0);
  return c;
}

}  // namespace metascope::clocksync
