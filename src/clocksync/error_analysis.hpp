// Ground-truth synchronization error analysis (simulation-only luxury).
//
// Because the substrate knows every node's true clock model, we can ask:
// if the same true instant T is stamped on two different ranks and both
// stamps are corrected, how far apart do the corrected values land? That
// pairwise error is what decides clock-condition violations — it must
// stay below the message latency between the two ranks (paper §4). The
// Figure-3 ablation bench sweeps this quantity for flat vs hierarchical.
#pragma once

#include <vector>

#include "clocksync/correction.hpp"
#include "common/stats.hpp"
#include "simnet/clock.hpp"
#include "simnet/topology.hpp"

namespace metascope::clocksync {

/// Corrected-global estimate of rank r's stamp of true instant t.
double corrected_stamp(const simnet::Topology& topo,
                       const simnet::ClockSet& clocks,
                       const std::vector<LinearCorrection>& corrections,
                       Rank r, TrueTime t);

/// corrected_stamp(a) - corrected_stamp(b) at the same true instant.
double pairwise_error(const simnet::Topology& topo,
                      const simnet::ClockSet& clocks,
                      const std::vector<LinearCorrection>& corrections,
                      Rank a, Rank b, TrueTime t);

struct ErrorSurvey {
  RunningStats intra_metahost_abs;  ///< |pairwise error|, same metahost
  RunningStats inter_metahost_abs;  ///< |pairwise error|, across metahosts
};

/// Surveys |pairwise error| over all rank pairs at the given instants.
ErrorSurvey survey_errors(const simnet::Topology& topo,
                          const simnet::ClockSet& clocks,
                          const std::vector<LinearCorrection>& corrections,
                          const std::vector<TrueTime>& instants);

}  // namespace metascope::clocksync
