#include "clocksync/error_analysis.hpp"

#include <cmath>

#include "common/error.hpp"

namespace metascope::clocksync {

double corrected_stamp(const simnet::Topology& topo,
                       const simnet::ClockSet& clocks,
                       const std::vector<LinearCorrection>& corrections,
                       Rank r, TrueTime t) {
  MSC_CHECK(corrections.size() == static_cast<std::size_t>(topo.num_ranks()),
            "one correction per rank required");
  const double local = clocks.clock_of(topo, r).at(t).s;
  return corrections[static_cast<std::size_t>(r)].apply(local);
}

double pairwise_error(const simnet::Topology& topo,
                      const simnet::ClockSet& clocks,
                      const std::vector<LinearCorrection>& corrections,
                      Rank a, Rank b, TrueTime t) {
  return corrected_stamp(topo, clocks, corrections, a, t) -
         corrected_stamp(topo, clocks, corrections, b, t);
}

ErrorSurvey survey_errors(const simnet::Topology& topo,
                          const simnet::ClockSet& clocks,
                          const std::vector<LinearCorrection>& corrections,
                          const std::vector<TrueTime>& instants) {
  ErrorSurvey s;
  for (const TrueTime t : instants) {
    for (Rank a = 0; a < topo.num_ranks(); ++a) {
      for (Rank b = a + 1; b < topo.num_ranks(); ++b) {
        const double e =
            std::abs(pairwise_error(topo, clocks, corrections, a, b, t));
        if (topo.same_metahost(a, b))
          s.intra_metahost_abs.add(e);
        else
          s.inter_metahost_abs.add(e);
      }
    }
  }
  return s;
}

}  // namespace metascope::clocksync
