#include "clocksync/clock_condition.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "tracing/matching.hpp"

namespace metascope::clocksync {

ViolationReport check_clock_condition(const tracing::TraceCollection& tc) {
  ViolationReport rep;
  const auto pairs = tracing::match_messages(tc);
  double gap_sum = 0.0;
  for (const auto& p : pairs) {
    const auto& send =
        tc.ranks[static_cast<std::size_t>(p.send.rank)].events[p.send.index];
    const auto& recv =
        tc.ranks[static_cast<std::size_t>(p.recv.rank)].events[p.recv.index];
    ++rep.messages;
    const double gap = recv.time - send.time;
    gap_sum += std::abs(gap);
    if (gap < 0.0) {
      ++rep.violations;
      rep.worst_reversal = std::max(rep.worst_reversal, -gap);
    }
  }
  rep.mean_gap = rep.messages
                     ? gap_sum / static_cast<double>(rep.messages)
                     : 0.0;
  telemetry::counter("sync.condition_checks").add(1);
  telemetry::gauge("sync.violations").set(
      static_cast<double>(rep.violations));
  telemetry::gauge("sync.max_residual_s").set(rep.worst_reversal);
  return rep;
}

}  // namespace metascope::clocksync
