#include "simmpi/collectives.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "simmpi/engine.hpp"

namespace metascope::simmpi {
namespace {

using simnet::LinkSpec;
using simnet::MetahostSpec;
using simnet::Topology;

Topology flat_topo(int nodes) {
  Topology topo;
  MetahostSpec a;
  a.name = "A";
  a.num_nodes = nodes;
  a.cpus_per_node = 1;
  a.internal = LinkSpec{10e-6, 0.0, 1e9};
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, nodes, 1);
  return topo;
}

Communicator world_of(int n) {
  CommSet cs(n);
  return cs.get(cs.world());
}

std::vector<TrueTime> times(std::initializer_list<double> xs) {
  std::vector<TrueTime> out;
  for (double x : xs) out.push_back(TrueTime{x});
  return out;
}

TEST(CommProfile, SingleRankDegenerates) {
  Topology topo = flat_topo(2);
  CommSet cs(2);
  const CommId solo = cs.create("solo", {0});
  const auto p = profile_comm(topo, cs.get(solo));
  EXPECT_EQ(p.rounds, 0);
}

TEST(CommProfile, RoundsAreLogTwo) {
  Topology topo = flat_topo(16);
  CommSet cs(16);
  EXPECT_EQ(profile_comm(topo, cs.get(cs.world())).rounds, 4);
  const CommId five = cs.create("five", {0, 1, 2, 3, 4});
  EXPECT_EQ(profile_comm(topo, cs.get(five)).rounds, 3);
  const CommId pair = cs.create("pair", {0, 1});
  EXPECT_EQ(profile_comm(topo, cs.get(pair)).rounds, 1);
}

TEST(CommProfile, WorstLinkIsExternalWhenSpanning) {
  Topology topo;
  MetahostSpec a;
  a.name = "A";
  a.num_nodes = 2;
  a.cpus_per_node = 1;
  a.internal = LinkSpec{10e-6, 0.0, 2e9};
  MetahostSpec b = a;
  b.name = "B";
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  topo.set_external_link(ia, ib, LinkSpec{900e-6, 0.0, 1e9});
  topo.place_block(ia, 2, 1);
  topo.place_block(ib, 2, 1);
  CommSet cs(4);
  const auto p = profile_comm(topo, cs.get(cs.world()));
  EXPECT_DOUBLE_EQ(p.max_latency, 900e-6);
  EXPECT_DOUBLE_EQ(p.min_bandwidth, 1e9);
}

TEST(Collectives, BarrierReleasesAfterLastEnter) {
  Topology topo = flat_topo(4);
  const Communicator comm = world_of(4);
  const auto prof = profile_comm(topo, comm);
  const auto t = time_collective(OpKind::Barrier, topo, comm, prof,
                                 times({0.0, 0.3, 0.1, 0.2}), kNoRank, 0.0,
                                 1e-6);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(t.exit[static_cast<std::size_t>(i)].s, 0.3);
    EXPECT_DOUBLE_EQ(t.exit[0].s, t.exit[static_cast<std::size_t>(i)].s);
    EXPECT_DOUBLE_EQ(t.sent_bytes[static_cast<std::size_t>(i)], 0.0);
  }
  // Barrier cost = rounds * latency + overhead.
  EXPECT_NEAR(t.exit[0].s, 0.3 + 2 * 10e-6 + 1e-6, 1e-12);
}

TEST(Collectives, AllreduceMovesPayloadEveryRound) {
  Topology topo = flat_topo(4);
  const Communicator comm = world_of(4);
  const auto prof = profile_comm(topo, comm);
  const double bytes = 1e6;
  const auto t =
      time_collective(OpKind::Allreduce, topo, comm, prof,
                      times({0.0, 0.0, 0.0, 0.0}), kNoRank, bytes, 1e-6);
  EXPECT_NEAR(t.exit[0].s, 2 * (10e-6 + bytes / 1e9) + 1e-6, 1e-12);
  EXPECT_DOUBLE_EQ(t.sent_bytes[2], bytes);
  EXPECT_DOUBLE_EQ(t.recvd_bytes[2], bytes);
}

TEST(Collectives, AlltoallScalesWithMembers) {
  Topology topo = flat_topo(8);
  const Communicator comm = world_of(8);
  const auto prof = profile_comm(topo, comm);
  const double bytes = 1e5;
  const auto t =
      time_collective(OpKind::Alltoall, topo, comm, prof,
                      std::vector<TrueTime>(8, TrueTime{0.0}), kNoRank,
                      bytes, 0.0);
  EXPECT_NEAR(t.exit[0].s, 3 * 10e-6 + 7 * bytes / 1e9, 1e-12);
  EXPECT_DOUBLE_EQ(t.sent_bytes[0], 7 * bytes);
}

TEST(Collectives, BcastLateRootDelaysEveryoneElse) {
  Topology topo = flat_topo(4);
  const Communicator comm = world_of(4);
  const auto prof = profile_comm(topo, comm);
  const auto t = time_collective(OpKind::Bcast, topo, comm, prof,
                                 times({0.5, 0.0, 0.0, 0.0}), /*root=*/0,
                                 1000.0, 1e-6);
  // Non-roots cannot leave before the root's data reaches them.
  for (int i = 1; i < 4; ++i)
    EXPECT_GT(t.exit[static_cast<std::size_t>(i)].s, 0.5);
  // Root leaves soon after entering.
  EXPECT_LT(t.exit[0].s, 0.51);
  EXPECT_DOUBLE_EQ(t.recvd_bytes[1], 1000.0);
  EXPECT_DOUBLE_EQ(t.sent_bytes[0], 1000.0);
}

TEST(Collectives, BcastEarlyRootMeansNoWait) {
  Topology topo = flat_topo(4);
  const Communicator comm = world_of(4);
  const auto prof = profile_comm(topo, comm);
  const auto t = time_collective(OpKind::Bcast, topo, comm, prof,
                                 times({0.0, 0.4, 0.4, 0.4}), /*root=*/0,
                                 1000.0, 1e-6);
  for (int i = 1; i < 4; ++i)
    EXPECT_NEAR(t.exit[static_cast<std::size_t>(i)].s, 0.4 + 1e-6, 1e-7);
}

TEST(Collectives, ReduceRootWaitsForLastContribution) {
  Topology topo = flat_topo(4);
  const Communicator comm = world_of(4);
  const auto prof = profile_comm(topo, comm);
  const auto t = time_collective(OpKind::Reduce, topo, comm, prof,
                                 times({0.0, 0.1, 0.7, 0.2}), /*root=*/0,
                                 1000.0, 1e-6);
  EXPECT_GT(t.exit[0].s, 0.7);
  // Non-roots fire and forget.
  EXPECT_LT(t.exit[1].s, 0.2);
  EXPECT_LT(t.exit[3].s, 0.3);
  EXPECT_DOUBLE_EQ(t.recvd_bytes[0], 1000.0);
  EXPECT_DOUBLE_EQ(t.sent_bytes[1], 1000.0);
}

TEST(Collectives, GatherRootCollectsAllBlocks) {
  Topology topo = flat_topo(4);
  const Communicator comm = world_of(4);
  const auto prof = profile_comm(topo, comm);
  const auto t = time_collective(OpKind::Gather, topo, comm, prof,
                                 std::vector<TrueTime>(4, TrueTime{0.0}),
                                 /*root=*/2, 1000.0, 1e-6);
  EXPECT_DOUBLE_EQ(t.recvd_bytes[2], 3000.0);
}

TEST(Collectives, ScatterMirrorsBcastShape) {
  Topology topo = flat_topo(4);
  const Communicator comm = world_of(4);
  const auto prof = profile_comm(topo, comm);
  const auto t = time_collective(OpKind::Scatter, topo, comm, prof,
                                 times({0.3, 0.0, 0.0, 0.0}), /*root=*/0,
                                 500.0, 1e-6);
  for (int i = 1; i < 4; ++i)
    EXPECT_GT(t.exit[static_cast<std::size_t>(i)].s, 0.3);
  EXPECT_DOUBLE_EQ(t.sent_bytes[0], 3 * 500.0);
}

TEST(Collectives, SubCommunicatorTiming) {
  // Collective on a sub-communicator only involves its members.
  Topology topo = flat_topo(4);
  CommSet cs(4);
  const CommId sub = cs.create("pair", {1, 3});
  const auto prof = profile_comm(topo, cs.get(sub));
  const auto t = time_collective(OpKind::Barrier, topo, cs.get(sub), prof,
                                 times({0.0, 0.6}), kNoRank, 0.0, 1e-6);
  ASSERT_EQ(t.exit.size(), 2u);
  EXPECT_NEAR(t.exit[0].s, 0.6 + 10e-6 + 1e-6, 1e-12);
}

TEST(Collectives, MismatchedEnterSizeThrows) {
  Topology topo = flat_topo(4);
  const Communicator comm = world_of(4);
  const auto prof = profile_comm(topo, comm);
  EXPECT_THROW(time_collective(OpKind::Barrier, topo, comm, prof,
                               times({0.0, 0.1}), kNoRank, 0.0, 1e-6),
               Error);
}

TEST(Collectives, RootedWithoutRootThrows) {
  Topology topo = flat_topo(4);
  const Communicator comm = world_of(4);
  const auto prof = profile_comm(topo, comm);
  EXPECT_THROW(time_collective(OpKind::Bcast, topo, comm, prof,
                               std::vector<TrueTime>(4, TrueTime{0.0}),
                               kNoRank, 0.0, 1e-6),
               Error);
}

}  // namespace
}  // namespace metascope::simmpi
