// Analyzer-level properties: the serial (KOJAK-style) and parallel
// (SCALASCA-style replay) analyzers must agree bit-for-bit; severity is a
// partition of total time; the replay moves far fewer bytes than the
// traces contain.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "clocksync/correction.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "simnet/presets.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"
#include "workloads/microworkloads.hpp"

namespace metascope::analysis {
namespace {

/// A randomized but valid program: mixed p2p chains, collectives, and
/// nonblocking pairs — the property-test generator.
simmpi::Program random_program(int nranks, std::uint64_t seed, int steps) {
  Rng rng(seed);
  simmpi::ProgramBuilder b(nranks);
  for (Rank r = 0; r < nranks; ++r) b.on(r).enter("main");
  for (int s = 0; s < steps; ++s) {
    const int kind = static_cast<int>(rng.uniform_index(5));
    switch (kind) {
      case 0: {  // random pair message
        const Rank a = static_cast<Rank>(rng.uniform_index(nranks));
        Rank c = static_cast<Rank>(rng.uniform_index(nranks - 1));
        if (c >= a) ++c;
        const double bytes = rng.uniform(16.0, 200000.0);
        b.on(a).enter("chat").send(c, s, bytes).exit();
        b.on(c).enter("chat").recv(a, s).exit();
        break;
      }
      case 1: {  // staggered compute + barrier
        for (Rank r = 0; r < nranks; ++r)
          b.on(r).compute(rng.uniform(0.0, 0.01)).barrier();
        break;
      }
      case 2: {  // allreduce
        for (Rank r = 0; r < nranks; ++r)
          b.on(r).compute(rng.uniform(0.0, 0.005)).allreduce(256.0);
        break;
      }
      case 3: {  // rooted collectives
        const Rank root = static_cast<Rank>(rng.uniform_index(nranks));
        for (Rank r = 0; r < nranks; ++r) {
          b.on(r).compute(rng.uniform(0.0, 0.005));
          b.on(r).bcast(root, 4096.0);
          b.on(r).reduce(root, 512.0);
        }
        break;
      }
      default: {  // nonblocking ring shift
        std::vector<int> reqs(static_cast<std::size_t>(nranks));
        for (Rank r = 0; r < nranks; ++r) {
          auto& c = b.on(r);
          c.enter("shift");
          reqs[static_cast<std::size_t>(r)] = c.irecv((r + nranks - 1) % nranks, 7777 + s);
          c.send((r + 1) % nranks, 7777 + s, 1024.0);
          c.wait(reqs[static_cast<std::size_t>(r)]);
          c.exit();
        }
        break;
      }
    }
  }
  for (Rank r = 0; r < nranks; ++r) b.on(r).exit();
  return b.take();
}

tracing::TraceCollection make_traces(const simnet::Topology& topo,
                                     const simmpi::Program& prog,
                                     bool skewed) {
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = !skewed;
  cfg.measurement.scheme = skewed ? tracing::SyncScheme::HierarchicalTwo
                                  : tracing::SyncScheme::None;
  auto data = workloads::run_experiment(topo, prog, cfg);
  if (skewed) clocksync::synchronize(data.traces);
  return std::move(data.traces);
}

// --- serial == parallel ------------------------------------------------------

class EquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceSweep, SerialAndParallelCubesIdentical) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = random_program(topo.num_ranks(), GetParam(), 12);
  const auto tc = make_traces(topo, prog, /*skewed=*/true);
  const auto s = analyze_serial(tc);
  const auto p = analyze_parallel(tc);
  EXPECT_TRUE(s.cube.approx_equal(p.cube, 1e-12));
  EXPECT_EQ(s.stats.messages, p.stats.messages);
  EXPECT_EQ(s.stats.collective_instances, p.stats.collective_instances);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL,
                                           6ULL, 7ULL, 8ULL));

TEST(Equivalence, MetaTraceExperiment) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  const auto tc = make_traces(topo, prog, /*skewed=*/true);
  const auto s = analyze_serial(tc);
  const auto p = analyze_parallel(tc);
  EXPECT_TRUE(s.cube.approx_equal(p.cube, 1e-12));
}

TEST(Equivalence, PairBreakdownsAgree) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  const auto tc = make_traces(topo, prog, /*skewed=*/false);
  const auto s = analyze_serial(tc);
  const auto p = analyze_parallel(tc);
  for (std::size_t m = 0; m < s.cube.metrics.size(); ++m) {
    for (int a = 0; a < 3; ++a) {
      for (int bb = 0; bb < 3; ++bb) {
        EXPECT_NEAR(s.cube.pair_breakdown(MetricId{static_cast<int>(m)},
                                          MetahostId{a}, MetahostId{bb}),
                    p.cube.pair_breakdown(MetricId{static_cast<int>(m)},
                                          MetahostId{a}, MetahostId{bb}),
                    1e-12);
      }
    }
  }
}

// --- invariants ---------------------------------------------------------------

class InvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSweep, SeverityPartitionsTotalTime) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = random_program(topo.num_ranks(), GetParam(), 10);
  const auto tc = make_traces(topo, prog, /*skewed=*/false);
  const auto res = analyze_serial(tc);
  // Sum of all exclusive severities == sum of per-rank spans.
  double partition = 0.0;
  for (std::size_t m = 0; m < res.cube.metrics.size(); ++m)
    partition += res.cube.metric_total(MetricId{static_cast<int>(m)});
  double span = 0.0;
  for (const auto& t : tc.ranks)
    span += t.events.back().time - t.events.front().time;
  EXPECT_NEAR(partition, span, 1e-6 * span + 1e-9);
}

TEST_P(InvariantSweep, InclusiveSeveritiesNonNegative) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = random_program(topo.num_ranks(), GetParam(), 10);
  const auto tc = make_traces(topo, prog, /*skewed=*/false);
  const auto res = analyze_serial(tc);
  for (std::size_t m = 0; m < res.cube.metrics.size(); ++m) {
    const MetricId mid{static_cast<int>(m)};
    EXPECT_GE(res.cube.metric_inclusive_total(mid), -1e-9)
        << res.cube.metrics.def(mid).name;
    for (Rank r = 0; r < res.cube.num_ranks(); ++r)
      ASSERT_GE(res.cube.rank_inclusive_total(mid, r), -1e-9)
          << res.cube.metrics.def(mid).name << " rank " << r;
  }
}

TEST_P(InvariantSweep, WaitsNeverExceedMpiTime) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = random_program(topo.num_ranks(), GetParam(), 10);
  const auto tc = make_traces(topo, prog, /*skewed=*/false);
  const auto res = analyze_serial(tc);
  const auto& ps = res.patterns;
  const double mpi = res.cube.metric_inclusive_total(ps.mpi);
  double waits = 0.0;
  for (MetricId m : {ps.late_sender, ps.grid_late_sender, ps.late_receiver,
                     ps.grid_late_receiver, ps.wait_nxn, ps.grid_wait_nxn,
                     ps.wait_barrier, ps.grid_wait_barrier, ps.early_reduce,
                     ps.grid_early_reduce, ps.late_broadcast,
                     ps.grid_late_broadcast})
    waits += res.cube.metric_total(m);
  EXPECT_LE(waits, mpi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Values(11ULL, 12ULL, 13ULL, 14ULL,
                                           15ULL, 16ULL));

// --- misc ---------------------------------------------------------------------

TEST(Analyzer, RequiresSynchronizedTraces) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_clock_bench(32, {});
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = tracing::SyncScheme::HierarchicalTwo;
  auto data = workloads::run_experiment(topo, prog, cfg);
  // Not yet synchronized.
  EXPECT_THROW(analyze_serial(data.traces), Error);
  EXPECT_THROW(analyze_parallel(data.traces), Error);
  clocksync::synchronize(data.traces);
  EXPECT_NO_THROW(analyze_serial(data.traces));
}

TEST(Analyzer, ReplayMovesFarLessThanTraceSize) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  const auto tc = make_traces(topo, prog, /*skewed=*/true);
  const auto p = analyze_parallel(tc);
  EXPECT_GT(p.stats.trace_bytes_in_memory, 0u);
  EXPECT_GT(p.stats.replay_bytes, 0u);
  // The paper's claim: replay exchanges much less than the trace volume
  // the workers hold (resident bytes — the figure is independent of the
  // on-disk trace format).
  EXPECT_LT(p.stats.replay_bytes, p.stats.trace_bytes_in_memory / 2);
}

TEST(Analyzer, SystemTreeCarriedIntoCube) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  const auto tc = make_traces(topo, prog, /*skewed=*/false);
  const auto res = analyze_serial(tc);
  ASSERT_EQ(res.cube.system.metahosts.size(), 3u);
  EXPECT_EQ(res.cube.system.metahosts[2].name, "FZJ");
  EXPECT_EQ(res.cube.num_ranks(), 32);
}

TEST(Analyzer, EmptyRankTraceTolerated) {
  // A rank that recorded nothing (no events) must not break analysis.
  const auto topo = simnet::make_ibm_power(4);
  simmpi::ProgramBuilder b(4);
  b.on(0).enter("m").send(1, 0, 10.0).exit();
  b.on(1).enter("m").recv(0, 0).exit();
  b.on(2).enter("m").exit();
  // rank 3 does nothing at all
  const auto prog = b.take();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  auto data = workloads::run_experiment(topo, prog, cfg);
  EXPECT_NO_THROW(analyze_serial(data.traces));
  EXPECT_NO_THROW(analyze_parallel(data.traces));
}

}  // namespace
}  // namespace metascope::analysis
