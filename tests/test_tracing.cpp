// Tests for the tracing layer: metahost identification, measurement
// stamping, binary trace I/O, and message matching.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "tracing/epilog_io.hpp"
#include "tracing/matching.hpp"
#include "tracing/measurement.hpp"
#include "tracing/metahost_env.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"
#include "workloads/microworkloads.hpp"

namespace metascope::tracing {
namespace {

using simnet::Topology;

// --- metahost identification ---------------------------------------------

TEST(MetahostEnv, DefaultEnvsAreWellFormed) {
  const Topology topo = simnet::make_viola_experiment1();
  const auto envs = default_envs(topo);
  ASSERT_EQ(envs.size(), 3u);
  const auto defs = resolve_metahosts(topo, envs);
  ASSERT_EQ(defs.size(), 3u);
  EXPECT_EQ(defs[0].name, "CAESAR");
  EXPECT_EQ(defs[1].name, "FH-BRS");
  EXPECT_EQ(defs[2].name, "FZJ");
  EXPECT_EQ(defs[0].id.get(), 0);
}

TEST(MetahostEnv, MissingIdRejected) {
  const Topology topo = simnet::make_viola_experiment1();
  auto envs = default_envs(topo);
  envs[1].erase(kEnvMetahostId);
  EXPECT_THROW(resolve_metahosts(topo, envs), Error);
}

TEST(MetahostEnv, MissingNameRejected) {
  const Topology topo = simnet::make_viola_experiment1();
  auto envs = default_envs(topo);
  envs[2].erase(kEnvMetahostName);
  EXPECT_THROW(resolve_metahosts(topo, envs), Error);
}

TEST(MetahostEnv, DuplicateIdRejected) {
  const Topology topo = simnet::make_viola_experiment1();
  auto envs = default_envs(topo);
  envs[1][kEnvMetahostId] = "0";
  EXPECT_THROW(resolve_metahosts(topo, envs), Error);
}

TEST(MetahostEnv, NonNumericIdRejected) {
  const Topology topo = simnet::make_viola_experiment1();
  auto envs = default_envs(topo);
  envs[0][kEnvMetahostId] = "zero";
  EXPECT_THROW(resolve_metahosts(topo, envs), Error);
  envs[0][kEnvMetahostId] = "1x";
  EXPECT_THROW(resolve_metahosts(topo, envs), Error);
}

TEST(MetahostEnv, OutOfRangeIdRejected) {
  const Topology topo = simnet::make_viola_experiment1();
  auto envs = default_envs(topo);
  envs[0][kEnvMetahostId] = "7";
  EXPECT_THROW(resolve_metahosts(topo, envs), Error);
}

TEST(MetahostEnv, DuplicateNameRejected) {
  const Topology topo = simnet::make_viola_experiment1();
  auto envs = default_envs(topo);
  envs[0][kEnvMetahostName] = "FZJ";
  EXPECT_THROW(resolve_metahosts(topo, envs), Error);
}

TEST(MetahostEnv, PermutedIdsReorderDefinitions) {
  const Topology topo = simnet::make_viola_experiment1();
  auto envs = default_envs(topo);
  // Swap the numeric ids of CAESAR (topo 0) and FZJ (topo 2).
  envs[0][kEnvMetahostId] = "2";
  envs[2][kEnvMetahostId] = "0";
  auto prog = workloads::late_sender_program(0.01);
  // The 2-rank program needs a small 2-metahost topology.
  Topology small;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = 1;
  a.cpus_per_node = 1;
  simnet::MetahostSpec b = a;
  b.name = "B";
  small.add_metahost(a);
  small.add_metahost(b);
  small.place_block(MetahostId{0}, 1, 1);
  small.place_block(MetahostId{1}, 1, 1);
  std::vector<EnvMap> senvs = default_envs(small);
  senvs[0][kEnvMetahostId] = "1";
  senvs[0][kEnvMetahostName] = "EnvB";
  senvs[1][kEnvMetahostId] = "0";
  senvs[1][kEnvMetahostName] = "EnvA";
  const auto exec = simmpi::execute(small, prog);
  const auto clocks = simnet::ClockSet::perfect(small);
  MeasurementConfig mc;
  mc.scheme = SyncScheme::None;
  const TraceCollection tc =
      collect_traces(small, clocks, prog, exec, mc, senvs);
  // Rank 0 lives on topology metahost 0, whose env id is 1 / "EnvB".
  EXPECT_EQ(tc.defs.metahost_of(0).get(), 1);
  EXPECT_EQ(tc.defs.metahost(tc.defs.metahost_of(0)).name, "EnvB");
  EXPECT_EQ(tc.defs.metahost_of(1).get(), 0);
  EXPECT_TRUE(tc.defs.crosses_metahosts(0, 1));
}

// --- measurement -----------------------------------------------------------

class MeasurementTest : public ::testing::Test {
 protected:
  MeasurementTest()
      : topo_(simnet::make_viola_experiment1()),
        prog_(workloads::build_metatrace()) {}

  workloads::ExperimentData run(SyncScheme scheme,
                                bool perfect = false) const {
    workloads::ExperimentConfig cfg;
    cfg.measurement.scheme = scheme;
    cfg.perfect_clocks = perfect;
    return workloads::run_experiment(topo_, prog_, cfg);
  }

  Topology topo_;
  simmpi::Program prog_;
};

TEST_F(MeasurementTest, LocalStampsAreMonotonePerRank) {
  const auto data = run(SyncScheme::HierarchicalTwo);
  for (const auto& t : data.traces.ranks) {
    for (std::size_t i = 1; i < t.events.size(); ++i)
      ASSERT_LT(t.events[i - 1].time, t.events[i].time + 1e-15)
          << "rank " << t.rank << " event " << i;
  }
}

TEST_F(MeasurementTest, EventCountsMatchExecution) {
  const auto data = run(SyncScheme::HierarchicalTwo);
  ASSERT_EQ(data.traces.num_ranks(), topo_.num_ranks());
  for (Rank r = 0; r < topo_.num_ranks(); ++r) {
    EXPECT_EQ(
        data.traces.ranks[static_cast<std::size_t>(r)].events.size(),
        data.exec.per_rank[static_cast<std::size_t>(r)].size());
  }
}

TEST_F(MeasurementTest, PerfectClocksReproduceTrueTime) {
  const auto data = run(SyncScheme::None, /*perfect=*/true);
  for (Rank r = 0; r < topo_.num_ranks(); ++r) {
    const auto& tr = data.traces.ranks[static_cast<std::size_t>(r)];
    const auto& ex = data.exec.per_rank[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < tr.events.size(); ++i)
      ASSERT_NEAR(tr.events[i].time, ex[i].time.s, 1e-8);
  }
}

TEST_F(MeasurementTest, SkewedClocksDivergeFromTrueTime) {
  const auto data = run(SyncScheme::HierarchicalTwo);
  // With offsets up to +-0.5 s, at least one rank's first stamp must be
  // far from true time.
  double max_div = 0.0;
  for (Rank r = 0; r < topo_.num_ranks(); ++r) {
    const auto& tr = data.traces.ranks[static_cast<std::size_t>(r)];
    const auto& ex = data.exec.per_rank[static_cast<std::size_t>(r)];
    max_div = std::max(max_div, std::abs(tr.events[0].time - ex[0].time.s));
  }
  EXPECT_GT(max_div, 0.01);
}

TEST_F(MeasurementTest, FlatSchemeRecordsOnePhaseOrTwo) {
  const auto one = run(SyncScheme::FlatSingle);
  const auto two = run(SyncScheme::FlatTwo);
  for (Rank r = 1; r < topo_.num_ranks(); ++r) {
    EXPECT_EQ(one.traces.ranks[static_cast<std::size_t>(r)].sync.size(),
              1u);
    EXPECT_EQ(two.traces.ranks[static_cast<std::size_t>(r)].sync.size(),
              2u);
    for (const auto& rec :
         two.traces.ranks[static_cast<std::size_t>(r)].sync)
      EXPECT_EQ(rec.ref_rank, 0);
  }
  EXPECT_TRUE(one.traces.ranks[0].sync.empty());
}

TEST_F(MeasurementTest, HierarchicalRecordsReferenceLocalMasters) {
  const auto data = run(SyncScheme::HierarchicalTwo);
  const auto masters = topo_.local_masters();
  const Rank metamaster = 0;
  for (Rank r = 0; r < topo_.num_ranks(); ++r) {
    const auto& sync = data.traces.ranks[static_cast<std::size_t>(r)].sync;
    const Rank lm =
        masters[static_cast<std::size_t>(topo_.metahost_of(r).get())];
    if (r == metamaster) {
      EXPECT_TRUE(sync.empty());
      continue;
    }
    ASSERT_EQ(sync.size(), 2u) << "rank " << r;
    const Rank expected_ref = (r == lm) ? metamaster : lm;
    EXPECT_EQ(sync[0].ref_rank, expected_ref) << "rank " << r;
    EXPECT_EQ(sync[0].phase, 0);
    EXPECT_EQ(sync[1].phase, 1);
  }
}

TEST_F(MeasurementTest, OffsetMeasurementsApproximateTrueOffset) {
  const auto data = run(SyncScheme::FlatTwo);
  // The recorded offset should be close to the true clock difference
  // (within jitter + asymmetry bias, bounded by ~200 us here).
  for (Rank r = 1; r < topo_.num_ranks(); ++r) {
    const auto& rec =
        data.traces.ranks[static_cast<std::size_t>(r)].sync.front();
    const auto& my_clock = data.clocks.clock_of(topo_, r);
    const auto& ref_clock = data.clocks.clock_of(topo_, 0);
    const TrueTime t = my_clock.true_of(LocalTime{rec.local_mid});
    const double true_offset = ref_clock.at(t).s - my_clock.at(t).s;
    EXPECT_NEAR(rec.offset, true_offset, 300e-6) << "rank " << r;
  }
}

// --- binary I/O -------------------------------------------------------------

TEST_F(MeasurementTest, CollectionRoundTripsThroughFiles) {
  const auto data = run(SyncScheme::HierarchicalTwo);
  const auto dir = std::filesystem::temp_directory_path() / "msc_trace_rt";
  std::filesystem::create_directories(dir);
  write_collection(dir.string(), data.traces);
  const TraceCollection loaded = read_collection(dir.string());
  EXPECT_EQ(loaded.scheme, data.traces.scheme);
  EXPECT_EQ(loaded.synchronized, data.traces.synchronized);
  EXPECT_EQ(loaded.defs.regions.all(), data.traces.defs.regions.all());
  EXPECT_EQ(loaded.defs.metahosts, data.traces.defs.metahosts);
  EXPECT_EQ(loaded.defs.locations, data.traces.defs.locations);
  EXPECT_EQ(loaded.defs.comms, data.traces.defs.comms);
  ASSERT_EQ(loaded.num_ranks(), data.traces.num_ranks());
  for (int r = 0; r < loaded.num_ranks(); ++r)
    EXPECT_EQ(loaded.ranks[static_cast<std::size_t>(r)],
              data.traces.ranks[static_cast<std::size_t>(r)])
        << "rank " << r;
  std::filesystem::remove_all(dir);
}

TEST(TraceIo, CorruptMagicRejected) {
  std::vector<std::uint8_t> bytes{'X', 'X', 'X', 'X', 0, 0, 0, 0};
  EXPECT_THROW(decode_defs(bytes), Error);
  EXPECT_THROW(decode_local_trace(bytes), Error);
}

TEST(TraceIo, TruncatedTraceRejected) {
  LocalTrace t;
  t.rank = 0;
  Event e;
  e.type = EventType::Enter;
  e.region = RegionId{0};
  e.time = 1.0;
  t.events.push_back(e);
  auto bytes = encode_local_trace(t);
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode_local_trace(bytes), Error);
}

TEST(TraceIo, TrailingBytesRejected) {
  LocalTrace t;
  t.rank = 0;
  auto bytes = encode_local_trace(t);
  bytes.push_back(0xFF);
  EXPECT_THROW(decode_local_trace(bytes), Error);
}

// --- matching ----------------------------------------------------------------

TEST(Matching, PairsEveryMessage) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = SyncScheme::None;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto pairs = match_messages(data.traces);
  EXPECT_EQ(pairs.size(), data.exec.stats.messages);
  for (const auto& p : pairs) {
    const auto& s = data.traces.ranks[static_cast<std::size_t>(p.send.rank)]
                        .events[p.send.index];
    const auto& r = data.traces.ranks[static_cast<std::size_t>(p.recv.rank)]
                        .events[p.recv.index];
    ASSERT_EQ(s.type, EventType::Send);
    ASSERT_EQ(r.type, EventType::Recv);
    ASSERT_EQ(s.peer, p.recv.rank);
    ASSERT_EQ(r.peer, p.send.rank);
    ASSERT_EQ(s.tag, r.tag);
    ASSERT_EQ(s.comm, r.comm);
  }
}

TEST(Matching, UnmatchedSendDetected) {
  TraceCollection tc;
  tc.ranks.resize(2);
  tc.ranks[0].rank = 0;
  tc.ranks[1].rank = 1;
  Event e;
  e.type = EventType::Send;
  e.peer = 1;
  e.tag = 0;
  e.time = 1.0;
  tc.ranks[0].events.push_back(e);
  EXPECT_THROW(match_messages(tc), Error);
}

TEST(Matching, UnmatchedRecvDetected) {
  TraceCollection tc;
  tc.ranks.resize(2);
  tc.ranks[0].rank = 0;
  tc.ranks[1].rank = 1;
  Event e;
  e.type = EventType::Recv;
  e.peer = 0;
  e.tag = 0;
  e.time = 1.0;
  tc.ranks[1].events.push_back(e);
  EXPECT_THROW(match_messages(tc), Error);
}

/// The pre-merge implementation, kept as the behavioural reference: a
/// full sort over every (rank, index) pair with the (time, rank, index)
/// comparator.
std::vector<TraceCollection::GlobalRef> reference_order(
    const TraceCollection& tc) {
  std::vector<TraceCollection::GlobalRef> order;
  for (const auto& t : tc.ranks)
    for (std::uint32_t i = 0; i < t.events.size(); ++i)
      order.push_back({t.rank, i});
  std::sort(order.begin(), order.end(),
            [&tc](const TraceCollection::GlobalRef& a,
                  const TraceCollection::GlobalRef& b) {
              const double ta =
                  tc.ranks[static_cast<std::size_t>(a.rank)].events[a.index]
                      .time;
              const double tb =
                  tc.ranks[static_cast<std::size_t>(b.rank)].events[b.index]
                      .time;
              if (ta != tb) return ta < tb;
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.index < b.index;
            });
  return order;
}

bool same_order(const std::vector<TraceCollection::GlobalRef>& a,
                const std::vector<TraceCollection::GlobalRef>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].rank != b[i].rank || a[i].index != b[i].index) return false;
  return true;
}

TEST(GlobalOrder, EqualTimestampsOrderByRankThenIndexDeterministically) {
  // Heavy timestamp collisions across ranks (every time is a multiple
  // of 0.5 shared by all ranks) so the tie-break carries the ordering.
  TraceCollection tc;
  tc.ranks.resize(4);
  for (int r = 0; r < 4; ++r) {
    tc.ranks[static_cast<std::size_t>(r)].rank = r;
    for (int i = 0; i < 50; ++i) {
      Event e;
      e.type = i % 2 == 0 ? EventType::Enter : EventType::Exit;
      e.region = RegionId{0};
      e.time = 0.5 * (i / 5);  // ten events share each timestamp
      tc.ranks[static_cast<std::size_t>(r)].events.push_back(e);
    }
  }
  const auto merged = tc.global_order();
  EXPECT_TRUE(same_order(merged, reference_order(tc)));
  // Repeated calls are identical (no hidden iteration-order dependence).
  EXPECT_TRUE(same_order(merged, tc.global_order()));
  // Among equal timestamps, rank ascends and within a rank index ascends.
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const auto& a = merged[i - 1];
    const auto& b = merged[i];
    const double ta =
        tc.ranks[static_cast<std::size_t>(a.rank)].events[a.index].time;
    const double tb =
        tc.ranks[static_cast<std::size_t>(b.rank)].events[b.index].time;
    if (ta == tb) {
      EXPECT_TRUE(a.rank < b.rank || (a.rank == b.rank && a.index < b.index));
    }
  }
}

TEST(GlobalOrder, UnsortedRankStreamFallsBackToFullSort) {
  TraceCollection tc;
  tc.ranks.resize(2);
  tc.ranks[0].rank = 0;
  tc.ranks[1].rank = 1;
  const double times0[] = {3.0, 1.0, 2.0};  // deliberately out of order
  const double times1[] = {0.5, 1.5, 2.5};
  for (double t : times0) {
    Event e;
    e.type = EventType::Enter;
    e.region = RegionId{0};
    e.time = t;
    tc.ranks[0].events.push_back(e);
  }
  for (double t : times1) {
    Event e;
    e.type = EventType::Enter;
    e.region = RegionId{0};
    e.time = t;
    tc.ranks[1].events.push_back(e);
  }
  EXPECT_TRUE(same_order(tc.global_order(), reference_order(tc)));
}

TEST(EpilogIo, TruncatedTraceFileReportsClearError) {
  LocalTrace t;
  t.rank = 3;
  for (int i = 0; i < 20; ++i) {
    Event e;
    e.type = EventType::Send;
    e.peer = 1;
    e.tag = i;
    e.bytes = 128.0;
    e.comm = CommId{0};
    e.time = 0.1 * i;
    t.events.push_back(e);
  }
  const auto bytes = encode_local_trace(t);
  // Chop at several depths: inside the last event, mid-payload, and just
  // past the header. Every cut must produce the truncation Error, never
  // a raw buffer underflow.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{12}}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + keep);
    try {
      (void)decode_local_trace(cut);
      FAIL() << "expected Error at keep=" << keep;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated trace file"),
                std::string::npos)
          << "keep=" << keep << " message: " << e.what();
    }
  }
}

TEST(EpilogIo, ZeroEventTraceRoundTrips) {
  LocalTrace t;
  t.rank = 7;
  const auto decoded = decode_local_trace(encode_local_trace(t));
  EXPECT_EQ(decoded.rank, 7);
  EXPECT_TRUE(decoded.events.empty());
  EXPECT_TRUE(decoded.sync.empty());
}

TEST(GlobalOrder, SortedByTime) {
  const auto topo = simnet::make_ibm_power(4);
  auto prog = workloads::wait_barrier_program({0.0, 0.1, 0.2, 0.3});
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = SyncScheme::None;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto order = data.traces.global_order();
  EXPECT_EQ(order.size(), data.traces.total_events());
  double last = -1.0;
  for (const auto& ref : order) {
    const double t = data.traces.ranks[static_cast<std::size_t>(ref.rank)]
                         .events[ref.index]
                         .time;
    EXPECT_GE(t, last);
    last = t;
  }
}

}  // namespace
}  // namespace metascope::tracing
