// Trace format v3 contract tests: the per-column codecs (bit-lossless
// double compression incl. the residual-corrected scaled modes), the
// columnar trace layout, cross-version migration (v2-written archives
// re-written as v3 must preserve every event bit and every golden
// severity-cube cell), the compression gain itself, and the exact
// ErrorCode taxonomy for v3-specific damage (bad type nibbles, column
// frame truncation, column-length and per-type-count mismatches).
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/binary_io.hpp"
#include "common/column_codec.hpp"
#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "simnet/topology.hpp"
#include "tracing/epilog_io.hpp"
#include "workloads/experiment.hpp"
#include "workloads/microworkloads.hpp"

namespace metascope {
namespace {

namespace fs = std::filesystem;
using tracing::Event;
using tracing::EventType;
using tracing::LocalTrace;
using tracing::TraceCollection;

// --- double-column codec --------------------------------------------------

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double double_of(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

/// Encodes, decodes, and asserts bit-identity; returns the mode byte.
int round_trip_doubles(const std::vector<double>& v) {
  BufWriter w;
  colcodec::encode_double_column(w, v.data(), v.size());
  Decoder d(w.data());
  std::vector<double> out(v.size());
  colcodec::decode_double_column(d, out.data(), v.size());
  EXPECT_TRUE(d.at_end());
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(bits_of(out[i]), bits_of(v[i])) << "index " << i;
  return w.size() == 0 ? -1 : static_cast<int>(w.data()[0]);
}

TEST(DoubleColumn, SpecialValuesRoundTripBitExactly) {
  const std::vector<double> specials = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      double_of(0x7FF8000000000F0FULL),  // NaN with payload
      double_of(0xFFF8000000000001ULL),  // negative NaN
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      DBL_MAX,
      -DBL_MAX,
      DBL_MIN,
      1.0,
      -1.0,
  };
  round_trip_doubles(specials);
  // Each special alone, and repeated (the XOR repeat path).
  for (const double s : specials) {
    round_trip_doubles({s});
    round_trip_doubles({s, s, s});
  }
}

TEST(DoubleColumn, GridValuesPickAnExactScaledMode) {
  // Exact multiples of the 1e-7 clock granularity, monotone: both the
  // fit and the round trip must be exact, and the encoder must prefer a
  // scaled mode (2 or 3) over XOR.
  std::vector<double> v;
  std::int64_t k = 10'000'000;
  for (int i = 0; i < 200; ++i) {
    k += 13 + (i % 5);
    v.push_back(static_cast<double>(k) * 1e-7);
  }
  const int mode = round_trip_doubles(v);
  EXPECT_TRUE(mode == 2 || mode == 3) << "mode " << mode;
}

TEST(DoubleColumn, NudgedGridValuesPickAResidualModeAndStayLossless) {
  // What measurement.cpp actually produces: granularity-quantized
  // stamps occasionally nudged off-grid by the +1e-9 monotonicity
  // fix-up. No single scale reproduces these exactly, so the encoder
  // must fall back to a residual-corrected scaled mode (4 or 5) and
  // still round-trip every bit.
  std::vector<double> v;
  double base = 1.0, last = 0.0;
  for (int i = 0; i < 500; ++i) {
    base += 1e-5;
    double stamp = std::floor(base / 1e-7) * 1e-7;
    if (i % 7 == 0) stamp = last + 1e-9;  // off-grid nudge
    if (stamp <= last) stamp = last + 1e-9;
    last = stamp;
    v.push_back(stamp);
  }
  const int mode = round_trip_doubles(v);
  EXPECT_TRUE(mode == 4 || mode == 5) << "mode " << mode;
  // The residual trick must beat XOR comfortably on this shape.
  BufWriter w;
  colcodec::encode_double_column(w, v.data(), v.size());
  EXPECT_LT(w.size(), 4 * v.size()) << "bytes " << w.size();
}

TEST(DoubleColumn, EmptyColumnEncodesToNothing) {
  BufWriter w;
  colcodec::encode_double_column(w, nullptr, 0);
  EXPECT_EQ(w.size(), 0u);
  Decoder d(w.data());
  colcodec::decode_double_column(d, nullptr, 0);
  EXPECT_TRUE(d.at_end());
}

TEST(IntColumn, ExtremesRoundTrip) {
  const std::vector<std::int64_t> v = {
      0,
      1,
      -1,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
      42,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(),
  };
  BufWriter w;
  colcodec::encode_int_column(w, v.data(), v.size());
  Decoder d(w.data());
  std::vector<std::int64_t> out(v.size());
  colcodec::decode_int_column(d, out.data(), v.size());
  EXPECT_TRUE(d.at_end());
  EXPECT_EQ(out, v);
}

void expect_decode_failure(const std::vector<std::uint8_t>& payload,
                           std::size_t n, ErrorCode code,
                           const std::string& needle) {
  Decoder d(payload.data(), payload.size());
  std::vector<double> out(n);
  try {
    colcodec::decode_double_column(d, out.data(), n);
    FAIL() << "expected Error containing \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), code) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(DoubleColumn, BadXorLeadBytesAreCorrupt) {
  // Lead byte 65 is out of range outright; 64 decodes to a 7+8 byte
  // window, which exceeds the 8 bytes of a double.
  expect_decode_failure({1, 65}, 1, ErrorCode::Corrupt, "XOR lead byte");
  expect_decode_failure({1, 64}, 1, ErrorCode::Corrupt, "XOR lead byte");
}

TEST(DoubleColumn, UnknownModeIsCorrupt) {
  expect_decode_failure({6}, 1, ErrorCode::Corrupt, "double-column mode");
  expect_decode_failure({255}, 1, ErrorCode::Corrupt, "double-column mode");
}

TEST(DoubleColumn, BadScaleIndexIsCorrupt) {
  for (const std::uint8_t mode : {2, 3, 4, 5})
    expect_decode_failure({mode, 200}, 1, ErrorCode::Corrupt, "scale index");
}

TEST(DoubleColumn, BadResidualBitWidthIsCorrupt) {
  for (const std::uint8_t mode : {4, 5})
    expect_decode_failure({mode, 0, 65}, 1, ErrorCode::Corrupt,
                          "residual bit width");
}

TEST(DoubleColumn, TruncatedStreamsAreTruncated) {
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(0.25 * i + (i % 3) * 1e-9);
  BufWriter w;
  colcodec::encode_double_column(w, v.data(), v.size());
  for (const std::size_t keep : {w.size() - 1, w.size() / 2, std::size_t{1}}) {
    std::vector<std::uint8_t> cut(w.data().begin(),
                                  w.data().begin() +
                                      static_cast<std::ptrdiff_t>(keep));
    Decoder d(cut.data(), cut.size());
    std::vector<double> out(v.size());
    EXPECT_THROW(colcodec::decode_double_column(d, out.data(), v.size()),
                 Error)
        << "keep=" << keep;
  }
}

// --- v3 trace layout ------------------------------------------------------

LocalTrace mixed_trace(Rank rank, int n) {
  LocalTrace t;
  t.rank = rank;
  double last = 0.0;
  for (int i = 0; i < n; ++i) {
    Event e;
    double stamp = std::floor((0.001 * (i + 1)) / 1e-7) * 1e-7;
    if (stamp <= last) stamp = last + 1e-9;
    last = stamp;
    e.time = stamp;
    switch (i % 5) {
      case 0:
        e.type = EventType::Enter;
        e.region = RegionId{i % 4};
        break;
      case 1:
        e.type = EventType::Send;
        e.peer = (rank + 1) % 8;
        e.tag = i;
        e.bytes = 1024.0;
        e.comm = CommId{0};
        break;
      case 2:
        e.type = EventType::Recv;
        e.peer = (rank + 7) % 8;
        e.tag = i;
        e.bytes = 1024.0;
        e.comm = CommId{0};
        break;
      case 3:
        e.type = EventType::CollExit;
        e.region = RegionId{1};
        e.comm = CommId{0};
        e.root = 0;
        e.bytes = 256.0;
        e.sent_bytes = 256.0;
        e.recvd_bytes = 2048.0;
        break;
      case 4:
        e.type = EventType::Exit;
        break;
    }
    t.events.push_back(e);
  }
  for (int p = 0; p < 2; ++p) {
    tracing::OffsetRecord s;
    s.phase = p;
    s.ref_rank = 0;
    s.local_mid = 0.5 + 0.001 * p;
    s.offset = -3.5e-4;
    s.error_bound = 2.1e-6;
    t.sync.push_back(s);
  }
  return t;
}

TEST(TraceV3, EveryVersionRoundTripsEveryEventBit) {
  const LocalTrace t = mixed_trace(5, 137);  // odd count: padding nibble
  for (const std::uint32_t v : {1u, 2u, 3u}) {
    const auto bytes = tracing::encode_local_trace(t, v);
    const LocalTrace back = tracing::decode_local_trace(bytes);
    EXPECT_EQ(back, t) << "version " << v;
  }
}

TEST(TraceV3, UnsupportedEncodeVersionsRejected) {
  const LocalTrace t = mixed_trace(0, 5);
  for (const std::uint32_t v : {0u, 4u, 99u}) {
    try {
      (void)tracing::encode_local_trace(t, v);
      FAIL() << "expected VersionMismatch for version " << v;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::VersionMismatch) << e.what();
    }
  }
}

TEST(TraceV3, ColumnarFormatIsSubstantiallySmaller) {
  // Steady-state trace shapes (the regime the columnar layout targets):
  // v3 must come in at least 3x under v2. Tiny traces have a higher
  // header share; the archive-level gate lives in the bench smoke job.
  const LocalTrace t = mixed_trace(3, 20000);
  const auto v2 = tracing::encode_local_trace(t, 2);
  const auto v3 = tracing::encode_local_trace(t, 3);
  EXPECT_GE(v2.size(), 3 * v3.size())
      << "v2 " << v2.size() << " vs v3 " << v3.size();
}

TEST(TraceV3, InMemoryBytesCountsResidentSize) {
  const LocalTrace t = mixed_trace(1, 10);
  EXPECT_EQ(tracing::in_memory_bytes(t),
            10 * sizeof(Event) + 2 * sizeof(tracing::OffsetRecord));
  TraceCollection tc;
  tc.ranks.push_back(mixed_trace(0, 4));
  tc.ranks.push_back(mixed_trace(1, 6));
  EXPECT_EQ(tracing::in_memory_bytes(tc),
            tracing::in_memory_bytes(tc.ranks[0]) +
                tracing::in_memory_bytes(tc.ranks[1]));
}

// --- v3 corruption taxonomy ----------------------------------------------
//
// A minimal v3 trace with deterministic offsets: rank 0, no sync
// records, one Enter event. Header: magic[0..3] version[4..7] rank@8
// nsync@9 nev@10 per-type-counts@11..15, nibble type stream @16, time
// column frame @17.

std::vector<std::uint8_t> one_enter_trace() {
  LocalTrace t;
  t.rank = 0;
  Event e;
  e.type = EventType::Enter;
  e.region = RegionId{2};
  e.time = 0.5;
  t.events.push_back(e);
  return tracing::encode_local_trace(t, 3);
}

void expect_trace_failure(std::vector<std::uint8_t> bytes, ErrorCode code,
                          const std::string& needle) {
  try {
    (void)tracing::decode_local_trace(bytes);
    FAIL() << "expected Error containing \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), code) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(TraceV3Corrupt, UnknownTypeNibbleIsCorrupt) {
  auto bytes = one_enter_trace();
  bytes[16] = 0x07;  // low nibble 7: no such EventType
  expect_trace_failure(std::move(bytes), ErrorCode::Corrupt,
                       "unknown event type 7 in type stream");
}

TEST(TraceV3Corrupt, NonzeroPaddingNibbleIsCorrupt) {
  auto bytes = one_enter_trace();
  bytes[16] = 0x10;  // odd event count: the high nibble is padding
  expect_trace_failure(std::move(bytes), ErrorCode::Corrupt,
                       "nonzero padding nibble");
}

TEST(TraceV3Corrupt, PerTypeCountSumMismatchIsCorrupt) {
  auto bytes = one_enter_trace();
  bytes[11] = 2;  // Enter count 1 -> 2; sum 2 != declared 1 event
  expect_trace_failure(std::move(bytes), ErrorCode::Corrupt,
                       "per-type event counts sum");
}

TEST(TraceV3Corrupt, TypeStreamTallyMismatchIsCorrupt) {
  auto bytes = one_enter_trace();
  bytes[11] = 0;  // Enter 1 -> 0 ...
  bytes[12] = 1;  // ... Exit 0 -> 1: sum still 1, tallies disagree
  expect_trace_failure(std::move(bytes), ErrorCode::Corrupt,
                       "type stream has");
}

TEST(TraceV3Corrupt, ColumnLengthMismatchIsCorrupt) {
  auto bytes = one_enter_trace();
  // The time column's frame claims one byte more than its codec
  // payload; the decoder must flag the mismatch, not absorb the
  // neighbouring column's bytes.
  bytes[17] += 1;
  expect_trace_failure(std::move(bytes), ErrorCode::Corrupt,
                       "column length mismatch");
}

TEST(TraceV3Corrupt, TruncatedColumnIsTruncated) {
  const auto intact = one_enter_trace();
  // Every cut from inside the time frame to the last byte must surface
  // as the canonical truncation diagnosis.
  for (std::size_t keep = 18; keep < intact.size(); ++keep) {
    std::vector<std::uint8_t> cut(intact.begin(),
                                  intact.begin() +
                                      static_cast<std::ptrdiff_t>(keep));
    expect_trace_failure(std::move(cut), ErrorCode::Truncated,
                         "truncated trace file");
  }
}

TEST(TraceV3Corrupt, OversizedColumnFrameIsTruncated) {
  auto bytes = one_enter_trace();
  bytes[17] = 200;  // frame declares more bytes than the file holds
  expect_trace_failure(std::move(bytes), ErrorCode::Truncated, "column");
}

// --- cross-version migration against the golden fixture ------------------
//
// The wait-barrier-local seed workload from the pattern-engine golden
// fixture, re-built here (construction must stay in sync with
// test_pattern_engine.cpp), written as a v2 archive, read back,
// re-written as v3, read again: every event bit must survive, and the
// legacy-selection severity cube of the twice-migrated collection must
// reproduce the fixture cells exactly.

simnet::Topology local_topo(int n) {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = n;
  a.cpus_per_node = 1;
  a.internal = simnet::LinkSpec{10e-6, 0.0, 1e9};
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, n, 1);
  return topo;
}

TraceCollection wait_barrier_traces() {
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  auto data = workloads::run_experiment(
      local_topo(4), workloads::wait_barrier_program({0.3, 0.0, 0.1, 0.2}),
      cfg);
  return std::move(data.traces);
}

using RowMap = std::map<std::string, double>;

RowMap golden_rows(const std::string& workload) {
  RowMap out;
  std::ifstream in(MSC_GOLDEN_FILE);
  EXPECT_TRUE(in.good()) << "missing fixture " << MSC_GOLDEN_FILE;
  std::string line;
  bool active = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("workload ", 0) == 0) {
      active = line.substr(9) == workload;
      continue;
    }
    if (!active) continue;
    const std::size_t last_sep = line.rfind(" | ");
    EXPECT_NE(last_sep, std::string::npos) << line;
    if (last_sep == std::string::npos) continue;
    std::istringstream tail(line.substr(last_sep + 3));
    int rank = -1;
    std::string hex;
    tail >> rank >> hex;
    out[line.substr(0, last_sep) + " | " + std::to_string(rank)] =
        std::strtod(hex.c_str(), nullptr);
  }
  EXPECT_FALSE(out.empty()) << "fixture has no rows for " << workload;
  return out;
}

RowMap cube_rows(const report::Cube& cube) {
  RowMap rows;
  for (MetricId m : cube.metrics.preorder()) {
    const std::string& metric = cube.metrics.def(m).name;
    for (CallPathId c : cube.calls.preorder()) {
      const std::string path = cube.calls.path_string(c, cube.regions);
      for (Rank r = 0; r < cube.num_ranks(); ++r) {
        const double v = cube.get(m, c, r);
        if (v == 0.0) continue;
        rows[metric + " | " + path + " | " + std::to_string(r)] = v;
      }
    }
  }
  return rows;
}

TEST(TraceV3Migration, V2ArchiveRewrittenAsV3MatchesGoldenCube) {
  const TraceCollection original = wait_barrier_traces();

  const auto base = fs::temp_directory_path() / "msc_v3_migration";
  const auto v2_dir = base / "v2";
  const auto v3_dir = base / "v3";
  fs::remove_all(base);
  fs::create_directories(v2_dir);
  fs::create_directories(v3_dir);

  tracing::write_collection(v2_dir.string(), original, 2);
  const TraceCollection from_v2 = tracing::read_collection(v2_dir.string());
  tracing::write_collection(v3_dir.string(), from_v2, 3);
  const TraceCollection from_v3 = tracing::read_collection(v3_dir.string());
  fs::remove_all(base);

  // Bit-identical traces through both generations.
  ASSERT_EQ(from_v3.num_ranks(), original.num_ranks());
  for (int r = 0; r < original.num_ranks(); ++r) {
    EXPECT_EQ(from_v2.ranks[static_cast<std::size_t>(r)],
              original.ranks[static_cast<std::size_t>(r)])
        << "v2 rank " << r;
    EXPECT_EQ(from_v3.ranks[static_cast<std::size_t>(r)],
              original.ranks[static_cast<std::size_t>(r)])
        << "v3 rank " << r;
  }

  // The migrated collection still reproduces the golden severity cells
  // bit-for-bit under the legacy detector selection.
  analysis::ReplayOptions opts;
  opts.patterns = {"late_sender",    "late_receiver", "early_reduce",
                   "late_broadcast", "wait_nxn",      "wait_barrier"};
  const auto res = analysis::analyze_serial(from_v3, opts);
  const RowMap got = cube_rows(res.cube);
  const RowMap want = golden_rows("wait-barrier-local");
  for (const auto& [key, v] : want) {
    const auto it = got.find(key);
    if (it == got.end()) {
      ADD_FAILURE() << "missing row " << key;
      continue;
    }
    EXPECT_EQ(it->second, v) << key;
  }
  for (const auto& [key, v] : got)
    EXPECT_TRUE(want.count(key)) << "unexpected row " << key << " = " << v;
}

}  // namespace
}  // namespace metascope
