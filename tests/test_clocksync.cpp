// Tests for post-mortem clock synchronization: linear corrections,
// the three schemes' accuracy, clock-condition checking (Table 2's
// mechanism), and ground-truth error analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "clocksync/clock_condition.hpp"
#include "clocksync/correction.hpp"
#include "clocksync/error_analysis.hpp"
#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope::clocksync {
namespace {

using tracing::SyncScheme;

TEST(LinearCorrection, ApplyAndCompose) {
  const LinearCorrection a{1.0, 2.0};
  const LinearCorrection b{-0.5, 0.5};
  EXPECT_DOUBLE_EQ(a.apply(3.0), 7.0);
  const LinearCorrection c = LinearCorrection::compose(a, b);
  // a(b(x)) = 1 + 2*(-0.5 + 0.5x) = 0 + x.
  EXPECT_DOUBLE_EQ(c.apply(3.0), a.apply(b.apply(3.0)));
  EXPECT_DOUBLE_EQ(LinearCorrection::identity().apply(9.9), 9.9);
}

class SchemeTest : public ::testing::TestWithParam<SyncScheme> {
 protected:
  SchemeTest() : topo_(simnet::make_viola_experiment1()) {}

  workloads::ExperimentData run_bench(SyncScheme scheme,
                                      std::uint64_t clock_seed = 42) {
    workloads::ClockBenchConfig bc;
    bc.rounds = 400;
    // Stretch virtual time (free for the engine) so that uncompensated
    // drift accumulates well past the WAN-asymmetry bias — the effect
    // separating Table 2's rows (i) and (ii).
    bc.pad_work = 0.05;
    auto prog = workloads::build_clock_bench(topo_.num_ranks(), bc);
    workloads::ExperimentConfig cfg;
    cfg.measurement.scheme = scheme;
    cfg.clock_seed = clock_seed;
    return workloads::run_experiment(topo_, prog, cfg);
  }

  simnet::Topology topo_;
};

TEST_P(SchemeTest, CorrectionsReduceViolationsVsRaw) {
  auto data = run_bench(GetParam());
  const auto raw = check_clock_condition(data.traces);
  synchronize(data.traces);
  const auto fixed = check_clock_condition(data.traces);
  // Raw traces with +-0.5 s offsets violate massively; every scheme must
  // improve on that.
  EXPECT_GT(raw.violations, fixed.violations);
  EXPECT_TRUE(data.traces.synchronized);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeTest,
                         ::testing::Values(SyncScheme::FlatSingle,
                                           SyncScheme::FlatTwo,
                                           SyncScheme::HierarchicalTwo));

TEST_F(SchemeTest, HierarchicalEliminatesViolations) {
  auto data = run_bench(SyncScheme::HierarchicalTwo);
  synchronize(data.traces);
  const auto rep = check_clock_condition(data.traces);
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_GT(rep.messages, 700u);
}

TEST_F(SchemeTest, Table2OrderingHolds) {
  // Paper Table 2: single flat > two flat >> hierarchical == 0.
  std::size_t v_single = 0;
  std::size_t v_two = 0;
  std::size_t v_hier = 0;
  for (std::uint64_t seed : {42ULL, 43ULL, 44ULL}) {
    auto d1 = run_bench(SyncScheme::FlatSingle, seed);
    synchronize(d1.traces);
    v_single += check_clock_condition(d1.traces).violations;
    auto d2 = run_bench(SyncScheme::FlatTwo, seed);
    synchronize(d2.traces);
    v_two += check_clock_condition(d2.traces).violations;
    auto d3 = run_bench(SyncScheme::HierarchicalTwo, seed);
    synchronize(d3.traces);
    v_hier += check_clock_condition(d3.traces).violations;
  }
  EXPECT_GT(v_single, v_two);
  EXPECT_GT(v_two, 0u);
  EXPECT_EQ(v_hier, 0u);
}

TEST_F(SchemeTest, HierarchicalIntraMetahostErrorIsTiny) {
  auto data = run_bench(SyncScheme::HierarchicalTwo);
  const auto corr = build_corrections(data.traces);
  const auto survey =
      survey_errors(topo_, data.clocks, corr,
                    {TrueTime{0.5}, TrueTime{2.0}, TrueTime{5.0}});
  // Within a metahost the hierarchical scheme relies only on internal
  // links: errors far below the internal message latency (~21 us).
  EXPECT_LT(survey.intra_metahost_abs.max(), 10e-6);
  // Across metahosts the WAN asymmetry bias remains, but stays well
  // below the WAN latency (988 us) — no violations.
  EXPECT_LT(survey.inter_metahost_abs.max(), 500e-6);
}

TEST_F(SchemeTest, FlatIntraMetahostErrorExceedsInternalLatency) {
  auto data = run_bench(SyncScheme::FlatTwo);
  const auto corr = build_corrections(data.traces);
  const auto survey = survey_errors(topo_, data.clocks, corr,
                                    {TrueTime{0.5}, TrueTime{5.0}});
  // Flat measurements over the asymmetric WAN leave same-metahost pairs
  // with relative errors larger than their internal latency — the root
  // cause of Table 2's flat-scheme violations.
  EXPECT_GT(survey.intra_metahost_abs.max(), 21.5e-6);
}

TEST_F(SchemeTest, SingleFlatDriftGrowsOverTime) {
  auto data = run_bench(SyncScheme::FlatSingle);
  const auto corr = build_corrections(data.traces);
  double early = 0.0;
  double late = 0.0;
  for (Rank a = 0; a < topo_.num_ranks(); ++a) {
    early = std::max(early, std::abs(pairwise_error(topo_, data.clocks,
                                                    corr, a, 0,
                                                    TrueTime{0.1})));
    late = std::max(late, std::abs(pairwise_error(topo_, data.clocks, corr,
                                                  a, 0, TrueTime{20.0})));
  }
  // Without drift compensation the error grows roughly linearly in time.
  EXPECT_GT(late, early * 2.0);
}

TEST_F(SchemeTest, TwoFlatCompensatesDrift) {
  auto data = run_bench(SyncScheme::FlatTwo);
  const auto corr = build_corrections(data.traces);
  // At both ends of the run the error stays bounded by the measurement
  // bias; it does not blow up with time as FlatSingle's does.
  double worst = 0.0;
  for (Rank a = 1; a < topo_.num_ranks(); ++a) {
    worst = std::max(worst, std::abs(pairwise_error(topo_, data.clocks,
                                                    corr, a, 0,
                                                    TrueTime{20.0})));
  }
  EXPECT_LT(worst, 500e-6);
}

TEST(Corrections, NoneSchemeGivesIdentity) {
  const auto topo = simnet::make_ibm_power(4);
  auto prog = workloads::build_clock_bench(4, {});
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = SyncScheme::None;
  cfg.perfect_clocks = true;
  auto data = workloads::run_experiment(topo, prog, cfg);
  const auto corr = build_corrections(data.traces);
  for (const auto& c : corr) EXPECT_EQ(c, LinearCorrection::identity());
}

TEST(Corrections, PerfectlyLinearClocksAreExactlyRecovered) {
  // With zero jitter, zero asymmetry and noise-free clock reads, the
  // two-point interpolation must recover the clock mapping exactly.
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = 2;
  a.cpus_per_node = 1;
  a.internal = simnet::LinkSpec{10e-6, 0.0, 1e9};
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, 2, 1);
  auto prog = workloads::build_clock_bench(2, {});
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = SyncScheme::FlatTwo;
  cfg.clocks.granularity = 0.0;
  cfg.clocks.read_noise = 0.0;
  auto data = workloads::run_experiment(topo, prog, cfg);
  const auto corr = build_corrections(data.traces);
  // Residual pairwise error: zero up to floating-point.
  for (double t : {0.0, 1.0, 10.0}) {
    EXPECT_NEAR(pairwise_error(topo, data.clocks, corr, 1, 0, TrueTime{t}),
                0.0, 1e-9);
  }
}

TEST(Corrections, ApplyTwiceRejected) {
  const auto topo = simnet::make_ibm_power(4);
  auto prog = workloads::build_clock_bench(4, {});
  workloads::ExperimentConfig cfg;
  auto data = workloads::run_experiment(topo, prog, cfg);
  synchronize(data.traces);
  EXPECT_THROW(synchronize(data.traces), Error);
}

TEST(Corrections, MissingPhaseRecordRejected) {
  const auto topo = simnet::make_viola_experiment1();
  workloads::ClockBenchConfig bc;
  bc.rounds = 20;
  auto prog = workloads::build_clock_bench(32, bc);
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = SyncScheme::FlatTwo;
  auto data = workloads::run_experiment(topo, prog, cfg);
  data.traces.ranks[5].sync.pop_back();  // drop the end-phase record
  EXPECT_THROW(build_corrections(data.traces), Error);
}

// Regression: ref_rank comes straight from decoded trace bytes; an
// out-of-range value must surface as a typed Corrupt error, not index
// out of bounds (found by fuzz_sync_decode).
TEST(Corrections, OutOfRangeRefRankRejected) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_clock_bench(32, {});
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = SyncScheme::HierarchicalTwo;
  auto data = workloads::run_experiment(topo, prog, cfg);
  for (auto& rec : data.traces.ranks[5].sync) rec.ref_rank = 1 << 20;
  try {
    build_corrections(data.traces);
    FAIL() << "garbage ref_rank must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Corrupt);
    EXPECT_EQ(e.context().rank, 5);
  }
}

TEST(ClockCondition, CountsKnownViolation) {
  tracing::TraceCollection tc;
  tc.ranks.resize(2);
  tc.ranks[0].rank = 0;
  tc.ranks[1].rank = 1;
  tracing::Event s;
  s.type = tracing::EventType::Send;
  s.peer = 1;
  s.tag = 0;
  s.time = 1.0;
  tracing::Event r;
  r.type = tracing::EventType::Recv;
  r.peer = 0;
  r.tag = 0;
  r.time = 0.9;  // receive "before" send
  tc.ranks[0].events.push_back(s);
  tc.ranks[1].events.push_back(r);
  const auto rep = check_clock_condition(tc);
  EXPECT_EQ(rep.messages, 1u);
  EXPECT_EQ(rep.violations, 1u);
  EXPECT_NEAR(rep.worst_reversal, 0.1, 1e-12);
}

TEST(ClockCondition, CleanTraceHasNoViolations) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = SyncScheme::None;
  auto data = workloads::run_experiment(topo, prog, cfg);
  const auto rep = check_clock_condition(data.traces);
  EXPECT_EQ(rep.violations, 0u);
  EXPECT_GT(rep.messages, 0u);
  EXPECT_GT(rep.mean_gap, 0.0);
}

}  // namespace
}  // namespace metascope::clocksync
