#include "report/algebra.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope::report {
namespace {

Cube make_cube(double time_val, double wait_val,
               const std::string& extra_metric = "") {
  Cube cube;
  const MetricId time = cube.metrics.add("Time", "");
  const MetricId wait = cube.metrics.add("Wait", "", time);
  if (!extra_metric.empty()) cube.metrics.add(extra_metric, "", time);
  const RegionId main_r = cube.regions.intern("main");
  const CallPathId main_c = cube.calls.get_or_add(CallPathId{}, main_r);
  for (Rank r = 0; r < 2; ++r) {
    tracing::LocationDef loc;
    loc.machine = MetahostId{0};
    loc.node = NodeId{0};
    loc.process = r;
    cube.system.locations.push_back(loc);
  }
  cube.system.metahosts.push_back(tracing::MetahostDef{MetahostId{0}, "M"});
  cube.add(time, main_c, 0, time_val);
  cube.add(wait, main_c, 1, wait_val);
  return cube;
}

TEST(Algebra, DiffSubtractsMatchingEntries) {
  const Cube a = make_cube(5.0, 2.0);
  const Cube b = make_cube(3.0, 2.5);
  const Cube d = cube_diff(a, b);
  const MetricId time = d.metrics.find("Time");
  const MetricId wait = d.metrics.find("Wait");
  EXPECT_DOUBLE_EQ(d.metric_total(time), 2.0);
  EXPECT_DOUBLE_EQ(d.metric_total(wait), -0.5);
}

TEST(Algebra, DiffSelfIsZero) {
  const Cube a = make_cube(5.0, 2.0);
  const Cube d = cube_diff(a, a);
  for (std::size_t m = 0; m < d.metrics.size(); ++m)
    EXPECT_DOUBLE_EQ(d.metric_total(MetricId{static_cast<int>(m)}), 0.0);
}

TEST(Algebra, UnionStructureWhenMetricsDiffer) {
  const Cube a = make_cube(5.0, 2.0, "OnlyInA");
  const Cube b = make_cube(1.0, 1.0, "OnlyInB");
  const Cube d = cube_diff(a, b);
  EXPECT_TRUE(d.metrics.contains("OnlyInA"));
  EXPECT_TRUE(d.metrics.contains("OnlyInB"));
  // Entries missing from one operand count as zero.
  EXPECT_DOUBLE_EQ(d.metric_total(d.metrics.find("OnlyInA")), 0.0);
}

TEST(Algebra, UnionStructureWhenCallPathsDiffer) {
  Cube a = make_cube(5.0, 2.0);
  Cube b = make_cube(1.0, 1.0);
  const RegionId solver = b.regions.intern("solver");
  const CallPathId extra =
      b.calls.get_or_add(b.calls.roots().front(), solver);
  b.add(b.metrics.find("Time"), extra, 0, 7.0);
  const Cube d = cube_diff(a, b);
  bool found = false;
  for (CallPathId c : d.calls.preorder()) {
    if (d.calls.path_string(c, d.regions) == "main/solver") {
      found = true;
      EXPECT_DOUBLE_EQ(d.get(d.metrics.find("Time"), c, 0), -7.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Algebra, MergeSums) {
  const Cube a = make_cube(1.0, 2.0);
  const Cube b = make_cube(3.0, 4.0);
  const Cube c = make_cube(5.0, 6.0);
  const Cube m = cube_merge({&a, &b, &c});
  EXPECT_DOUBLE_EQ(m.metric_total(m.metrics.find("Time")), 9.0);
  EXPECT_DOUBLE_EQ(m.metric_total(m.metrics.find("Wait")), 12.0);
}

TEST(Algebra, MeanAverages) {
  const Cube a = make_cube(1.0, 2.0);
  const Cube b = make_cube(3.0, 6.0);
  const Cube m = cube_mean({&a, &b});
  EXPECT_DOUBLE_EQ(m.metric_total(m.metrics.find("Time")), 2.0);
  EXPECT_DOUBLE_EQ(m.metric_total(m.metrics.find("Wait")), 4.0);
}

TEST(Algebra, RejectsEmptyAndMismatchedRankCounts) {
  EXPECT_THROW(cube_merge({}), Error);
  const Cube a = make_cube(1.0, 2.0);
  Cube b = make_cube(1.0, 2.0);
  tracing::LocationDef extra;
  extra.machine = MetahostId{0};
  extra.node = NodeId{0};
  extra.process = 2;
  b.system.locations.push_back(extra);
  EXPECT_THROW(cube_diff(a, b), Error);
}

TEST(Algebra, HetVsHomComparisonShowsPaperShift) {
  // The paper's §5 comparison: heterogeneous (Fig. 6) minus homogeneous
  // (Fig. 7) must show more barrier waiting in the heterogeneous run and
  // *less* steering-path Late Sender.
  workloads::MetaTraceConfig mt;
  const auto prog_het = workloads::build_metatrace(mt);
  const auto prog_hom = workloads::build_metatrace(mt);
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;

  const auto het_data = workloads::run_experiment(
      simnet::make_viola_experiment1(), prog_het, cfg);
  const auto het = analysis::analyze_serial(het_data.traces);

  const auto hom_data = workloads::run_experiment(
      simnet::make_ibm_power(32), prog_hom, cfg);
  const auto hom = analysis::analyze_serial(hom_data.traces);

  const Cube d = cube_diff(het.cube, hom.cube);
  const double barrier_shift =
      d.metric_total(d.metrics.find("Grid Wait at Barrier")) +
      d.metric_total(d.metrics.find("Wait at Barrier"));
  EXPECT_GT(barrier_shift, 0.0);

  // Steering-path Late Sender: larger in the homogeneous run.
  const MetricId ls = d.metrics.find("Late Sender");
  const MetricId gls = d.metrics.find("Grid Late Sender");
  double steering_shift = 0.0;
  for (CallPathId c : d.calls.preorder()) {
    const std::string path = d.calls.path_string(c, d.regions);
    if (path.find("getsteering") != std::string::npos) {
      steering_shift += d.cnode_subtree_inclusive(ls, c) +
                        d.cnode_subtree_inclusive(gls, c);
    }
  }
  EXPECT_LT(steering_shift, 0.0);
}

}  // namespace
}  // namespace metascope::report
