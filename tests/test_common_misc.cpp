// Tests for the smaller common utilities: strong ids, name table, text
// table, logging.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/name_table.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace metascope {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  RegionId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.get(), -1);
}

TEST(StrongId, ComparesAndHashes) {
  RegionId a{3};
  RegionId b{3};
  RegionId c{4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(std::hash<RegionId>{}(a), std::hash<RegionId>{}(b));
}

TEST(StrongId, DistinctTagTypesDoNotMix) {
  // Compile-time property: RegionId and CommId are distinct types.
  static_assert(!std::is_same_v<RegionId, CommId>);
  static_assert(!std::is_same_v<MetahostId, NodeId>);
}

TEST(TimeTypes, Arithmetic) {
  const TrueTime t{1.5};
  const TrueTime u = t + 0.25;
  EXPECT_DOUBLE_EQ(u.s, 1.75);
  EXPECT_DOUBLE_EQ(u - t, 0.25);
  const LocalTime l{2.0};
  EXPECT_DOUBLE_EQ((l + 1.0) - l, 1.0);
}

TEST(TimeTypes, UnitHelpers) {
  EXPECT_DOUBLE_EQ(microseconds(21.5), 21.5e-6);
  EXPECT_DOUBLE_EQ(milliseconds(2.0), 2e-3);
  EXPECT_DOUBLE_EQ(mega_bytes(200.0), 2e8);
  EXPECT_DOUBLE_EQ(giga_bytes(1.25), 1.25e9);
}

TEST(NameTableTest, InternIsIdempotent) {
  NameTable<RegionId> t;
  const RegionId a = t.intern("main");
  const RegionId b = t.intern("solver");
  const RegionId a2 = t.intern("main");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.name(a), "main");
  EXPECT_EQ(t.name(b), "solver");
}

TEST(NameTableTest, FindAndContains) {
  NameTable<RegionId> t;
  t.intern("x");
  EXPECT_TRUE(t.contains("x"));
  EXPECT_FALSE(t.contains("y"));
  EXPECT_EQ(t.find("x").get(), 0);
  EXPECT_THROW((void)t.find("y"), Error);
}

TEST(NameTableTest, BadIdThrows) {
  NameTable<RegionId> t;
  EXPECT_THROW((void)t.name(RegionId{0}), Error);
  EXPECT_THROW((void)t.name(RegionId{}), Error);
}

TEST(Errors, CheckMacroCarriesContext) {
  try {
    MSC_CHECK(1 == 2, "the explanation");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the explanation"), std::string::npos);
    EXPECT_NE(what.find("test_common_misc"), std::string::npos);
  }
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Right-aligned numeric column: "22222" must end at the same offset
  // as header "value".
  std::istringstream is(out);
  std::string header;
  std::string sep;
  std::string row1;
  std::string row2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(header.size(), row2.size());
  EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
}

TEST(TextTableTest, RejectsBadRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(t.set_align(5, TextTable::Align::Left), Error);
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTableTest, NumberFormatters) {
  EXPECT_EQ(TextTable::sci(988e-6, 2), "9.88E-04");
  EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::percent(0.231, 1), "23.1 %");
}

TEST(Logging, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // These must not crash and must be filtered (no observable assert here,
  // but exercises the macro path).
  MSC_DEBUG("dropped " << 1);
  MSC_INFO("dropped " << 2);
  set_log_level(before);
}

}  // namespace
}  // namespace metascope
