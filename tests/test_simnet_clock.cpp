#include "simnet/clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "simnet/presets.hpp"

namespace metascope::simnet {
namespace {

TEST(ClockModel, LinearMapping) {
  const ClockModel c(0.5, 1e-5);
  EXPECT_DOUBLE_EQ(c.at(TrueTime{0.0}).s, 0.5);
  EXPECT_DOUBLE_EQ(c.at(TrueTime{10.0}).s, 0.5 + 10.0 * (1.0 + 1e-5));
}

TEST(ClockModel, InverseIsExact) {
  const ClockModel c(-0.3, -2e-5);
  for (double t : {0.0, 1.0, 100.0, 12345.6789}) {
    const LocalTime l = c.at(TrueTime{t});
    EXPECT_NEAR(c.true_of(l).s, t, 1e-9);
  }
}

TEST(ClockModel, DriftSeparatesClocksOverTime) {
  const ClockModel a(0.0, 1e-5);
  const ClockModel b(0.0, -1e-5);
  const double gap_1s = a.at(TrueTime{1.0}).s - b.at(TrueTime{1.0}).s;
  const double gap_100s = a.at(TrueTime{100.0}).s - b.at(TrueTime{100.0}).s;
  EXPECT_NEAR(gap_1s, 2e-5, 1e-12);
  EXPECT_NEAR(gap_100s, 2e-3, 1e-10);
}

TEST(ClockModel, ReadQuantizesToGranularity) {
  Rng rng(1);
  const ClockModel c(0.0, 0.0, /*granularity=*/1e-6, /*read_noise=*/0.0);
  const LocalTime l = c.read(TrueTime{1.23456789}, rng);
  const double ticks = l.s / 1e-6;
  EXPECT_NEAR(ticks, std::floor(ticks + 1e-9), 1e-6);
  EXPECT_NEAR(l.s, 1.234567, 1e-9);
}

TEST(ClockModel, ReadNoiseIsBounded) {
  Rng rng(2);
  const ClockModel c(0.0, 0.0, 0.0, /*read_noise=*/1e-7);
  for (int i = 0; i < 1000; ++i) {
    const LocalTime l = c.read(TrueTime{5.0}, rng);
    EXPECT_NEAR(l.s, 5.0, 1e-6);  // 10 sigma
  }
}

TEST(ClockSet, PerfectClocksAreIdentity) {
  const Topology topo = make_viola_experiment1();
  const ClockSet cs = ClockSet::perfect(topo);
  EXPECT_EQ(cs.size(), static_cast<std::size_t>(topo.num_nodes()));
  for (Rank r = 0; r < topo.num_ranks(); ++r) {
    EXPECT_DOUBLE_EQ(cs.clock_of(topo, r).at(TrueTime{7.5}).s, 7.5);
  }
}

TEST(ClockSet, RandomizedWithinCharacteristics) {
  const Topology topo = make_viola_experiment1();
  ClockCharacteristics chars;
  chars.max_offset = 0.25;
  chars.max_drift = 5e-6;
  Rng rng(42);
  const ClockSet cs = ClockSet::randomized(topo, chars, rng);
  for (int n = 0; n < topo.num_nodes(); ++n) {
    const auto& c = cs.node_clock(NodeId{n});
    EXPECT_LE(std::abs(c.offset()), 0.25);
    EXPECT_LE(std::abs(c.drift()), 5e-6);
  }
}

TEST(ClockSet, SameNodeSharesClock) {
  const Topology topo = make_viola_experiment1();
  ClockCharacteristics chars;
  Rng rng(42);
  const ClockSet cs = ClockSet::randomized(topo, chars, rng);
  // Ranks 0 and 1 are on the same FH-BRS node.
  EXPECT_DOUBLE_EQ(cs.clock_of(topo, 0).offset(),
                   cs.clock_of(topo, 1).offset());
}

TEST(ClockSet, DifferentNodesUsuallyDiffer) {
  const Topology topo = make_viola_experiment1();
  ClockCharacteristics chars;
  Rng rng(42);
  const ClockSet cs = ClockSet::randomized(topo, chars, rng);
  EXPECT_NE(cs.clock_of(topo, 0).offset(), cs.clock_of(topo, 4).offset());
}

TEST(ClockSet, GlobalClockMetahostSharesOneModel) {
  const Topology topo = make_ibm_power(32);
  ClockCharacteristics chars;
  Rng rng(7);
  const ClockSet cs = ClockSet::randomized(topo, chars, rng);
  // Single node anyway, but exercise the shared-model path with a
  // custom multi-node global-clock machine.
  Topology multi;
  MetahostSpec spec;
  spec.name = "GC";
  spec.num_nodes = 4;
  spec.cpus_per_node = 1;
  spec.has_global_clock = true;
  multi.add_metahost(spec);
  multi.place_block(MetahostId{0}, 4, 1);
  Rng rng2(7);
  const ClockSet cs2 = ClockSet::randomized(multi, chars, rng2);
  for (int n = 1; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(cs2.node_clock(NodeId{0}).offset(),
                     cs2.node_clock(NodeId{n}).offset());
    EXPECT_DOUBLE_EQ(cs2.node_clock(NodeId{0}).drift(),
                     cs2.node_clock(NodeId{n}).drift());
  }
  (void)cs;
}

TEST(ClockSet, DeterministicForSameSeed) {
  const Topology topo = make_viola_experiment1();
  ClockCharacteristics chars;
  Rng a(5);
  Rng b(5);
  const ClockSet ca = ClockSet::randomized(topo, chars, a);
  const ClockSet cb = ClockSet::randomized(topo, chars, b);
  for (int n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(ca.node_clock(NodeId{n}).offset(),
                     cb.node_clock(NodeId{n}).offset());
  }
}

TEST(ClockSet, BadNodeThrows) {
  const Topology topo = make_ibm_power(4);
  const ClockSet cs = ClockSet::perfect(topo);
  EXPECT_THROW((void)cs.node_clock(NodeId{99}), Error);
}

}  // namespace
}  // namespace metascope::simnet
