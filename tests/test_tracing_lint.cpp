// Failure-injection tests for the trace linter and the dumper: every
// category of corruption must be caught with a precise message.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "tracing/lint.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope::tracing {
namespace {

TraceCollection healthy() {
  const auto topo = simnet::make_viola_experiment1();
  workloads::MetaTraceConfig mt;
  mt.coupling_steps = 2;
  mt.cg_iterations = 5;
  const auto prog = workloads::build_metatrace(mt);
  workloads::ExperimentConfig cfg;
  auto data = workloads::run_experiment(topo, prog, cfg);
  return std::move(data.traces);
}

bool mentions(const LintReport& rep, const std::string& needle) {
  for (const auto& p : rep.problems)
    if (p.find(needle) != std::string::npos) return true;
  return false;
}

TEST(Lint, HealthyCollectionPasses) {
  const auto tc = healthy();
  const auto rep = lint_collection(tc);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(rep.summary(), "trace collection is well-formed");
}

TEST(Lint, DetectsBackwardsTimestamps) {
  auto tc = healthy();
  tc.ranks[3].events[10].time = tc.ranks[3].events[9].time - 1.0;
  const auto rep = lint_collection(tc);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(mentions(rep, "timestamp goes backwards"));
}

TEST(Lint, DetectsUnbalancedNesting) {
  auto tc = healthy();
  // Drop the final Exit of rank 0.
  tc.ranks[0].events.pop_back();
  const auto rep = lint_collection(tc);
  EXPECT_TRUE(mentions(rep, "unclosed region"));
}

TEST(Lint, DetectsOrphanExit) {
  auto tc = healthy();
  Event e;
  e.type = EventType::Exit;
  e.time = -1e9;
  tc.ranks[0].events.insert(tc.ranks[0].events.begin(), e);
  const auto rep = lint_collection(tc);
  EXPECT_TRUE(mentions(rep, "Exit without Enter"));
}

TEST(Lint, DetectsUnknownRegion) {
  auto tc = healthy();
  for (auto& e : tc.ranks[1].events) {
    if (e.type == EventType::Enter) {
      e.region = RegionId{9999};
      break;
    }
  }
  const auto rep = lint_collection(tc);
  EXPECT_TRUE(mentions(rep, "unknown region"));
}

TEST(Lint, DetectsLostMessage) {
  auto tc = healthy();
  for (std::size_t i = 0; i < tc.ranks[16].events.size(); ++i) {
    if (tc.ranks[16].events[i].type == EventType::Recv) {
      tc.ranks[16].events.erase(tc.ranks[16].events.begin() +
                                static_cast<long>(i));
      break;
    }
  }
  const auto rep = lint_collection(tc);
  EXPECT_TRUE(mentions(rep, "unreceived send"));
}

TEST(Lint, DetectsPeerOutOfRange) {
  auto tc = healthy();
  for (auto& e : tc.ranks[0].events) {
    if (e.type == EventType::Send) {
      e.peer = 999;
      break;
    }
  }
  const auto rep = lint_collection(tc);
  EXPECT_TRUE(mentions(rep, "peer out of range"));
}

TEST(Lint, DetectsIncompleteCollective) {
  auto tc = healthy();
  for (std::size_t i = 0; i < tc.ranks[5].events.size(); ++i) {
    if (tc.ranks[5].events[i].type == EventType::CollExit) {
      // Replace by a plain exit: the instance loses one participant.
      tc.ranks[5].events[i].type = EventType::Exit;
      break;
    }
  }
  const auto rep = lint_collection(tc);
  EXPECT_TRUE(mentions(rep, "participants"));
}

TEST(Lint, DetectsRankPositionMismatch) {
  auto tc = healthy();
  tc.ranks[2].rank = 7;
  const auto rep = lint_collection(tc);
  EXPECT_TRUE(mentions(rep, "stored at position"));
}

TEST(Lint, CollectsMultipleProblemsAtOnce) {
  auto tc = healthy();
  tc.ranks[0].events.pop_back();
  tc.ranks[3].events[10].time = tc.ranks[3].events[9].time - 1.0;
  const auto rep = lint_collection(tc);
  EXPECT_GE(rep.problems.size(), 2u);
}

TEST(Dump, ShowsEventsWithNesting) {
  const auto tc = healthy();
  const std::string out = dump_trace(tc, 0, 50);
  EXPECT_NE(out.find("ENTER main"), std::string::npos);
  EXPECT_NE(out.find("SEND ->"), std::string::npos);
  EXPECT_NE(out.find("# rank 0 on FH-BRS"), std::string::npos);
  EXPECT_NE(out.find("more)"), std::string::npos);
  EXPECT_THROW(dump_trace(tc, 99), Error);
}

TEST(Dump, ShowsSyncRecords) {
  const auto tc = healthy();
  const std::string out = dump_trace(tc, 5, 1);
  EXPECT_NE(out.find("# sync phase 0"), std::string::npos);
  EXPECT_NE(out.find("# sync phase 1"), std::string::npos);
}

}  // namespace
}  // namespace metascope::tracing
