// Differential harness for the out-of-core streaming replay.
//
// The streaming analyzer's contract is bit-identity: for ANY memory
// budget and worker count, analyze_streaming over a v3 archive must
// produce exactly the severity cube the materializing analyzers
// produce from the same events. This harness drives seeded random
// workloads (the generator family behind test_pattern_engine /
// test_property_sweeps) through every analyzer configuration —
//
//   serial, parallel at workers {1, 2, 8}, streaming at three memory
//   budgets including a pathologically tiny one (1 byte) that forces
//   single-event windows —
//
// and asserts every cube cell is bit-identical (==, not near). The
// golden fixture tests/golden/seed_severities.txt (exact %a hexfloats
// frozen from the pre-engine binaries) is additionally re-verified in
// streaming mode, extending the fixture's guarantee to the windowed
// decode path.
//
// The workload constructions (cross_topo/local_topo/random_program/
// make_traces) must stay in sync with the fixture generator in
// test_pattern_engine.cpp; regenerate the fixture if they change.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "archive/archive.hpp"
#include "clocksync/correction.hpp"
#include "common/rng.hpp"
#include "simmpi/program.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"
#include "workloads/microworkloads.hpp"

namespace metascope::analysis {
namespace {

namespace fs = std::filesystem;

// Budgets the streaming analyzer runs at: pathologically tiny (window
// sizing floors at one event per rank), a few windows per rank for the
// workloads below, and effectively unbounded.
constexpr std::size_t kBudgets[] = {1, 16 * 1024, std::size_t{1} << 30};

// --- workload constructions (in sync with the fixture generator) ---------

simnet::Topology cross_topo() {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = 1;
  a.cpus_per_node = 1;
  a.internal = simnet::LinkSpec{10e-6, 0.0, 1e9};
  simnet::MetahostSpec b = a;
  b.name = "B";
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  topo.set_external_link(ia, ib, simnet::LinkSpec{1000e-6, 0.0, 1e9});
  topo.place_block(ia, 1, 1);
  topo.place_block(ib, 1, 1);
  return topo;
}

simnet::Topology local_topo(int n) {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = n;
  a.cpus_per_node = 1;
  a.internal = simnet::LinkSpec{10e-6, 0.0, 1e9};
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, n, 1);
  return topo;
}

simmpi::Program random_program(int nranks, std::uint64_t seed, int steps) {
  Rng rng(seed);
  simmpi::ProgramBuilder b(nranks);
  for (Rank r = 0; r < nranks; ++r) b.on(r).enter("main");
  for (int s = 0; s < steps; ++s) {
    const int kind = static_cast<int>(rng.uniform_index(5));
    switch (kind) {
      case 0: {
        const Rank a = static_cast<Rank>(rng.uniform_index(nranks));
        Rank c = static_cast<Rank>(rng.uniform_index(nranks - 1));
        if (c >= a) ++c;
        const double bytes = rng.uniform(16.0, 200000.0);
        b.on(a).enter("chat").send(c, s, bytes).exit();
        b.on(c).enter("chat").recv(a, s).exit();
        break;
      }
      case 1: {
        for (Rank r = 0; r < nranks; ++r)
          b.on(r).compute(rng.uniform(0.0, 0.01)).barrier();
        break;
      }
      case 2: {
        for (Rank r = 0; r < nranks; ++r)
          b.on(r).compute(rng.uniform(0.0, 0.005)).allreduce(256.0);
        break;
      }
      case 3: {
        const Rank root = static_cast<Rank>(rng.uniform_index(nranks));
        for (Rank r = 0; r < nranks; ++r) {
          b.on(r).compute(rng.uniform(0.0, 0.005));
          b.on(r).bcast(root, 4096.0);
          b.on(r).reduce(root, 512.0);
        }
        break;
      }
      default: {
        std::vector<int> reqs(static_cast<std::size_t>(nranks));
        for (Rank r = 0; r < nranks; ++r) {
          auto& c = b.on(r);
          c.enter("shift");
          reqs[static_cast<std::size_t>(r)] =
              c.irecv((r + nranks - 1) % nranks, 7777 + s);
          c.send((r + 1) % nranks, 7777 + s, 1024.0);
          c.wait(reqs[static_cast<std::size_t>(r)]);
          c.exit();
        }
        break;
      }
    }
  }
  for (Rank r = 0; r < nranks; ++r) b.on(r).exit();
  return b.take();
}

tracing::TraceCollection make_traces(const simnet::Topology& topo,
                                     const simmpi::Program& prog,
                                     bool skewed) {
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = !skewed;
  cfg.measurement.scheme = skewed ? tracing::SyncScheme::HierarchicalTwo
                                  : tracing::SyncScheme::None;
  auto data = workloads::run_experiment(topo, prog, cfg);
  if (skewed) clocksync::synchronize(data.traces);
  return std::move(data.traces);
}

// --- cube row extraction (bit-exact) -------------------------------------

/// (metric name | call path | rank) -> exact severity.
using RowMap = std::map<std::string, double>;

RowMap cube_rows(const report::Cube& cube) {
  RowMap rows;
  for (MetricId m : cube.metrics.preorder()) {
    const std::string& metric = cube.metrics.def(m).name;
    for (CallPathId c : cube.calls.preorder()) {
      const std::string path = cube.calls.path_string(c, cube.regions);
      for (Rank r = 0; r < cube.num_ranks(); ++r) {
        const double v = cube.get(m, c, r);
        if (v == 0.0) continue;
        rows[metric + " | " + path + " | " + std::to_string(r)] = v;
      }
    }
  }
  return rows;
}

void expect_rows_identical(const RowMap& expected, const RowMap& got,
                           const std::string& label) {
  for (const auto& [key, v] : expected) {
    const auto it = got.find(key);
    if (it == got.end()) {
      ADD_FAILURE() << label << ": missing row " << key;
      continue;
    }
    EXPECT_EQ(it->second, v) << label << ": " << key;
  }
  for (const auto& [key, v] : got)
    EXPECT_TRUE(expected.count(key)) << label << ": unexpected row " << key
                                     << " = " << v;
}

std::vector<std::string> legacy_patterns() {
  return {"late_sender",    "late_receiver", "early_reduce",
          "late_broadcast", "wait_nxn",      "wait_barrier"};
}

// --- archive plumbing ----------------------------------------------------

/// Writes the collection into a fresh v3 archive under the given temp
/// root and hands back a streamable source.
class ArchivedWorkload {
 public:
  ArchivedWorkload(const std::string& base, const simnet::Topology& topo,
                   const tracing::TraceCollection& tc) {
    fs::remove_all(base);
    fs::create_directories(base);
    base_ = base;
    const auto layout =
        archive::FileSystemLayout::shared(base, topo.num_metahosts());
    arch_ = archive::ExperimentArchive::create(topo, layout, "exp");
    arch_.write_traces(topo, tc);
  }
  ~ArchivedWorkload() {
    std::error_code ec;
    fs::remove_all(base_, ec);
  }

  [[nodiscard]] tracing::StreamSource source() const {
    return arch_.stream_source(archive::ReadOptions{});
  }

 private:
  std::string base_;
  archive::ExperimentArchive arch_{};
};

std::string temp_base(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("msc_stream_diff_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           "_" + tag))
      .string();
}

// --- seeded random differential ------------------------------------------

struct RandomCase {
  const char* name;
  int topo_kind;  // 0 = local(n), 1 = cross, 2 = viola
  int nranks;     // local only
  std::uint64_t seed;
  int steps;
  bool skewed;
};

class StreamDifferential : public ::testing::TestWithParam<RandomCase> {};

TEST_P(StreamDifferential, CubeBitIdenticalAcrossAllAnalyzerConfigs) {
  const RandomCase& c = GetParam();
  simnet::Topology topo;
  switch (c.topo_kind) {
    case 0: topo = local_topo(c.nranks); break;
    case 1: topo = cross_topo(); break;
    default: topo = simnet::make_viola_experiment1(); break;
  }
  const auto tc = make_traces(
      topo, random_program(topo.num_ranks(), c.seed, c.steps), c.skewed);

  const auto serial = analyze_serial(tc);
  const RowMap want = cube_rows(serial.cube);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    ReplayOptions opts;
    opts.max_workers = workers;
    const auto res = analyze_parallel(tc, opts);
    expect_rows_identical(want, cube_rows(res.cube),
                          std::string(c.name) + " parallel w=" +
                              std::to_string(workers));
  }

  const ArchivedWorkload ar(temp_base(c.name), topo, tc);
  const auto src = ar.source();
  for (const std::size_t budget : kBudgets) {
    ReplayOptions opts;
    opts.memory_budget_bytes = budget;
    const auto res = analyze_streaming(src, opts);
    expect_rows_identical(want, cube_rows(res.cube),
                          std::string(c.name) + " streaming budget=" +
                              std::to_string(budget));
    EXPECT_EQ(res.stats.events, serial.stats.events)
        << c.name << " budget=" << budget;
    EXPECT_EQ(res.stats.messages, serial.stats.messages)
        << c.name << " budget=" << budget;
    EXPECT_EQ(res.stats.collective_instances,
              serial.stats.collective_instances)
        << c.name << " budget=" << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StreamDifferential,
    ::testing::Values(RandomCase{"local3-s11", 0, 3, 11, 10, false},
                      RandomCase{"local5-s23", 0, 5, 23, 8, false},
                      RandomCase{"cross-s42", 1, 2, 42, 14, false},
                      RandomCase{"viola-s7-skewed", 2, 0, 7, 6, true}),
    [](const ::testing::TestParamInfo<RandomCase>& info) {
      std::string n = info.param.name;
      for (auto& ch : n)
        if (ch == '-') ch = '_';
      return n;
    });

// --- golden fixture re-verified in streaming mode ------------------------

std::map<std::string, RowMap> load_golden() {
  std::map<std::string, RowMap> out;
  std::ifstream in(MSC_GOLDEN_FILE);
  EXPECT_TRUE(in.good()) << "missing fixture " << MSC_GOLDEN_FILE;
  std::string line;
  std::string current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("workload ", 0) == 0) {
      current = line.substr(9);
      out[current];
      continue;
    }
    const std::size_t last_sep = line.rfind(" | ");
    if (last_sep == std::string::npos) {
      ADD_FAILURE() << "malformed fixture row: " << line;
      continue;
    }
    const std::string key_prefix = line.substr(0, last_sep);
    std::istringstream tail(line.substr(last_sep + 3));
    int rank = -1;
    std::string hex;
    tail >> rank >> hex;
    const double v = std::strtod(hex.c_str(), nullptr);
    out[current][key_prefix + " | " + std::to_string(rank)] = v;
  }
  EXPECT_EQ(out.size(), 10u);
  return out;
}

const std::map<std::string, RowMap>& golden() {
  static const std::map<std::string, RowMap> g = load_golden();
  return g;
}

struct SeedWorkload {
  simnet::Topology topo;
  tracing::TraceCollection traces;
};

SeedWorkload seed_workload(const std::string& name) {
  SeedWorkload w;
  if (name == "late-sender-cross") {
    w.topo = cross_topo();
    w.traces =
        make_traces(w.topo, workloads::late_sender_program(0.25), false);
  } else if (name == "late-sender-local") {
    w.topo = local_topo(2);
    w.traces =
        make_traces(w.topo, workloads::late_sender_program(0.25), false);
  } else if (name == "late-receiver-cross") {
    w.topo = cross_topo();
    w.traces = make_traces(
        w.topo, workloads::late_receiver_program(0.3, 1 << 20), false);
  } else if (name == "wait-nxn-local") {
    w.topo = local_topo(4);
    w.traces = make_traces(
        w.topo, workloads::wait_nxn_program({0.0, 0.1, 0.2, 0.4}), false);
  } else if (name == "wait-nxn-cross") {
    w.topo = cross_topo();
    w.traces =
        make_traces(w.topo, workloads::wait_nxn_program({0.0, 0.5}), false);
  } else if (name == "wait-barrier-local") {
    w.topo = local_topo(4);
    w.traces = make_traces(
        w.topo, workloads::wait_barrier_program({0.3, 0.0, 0.1, 0.2}),
        false);
  } else if (name == "early-reduce-local") {
    w.topo = local_topo(4);
    w.traces = make_traces(
        w.topo, workloads::early_reduce_program({0.0, 0.2, 0.5, 0.1}),
        false);
  } else if (name == "late-broadcast-local") {
    w.topo = local_topo(4);
    w.traces = make_traces(
        w.topo, workloads::late_broadcast_program(4, 0.35), false);
  } else if (name == "random-viola") {
    w.topo = simnet::make_viola_experiment1();
    w.traces = make_traces(
        w.topo, random_program(w.topo.num_ranks(), 1, 12), true);
  } else if (name == "metatrace-viola") {
    w.topo = simnet::make_viola_experiment1();
    w.traces = make_traces(w.topo, workloads::build_metatrace(), true);
  } else {
    ADD_FAILURE() << "unknown seed workload " << name;
  }
  return w;
}

class GoldenStreaming : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenStreaming, LegacySelectionBitIdenticalUnderStreaming) {
  const std::string name = GetParam();
  const SeedWorkload w = seed_workload(name);
  const ArchivedWorkload ar(temp_base("golden_" + name), w.topo, w.traces);
  const auto src = ar.source();
  // A small budget (a few events per rank per window) and the tiny
  // floor both reproduce the frozen fixture exactly.
  for (const std::size_t budget : {std::size_t{1}, std::size_t{4096}}) {
    ReplayOptions opts;
    opts.patterns = legacy_patterns();
    opts.memory_budget_bytes = budget;
    const auto res = analyze_streaming(src, opts);
    expect_rows_identical(golden().at(name), cube_rows(res.cube),
                          name + " streaming budget=" +
                              std::to_string(budget));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GoldenStreaming,
    ::testing::Values("late-sender-cross", "late-sender-local",
                      "late-receiver-cross", "wait-nxn-local",
                      "wait-nxn-cross", "wait-barrier-local",
                      "early-reduce-local", "late-broadcast-local",
                      "random-viola", "metatrace-viola"));

}  // namespace
}  // namespace metascope::analysis
