#include "report/profile.hpp"

#include <gtest/gtest.h>

#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"
#include "workloads/microworkloads.hpp"

namespace metascope::report {
namespace {

tracing::TraceCollection metatrace_traces() {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  auto data = workloads::run_experiment(topo, prog, cfg);
  return std::move(data.traces);
}

TEST(Profile, VisitCountsMatchWorkloadStructure) {
  const auto tc = metatrace_traces();
  const auto prof = profile_traces(tc);
  const workloads::MetaTraceConfig mt;  // defaults used above
  const auto find = [&](const std::string& name) -> const RegionProfile& {
    return prof.regions[static_cast<std::size_t>(
        tc.defs.regions.find(name).get())];
  };
  // cgiteration: once per step per trace rank.
  EXPECT_EQ(find("cgiteration").visits,
            static_cast<std::uint64_t>(mt.coupling_steps * mt.trace_ranks));
  // finelassdt: once per CG iteration per step per trace rank.
  EXPECT_EQ(find("finelassdt").visits,
            static_cast<std::uint64_t>(mt.coupling_steps *
                                       mt.cg_iterations * mt.trace_ranks));
  // ReadVelFieldFromTrace: once per step per partrace rank.
  EXPECT_EQ(
      find("ReadVelFieldFromTrace").visits,
      static_cast<std::uint64_t>(mt.coupling_steps * mt.partrace_ranks));
  // main: once per rank.
  EXPECT_EQ(find("main").visits,
            static_cast<std::uint64_t>(mt.trace_ranks + mt.partrace_ranks));
}

TEST(Profile, InclusiveNestingInvariant) {
  const auto tc = metatrace_traces();
  const auto prof = profile_traces(tc);
  for (const auto& rp : prof.regions) {
    EXPECT_GE(rp.inclusive, rp.exclusive - 1e-9)
        << tc.defs.regions.name(rp.region);
    EXPECT_GE(rp.exclusive, -1e-9);
  }
  // 'main' wraps everything: its inclusive time is the total time.
  const auto& main_rp = prof.regions[static_cast<std::size_t>(
      tc.defs.regions.find("main").get())];
  EXPECT_NEAR(main_rp.inclusive, prof.total_time, 1e-6);
}

TEST(Profile, ExclusiveSumsToTotal) {
  const auto tc = metatrace_traces();
  const auto prof = profile_traces(tc);
  double sum = 0.0;
  for (const auto& rp : prof.regions) sum += rp.exclusive;
  EXPECT_NEAR(sum, prof.total_time, 1e-6);
}

TEST(Profile, MessageScopesSplitCorrectly) {
  const auto tc = metatrace_traces();
  const auto prof = profile_traces(tc);
  // The field transfer crosses FH-BRS/CAESAR -> FZJ: inter-metahost
  // traffic must dominate byte-wise (200 MB per coupling step).
  EXPECT_GT(prof.scope(MessageScope::InterMetahost).bytes,
            prof.scope(MessageScope::IntraMetahost).bytes);
  // Halo exchange between same-node ranks exists on FH-BRS (4/node).
  EXPECT_GT(prof.scope(MessageScope::IntraNode).count, 0u);
  // Gaps are positive in a synchronized/perfect-clock trace.
  for (int s = 0; s < 3; ++s)
    EXPECT_GT(prof.messages[s].transfer_gap.min(), 0.0);
}

TEST(Profile, MetahostMatrixMatchesFieldTransfers) {
  const auto tc = metatrace_traces();
  const auto prof = profile_traces(tc);
  // Metahost ids: 0 CAESAR, 1 FH-BRS, 2 FZJ. Field: Trace->Partrace =
  // 200 MB per step * steps, split evenly over trace ranks 0..15
  // (8 FH-BRS + 8 CAESAR).
  const workloads::MetaTraceConfig mt;
  const double field_total =
      mt.field_mb_total * 1e6 * mt.coupling_steps;
  const double to_fzj = prof.metahost_bytes[0][2] + prof.metahost_bytes[1][2];
  EXPECT_NEAR(to_fzj, field_total, 0.01 * field_total);
  // Partrace only sends tiny steering back.
  EXPECT_LT(prof.metahost_bytes[2][0] + prof.metahost_bytes[2][1],
            0.01 * field_total);
}

TEST(Profile, SizeHistogramBucketsByPowerOfTwo) {
  const auto tc = metatrace_traces();
  const auto prof = profile_traces(tc);
  // Halo is 32 KiB: bucket log2(32768) = 15.
  EXPECT_GT(prof.size_histogram[15], 0u);
  // Field chunks are 12.5 MB: log2 = 23.
  EXPECT_GT(prof.size_histogram[23], 0u);
  std::uint64_t total = 0;
  for (auto c : prof.size_histogram) total += c;
  EXPECT_EQ(total, prof.messages[0].count + prof.messages[1].count +
                       prof.messages[2].count);
}

TEST(Profile, RenderListsHotRegions) {
  const auto tc = metatrace_traces();
  const auto prof = profile_traces(tc);
  const std::string out = render_profile(prof, tc.defs);
  EXPECT_NE(out.find("finelassdt"), std::string::npos);
  EXPECT_NE(out.find("inter-metahost"), std::string::npos);
  EXPECT_NE(out.find("FZJ"), std::string::npos);
  EXPECT_NE(out.find("communication matrix"), std::string::npos);
}

TEST(Profile, TinyTrace) {
  const auto topo = simnet::make_ibm_power(2);
  const auto prog = workloads::late_sender_program(0.1);
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  auto data = workloads::run_experiment(topo, prog, cfg);
  const auto prof = profile_traces(data.traces);
  EXPECT_EQ(prof.scope(MessageScope::IntraNode).count, 1u);
  EXPECT_EQ(prof.scope(MessageScope::InterMetahost).count, 0u);
}

}  // namespace
}  // namespace metascope::report
