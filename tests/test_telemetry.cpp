// Telemetry registry + span tree: counter/gauge/histogram semantics,
// stable handles, deterministic JSON snapshots that round-trip through
// common/json, exact totals under multi-threaded increments, nesting of
// RAII spans, the runtime disable switch, and the end-to-end pipeline
// contract — the registry counters must agree with AnalysisStats and a
// full run must leave spans for all six pipeline stages.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "clocksync/correction.hpp"
#include "report/render.hpp"
#include "simnet/presets.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/span.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/experiment.hpp"

namespace metascope::telemetry {
namespace {

// Each test starts from a zeroed registry; names are process-global.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
};

TEST_F(TelemetryTest, CounterAddsAndResets) {
  Counter& c = counter("t.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, HandlesAreStablePerName) {
  EXPECT_EQ(&counter("t.same"), &counter("t.same"));
  EXPECT_NE(&counter("t.same"), &counter("t.other"));
  EXPECT_EQ(&gauge("t.g"), &gauge("t.g"));
  EXPECT_EQ(&histogram("t.h", {1.0, 2.0}), &histogram("t.h", {1.0, 2.0}));
}

TEST_F(TelemetryTest, GaugeSetAndRunningMax) {
  Gauge& g = gauge("t.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.max(3.0);
  g.max(2.0);  // lower: must not regress
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST_F(TelemetryTest, HistogramBucketsCountSumMax) {
  Histogram& h = histogram("t.hist", {1.0, 10.0, 100.0});
  for (double v : {0.5, 1.0, 5.0, 50.0, 500.0}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  // upper_bound semantics: a value equal to a bound goes in that bucket.
  EXPECT_EQ(s.counts[0], 2u);  // 0.5, 1.0 <= 1.0
  EXPECT_EQ(s.counts[1], 1u);  // 5.0
  EXPECT_EQ(s.counts[2], 1u);  // 50.0
  EXPECT_EQ(s.counts[3], 1u);  // 500.0 overflow
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 556.5);
  EXPECT_DOUBLE_EQ(s.max, 500.0);
}

TEST_F(TelemetryTest, DisabledRecordsNothing) {
  Counter& c = counter("t.disabled");
  Histogram& h = histogram("t.disabled_h", {1.0});
  set_enabled(false);
  c.add(7);
  gauge("t.disabled_g").set(9.0);
  h.observe(0.5);
  {
    ScopedSpan span("t.disabled_span");
  }
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge("t.disabled_g").value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_FALSE(span_tree_json().has("t.disabled_span"));
}

TEST_F(TelemetryTest, ConcurrentIncrementsAreExact) {
  Counter& c = counter("t.mt");
  Histogram& h = histogram("t.mt_h", {4.0});
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add();
        h.observe(static_cast<double>(t));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kIters);
  // Threads 0..4 observe <= 4.0, threads 5..7 overflow.
  EXPECT_EQ(s.counts[0], 5u * kIters);
  EXPECT_EQ(s.counts[1], 3u * kIters);
}

TEST_F(TelemetryTest, DoubleCounterAccumulatesAcrossThreads) {
  DoubleCounter& d = dcounter("t.dc");
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) d.add(0.25);
    });
  }
  for (auto& th : pool) th.join();
  // 0.25 is exactly representable: the sharded sum is exact.
  EXPECT_DOUBLE_EQ(d.value(), 0.25 * kThreads * kIters);
  d.reset();
  EXPECT_EQ(d.value(), 0.0);
}

TEST_F(TelemetryTest, SpansNestAndAggregate) {
  {
    ScopedSpan outer("t.outer");
    {
      ScopedSpan inner("t.inner");
    }
    {
      ScopedSpan inner("t.inner");
    }
  }
  {
    ScopedSpan other("t.inner");  // same name, but top-level this time
  }
  const Json tree = span_tree_json();
  ASSERT_TRUE(tree.has("t.outer"));
  const Json& outer = tree.at("t.outer");
  EXPECT_EQ(outer.at("count").as_int(), 1);
  ASSERT_TRUE(outer.has("children"));
  EXPECT_EQ(outer.at("children").at("t.inner").at("count").as_int(), 2);
  // The top-level t.inner is a distinct node from the nested one.
  EXPECT_EQ(tree.at("t.inner").at("count").as_int(), 1);
  EXPECT_GE(outer.at("total_s").as_number(),
            outer.at("children").at("t.inner").at("total_s").as_number());
}

TEST_F(TelemetryTest, SnapshotRoundTripsThroughJson) {
  counter("t.rt").add(3);
  dcounter("t.rt_d").add(1.25);
  gauge("t.rt_g").set(1.5);
  histogram("t.rt_h", {1.0, 2.0}).observe(1.5);
  {
    ScopedSpan span("t.rt_span");
  }
  const Json snap = snapshot_json();
  EXPECT_TRUE(snap.has("counters"));
  EXPECT_TRUE(snap.has("dcounters"));
  EXPECT_TRUE(snap.has("gauges"));
  EXPECT_TRUE(snap.has("histograms"));
  EXPECT_TRUE(snap.has("spans"));
  // Deterministic: same state serializes identically, and the document
  // survives a parse/dump cycle byte for byte.
  EXPECT_EQ(snap.dump(2), snapshot_json().dump(2));
  EXPECT_EQ(Json::parse(snap.dump(2)), snap);
  EXPECT_EQ(Json::parse(snap.dump(2)).dump(2), snap.dump(2));
  EXPECT_EQ(snap.at("counters").at("t.rt").as_int(), 3);
}

// --- end-to-end: registry vs AnalysisStats, six pipeline stages --------

TEST_F(TelemetryTest, PipelineCountersMatchAnalysisStatsAndAllStagesSpan) {
  const auto topo = simnet::make_viola_experiment1();
  workloads::ClockBenchConfig bc;
  bc.rounds = 30;
  const auto prog = workloads::build_clock_bench(topo.num_ranks(), bc);
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = tracing::SyncScheme::HierarchicalTwo;

  auto data = workloads::run_experiment(topo, prog, cfg);  // simulate+trace
  clocksync::synchronize(data.traces);                     // sync
  const auto res = analysis::analyze_parallel(data.traces);  // prepare+replay
  const std::string rendered = report::render_report(res.cube);  // report
  EXPECT_FALSE(rendered.empty());

  // The per-run stats are deltas of these counters; with a freshly reset
  // registry the absolute values must agree exactly.
  EXPECT_EQ(counter("analysis.messages").value(), res.stats.messages);
  EXPECT_EQ(counter("analysis.events").value(), res.stats.events);
  EXPECT_EQ(counter("replay.bytes").value(), res.stats.replay_bytes);
  EXPECT_EQ(counter("replay.suspensions").value(),
            res.stats.replay_suspensions);
  EXPECT_EQ(counter("replay.steals").value(), res.stats.replay_steals);
  EXPECT_EQ(counter("replay.requeues").value(), res.stats.replay_requeues);

  const Json spans = snapshot_json().at("spans");
  for (const char* stage :
       {"simulate", "trace", "sync", "prepare", "replay", "report"}) {
    ASSERT_TRUE(spans.has(stage)) << "missing pipeline stage span: " << stage;
    EXPECT_GE(spans.at(stage).at("count").as_int(), 1) << stage;
  }
}

}  // namespace
}  // namespace metascope::telemetry
