#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace metascope {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, NumericallyStableAtLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 ? 1.0 : -1.0));
  // Exact sample variance is n/(n-1); naive accumulation at offset 1e9
  // would lose all precision instead.
  EXPECT_NEAR(s.variance(), 1000.0 / 999.0, 1e-9);
}

TEST(BatchStats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Quantile, Endpoints) {
  std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_EQ(quantile_of(xs, 0.0), 1.0);
  EXPECT_EQ(quantile_of(xs, 1.0), 5.0);
  EXPECT_EQ(quantile_of(xs, 0.5), 3.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_NEAR(quantile_of(xs, 0.25), 2.5, 1e-12);
}

TEST(Quantile, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(quantile_of({}, 0.5), Error);
  EXPECT_THROW(quantile_of({1.0}, 1.5), Error);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 8; ++i) h.add(0.5);
  h.add(1.5);
  const std::string r = h.render(8);
  EXPECT_NE(r.find("########"), std::string::npos);
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.rms, 0.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineRecoversSlope) {
  Rng rng(3);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(5.0 - 0.25 * static_cast<double>(i) + rng.normal(0.0, 0.5));
  }
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, -0.25, 1e-3);
  EXPECT_NEAR(f.intercept, 5.0, 0.1);
  EXPECT_NEAR(f.rms, 0.5, 0.05);
}

TEST(LinearFitTest, RejectsDegenerateInput) {
  EXPECT_THROW(fit_line({1.0}, {1.0}), Error);
  EXPECT_THROW(fit_line({1.0, 2.0}, {1.0}), Error);
}

}  // namespace
}  // namespace metascope
