// Replay-core + scheduler properties: the pooled parallel analyzer must
// produce a cube *bit-identical* to the serial analyzer for any worker
// count and any interleaving (the canonical-order accumulation makes
// floating-point sums order-independent across runs); malformed traces
// fail fast instead of hanging a worker forever.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.hpp"
#include "analysis/replay_scheduler.hpp"
#include "clocksync/correction.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"

namespace metascope::analysis {
namespace {

using tracing::EventType;

/// Mixed p2p + collective program with per-rank jitter: ring shifts,
/// random pair chatter, staggered barriers/allreduces, rooted
/// collectives.
simmpi::Program jittered_program(int nranks, std::uint64_t seed,
                                 int steps) {
  Rng rng(seed);
  simmpi::ProgramBuilder b(nranks);
  for (Rank r = 0; r < nranks; ++r) b.on(r).enter("main");
  for (int s = 0; s < steps; ++s) {
    switch (rng.uniform_index(4)) {
      case 0: {  // ring shift
        for (Rank r = 0; r < nranks; ++r) {
          b.on(r).enter("ring").send((r + 1) % nranks, s, 2048.0);
          b.on(r).recv((r + nranks - 1) % nranks, s).exit();
        }
        break;
      }
      case 1: {  // staggered barrier
        for (Rank r = 0; r < nranks; ++r)
          b.on(r).compute(rng.uniform(0.0, 0.01)).barrier();
        break;
      }
      case 2: {  // allreduce
        for (Rank r = 0; r < nranks; ++r)
          b.on(r).compute(rng.uniform(0.0, 0.005)).allreduce(512.0);
        break;
      }
      default: {  // rooted pair
        const Rank root = static_cast<Rank>(rng.uniform_index(nranks));
        for (Rank r = 0; r < nranks; ++r) {
          b.on(r).compute(rng.uniform(0.0, 0.004));
          b.on(r).bcast(root, 4096.0);
          b.on(r).reduce(root, 256.0);
        }
        break;
      }
    }
  }
  for (Rank r = 0; r < nranks; ++r) b.on(r).exit();
  return b.take();
}

tracing::TraceCollection jittered_traces(const simnet::Topology& topo,
                                         std::uint64_t seed, int steps) {
  const auto prog = jittered_program(topo.num_ranks(), seed, steps);
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = tracing::SyncScheme::HierarchicalTwo;
  auto data = workloads::run_experiment(topo, prog, cfg);
  clocksync::synchronize(data.traces);
  return std::move(data.traces);
}

tracing::TraceCollection perfect_traces(const simnet::Topology& topo,
                                        const simmpi::Program& prog) {
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  return std::move(workloads::run_experiment(topo, prog, cfg).traces);
}

// --- bit-identical across worker counts --------------------------------------

class WorkerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkerSweep, PooledCubeBitIdenticalToSerial) {
  const auto topo = simnet::make_viola_experiment1();
  const auto tc = jittered_traces(topo, 7ULL, 10);
  const auto s = analyze_serial(tc);
  ReplayOptions opts;
  opts.max_workers = GetParam();
  const auto p = analyze_parallel(tc, opts);
  // Tolerance 0: *exactly* equal, not approximately.
  EXPECT_TRUE(s.cube.approx_equal(p.cube, 0.0));
  EXPECT_EQ(s.stats.messages, p.stats.messages);
  EXPECT_EQ(s.stats.collective_instances, p.stats.collective_instances);
  EXPECT_LE(p.stats.replay_workers, std::max<std::size_t>(GetParam(), 1));
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{3}, std::size_t{8}));

// --- determinism stress (satellite) ------------------------------------------

TEST(ReplayDeterminism, TwentyRunsBitIdenticalUnderTwoWorkerCap) {
  const auto topo = simnet::make_viola_experiment1();
  const auto tc = jittered_traces(topo, 99ULL, 12);
  const auto s = analyze_serial(tc);
  ReplayOptions opts;
  opts.max_workers = 2;
  for (int run = 0; run < 20; ++run) {
    const auto p = analyze_parallel(tc, opts);
    ASSERT_TRUE(s.cube.approx_equal(p.cube, 0.0)) << "run " << run;
    ASSERT_EQ(s.stats.messages, p.stats.messages) << "run " << run;
    ASSERT_EQ(s.stats.collective_instances, p.stats.collective_instances)
        << "run " << run;
  }
}

// --- many ranks, few workers --------------------------------------------------

TEST(ReplayScaling, ManyRanksOnFourWorkers) {
  const int n = 256;
  const auto topo = simnet::make_ibm_power(n);
  const auto tc = perfect_traces(topo, jittered_program(n, 21ULL, 4));
  const auto s = analyze_serial(tc);
  ReplayOptions opts;
  opts.max_workers = 4;
  const auto p = analyze_parallel(tc, opts);
  EXPECT_TRUE(s.cube.approx_equal(p.cube, 0.0));
  EXPECT_EQ(p.stats.replay_workers, 4u);
  EXPECT_EQ(p.stats.replay_tasks, static_cast<std::size_t>(n));
  // With 256 ranks multiplexed onto 4 workers, replay cannot proceed
  // without suspending at unsatisfied receives / incomplete collectives.
  EXPECT_GT(p.stats.replay_suspensions, 0u);
}

// --- malformed traces fail fast (satellite) ----------------------------------

TEST(ReplayFailFast, IncompleteCollectiveRaisesBeforeReplay) {
  const auto topo = simnet::make_ibm_power(4);
  simmpi::ProgramBuilder b(4);
  for (Rank r = 0; r < 4; ++r)
    b.on(r).enter("main").compute(0.001).barrier().exit();
  auto tc = perfect_traces(topo, b.take());

  // Drop rank 3's barrier (its Enter + CollExit pair): the instance can
  // never complete. Both analyzers must reject the trace immediately —
  // the old parallel analyzer waited forever on the instance's
  // condition variable.
  auto& events = tc.ranks[3].events;
  const auto it = std::find_if(
      events.begin(), events.end(),
      [](const auto& e) { return e.type == EventType::CollExit; });
  ASSERT_NE(it, events.end());
  ASSERT_NE(it, events.begin());
  ASSERT_EQ(std::prev(it)->type, EventType::Enter);
  events.erase(std::prev(it), std::next(it));

  EXPECT_THROW(analyze_serial(tc), Error);
  EXPECT_THROW(analyze_parallel(tc), Error);
}

TEST(ReplayFailFast, UnmatchedReceiveReportsDeadlockNotHang) {
  const auto topo = simnet::make_ibm_power(2);
  simmpi::ProgramBuilder b(2);
  b.on(0).enter("main").send(1, 5, 64.0).exit();
  b.on(1).enter("main").recv(0, 5).exit();
  auto tc = perfect_traces(topo, b.take());

  // Drop the Send event: rank 1's receive can never be satisfied. The
  // scheduler must detect the quiescent replay and raise instead of
  // leaving the task suspended forever.
  auto& events = tc.ranks[0].events;
  const auto it = std::find_if(
      events.begin(), events.end(),
      [](const auto& e) { return e.type == EventType::Send; });
  ASSERT_NE(it, events.end());
  events.erase(it);

  EXPECT_THROW(analyze_serial(tc), Error);
  EXPECT_THROW(analyze_parallel(tc), Error);
}

// --- scheduler stats ----------------------------------------------------------

TEST(SchedulerStats, CountersPopulated) {
  const auto topo = simnet::make_viola_experiment1();
  const auto tc = jittered_traces(topo, 3ULL, 8);
  ReplayOptions opts;
  opts.max_workers = 2;
  const auto p = analyze_parallel(tc, opts);
  EXPECT_EQ(p.stats.replay_workers, 2u);
  EXPECT_EQ(p.stats.replay_tasks,
            static_cast<std::size_t>(tc.num_ranks()));
  EXPECT_GT(p.stats.replay_suspensions, 0u);
  // Every suspension is eventually resumed exactly once.
  EXPECT_EQ(p.stats.replay_requeues, p.stats.replay_suspensions);
}

}  // namespace
}  // namespace metascope::analysis
