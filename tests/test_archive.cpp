#include "archive/archive.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "simmpi/program.hpp"
#include "tracing/epilog_io.hpp"
#include "simnet/presets.hpp"
#include "tracing/measurement.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope::archive {
namespace {

namespace fs = std::filesystem;

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (fs::temp_directory_path() /
             ("msc_archive_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  std::string base_;
};

TEST_F(ArchiveTest, SharedFileSystemCreatesOneDirectory) {
  const auto topo = simnet::make_viola_experiment1();
  const auto layout = FileSystemLayout::shared(base_, topo.num_metahosts());
  CreationStats stats;
  const auto arch = ExperimentArchive::create(topo, layout, "exp", &stats);
  EXPECT_EQ(arch.partial_dirs().size(), 1u);
  EXPECT_TRUE(fs::exists(base_ + "/exp.msc"));
  EXPECT_EQ(stats.directories_created, 1);
  EXPECT_FALSE(stats.aborted);
  EXPECT_EQ(stats.broadcasts, 1);
  EXPECT_EQ(stats.allreduces, 1);
}

TEST_F(ArchiveTest, PerMetahostLayoutCreatesPartialArchives) {
  const auto topo = simnet::make_viola_experiment1();
  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  CreationStats stats;
  const auto arch = ExperimentArchive::create(topo, layout, "exp", &stats);
  EXPECT_EQ(arch.partial_dirs().size(), 3u);
  for (int m = 0; m < 3; ++m)
    EXPECT_TRUE(fs::exists(base_ + "/fs" + std::to_string(m) + "/exp.msc"));
  EXPECT_EQ(stats.directories_created, 3);
}

TEST_F(ArchiveTest, CustomLayoutSharesSelectively) {
  const auto topo = simnet::make_viola_experiment1();
  // CAESAR and FH-BRS share an NFS root; FZJ is separate.
  const auto layout = FileSystemLayout::custom(
      {base_ + "/nfs", base_ + "/nfs", base_ + "/fzj"});
  EXPECT_TRUE(layout.same_fs(MetahostId{0}, MetahostId{1}));
  EXPECT_FALSE(layout.same_fs(MetahostId{0}, MetahostId{2}));
  CreationStats stats;
  const auto arch = ExperimentArchive::create(topo, layout, "exp", &stats);
  EXPECT_EQ(arch.partial_dirs().size(), 2u);
  EXPECT_EQ(stats.directories_created, 2);
}

TEST_F(ArchiveTest, ProtocolAttemptsScaleWithMetahostsNotRanks) {
  const auto topo = simnet::make_viola_experiment1();  // 32 ranks
  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  CreationStats hier;
  ExperimentArchive::create(topo, layout, "h", &hier);
  CreationStats naive;
  ExperimentArchive::create_naive(topo, layout, "n", &naive);
  EXPECT_LE(hier.create_attempts, topo.num_metahosts());
  EXPECT_EQ(naive.create_attempts, topo.num_ranks());
  EXPECT_LT(hier.create_attempts, naive.create_attempts);
}

TEST_F(ArchiveTest, TracesRoundTripThroughPartialArchives) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  const auto arch = ExperimentArchive::create(topo, layout, "mt");
  arch.write_traces(topo, data.traces);
  const auto loaded = arch.read_traces();
  ASSERT_EQ(loaded.num_ranks(), data.traces.num_ranks());
  for (int r = 0; r < loaded.num_ranks(); ++r)
    EXPECT_EQ(loaded.ranks[static_cast<std::size_t>(r)],
              data.traces.ranks[static_cast<std::size_t>(r)]);
  EXPECT_EQ(loaded.defs.metahosts, data.traces.defs.metahosts);
}

TEST_F(ArchiveTest, EachRankTraceLandsOnItsOwnFileSystem) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  const auto arch = ExperimentArchive::create(topo, layout, "mt");
  arch.write_traces(topo, data.traces);
  for (Rank r = 0; r < topo.num_ranks(); ++r) {
    const std::string expected = layout.root_of(topo.metahost_of(r)) +
                                 "/mt.msc/" + tracing::trace_filename(r);
    EXPECT_TRUE(fs::exists(expected)) << expected;
    // And nowhere else.
    for (int m = 0; m < topo.num_metahosts(); ++m) {
      if (topo.metahost_of(r) == MetahostId{m}) continue;
      const std::string wrong = layout.root_of(MetahostId{m}) + "/mt.msc/" +
                                tracing::trace_filename(r);
      EXPECT_FALSE(fs::exists(wrong)) << wrong;
    }
  }
}

TEST_F(ArchiveTest, LocalTraceAccessReadsOnlyLocalArchive) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  const auto arch = ExperimentArchive::create(topo, layout, "mt");
  arch.write_traces(topo, data.traces);
  for (Rank r : {0, 8, 16, 31}) {
    const auto t = arch.read_local_trace(topo, r);
    EXPECT_EQ(t, data.traces.ranks[static_cast<std::size_t>(r)]);
  }
  // Definitions are visible from every metahost.
  for (int m = 0; m < topo.num_metahosts(); ++m) {
    const auto defs = arch.read_defs(MetahostId{m});
    EXPECT_EQ(defs.defs.metahosts, data.traces.defs.metahosts);
  }
}

TEST_F(ArchiveTest, ManifestsWrittenPerMetahost) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  const auto arch = ExperimentArchive::create(topo, layout, "mt");
  arch.write_traces(topo, data.traces);
  for (int m = 0; m < topo.num_metahosts(); ++m) {
    const std::string path =
        arch.dir_of(MetahostId{m}) + "/manifest." + std::to_string(m) +
        ".json";
    ASSERT_TRUE(fs::exists(path));
    const metascope::Json manifest = load_json_file(path);
    EXPECT_EQ(manifest.at("experiment").as_string(), "mt");
    EXPECT_EQ(manifest.at("metahost_id").as_int(), m);
    EXPECT_EQ(manifest.at("ranks").as_array().size(),
              topo.ranks_on(MetahostId{m}).size());
  }
}

TEST_F(ArchiveTest, ZeroEventRanksRoundTrip) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  auto data = workloads::run_experiment(topo, prog, cfg);
  // Ranks that recorded nothing (e.g. spawned but never instrumented)
  // must survive the archive round trip as empty traces.
  for (Rank r : {0, 5, 31})
    data.traces.ranks[static_cast<std::size_t>(r)].events.clear();
  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  const auto arch = ExperimentArchive::create(topo, layout, "z");
  arch.write_traces(topo, data.traces);
  const auto loaded = arch.read_traces();
  ASSERT_EQ(loaded.num_ranks(), data.traces.num_ranks());
  for (int r = 0; r < loaded.num_ranks(); ++r)
    EXPECT_EQ(loaded.ranks[static_cast<std::size_t>(r)],
              data.traces.ranks[static_cast<std::size_t>(r)]);
  EXPECT_TRUE(loaded.ranks[0].events.empty());
}

TEST_F(ArchiveTest, MetahostWithoutRanksRoundTrips) {
  // Three metahosts, ranks placed on only the first two: the third still
  // gets a partial archive with defs + an empty manifest, and reading
  // the archive back skips it cleanly.
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = 2;
  simnet::MetahostSpec b = a;
  b.name = "B";
  simnet::MetahostSpec c = a;
  c.name = "Idle";
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  topo.add_metahost(c);
  topo.place_block(ia, 2, 1);
  topo.place_block(ib, 2, 1);

  simmpi::ProgramBuilder pb(topo.num_ranks());
  for (Rank r = 0; r < topo.num_ranks(); ++r)
    pb.on(r).enter("main").barrier().exit();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  const auto data = workloads::run_experiment(topo, pb.take(), cfg);

  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  const auto arch = ExperimentArchive::create(topo, layout, "idle");
  arch.write_traces(topo, data.traces);
  const auto loaded = arch.read_traces();
  ASSERT_EQ(loaded.num_ranks(), data.traces.num_ranks());
  for (int r = 0; r < loaded.num_ranks(); ++r)
    EXPECT_EQ(loaded.ranks[static_cast<std::size_t>(r)],
              data.traces.ranks[static_cast<std::size_t>(r)]);
  const std::string manifest_path =
      arch.dir_of(MetahostId{2}) + "/manifest.2.json";
  ASSERT_TRUE(fs::exists(manifest_path));
  const metascope::Json manifest = load_json_file(manifest_path);
  EXPECT_EQ(manifest.at("ranks").as_array().size(), 0u);
}

TEST_F(ArchiveTest, ParallelWriteAndReadMatchSerial) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto layout_s =
      FileSystemLayout::per_metahost(base_ + "/serial", topo.num_metahosts());
  const auto layout_p = FileSystemLayout::per_metahost(
      base_ + "/parallel", topo.num_metahosts());
  const auto arch_s = ExperimentArchive::create(topo, layout_s, "w");
  const auto arch_p = ExperimentArchive::create(topo, layout_p, "w");
  arch_s.write_traces(topo, data.traces, 1);
  arch_p.write_traces(topo, data.traces, 8);
  // Byte-identical files regardless of worker count.
  for (Rank r = 0; r < topo.num_ranks(); ++r) {
    const std::string rel =
        "/w.msc/" + tracing::trace_filename(r);
    EXPECT_EQ(read_file_bytes(layout_s.root_of(topo.metahost_of(r)) + rel),
              read_file_bytes(layout_p.root_of(topo.metahost_of(r)) + rel))
        << "rank " << r;
  }
  // And the parallel read reassembles the same collection.
  const auto loaded = arch_p.read_traces(8);
  for (int r = 0; r < loaded.num_ranks(); ++r)
    EXPECT_EQ(loaded.ranks[static_cast<std::size_t>(r)],
              data.traces.ranks[static_cast<std::size_t>(r)]);
}

TEST_F(ArchiveTest, ConcurrentLocalTraceReadsAreSafe) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  const auto arch = ExperimentArchive::create(topo, layout, "mt");
  arch.write_traces(topo, data.traces);
  // The parallel analyzer's access pattern: many threads pulling local
  // traces from the same archive object concurrently. Run under the
  // TSan preset via the "replay" label.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int w = 0; w < 4; ++w) {
    readers.emplace_back([&, w] {
      for (int iter = 0; iter < 3; ++iter) {
        for (Rank r = w; r < topo.num_ranks(); r += 4) {
          const auto t = arch.read_local_trace(topo, r);
          if (!(t == data.traces.ranks[static_cast<std::size_t>(r)]))
            mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ArchiveTest, TruncatedTraceFileFailsWithClearError) {
  const auto topo = simnet::make_viola_experiment1();
  auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto layout =
      FileSystemLayout::per_metahost(base_, topo.num_metahosts());
  const auto arch = ExperimentArchive::create(topo, layout, "cut");
  arch.write_traces(topo, data.traces);
  const std::string victim = layout.root_of(topo.metahost_of(4)) +
                             "/cut.msc/" + tracing::trace_filename(4);
  auto bytes = read_file_bytes(victim);
  bytes.resize(bytes.size() / 2);
  write_file_bytes(victim, bytes);
  try {
    (void)arch.read_traces();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated trace file"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ArchiveTest, UnwritableRootAborts) {
  const auto topo = simnet::make_viola_experiment1();
  const auto layout = FileSystemLayout::custom(
      {"/proc/definitely/not/writable", base_ + "/b", base_ + "/c"});
  CreationStats stats;
  EXPECT_THROW(ExperimentArchive::create(topo, layout, "exp", &stats),
               Error);
  EXPECT_TRUE(stats.aborted);
}

TEST_F(ArchiveTest, LayoutValidation) {
  EXPECT_THROW(FileSystemLayout::shared(base_, 0), Error);
  EXPECT_THROW(FileSystemLayout::custom({}), Error);
  const auto layout = FileSystemLayout::shared(base_, 2);
  EXPECT_THROW((void)layout.root_of(MetahostId{5}), Error);
  const auto topo = simnet::make_viola_experiment1();  // 3 metahosts
  EXPECT_THROW(ExperimentArchive::create(topo, layout, "exp"), Error);
}

TEST_F(ArchiveTest, ExistingArchiveIsReused) {
  const auto topo = simnet::make_viola_experiment1();
  const auto layout = FileSystemLayout::shared(base_, 3);
  ExperimentArchive::create(topo, layout, "exp");
  CreationStats again;
  EXPECT_NO_THROW(ExperimentArchive::create(topo, layout, "exp", &again));
  EXPECT_EQ(again.directories_created, 0);
}

}  // namespace
}  // namespace metascope::archive
