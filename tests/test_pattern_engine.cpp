// Pattern-engine contract tests.
//
// The centerpiece is the golden-severity regression: the fixture
// tests/golden/seed_severities.txt freezes the severity cubes the
// PRE-engine hardwired wait-state layer produced for the seed workloads
// (exact %a hexfloat values, generated from the pre-refactor binaries).
// The engine must reproduce every cell BIT-IDENTICALLY — serial and
// parallel, at worker counts 1/2/8 — when running the legacy detector
// selection, and must leave every non-category cell untouched when the
// new Completion detectors are enabled on top.
//
// The workload constructions below (cross_topo/local_topo/
// random_program/make_traces) must stay in sync with the generator that
// produced the fixture; regenerate the fixture if they change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/pattern_engine.hpp"
#include "analysis/prepare.hpp"
#include "analysis/replay_core.hpp"
#include "analysis/wait_rules.hpp"
#include "clocksync/correction.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "simnet/presets.hpp"
#include "telemetry/metrics.hpp"
#include "tracing/matching.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"
#include "workloads/microworkloads.hpp"

namespace metascope::analysis {
namespace {

using tracing::EventType;

// --- workload constructions (in sync with the fixture generator) ---------

simnet::Topology cross_topo() {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = 1;
  a.cpus_per_node = 1;
  a.internal = simnet::LinkSpec{10e-6, 0.0, 1e9};
  simnet::MetahostSpec b = a;
  b.name = "B";
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  topo.set_external_link(ia, ib, simnet::LinkSpec{1000e-6, 0.0, 1e9});
  topo.place_block(ia, 1, 1);
  topo.place_block(ib, 1, 1);
  return topo;
}

simnet::Topology local_topo(int n) {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = n;
  a.cpus_per_node = 1;
  a.internal = simnet::LinkSpec{10e-6, 0.0, 1e9};
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, n, 1);
  return topo;
}

simmpi::Program random_program(int nranks, std::uint64_t seed, int steps) {
  Rng rng(seed);
  simmpi::ProgramBuilder b(nranks);
  for (Rank r = 0; r < nranks; ++r) b.on(r).enter("main");
  for (int s = 0; s < steps; ++s) {
    const int kind = static_cast<int>(rng.uniform_index(5));
    switch (kind) {
      case 0: {
        const Rank a = static_cast<Rank>(rng.uniform_index(nranks));
        Rank c = static_cast<Rank>(rng.uniform_index(nranks - 1));
        if (c >= a) ++c;
        const double bytes = rng.uniform(16.0, 200000.0);
        b.on(a).enter("chat").send(c, s, bytes).exit();
        b.on(c).enter("chat").recv(a, s).exit();
        break;
      }
      case 1: {
        for (Rank r = 0; r < nranks; ++r)
          b.on(r).compute(rng.uniform(0.0, 0.01)).barrier();
        break;
      }
      case 2: {
        for (Rank r = 0; r < nranks; ++r)
          b.on(r).compute(rng.uniform(0.0, 0.005)).allreduce(256.0);
        break;
      }
      case 3: {
        const Rank root = static_cast<Rank>(rng.uniform_index(nranks));
        for (Rank r = 0; r < nranks; ++r) {
          b.on(r).compute(rng.uniform(0.0, 0.005));
          b.on(r).bcast(root, 4096.0);
          b.on(r).reduce(root, 512.0);
        }
        break;
      }
      default: {
        std::vector<int> reqs(static_cast<std::size_t>(nranks));
        for (Rank r = 0; r < nranks; ++r) {
          auto& c = b.on(r);
          c.enter("shift");
          reqs[static_cast<std::size_t>(r)] =
              c.irecv((r + nranks - 1) % nranks, 7777 + s);
          c.send((r + 1) % nranks, 7777 + s, 1024.0);
          c.wait(reqs[static_cast<std::size_t>(r)]);
          c.exit();
        }
        break;
      }
    }
  }
  for (Rank r = 0; r < nranks; ++r) b.on(r).exit();
  return b.take();
}

tracing::TraceCollection make_traces(const simnet::Topology& topo,
                                     const simmpi::Program& prog,
                                     bool skewed) {
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = !skewed;
  cfg.measurement.scheme = skewed ? tracing::SyncScheme::HierarchicalTwo
                                  : tracing::SyncScheme::None;
  auto data = workloads::run_experiment(topo, prog, cfg);
  if (skewed) clocksync::synchronize(data.traces);
  return std::move(data.traces);
}

tracing::TraceCollection seed_workload(const std::string& name) {
  if (name == "late-sender-cross")
    return make_traces(cross_topo(), workloads::late_sender_program(0.25),
                       false);
  if (name == "late-sender-local")
    return make_traces(local_topo(2), workloads::late_sender_program(0.25),
                       false);
  if (name == "late-receiver-cross")
    return make_traces(cross_topo(),
                       workloads::late_receiver_program(0.3, 1 << 20), false);
  if (name == "wait-nxn-local")
    return make_traces(local_topo(4),
                       workloads::wait_nxn_program({0.0, 0.1, 0.2, 0.4}),
                       false);
  if (name == "wait-nxn-cross")
    return make_traces(cross_topo(), workloads::wait_nxn_program({0.0, 0.5}),
                       false);
  if (name == "wait-barrier-local")
    return make_traces(local_topo(4),
                       workloads::wait_barrier_program({0.3, 0.0, 0.1, 0.2}),
                       false);
  if (name == "early-reduce-local")
    return make_traces(local_topo(4),
                       workloads::early_reduce_program({0.0, 0.2, 0.5, 0.1}),
                       false);
  if (name == "late-broadcast-local")
    return make_traces(local_topo(4),
                       workloads::late_broadcast_program(4, 0.35), false);
  if (name == "random-viola") {
    const auto topo = simnet::make_viola_experiment1();
    return make_traces(topo, random_program(topo.num_ranks(), 1, 12), true);
  }
  if (name == "metatrace-viola") {
    const auto topo = simnet::make_viola_experiment1();
    return make_traces(topo, workloads::build_metatrace(), true);
  }
  ADD_FAILURE() << "unknown seed workload " << name;
  return {};
}

// --- fixture parsing -----------------------------------------------------

/// (metric name | call path | rank) -> exact severity.
using RowMap = std::map<std::string, double>;

std::map<std::string, RowMap> load_golden() {
  std::map<std::string, RowMap> out;
  std::ifstream in(MSC_GOLDEN_FILE);
  EXPECT_TRUE(in.good()) << "missing fixture " << MSC_GOLDEN_FILE;
  std::string line;
  std::string current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("workload ", 0) == 0) {
      current = line.substr(9);
      out[current];
      continue;
    }
    // "<metric> | <path> | <rank> <hexfloat>"
    const std::size_t last_sep = line.rfind(" | ");
    if (last_sep == std::string::npos) {
      ADD_FAILURE() << "malformed fixture row: " << line;
      continue;
    }
    const std::string key_prefix = line.substr(0, last_sep);
    std::istringstream tail(line.substr(last_sep + 3));
    int rank = -1;
    std::string hex;
    tail >> rank >> hex;
    const double v = std::strtod(hex.c_str(), nullptr);
    out[current][key_prefix + " | " + std::to_string(rank)] = v;
  }
  EXPECT_EQ(out.size(), 10u);
  return out;
}

const std::map<std::string, RowMap>& golden() {
  static const std::map<std::string, RowMap> g = load_golden();
  return g;
}

RowMap cube_rows(const report::Cube& cube) {
  RowMap rows;
  for (MetricId m : cube.metrics.preorder()) {
    const std::string& metric = cube.metrics.def(m).name;
    for (CallPathId c : cube.calls.preorder()) {
      const std::string path = cube.calls.path_string(c, cube.regions);
      for (Rank r = 0; r < cube.num_ranks(); ++r) {
        const double v = cube.get(m, c, r);
        if (v == 0.0) continue;
        rows[metric + " | " + path + " | " + std::to_string(r)] = v;
      }
    }
  }
  return rows;
}

/// The detector selection matching the pre-engine hardwired layer
/// (everything that existed before the Completion patterns).
std::vector<std::string> legacy_patterns() {
  return {"late_sender",    "late_receiver", "early_reduce",
          "late_broadcast", "wait_nxn",      "wait_barrier"};
}

/// Bit-exact row comparison in both directions.
void expect_rows_identical(const RowMap& expected, const RowMap& got,
                           const std::string& label) {
  for (const auto& [key, v] : expected) {
    const auto it = got.find(key);
    if (it == got.end()) {
      ADD_FAILURE() << label << ": missing row " << key;
      continue;
    }
    EXPECT_EQ(it->second, v) << label << ": " << key;
  }
  for (const auto& [key, v] : got)
    EXPECT_TRUE(expected.count(key)) << label << ": unexpected row " << key
                                     << " = " << v;
}

// --- golden regression ---------------------------------------------------

class GoldenWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenWorkloads, SerialLegacySelectionBitIdentical) {
  const std::string name = GetParam();
  const auto tc = seed_workload(name);
  ReplayOptions opts;
  opts.patterns = legacy_patterns();
  const auto res = analyze_serial(tc, opts);
  expect_rows_identical(golden().at(name), cube_rows(res.cube),
                        name + " serial");
}

TEST_P(GoldenWorkloads, ParallelLegacySelectionBitIdenticalAtEachWorkerCount) {
  const std::string name = GetParam();
  const auto tc = seed_workload(name);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ReplayOptions opts;
    opts.patterns = legacy_patterns();
    opts.max_workers = workers;
    const auto res = analyze_parallel(tc, opts);
    expect_rows_identical(golden().at(name), cube_rows(res.cube),
                          name + " parallel w=" + std::to_string(workers));
  }
}

TEST_P(GoldenWorkloads, CompletionDetectorsPerturbOnlyTheirCategories) {
  // Default (all detectors on): every pre-existing pattern cell must
  // stay bit-identical; only the Collective / Synchronization category
  // cells may change (Completion moves time out of them).
  const std::string name = GetParam();
  const auto tc = seed_workload(name);
  const auto res = analyze_serial(tc);
  const RowMap got = cube_rows(res.cube);
  const RowMap& gold = golden().at(name);
  for (const auto& [key, v] : gold) {
    if (key.rfind("Collective | ", 0) == 0 ||
        key.rfind("Synchronization | ", 0) == 0)
      continue;
    const auto it = got.find(key);
    if (it == got.end()) {
      ADD_FAILURE() << name << ": all-on run lost row " << key;
      continue;
    }
    EXPECT_EQ(it->second, v) << name << " all-on: " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GoldenWorkloads,
    ::testing::Values("late-sender-cross", "late-sender-local",
                      "late-receiver-cross", "wait-nxn-local",
                      "wait-nxn-cross", "wait-barrier-local",
                      "early-reduce-local", "late-broadcast-local",
                      "random-viola", "metatrace-viola"));

// --- completion patterns -------------------------------------------------

TEST(CompletionPatterns, BarrierCompletionFiresOnStaggeredEntry) {
  const auto tc = make_traces(
      local_topo(4), workloads::wait_barrier_program({0.3, 0.0, 0.1, 0.2}),
      false);
  const auto res = analyze_serial(tc);
  const auto& ps = res.patterns;
  // Everyone but the last arriver (rank 0) drains the barrier after the
  // last arrival: completion severity is positive at ranks 1..3, zero at
  // the last arriver.
  EXPECT_GT(res.cube.metric_total(ps.barrier_completion), 0.0);
  EXPECT_EQ(res.cube.rank_inclusive_total(ps.barrier_completion, 0), 0.0);
  for (Rank r = 1; r < 4; ++r)
    EXPECT_GT(res.cube.rank_inclusive_total(ps.barrier_completion, r), 0.0)
        << "rank " << r;
  // Local communicator: the grid child stays empty.
  EXPECT_EQ(res.cube.metric_total(ps.grid_barrier_completion), 0.0);
  // Completion is bounded by the wait-free remainder of the dwell:
  // wait + completion never exceeds Synchronization's base time.
  EXPECT_GE(res.cube.metric_total(ps.synchronization), -1e-12);
}

TEST(CompletionPatterns, NxNCompletionGridVariant) {
  const auto tc = make_traces(cross_topo(),
                              workloads::wait_nxn_program({0.0, 0.5}), false);
  const auto res = analyze_serial(tc);
  const auto& ps = res.patterns;
  EXPECT_GT(res.cube.metric_total(ps.grid_nxn_completion), 0.0);
  EXPECT_EQ(res.cube.metric_total(ps.nxn_completion), 0.0);
  // Rank 0 entered first, so only it has completion wait.
  EXPECT_GT(res.cube.rank_inclusive_total(ps.grid_nxn_completion, 0), 0.0);
  EXPECT_EQ(res.cube.rank_inclusive_total(ps.grid_nxn_completion, 1), 0.0);
}

TEST(CompletionPatterns, DisableDoesNotPerturbOtherSeverities) {
  const auto tc = make_traces(
      local_topo(4), workloads::wait_barrier_program({0.3, 0.0, 0.1, 0.2}),
      false);
  const auto all_on = analyze_serial(tc);
  ReplayOptions opts;
  opts.patterns = legacy_patterns();
  const auto legacy = analyze_serial(tc, opts);
  // Every metric that exists in both trees except the touched
  // categories must be bit-identical.
  const RowMap a = cube_rows(all_on.cube);
  const RowMap b = cube_rows(legacy.cube);
  for (const auto& [key, v] : b) {
    if (key.rfind("Collective | ", 0) == 0 ||
        key.rfind("Synchronization | ", 0) == 0)
      continue;
    const auto it = a.find(key);
    ASSERT_NE(it, a.end()) << key;
    EXPECT_EQ(it->second, v) << key;
  }
}

TEST(CompletionPatterns, SeverityStaysAPartitionOfTotalTime) {
  const auto topo = simnet::make_viola_experiment1();
  const auto tc =
      make_traces(topo, random_program(topo.num_ranks(), 5, 12), false);
  const auto res = analyze_serial(tc);
  double partition = 0.0;
  for (std::size_t m = 0; m < res.cube.metrics.size(); ++m)
    partition += res.cube.metric_total(MetricId{static_cast<int>(m)});
  double span = 0.0;
  for (const auto& t : tc.ranks)
    span += t.events.back().time - t.events.front().time;
  EXPECT_NEAR(partition, span, 1e-6 * span + 1e-9);
  // With the Completion detectors enabled, inclusive severities stay
  // non-negative everywhere.
  for (std::size_t m = 0; m < res.cube.metrics.size(); ++m)
    EXPECT_GE(res.cube.metric_inclusive_total(MetricId{static_cast<int>(m)}),
              -1e-9)
        << res.cube.metrics.def(MetricId{static_cast<int>(m)}).name;
}

// --- edge cases ----------------------------------------------------------

TEST(CompletionFormula, ZeroSimultaneousAndClampedCases) {
  CollMember m;
  // Member that arrived last (or tied): no completion.
  m.enter = 3.0;
  m.exit = 5.0;
  EXPECT_EQ(collective_completion_wait(3.0, m), 0.0);
  EXPECT_EQ(collective_completion_wait(2.0, m), 0.0);  // arrived after last
  // Early arriver: drains from last arrival to its exit.
  m.enter = 0.0;
  m.exit = 5.0;
  EXPECT_DOUBLE_EQ(collective_completion_wait(3.0, m), 2.0);
  // Zero-duration op: nothing to drain.
  m.enter = 3.0;
  m.exit = 3.0;
  EXPECT_EQ(collective_completion_wait(3.0, m), 0.0);
  // Exit before the last arrival (possible under residual clock error):
  // clamped to zero, never negative.
  m.enter = 0.0;
  m.exit = 2.0;
  EXPECT_EQ(collective_completion_wait(3.0, m), 0.0);
}

/// Hand-built two-rank collection: one barrier-like collective on the
/// `world` communicator with fully controlled timestamps.
tracing::TraceCollection hand_built_collective(const std::string& region,
                                               double enter0, double enter1,
                                               double coll_exit) {
  tracing::TraceCollection tc;
  tc.scheme = tracing::SyncScheme::None;
  const RegionId main_r = tc.defs.regions.intern("main");
  const RegionId coll_r = tc.defs.regions.intern(region);
  tc.defs.metahosts.push_back({MetahostId{0}, "A"});
  for (Rank r = 0; r < 2; ++r)
    tc.defs.locations.push_back({MetahostId{0}, NodeId{r}, r, 0});
  tc.defs.comms.push_back({CommId{0}, "world", {0, 1}});
  const double enters[2] = {enter0, enter1};
  for (Rank r = 0; r < 2; ++r) {
    tracing::LocalTrace t;
    t.rank = r;
    tracing::Event e;
    e.type = EventType::Enter;
    e.time = 0.0;
    e.region = main_r;
    t.events.push_back(e);
    e.time = enters[r];
    e.region = coll_r;
    t.events.push_back(e);
    tracing::Event x;
    x.type = EventType::CollExit;
    x.time = coll_exit;
    x.region = coll_r;
    x.comm = CommId{0};
    x.root = kNoRank;
    t.events.push_back(x);
    tracing::Event out;
    out.type = EventType::Exit;
    out.time = coll_exit + 0.1;
    t.events.push_back(out);
    tc.ranks.push_back(std::move(t));
  }
  return tc;
}

TEST(PatternEdgeCases, SimultaneousEntryCollectiveEmitsZeroEverywhere) {
  const auto tc = hand_built_collective("MPI_Barrier", 0.1, 0.1, 0.3);
  const auto res = analyze_serial(tc);
  const auto& ps = res.patterns;
  EXPECT_EQ(res.cube.metric_total(ps.wait_barrier), 0.0);
  EXPECT_EQ(res.cube.metric_total(ps.barrier_completion), 0.0);
  // The full dwell stays base synchronization time.
  EXPECT_DOUBLE_EQ(res.cube.metric_total(ps.synchronization), 0.4);
}

TEST(PatternEdgeCases, ZeroDurationCollectiveEmitsZeroNeverNegative) {
  const auto tc = hand_built_collective("MPI_Allreduce", 0.1, 0.1, 0.1);
  const auto res = analyze_serial(tc);
  const auto& ps = res.patterns;
  EXPECT_EQ(res.cube.metric_total(ps.wait_nxn), 0.0);
  EXPECT_EQ(res.cube.metric_total(ps.nxn_completion), 0.0);
  for (MetricId m : res.cube.metrics.preorder())
    for (CallPathId c : res.cube.calls.preorder())
      for (Rank r = 0; r < res.cube.num_ranks(); ++r)
        EXPECT_GE(res.cube.get(m, c, r), 0.0)
            << res.cube.metrics.def(m).name;
}

TEST(PatternEdgeCases, StaggeredEntrySplitsWaitAndCompletionExactly) {
  // rank 0 enters at 0.0, rank 1 at 0.05, both leave at 0.08:
  // wait(rank0) = 0.05, completion(rank0) = 0.03, rank 1 gets nothing,
  // and the Collective category cell drains to exactly zero for rank 0.
  const auto tc = hand_built_collective("MPI_Allreduce", 0.0, 0.05, 0.08);
  const auto res = analyze_serial(tc);
  const auto& ps = res.patterns;
  EXPECT_DOUBLE_EQ(res.cube.rank_inclusive_total(ps.wait_nxn, 0), 0.05);
  EXPECT_DOUBLE_EQ(res.cube.rank_inclusive_total(ps.nxn_completion, 0),
                   0.08 - 0.05);
  EXPECT_EQ(res.cube.rank_inclusive_total(ps.wait_nxn, 1), 0.0);
  EXPECT_EQ(res.cube.rank_inclusive_total(ps.nxn_completion, 1), 0.0);
}

TEST(PatternEdgeCases, SingleMemberCommunicatorCollectiveIsAllBaseTime) {
  auto tc = hand_built_collective("MPI_Barrier", 0.1, 0.1, 0.3);
  // Re-aim rank 0's collective at a single-member communicator and drop
  // rank 1's barrier so instance counts stay consistent.
  tc.defs.comms.push_back({CommId{1}, "solo", {0}});
  for (auto& e : tc.ranks[0].events)
    if (e.type == EventType::CollExit) e.comm = CommId{1};
  auto& ev1 = tc.ranks[1].events;
  ev1.erase(ev1.begin() + 1, ev1.begin() + 3);
  const auto res = analyze_serial(tc);
  const auto& ps = res.patterns;
  EXPECT_EQ(res.cube.metric_total(ps.wait_barrier), 0.0);
  EXPECT_EQ(res.cube.metric_total(ps.barrier_completion), 0.0);
  EXPECT_EQ(res.stats.collective_instances, 1u);
}

TEST(PatternEdgeCases, SelfMessageAnalyzesCleanly) {
  tracing::TraceCollection tc;
  tc.scheme = tracing::SyncScheme::None;
  const RegionId main_r = tc.defs.regions.intern("main");
  const RegionId send_r = tc.defs.regions.intern("MPI_Send");
  const RegionId recv_r = tc.defs.regions.intern("MPI_Recv");
  tc.defs.metahosts.push_back({MetahostId{0}, "A"});
  tc.defs.locations.push_back({MetahostId{0}, NodeId{0}, 0, 0});
  tc.defs.comms.push_back({CommId{0}, "world", {0}});
  tracing::LocalTrace t;
  t.rank = 0;
  auto push = [&](EventType type, double time, RegionId region) {
    tracing::Event e;
    e.type = type;
    e.time = time;
    e.region = region;
    if (type == EventType::Send || type == EventType::Recv) {
      e.peer = 0;
      e.tag = 1;
      e.comm = CommId{0};
    }
    t.events.push_back(e);
  };
  push(EventType::Enter, 0.0, main_r);
  push(EventType::Enter, 0.1, send_r);
  push(EventType::Send, 0.1, RegionId{});
  push(EventType::Exit, 0.2, RegionId{});
  push(EventType::Enter, 0.3, recv_r);
  push(EventType::Recv, 0.35, RegionId{});
  push(EventType::Exit, 0.4, RegionId{});
  push(EventType::Exit, 0.5, RegionId{});
  tc.ranks.push_back(std::move(t));
  const auto res = analyze_serial(tc);
  EXPECT_EQ(res.stats.messages, 1u);
  // Receive was posted after the send completed: no wait either way.
  EXPECT_EQ(res.cube.metric_inclusive_total(res.patterns.late_sender), 0.0);
  EXPECT_EQ(res.cube.metric_inclusive_total(res.patterns.late_receiver),
            0.0);
}

// --- selection plumbing --------------------------------------------------

TEST(PatternSelection, UnknownKeyThrowsThroughAnalyzerOptions) {
  const auto tc =
      make_traces(local_topo(2), workloads::late_sender_program(0.1), false);
  ReplayOptions opts;
  opts.patterns = {"late_sendr"};
  EXPECT_THROW(analyze_serial(tc, opts), Error);
  EXPECT_THROW(analyze_parallel(tc, opts), Error);
}

TEST(PatternSelection, DisabledPatternAbsentFromTree) {
  const auto tc =
      make_traces(local_topo(2), workloads::late_sender_program(0.1), false);
  ReplayOptions opts;
  opts.patterns = {"late_sender"};
  const auto res = analyze_serial(tc, opts);
  EXPECT_TRUE(res.patterns.late_sender.valid());
  EXPECT_FALSE(res.patterns.late_receiver.valid());
  EXPECT_FALSE(res.cube.metrics.contains("Late Receiver"));
  EXPECT_FALSE(res.cube.metrics.contains("Barrier Completion"));
  // The category skeleton is always present.
  EXPECT_TRUE(res.cube.metrics.contains("Synchronization"));
}

// --- extensibility -------------------------------------------------------

/// A detector a downstream tool might add: attributes each receive op's
/// dwell as its own metric under Point-to-point.
class RecvDwellDetector final : public PatternDetector {
 public:
  [[nodiscard]] const DetectorSpec& spec() const override {
    static const DetectorSpec s{
        "recv_dwell",
        MetricNodeSpec{"Recv Dwell", "Total receive-operation dwell",
                       "Point-to-point", "", ""},
        kOnP2p};
    return s;
  }

  void p2p_matched(const P2pCtx& ctx, PatternSink& sink) override {
    sink.severity(metric_, category_, ctx.recv->cnode, ctx.recv->rank,
                  ctx.recv->op_exit - ctx.recv->op_enter,
                  ctx.defs->metahost_of(ctx.recv->rank),
                  ctx.defs->metahost_of(ctx.send->rank));
  }
};

TEST(PatternExtensibility, CustomDetectorRunsThroughPublicEngineApi) {
  const auto tc =
      make_traces(local_topo(2), workloads::late_sender_program(0.2), false);
  const PreparedTrace prep = prepare(tc, 1);
  PatternRegistry registry = PatternRegistry::standard();
  registry.add(std::make_unique<RecvDwellDetector>());
  registry.select({"recv_dwell"});
  report::Cube cube;
  PatternEngine engine(registry, cube);
  const PatternSet ps = engine.install(tc, prep);
  EXPECT_TRUE(cube.metrics.contains("Recv Dwell"));
  // Built-ins were deselected; only the custom detector (and the
  // structural partition) run.
  EXPECT_FALSE(ps.late_sender.valid());

  const auto pairs = tracing::match_messages(tc);
  std::vector<P2pRecord> p2p;
  for (const auto& p : pairs)
    p2p.push_back(P2pRecord{make_side(prep, p.send.rank, p.send.index),
                            make_side(prep, p.recv.rank, p.recv.index),
                            p.recv.index});
  AnalysisStats stats;
  engine.dispatch(std::move(p2p), group_collectives(tc, prep), stats);
  EXPECT_EQ(stats.messages, 1u);
  const MetricId dwell = cube.metrics.find("Recv Dwell");
  // The receiver waited ~0.2 s inside MPI_Recv, so its dwell is at
  // least that.
  EXPECT_GT(cube.metric_total(dwell), 0.19);
}

// --- telemetry -----------------------------------------------------------

TEST(PatternTelemetry, PerPatternCountersTallied) {
  telemetry::Registry::instance().reset();
  const auto tc =
      make_traces(local_topo(2), workloads::late_sender_program(0.25), false);
  const auto res = analyze_serial(tc);
  EXPECT_GT(telemetry::counter("analysis.pattern.late_sender.hits").value(),
            0u);
  EXPECT_NEAR(
      telemetry::dcounter("analysis.pattern.late_sender.seconds").value(),
      res.cube.metric_inclusive_total(res.patterns.late_sender), 1e-12);
  // Enabled patterns that never fired are still registered, at zero.
  EXPECT_EQ(
      telemetry::counter("analysis.pattern.barrier_completion.hits").value(),
      0u);
}

}  // namespace
}  // namespace metascope::analysis
