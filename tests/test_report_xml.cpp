#include "report/cubexml.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope::report {
namespace {

Cube small_cube() {
  Cube cube;
  const MetricId time = cube.metrics.add("Time", "total <&\"escaped\">");
  const MetricId wait = cube.metrics.add("Wait", "", time);
  const RegionId main_r = cube.regions.intern("main");
  const RegionId recv_r = cube.regions.intern("MPI_Recv");
  const CallPathId main_c = cube.calls.get_or_add(CallPathId{}, main_r);
  const CallPathId recv_c = cube.calls.get_or_add(main_c, recv_r);
  cube.system.metahosts.push_back(tracing::MetahostDef{MetahostId{0}, "A"});
  cube.system.metahosts.push_back(tracing::MetahostDef{MetahostId{1}, "B"});
  for (Rank r = 0; r < 3; ++r) {
    tracing::LocationDef loc;
    loc.machine = MetahostId{r == 2 ? 1 : 0};
    loc.node = NodeId{r};
    loc.process = r;
    cube.system.locations.push_back(loc);
  }
  cube.system.comms.push_back(
      tracing::CommDef{CommId{0}, "MPI_COMM_WORLD", {0, 1, 2}});
  cube.add(time, main_c, 0, 1.25);
  cube.add(wait, recv_c, 2, 0.5);
  cube.add(time, recv_c, 1, 1e-9);
  return cube;
}

TEST(CubeXml, RoundTripPreservesEverything) {
  const Cube cube = small_cube();
  const std::string xml = to_cube_xml(cube);
  const Cube loaded = from_cube_xml(xml);
  EXPECT_TRUE(cube.approx_equal(loaded, 0.0));
  EXPECT_EQ(loaded.system.metahosts, cube.system.metahosts);
  EXPECT_EQ(loaded.system.locations, cube.system.locations);
  EXPECT_EQ(loaded.system.comms, cube.system.comms);
  EXPECT_EQ(loaded.metrics.def(MetricId{0}).description,
            "total <&\"escaped\">");
  EXPECT_EQ(loaded.regions.name(RegionId{1}), "MPI_Recv");
}

TEST(CubeXml, RoundTripFullAnalysisCube) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto res = analysis::analyze_serial(data.traces);
  const Cube loaded = from_cube_xml(to_cube_xml(res.cube));
  EXPECT_TRUE(res.cube.approx_equal(loaded, 1e-15));
  EXPECT_DOUBLE_EQ(loaded.total_time(), res.cube.total_time());
}

TEST(CubeXml, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "msc_cube_rt.cubex")
          .string();
  const Cube cube = small_cube();
  save_cube(path, cube);
  const Cube loaded = load_cube(path);
  EXPECT_TRUE(cube.approx_equal(loaded, 0.0));
  std::filesystem::remove(path);
}

TEST(CubeXml, RejectsGarbage) {
  EXPECT_THROW(from_cube_xml("not xml at all"), Error);
  EXPECT_THROW(from_cube_xml("<cube version=\"1\">"), Error);
  EXPECT_THROW(from_cube_xml("<notacube version=\"1\"></notacube>"), Error);
}

TEST(CubeXml, RejectsWrongVersion) {
  std::string xml = to_cube_xml(small_cube());
  const auto pos = xml.find("version=\"1\"");
  xml.replace(pos, 11, "version=\"9\"");
  EXPECT_THROW(from_cube_xml(xml), Error);
}

TEST(CubeXml, RejectsMismatchedTags) {
  EXPECT_THROW(from_cube_xml("<cube version=\"1\"><metrics></cube>"),
               Error);
}

TEST(CubeXml, MissingFileThrows) {
  EXPECT_THROW(load_cube("/nonexistent/cube.cubex"), Error);
}

TEST(CubeXml, ZeroEntriesNotStored) {
  Cube cube = small_cube();
  const std::string xml = to_cube_xml(cube);
  // Only three non-zero severity entries.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = xml.find("<v ", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace metascope::report
