// Fuzz target: sync-record ingestion plus the clock-correction math
// that consumes it. A decoded trace's OffsetRecords flow into
// clocksync::build_corrections / apply_corrections, so adversarial
// bytes reach not just the decoder but the downstream arithmetic
// (phases out of order, absurd offsets, NaN/inf timestamps from
// crafted f64 payloads). The invariant: typed Error or success — no
// crash, no sanitizer finding, under every synchronization scheme.
#include <cstdint>
#include <utility>
#include <vector>

#include "clocksync/correction.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "tracing/defs.hpp"
#include "tracing/epilog_io.hpp"
#include "tracing/trace.hpp"

namespace {

using namespace metascope;

tracing::TraceCollection wrap_single_rank(tracing::LocalTrace trace) {
  tracing::TraceCollection tc;
  trace.rank = 0;  // whatever the bytes claimed, make the shape coherent
  tracing::MetahostDef mh;
  mh.id = MetahostId{0};
  mh.name = "fuzz";
  tc.defs.metahosts.push_back(mh);
  tracing::LocationDef loc;
  loc.machine = MetahostId{0};
  loc.node = NodeId{0};
  loc.process = 0;
  tc.defs.locations.push_back(loc);
  tc.ranks.push_back(std::move(trace));
  return tc;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  tracing::LocalTrace trace;
  try {
    trace = tracing::decode_local_trace(bytes, "<fuzz>");
  } catch (const Error&) {
    return 0;  // typed rejection — the decoder did its job
  }

  // The decode accepted the sync records; the correction builder must
  // now cope with whatever values they carried.
  for (const auto scheme :
       {tracing::SyncScheme::None, tracing::SyncScheme::FlatSingle,
        tracing::SyncScheme::FlatTwo, tracing::SyncScheme::HierarchicalTwo}) {
    tracing::TraceCollection tc = wrap_single_rank(trace);
    tc.scheme = scheme;
    try {
      const auto corr = clocksync::build_corrections(tc);
      clocksync::apply_corrections(tc, corr, 1);
    } catch (const Error&) {
      // Structurally invalid sync data (e.g. missing phases) may be
      // rejected; it must be rejected with a typed Error.
    }
  }
  return 0;
}

#include "fuzz_driver.hpp"
