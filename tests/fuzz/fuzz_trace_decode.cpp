// Fuzz target: the binary trace/defs decoders. The contract under test
// is the hardened-ingestion invariant: for ANY byte string, decoding
// either succeeds or throws a typed metascope::Error — never crashes,
// never reads out of bounds (ASan), never overflows arithmetic (UBSan),
// never allocates proportionally to attacker-controlled count fields.
//
// Both decoders run on the same input: the magic words ("MCSD" vs
// "MCST") disambiguate real files, so a single corpus exercises both
// paths and the mutator can freely morph one format into the other.
// The corpus seeds all three trace format versions; the v3 columnar
// seeds and mutants (make_fuzz_corpus) aim the mutator at the type
// stream, per-type count cross-checks, column frames, and the double
// codec's validated fields (XOR lead bytes, scale indices, residual
// bit widths).
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "tracing/epilog_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    (void)metascope::tracing::decode_local_trace(bytes, "<fuzz>");
  } catch (const metascope::Error&) {
    // Typed rejection is the expected outcome for invalid input.
  }
  try {
    (void)metascope::tracing::decode_defs(bytes, "<fuzz>");
  } catch (const metascope::Error&) {
  }
  return 0;
}

#include "fuzz_driver.hpp"
