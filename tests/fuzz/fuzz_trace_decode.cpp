// Fuzz target: the binary trace/defs decoders. The contract under test
// is the hardened-ingestion invariant: for ANY byte string, decoding
// either succeeds or throws a typed metascope::Error — never crashes,
// never reads out of bounds (ASan), never overflows arithmetic (UBSan),
// never allocates proportionally to attacker-controlled count fields.
//
// Both decoders run on the same input: the magic words ("MCSD" vs
// "MCST") disambiguate real files, so a single corpus exercises both
// paths and the mutator can freely morph one format into the other.
// The corpus seeds all three trace format versions; the v3 columnar
// seeds and mutants (make_fuzz_corpus) aim the mutator at the type
// stream, per-type count cross-checks, column frames, and the double
// codec's validated fields (XOR lead bytes, scale indices, residual
// bit widths).
//
// The windowed reader (tracing::TraceStream — the streaming analyzer's
// lazy block-decode entry point) runs on the same input too: open-time
// validation, the light prepare-pass scan, and a small-window drain
// that forces per-window cursor refills mid-column. It must uphold the
// same invariant as the batch decoder, and the truncated-mid-block
// corpus mutants aim the mutator straight at the window boundaries.
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "tracing/epilog_io.hpp"
#include "tracing/stream.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    (void)metascope::tracing::decode_local_trace(bytes, "<fuzz>");
  } catch (const metascope::Error&) {
    // Typed rejection is the expected outcome for invalid input.
  }
  try {
    (void)metascope::tracing::decode_defs(bytes, "<fuzz>");
  } catch (const metascope::Error&) {
  }
  try {
    metascope::tracing::TraceStream s(bytes.data(), bytes.size(), "<fuzz>");
    s.scan_light([](const metascope::tracing::LightEvent&) {});
    // Tiny windows put every chunked cursor through mid-column refills.
    std::vector<metascope::tracing::Event> sink;
    while (!s.at_end()) {
      sink.clear();
      if (s.next(sink, 3) == 0) break;
    }
  } catch (const metascope::Error&) {
  }
  return 0;
}

#include "fuzz_driver.hpp"
