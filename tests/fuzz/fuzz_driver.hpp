// Shared entry-point shim for the fuzz harnesses.
//
// Under clang the harnesses build with -fsanitize=fuzzer and libFuzzer
// provides main(). Under gcc (no libFuzzer) the fuzz CMake target
// defines MSC_FUZZ_STANDALONE instead, and this header supplies a
// file-driven main(): each command-line argument is read and fed to
// LLVMFuzzerTestOneInput once. That keeps the harnesses compilable and
// runnable (corpus replay, crash reproduction) on any toolchain; only
// coverage-guided exploration needs clang.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#ifdef MSC_FUZZ_STANDALONE
#include <cstdio>
#include <exception>
#include <vector>

#include "common/binary_io.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "standalone fuzz driver (built without libFuzzer)\n"
                 "usage: %s <input-file>...\n",
                 argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    try {
      const std::vector<std::uint8_t> bytes =
          metascope::read_file_bytes(argv[i]);
      LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      std::printf("ok: %s (%zu bytes)\n", argv[i], bytes.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error on %s: %s\n", argv[i], e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
#endif
