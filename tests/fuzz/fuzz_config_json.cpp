// Fuzz target: the JSON parser and the experiment-config layer above
// it. Covers the text-input half of ingestion: parser recursion is
// depth-capped (no stack overflow from "[[[[..."), config integers are
// range-checked (no multi-gigabyte Program from a flipped digit), and
// every rejection is a typed metascope::Error.
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "workloads/config.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  metascope::Json doc;
  try {
    doc = metascope::Json::parse(text);
  } catch (const metascope::Error&) {
    return 0;  // malformed JSON, rejected with a typed error
  }
  try {
    (void)metascope::workloads::parse_experiment(doc);
  } catch (const metascope::Error&) {
    // Well-formed JSON that is not a valid experiment — also fine.
  }
  return 0;
}

#include "fuzz_driver.hpp"
